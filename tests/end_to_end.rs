//! Full-flow integration: DSP-like block → cell pre-characterization →
//! pruning → chip-level audit with the nonlinear cell model, exercising
//! every crate in the workspace together (the paper's Section 5 flow).

use pcv_bench::charlib_for;
use pcv_cells::library::CellLibrary;
use pcv_designs::dsp::{generate, DspConfig};
use pcv_designs::Technology;
use pcv_netlist::PNetId;
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::{prune_all, prune_victim, PruneConfig, PruningStats};
use pcv_xtalk::{
    analyze_glitch, verify_chip, AnalysisContext, AnalysisOptions, EngineKind, Severity,
};

fn charlib() -> pcv_cells::charlib::CharLibrary {
    charlib_for(&[
        "INVX2", "INVX4", "INVX8", "BUFX4", "BUFX8", "BUFX12", "NAND2X2", "NAND2X4", "NOR2X2",
        "NOR2X4", "TBUFX4", "TBUFX8", "TBUFX16",
    ])
}

#[test]
fn dsp_block_chip_audit_with_nonlinear_models() {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let charlib = charlib();
    let block = generate(
        &DspConfig { n_buses: 1, bus_bits: 6, n_random_nets: 14, ..Default::default() },
        &tech,
        &lib,
    );

    // Victims: the first few latch inputs.
    let victims: Vec<PNetId> = block
        .latch_victims()
        .into_iter()
        .take(4)
        .map(|d| block.parasitics.find_net(block.design.net_name(d)).unwrap())
        .collect();
    assert!(!victims.is_empty());

    let ctx = AnalysisContext::with_design(
        &block.parasitics,
        &block.design,
        &lib,
        &charlib,
        DriverModelKind::Nonlinear,
    );
    let report = verify_chip(
        &ctx,
        &victims,
        &PruneConfig { cap_ratio: 0.02, max_aggressors: 6 },
        &AnalysisOptions::default(),
        0.10,
        0.20,
    )
    .expect("audit completes");

    assert_eq!(report.verdicts.len(), victims.len());
    // Bus bits sandwiched between simultaneously switching neighbors must
    // show nonzero crosstalk.
    assert!(
        report.verdicts[0].worst_frac > 0.01,
        "worst victim sees crosstalk: {:?}",
        report.verdicts[0]
    );
    // Report renders.
    let text = report.to_text();
    assert!(text.contains("crosstalk audit"));
    // Severity classification is consistent with thresholds.
    for v in &report.verdicts {
        match v.severity {
            Severity::Clean => assert!(v.worst_frac < 0.10),
            Severity::Warning => assert!((0.10..0.20).contains(&v.worst_frac)),
            Severity::Violation => assert!(v.worst_frac >= 0.20),
        }
    }
}

#[test]
fn pruning_shrinks_dsp_clusters() {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let block = generate(
        &DspConfig { n_buses: 4, bus_bits: 16, n_random_nets: 60, ..Default::default() },
        &tech,
        &lib,
    );
    let clusters = prune_all(&block.parasitics, &PruneConfig::default());
    let stats = PruningStats::compute(&clusters);
    // The paper's story: clusters shrink to a handful of nets.
    assert!(stats.mean_after < stats.mean_before);
    // Bus-heavy synthetic block: slightly larger than the paper's 2-5,
    // still single-digit.
    assert!(stats.mean_after <= 8.0, "mean after pruning: {}", stats.mean_after);
    assert!(stats.max_after <= 13, "max after pruning: {}", stats.max_after);
}

#[test]
fn nonlinear_model_tracks_transistor_reference_on_dsp_victim() {
    // One victim, both flows: the Figure 6 comparison in miniature.
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let charlib = charlib();
    let block = generate(
        &DspConfig { n_buses: 1, bus_bits: 6, n_random_nets: 8, ..Default::default() },
        &tech,
        &lib,
    );
    let victim_design = block.latch_victims()[2];
    let victim = block.parasitics.find_net(block.design.net_name(victim_design)).unwrap();
    let cluster = prune_victim(
        &block.parasitics,
        victim,
        &PruneConfig { cap_ratio: 0.02, max_aggressors: 5 },
    );
    if cluster.aggressors.is_empty() {
        return; // isolated victim in this draw; nothing to compare
    }

    let model_ctx = AnalysisContext::with_design(
        &block.parasitics,
        &block.design,
        &lib,
        &charlib,
        DriverModelKind::Nonlinear,
    );
    let ref_ctx = AnalysisContext::with_design(
        &block.parasitics,
        &block.design,
        &lib,
        &charlib,
        DriverModelKind::TransistorLevel,
    );
    let opts = AnalysisOptions::default();
    let spice_opts = AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };

    let model = analyze_glitch(&model_ctx, &cluster, true, &opts).unwrap();
    let reference = analyze_glitch(&ref_ctx, &cluster, true, &spice_opts).unwrap();
    if reference.peak.abs() > 0.25 {
        let rel = (model.peak.abs() - reference.peak.abs()).abs() / reference.peak.abs();
        assert!(
            rel < 0.25,
            "nonlinear model {} vs transistor reference {} ({rel})",
            model.peak,
            reference.peak
        );
    }
}
