//! Observability tests for the `pcv-serve` daemon: the `/metrics`
//! exposition contract, extended `/healthz`, `Retry-After` + client
//! backoff, end-to-end correlation IDs, the stall-watchdog drill, and the
//! inertness proof — sign-off artifacts byte-identical with the whole
//! observatory enabled vs. disabled.
//!
//! Every test boots a real daemon on an ephemeral localhost port, exactly
//! like the load suite.

use pcv_engine::{Engine, EngineConfig, FaultKind, FaultPlan};
use pcv_serve::session::{elaborate, DesignSpec};
use pcv_serve::{check_access_log, check_exposition, Client, Server, ServerConfig};
use pcv_trace::json::str_lit;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pcv-metrics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small deterministic chip as inline SPEF. The default (1 bus × 5
/// bits plus 8 random nets) gives several clusters; the watchdog drill
/// uses a 2-net chip because every faulted cluster pays for a full SPICE
/// reference run.
fn spef_body_sized(bus_bits: usize, n_random_nets: usize) -> String {
    let block = pcv_designs::dsp::generate(
        &pcv_designs::dsp::DspConfig { n_buses: 1, bus_bits, n_random_nets, ..Default::default() },
        &pcv_designs::Technology::c025(),
        &pcv_cells::library::CellLibrary::standard_025(),
    );
    let spef = pcv_netlist::spef::write_spef(&block.parasitics);
    format!(
        "{{\"design\":{{\"kind\":\"spef\",\"drive_ohms\":1000,\"victims\":\"all\",\"text\":{}}}}}",
        str_lit(&spef)
    )
}

fn spef_body() -> String {
    spef_body_sized(5, 8)
}

fn boot_with(tag: &str, observe: bool, stall_timeout_ms: u64) -> (Server, Client, PathBuf) {
    let data_dir = temp_dir(tag);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.clone(),
        observe,
        stall_timeout_ms,
        ..ServerConfig::default()
    })
    .unwrap();
    let client = Client::new(server.addr().to_string());
    (server, client, data_dir)
}

fn field(body: &str, key: &str) -> String {
    let doc = pcv_obs::json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body}: {e}"));
    doc.get(key)
        .and_then(pcv_obs::json::Value::as_str)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        .to_owned()
}

fn load_session(client: &Client) -> String {
    let resp = client.request("POST", "/sessions", &spef_body()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    field(&resp.body, "session")
}

/// Submit a run and wait for its event stream to drain; returns
/// `(run id, every streamed line)`.
fn run_to_completion(client: &Client, session: &str, overlay: &str) -> (String, Vec<String>) {
    let resp = client.request("POST", &format!("/sessions/{session}/runs"), overlay).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let run = field(&resp.body, "run");
    let mut lines = Vec::new();
    let status =
        client.stream(&format!("/runs/{run}/events"), |line| lines.push(line.to_owned())).unwrap();
    assert_eq!(status, 200);
    (run, lines)
}

fn fetch_signoff(client: &Client, run: &str) -> String {
    let resp = client.request("GET", &format!("/runs/{run}/signoff"), "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    resp.body
}

#[test]
fn healthz_reports_version_uptime_and_readiness() {
    let (server, client, _dir) = boot_with("healthz", true, 0);
    let resp = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(resp.status, 200);
    let doc = pcv_obs::json::parse(&resp.body).unwrap();
    assert_eq!(
        doc.get("version").and_then(pcv_obs::json::Value::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(doc.get("uptime_s").and_then(pcv_obs::json::Value::as_f64).unwrap() >= 0.0);
    assert_eq!(doc.get("elaborating").and_then(pcv_obs::json::Value::as_u64), Some(0));
    assert_eq!(doc.get("torn_ledger_lines").and_then(pcv_obs::json::Value::as_u64), Some(0));
    // Idle daemon: not draining, nothing elaborating → ready.
    assert!(resp.body.contains("\"ready\":true"), "{}", resp.body);

    // Draining flips readiness while liveness stays true.
    let resp = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client.request("GET", "/healthz", "").unwrap();
    assert!(resp.body.contains("\"ok\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"ready\":false"), "{}", resp.body);
    assert!(resp.body.contains("\"draining\":true"), "{}", resp.body);
    server.join();
}

#[test]
fn busy_responses_carry_retry_after_and_client_backs_off() {
    let (server, client, _dir) = boot_with("retry", true, 0);
    let session = load_session(&client);
    // Drain the daemon: every further submission is a deterministic 429.
    let resp = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);

    let resp = client.request("POST", &format!("/sessions/{session}/runs"), "{}").unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(resp.retry_after, Some(1), "429 must carry Retry-After: {resp:?}");

    // The retrying client backs off (capped well below the hinted 1 s),
    // retries the bounded number of times, and still reports the truth.
    let started = Instant::now();
    let resp = client
        .request_with_retry(
            "POST",
            &format!("/sessions/{session}/runs"),
            "{}",
            3,
            Duration::from_millis(20),
        )
        .unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    let elapsed = started.elapsed();
    assert!(elapsed >= Duration::from_millis(40), "two backoffs expected, took {elapsed:?}");
    assert!(elapsed < Duration::from_secs(2), "backoff must honor the cap, took {elapsed:?}");
    server.join();
}

#[test]
fn observed_and_unobserved_signoffs_are_byte_identical() {
    // Everything on (registry, access log, flight recorder, armed
    // watchdog) vs. everything off: the artifacts must not differ by one
    // byte, and both must match the offline batch flow.
    let (on, on_client, _d1) = boot_with("inert-on", true, 2);
    let (off, off_client, _d2) = boot_with("inert-off", false, 0);
    let offline = {
        let spec = DesignSpec::from_json(&spef_body()).unwrap();
        let chip = elaborate(&spec).unwrap();
        Engine::new(EngineConfig::default()).verify_resident(&chip, None).unwrap().signoff_json()
    };

    let observed = {
        let session = load_session(&on_client);
        let (run, _) = run_to_completion(&on_client, &session, "{}");
        fetch_signoff(&on_client, &run)
    };
    let unobserved = {
        let session = load_session(&off_client);
        let (run, _) = run_to_completion(&off_client, &session, "{}");
        fetch_signoff(&off_client, &run)
    };
    assert_eq!(observed, unobserved, "observability changed the sign-off bytes");
    assert_eq!(observed, offline, "served sign-off diverged from the offline batch flow");

    // The disabled daemon's surfaces stay up — near-empty, never 404.
    let resp = off_client.request("GET", "/metrics", "").unwrap();
    assert_eq!(resp.status, 200);
    check_exposition(&resp.body).unwrap();
    assert!(!resp.body.contains("pcv_http_requests_total"), "{}", resp.body);
    let resp = off_client.request("GET", "/debug/flight", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"entries\":[]"), "{}", resp.body);
    on.join();
    off.join();
}

#[test]
fn scrape_validates_absorbs_traces_and_orders_deterministically() {
    let (server, client, _dir) = boot_with("scrape", true, 0);
    let session = load_session(&client);
    // A traced run: its pcv-trace counters/histograms must reach /metrics.
    let (_, _) = run_to_completion(&client, &session, "{\"trace\":true}");

    let scrape = || {
        let resp = client.request("GET", "/metrics", "").unwrap();
        assert_eq!(resp.status, 200);
        check_exposition(&resp.body).unwrap_or_else(|e| panic!("invalid exposition: {e}"));
        resp.body
    };
    let a = scrape();
    assert!(a.contains("# TYPE pcv_http_requests_total counter"), "{a}");
    assert!(a.contains("# TYPE pcv_http_request_seconds histogram"), "{a}");
    assert!(a.contains("pcv_runs_total{outcome=\"complete\"} 1"), "{a}");
    assert!(a.contains("pcv_engine_cache_hit_rate"), "{a}");
    assert!(a.contains("pcv_trace_counter_total{counter="), "traced run not absorbed: {a}");
    assert!(a.contains("route=\"/sessions/{id}/runs\""), "route labels are patterns: {a}");

    // Series *structure* is deterministic across scrapes: same families,
    // same order, same label sets (values move — uptime, latencies). A
    // scrape records its own request *after* rendering, so the /metrics
    // route's series appear one scrape late — compare the 2nd and 3rd.
    let b = scrape();
    let c = scrape();
    let skeleton = |text: &str| {
        text.lines().map(|l| l.split(' ').next().unwrap_or("").to_owned()).collect::<Vec<_>>()
    };
    assert_eq!(skeleton(&b), skeleton(&c), "family/series order changed between scrapes");
    server.join();
}

#[test]
fn watchdog_drill_trips_warns_dumps_and_the_run_still_completes() {
    // Seed a Slow fault on every victim: each cluster burns its Newton
    // budget, escalates to the slow SPICE-fallback rung, and the gap
    // between verdict publications dwarfs the 10 ms watchdog interval.
    // A 2-net chip keeps the drill test-sized — every faulted cluster
    // pays for a full SPICE reference run.
    let (server, client, data_dir) = boot_with("drill", true, 10);
    let resp = client.request("POST", "/sessions", &spef_body_sized(2, 0)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let session = field(&resp.body, "session");
    let overlay = "{\"workers\":1,\"drill_slow_frac\":1.0,\"drill_seed\":1}";
    let (run, lines) = run_to_completion(&client, &session, overlay);

    // 1. The StallWarning rode the run's own event stream.
    let warning = lines.iter().find(|l| l.contains("\"kind\":\"stall_warning\""));
    let warning = warning.unwrap_or_else(|| panic!("no stall_warning in stream: {lines:#?}"));
    assert!(warning.contains("\"stalled_ms\":"), "{warning}");
    let trailer = lines.last().expect("stream trailer");
    assert!(trailer.contains("\"state\":\"complete\""), "{trailer}");

    // 2. A flight dump landed on disk via the atomic Fs write, and parses.
    let dump_path = data_dir.join(format!("flight-stall-{run}.json"));
    let dump = std::fs::read_to_string(&dump_path)
        .unwrap_or_else(|e| panic!("no flight dump at {}: {e}", dump_path.display()));
    let doc = pcv_obs::json::parse(&dump).unwrap();
    assert!(dump.contains("\"source\":\"watchdog\""), "dump lacks the watchdog note: {dump}");
    assert!(doc.get("entries").is_some());

    // 3. The stall metric incremented.
    let resp = client.request("GET", "/metrics", "").unwrap();
    let stall_line = resp
        .body
        .lines()
        .find(|l| l.starts_with(&format!("pcv_stall_warnings_total{{run=\"{run}\"}}")))
        .unwrap_or_else(|| panic!("no stall counter in scrape: {}", resp.body));
    let count: u64 = stall_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 1, "{stall_line}");

    // 4. The watchdog never killed the run: it completed with the exact
    // verdicts an offline engine produces under the same fault plan.
    let served = fetch_signoff(&client, &run);
    let offline = {
        let spec = DesignSpec::from_json(&spef_body_sized(2, 0)).unwrap();
        let chip = elaborate(&spec).unwrap();
        let mut engine = Engine::new(EngineConfig::default());
        let mut plan = FaultPlan::new();
        plan.seed_probability(1, 1.0, FaultKind::Slow, false);
        engine.set_fault_plan(plan);
        engine.verify_resident(&chip, None).unwrap().signoff_json()
    };
    assert_eq!(served, offline, "drill run's verdicts diverged from the offline fault run");
    server.join();
}

#[test]
fn correlation_ids_thread_request_to_ledger_trailer_and_access_log() {
    let (server, client, data_dir) = boot_with("corr", true, 0);

    let resp = client.request("POST", "/sessions", &spef_body()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let session = field(&resp.body, "session");
    let session_corr = field(&resp.body, "corr");

    let resp = client.request("POST", &format!("/sessions/{session}/runs"), "{}").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let run = field(&resp.body, "run");
    let run_corr = field(&resp.body, "corr");
    assert_ne!(session_corr, run_corr, "each request mints its own correlation ID");

    // The event-stream trailer carries the submitting request's ID and
    // the stream request's own.
    let mut trailer = String::new();
    client
        .stream(&format!("/runs/{run}/events"), |line| {
            if line.contains("\"stream_trailer\"") {
                trailer = line.to_owned();
            }
        })
        .unwrap();
    assert_eq!(field(&trailer, "run_corr"), run_corr, "{trailer}");
    assert_ne!(field(&trailer, "corr"), run_corr, "{trailer}");

    // The daemon run ledger records the submitting request's ID.
    let ledger = std::fs::read_to_string(data_dir.join("runs.jsonl")).unwrap();
    let row = ledger
        .lines()
        .find(|l| l.contains(&format!("\"run\":{}", str_lit(&run))))
        .unwrap_or_else(|| panic!("run {run} not in ledger: {ledger}"));
    assert_eq!(field(row, "corr"), run_corr, "{row}");

    // The access log parses cleanly and contains both request IDs.
    let access = std::fs::read_to_string(data_dir.join("access.jsonl")).unwrap();
    check_access_log(&access).unwrap();
    assert!(access.contains(&format!("\"corr\":{}", str_lit(&session_corr))), "{access}");
    assert!(access.contains(&format!("\"corr\":{}", str_lit(&run_corr))), "{access}");
    server.join();
}
