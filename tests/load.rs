//! Load and lifecycle tests for the `pcv-serve` daemon: concurrent
//! clients, bounded-queue backpressure, interrupt/resume, graceful
//! shutdown, and the determinism contract — a served sign-off document is
//! byte-identical to the offline batch flow on the same design.
//!
//! Every test boots a real daemon on an ephemeral localhost port and
//! talks to it over TCP with the blocking [`pcv_serve::Client`].

use pcv_engine::{Engine, EngineConfig};
use pcv_serve::session::{elaborate, DesignSpec};
use pcv_serve::{Client, Server, ServerConfig};
use pcv_trace::json::str_lit;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fresh scratch directory per test (parallel tests never collide).
fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pcv-load-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The shared design under test: a deterministic DSP block's extracted
/// parasitics, shipped to the daemon as inline SPEF with every net a
/// victim. SPEF + fixed-resistance drivers keeps debug-mode runs cheap
/// while still exercising the full cluster pipeline.
fn spef_body() -> String {
    let block = pcv_designs::dsp::generate(
        &pcv_designs::dsp::DspConfig {
            n_buses: 2,
            bus_bits: 6,
            n_random_nets: 16,
            ..Default::default()
        },
        &pcv_designs::Technology::c025(),
        &pcv_cells::library::CellLibrary::standard_025(),
    );
    let spef = pcv_netlist::spef::write_spef(&block.parasitics);
    format!(
        "{{\"design\":{{\"kind\":\"spef\",\"drive_ohms\":1000,\"victims\":\"all\",\"text\":{}}}}}",
        str_lit(&spef)
    )
}

/// What the offline batch flow produces for [`spef_body`]: the reference
/// bytes every served sign-off must match exactly.
fn offline_signoff() -> String {
    let spec = DesignSpec::from_json(&spef_body()).unwrap();
    let chip = elaborate(&spec).unwrap();
    let engine = Engine::new(EngineConfig::default());
    engine.verify_resident(&chip, None).unwrap().signoff_json()
}

fn boot(tag: &str, queue_capacity: usize) -> (Server, Client, PathBuf) {
    let data_dir = temp_dir(tag);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.clone(),
        queue_capacity,
        ..ServerConfig::default()
    })
    .unwrap();
    let client = Client::new(server.addr().to_string());
    (server, client, data_dir)
}

fn field(body: &str, key: &str) -> String {
    let doc = pcv_obs::json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body}: {e}"));
    doc.get(key)
        .and_then(pcv_obs::json::Value::as_str)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        .to_owned()
}

/// Create a session from [`spef_body`] and return its id.
fn load_session(client: &Client) -> String {
    let resp = client.request("POST", "/sessions", &spef_body()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    field(&resp.body, "session")
}

fn submit_run(client: &Client, session: &str, overlay: &str) -> String {
    let resp = client.request("POST", &format!("/sessions/{session}/runs"), overlay).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    field(&resp.body, "run")
}

/// Tail the run's event stream to the end; returns the trailer line.
fn stream_to_trailer(client: &Client, run: &str) -> String {
    let mut trailer = String::new();
    let status = client
        .stream(&format!("/runs/{run}/events"), |line| {
            if line.contains("\"stream_trailer\"") {
                trailer = line.to_owned();
            }
        })
        .unwrap();
    assert_eq!(status, 200);
    assert!(!trailer.is_empty(), "stream ended without a trailer");
    trailer
}

#[test]
fn eight_concurrent_clients_are_served_without_deadlock() {
    let expected = offline_signoff();
    let (server, client, _dir) = boot("concurrent", 8);
    let session = load_session(&client);
    let run = submit_run(&client, &session, "{}");

    // A victim name for the targeted-verdict pollers.
    let spec = DesignSpec::from_json(&spef_body()).unwrap();
    let chip = elaborate(&spec).unwrap();
    let (_, first) = chip.db().iter().next().unwrap();
    let net_name = first.name().to_owned();

    // Eight concurrent clients: three event streamers, two full-verdict
    // pollers, two targeted pollers, one status poller. All must finish.
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let client = client.clone();
            let run = run.clone();
            scope.spawn(move || {
                let trailer = stream_to_trailer(&client, &run);
                assert!(trailer.contains("\"delivered\":"), "{trailer}");
            });
        }
        for _ in 0..2 {
            let client = client.clone();
            let run = run.clone();
            scope.spawn(move || loop {
                let resp = client.request("GET", &format!("/runs/{run}/verdicts"), "").unwrap();
                assert_eq!(resp.status, 200, "{}", resp.body);
                if resp.body.contains("\"state\":\"complete\"") {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            });
        }
        for _ in 0..2 {
            let client = client.clone();
            let run = run.clone();
            let net = net_name.clone();
            scope.spawn(move || loop {
                let path = format!("/runs/{run}/verdicts?net={net}");
                let resp = client.request("GET", &path, "").unwrap();
                assert_eq!(resp.status, 200, "{}", resp.body);
                // Once the verdict lands it is served mid-run or after.
                if resp.body.contains("\"worst_frac\":") {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            });
        }
        {
            let client = client.clone();
            let session = session.clone();
            scope.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(120);
                loop {
                    let resp = client.request("GET", &format!("/sessions/{session}"), "").unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    if resp.body.contains("\"state\":\"completed\"") {
                        break;
                    }
                    assert!(Instant::now() < deadline, "session never completed");
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        // A scraper rides alongside the eight: /metrics must serve valid
        // exposition and /debug/flight valid JSON while the run is in
        // flight, without deadlocking against the executor or the readers.
        {
            let client = client.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    let resp = client.request("GET", "/metrics", "").unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    assert!(resp.body.contains("pcv_"), "{}", resp.body);
                    pcv_serve::check_exposition(&resp.body)
                        .unwrap_or_else(|e| panic!("mid-run scrape invalid: {e}"));
                    let resp = client.request("GET", "/debug/flight", "").unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    pcv_obs::json::parse(&resp.body)
                        .unwrap_or_else(|e| panic!("flight dump invalid: {e}"));
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
    });

    let resp = client.request("GET", &format!("/runs/{run}/signoff"), "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, expected, "served sign-off diverged from the offline batch flow");
    server.join();
}

#[test]
fn full_run_queue_answers_typed_429() {
    let (server, client, _dir) = boot("backpressure", 1);
    let session = load_session(&client);
    // Submit far faster than the executor can drain a capacity-1 queue.
    let mut accepted = 0;
    let mut busy = 0;
    for _ in 0..12 {
        let resp = client.request("POST", &format!("/sessions/{session}/runs"), "{}").unwrap();
        match resp.status {
            200 => accepted += 1,
            429 => {
                busy += 1;
                assert!(resp.body.contains("\"error\":\"busy\""), "{}", resp.body);
                assert!(resp.body.contains("queue full"), "{}", resp.body);
            }
            other => panic!("unexpected status {other}: {}", resp.body),
        }
    }
    assert!(accepted >= 1, "at least the first run must be admitted");
    assert!(busy >= 1, "a capacity-1 queue must refuse some of 12 instant submissions");
    drop(server); // shutdown drain: in-flight run checkpoints, queued runs drop
}

#[test]
fn stop_after_interrupts_then_resume_completes_byte_identical() {
    let expected = offline_signoff();
    let (server, client, _dir) = boot("resume", 8);
    let session = load_session(&client);

    // First run is cut short cooperatively after two cluster verdicts.
    let run = submit_run(&client, &session, "{\"stop_after\":2}");
    let trailer = stream_to_trailer(&client, &run);
    assert!(trailer.contains("\"state\":\"interrupted\""), "{trailer}");
    let resp = client.request("GET", &format!("/runs/{run}/signoff"), "").unwrap();
    assert_eq!(resp.status, 409, "interrupted run must not serve a sign-off: {}", resp.body);
    assert!(resp.body.contains("\"error\":\"conflict\""), "{}", resp.body);

    // Mid-run partial verdicts survived in the snapshot and are readable.
    let resp = client.request("GET", &format!("/runs/{run}/verdicts"), "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"state\":\"interrupted\""), "{}", resp.body);

    // The resume run replays the journal and finishes the remainder; the
    // final document is byte-identical to an uninterrupted offline run.
    let resumed = submit_run(&client, &session, "{\"resume\":true}");
    let trailer = stream_to_trailer(&client, &resumed);
    assert!(trailer.contains("\"state\":\"complete\""), "{trailer}");
    let resp = client.request("GET", &format!("/runs/{resumed}/signoff"), "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, expected, "resumed sign-off diverged from the offline batch flow");
    server.join();
}

#[test]
fn shutdown_mid_run_leaves_a_resumable_journal() {
    let expected = offline_signoff();
    let (server, client, data_dir) = boot("drain", 8);
    let session = load_session(&client);
    let _run = submit_run(&client, &session, "{}");

    // Drain over the wire while the run is (most likely) in flight. The
    // engine observes the stop flag, checkpoints, and keeps the journal.
    let resp = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"draining\":true"), "{}", resp.body);
    server.join();

    // A fresh engine — daemon restart or offline tool — resumes from the
    // session's cache directory and completes to the exact same bytes.
    // (If the run happened to finish before the drain, resume degrades to
    // a cache-hit replay with the same result.)
    let spec = DesignSpec::from_json(&spef_body()).unwrap();
    let chip = elaborate(&spec).unwrap();
    let cfg = EngineConfig {
        cache_path: Some(data_dir.join(format!("session-{session}.cache"))),
        ..EngineConfig::default()
    };
    let report = Engine::new(cfg).resume_resident(&chip, None).unwrap();
    assert!(!report.interrupted);
    assert_eq!(
        report.signoff_json(),
        expected,
        "post-drain resume diverged from the offline batch flow"
    );
}

#[test]
fn routing_and_error_mapping_cover_the_wire_surface() {
    let (server, client, _dir) = boot("routes", 8);

    let resp = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"ok\":true"));

    // Unknown route, session, and run are typed 404s.
    for path in ["/nope", "/sessions/s99", "/runs/r99/verdicts", "/runs/r99/signoff"] {
        let resp = client.request("GET", path, "").unwrap();
        assert_eq!(resp.status, 404, "{path}: {}", resp.body);
        assert!(resp.body.contains("\"error\":\"not_found\""), "{path}: {}", resp.body);
    }

    // Malformed design and overlay documents are 400s.
    let resp = client.request("POST", "/sessions", "{not json").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    let session = load_session(&client);
    let resp =
        client.request("POST", &format!("/sessions/{session}/runs"), "{\"bogus_knob\":1}").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("bogus_knob"), "{}", resp.body);

    // A verdict query for a net that is not a victim maps the engine's
    // typed BadRequest to a 400 with the offending name.
    let run = submit_run(&client, &session, "{}");
    let resp = client.request("GET", &format!("/runs/{run}/verdicts?net=no_such_net"), "").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("no_such_net"), "{}", resp.body);

    // Sign-off for a queued-or-running run is a 409 (settles to 200 once
    // complete; either way it must never be a 5xx here).
    let resp = client.request("GET", &format!("/runs/{run}/signoff"), "").unwrap();
    assert!(resp.status == 409 || resp.status == 200, "unexpected {}: {}", resp.status, resp.body);
    server.join();
}
