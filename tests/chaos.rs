//! Chaos suite: deterministic fault injection against the recovery ladder.
//!
//! The signoff contract under attack is *no cluster left unverified*: with
//! any [`FaultPlan`] installed, every victim must end with a verdict —
//! recovered at a documented rung or conservatively worst-cased — and the
//! full signoff document must stay byte-identical across worker counts.
//! With no faults installed, the ladder must be invisible: zero
//! degradations and the exact bytes the golden suite pins.

mod fixtures;

use fixtures::{bundle_fixture, random_fixture};
use pcv_engine::{Engine, EngineConfig, FaultKind, FaultPlan, FaultSpec, RecoveryRung};
use pcv_netlist::{NetNodeRef, NetParasitics, PNetId, ParasiticDb};
use pcv_xtalk::{AnalysisContext, Severity};

/// Twelve disjoint victim/aggressor pairs with slightly varied RC values.
/// Every net is two nodes, so *every* ladder rung — including the full-MNA
/// SPICE fallback — is cheap enough to drill repeatedly.
fn chaos_fixture() -> (ParasiticDb, Vec<PNetId>) {
    let mut db = ParasiticDb::new();
    let mut victims = Vec::new();
    for k in 0..12usize {
        let mk = |name: String| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 150.0 + 10.0 * k as f64);
            n.add_ground_cap(n1, 8e-15);
            n.mark_load(n1);
            n
        };
        let v = db.add_net(mk(format!("v{k}")));
        let a = db.add_net(mk(format!("a{k}")));
        db.add_coupling(
            NetNodeRef { net: v, node: 1 },
            NetNodeRef { net: a, node: 1 },
            (12 + k) as f64 * 2e-15,
        );
        victims.push(v);
    }
    (db, victims)
}

fn engine_with(workers: usize, plan: FaultPlan) -> Engine {
    let mut engine = Engine::new(EngineConfig { workers, ..Default::default() });
    engine.set_fault_plan(plan);
    engine
}

/// A plan exercising every fault kind at once — a Cholesky breakdown, a
/// non-finite value, a budget collapse, a persistent panic — plus a seeded
/// probabilistic sprinkle of transient NaN faults over the rest.
fn mixed_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.inject_named("v1", FaultKind::NonSpd);
    plan.inject_named("v3", FaultKind::NaN);
    plan.inject("v5", FaultSpec { kind: FaultKind::Slow, persistent: true });
    plan.inject("v7", FaultSpec { kind: FaultKind::Panic, persistent: true });
    plan.seed_probability(3, 0.3, FaultKind::NaN, false);
    plan
}

#[test]
fn every_faulted_cluster_is_verified_or_degraded_with_a_recorded_rung() {
    let (db, victims) = chaos_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let plan = mixed_plan();
    let report = engine_with(4, plan.clone()).verify(&ctx, &victims).unwrap();

    // Zero silently-missing victims: one verdict per input, full stop.
    assert_eq!(report.chip.verdicts.len(), victims.len());
    for &vic in &victims {
        assert!(
            report.chip.verdicts.iter().any(|v| v.net == vic),
            "victim {} has no verdict",
            db.net(vic).name()
        );
    }

    // Exactly the faulted clusters degraded, each with its attempt trail.
    let faulted: Vec<&str> =
        victims.iter().map(|&v| db.net(v).name()).filter(|n| plan.fault_for(n).is_some()).collect();
    assert!(faulted.len() > 4, "the seeded sprinkle must fault beyond the named wires");
    assert_eq!(report.degradations.len(), faulted.len());
    assert_eq!(report.stats.degraded, faulted.len());
    for d in &report.degradations {
        assert!(faulted.contains(&d.name.as_str()), "{} degraded without a fault", d.name);
        assert!(!d.attempts.is_empty(), "{} has no recorded attempts", d.name);
        assert!(d.recovered > RecoveryRung::Baseline);
        for a in &d.attempts {
            assert!(a.rung < d.recovered, "attempts precede the standing rung");
            assert!(!a.reason.is_empty(), "every attempt records a reason");
        }
    }

    // Typed routing lands each fault on its designed rung.
    let recovered = |name: &str| {
        report.degradations.iter().find(|d| d.name == name).expect("degraded").recovered
    };
    assert_eq!(recovered("v1"), RecoveryRung::GminBoost, "non-SPD routes to a gmin boost");
    assert_eq!(recovered("v3"), RecoveryRung::ReducedOrder, "NaN routes to a smaller ROM");
    assert_eq!(recovered("v5"), RecoveryRung::SpiceFallback, "budget collapse bypasses MOR");
    assert_eq!(recovered("v7"), RecoveryRung::WorstCase, "a persistent panic is worst-cased");
    // The SPICE fallback produced a real analysis, not the rail-to-rail cap.
    let spiced = report.chip.verdicts.iter().find(|v| v.name == "v5").unwrap();
    assert!(spiced.worst_frac < 1.0);

    // Only the unrecoverable cluster surfaces as an error — with a
    // conservative rail-to-rail verdict, not a hole in the report.
    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.errors[0].name, "v7");
    assert_eq!(report.errors[0].stage, "spice_fallback");
    let worst = report.chip.verdicts.iter().find(|v| v.name == "v7").unwrap();
    assert_eq!(worst.worst_frac, 1.0);
    assert_eq!(worst.severity, Severity::Violation);
}

#[test]
fn signoff_document_is_byte_identical_across_worker_counts() {
    let (db, victims) = chaos_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = engine_with(1, mixed_plan()).verify(&ctx, &victims).unwrap().signoff_json();
    assert!(baseline.contains("\"degradations\":[{"), "fixture must actually degrade");
    for workers in [2usize, 4, 8] {
        let report = engine_with(workers, mixed_plan()).verify(&ctx, &victims).unwrap();
        assert_eq!(report.signoff_json(), baseline, "{workers}-worker signoff diverged");
    }
}

#[test]
fn seeded_fault_storm_recovers_every_cluster_deterministically() {
    let (db, victims) = random_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let storm = || {
        let mut plan = FaultPlan::new();
        plan.seed_probability(7, 0.6, FaultKind::NonSpd, false);
        plan
    };

    let report = engine_with(4, storm()).verify(&ctx, &victims).unwrap();
    let expected: usize =
        victims.iter().filter(|&&v| storm().fault_for(db.net(v).name()).is_some()).count();
    assert!(expected >= 2, "p=0.6 must fault several of {} victims", victims.len());
    assert_eq!(report.degradations.len(), expected);
    // Transient non-SPD faults all recover on the first retry rung.
    assert!(report.errors.is_empty());
    assert!(report.degradations.iter().all(|d| d.recovered == RecoveryRung::GminBoost));
    assert_eq!(report.chip.verdicts.len(), victims.len());

    // The same storm twice: the degradation trail replays exactly.
    let again = engine_with(2, storm()).verify(&ctx, &victims).unwrap();
    assert_eq!(again.signoff_json(), report.signoff_json());
}

#[test]
fn empty_plan_leaves_reports_untouched() {
    let (db, victims) = bundle_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let clean = Engine::new(EngineConfig { workers: 4, ..Default::default() })
        .verify(&ctx, &victims)
        .unwrap();
    // The ladder is invisible on a healthy chip: nothing degrades, and the
    // chip report bytes are exactly what the golden suite pins.
    assert!(clean.degradations.is_empty());
    assert!(clean.errors.is_empty());
    assert_eq!(clean.stats.degraded, 0);
    let signoff = clean.signoff_json();
    assert!(signoff.ends_with(",\"degradations\":[]}"));
    assert!(signoff.contains(&clean.chip.to_json()));

    let explicit_empty = engine_with(4, FaultPlan::new()).verify(&ctx, &victims).unwrap();
    assert_eq!(explicit_empty.signoff_json(), signoff);
}
