//! Cross-crate integration: parasitics written to SPEF-lite and re-read
//! must produce bit-identical analysis results — the exchange-format
//! decoupling a production flow relies on.

use pcv_designs::random::{random_cluster, RandomClusterConfig};
use pcv_designs::structures::sandwich;
use pcv_designs::Technology;
use pcv_netlist::spef::{parse_spef, write_spef};
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, AnalysisContext, AnalysisOptions};

#[test]
fn spef_round_trip_preserves_analysis_results() {
    let tech = Technology::c025();
    let db = sandwich(800e-6, &tech);
    let text = write_spef(&db);
    let db2 = parse_spef(&text).expect("round trip parses");

    let run = |db: &pcv_netlist::ParasiticDb| -> f64 {
        let victim = db.find_net("v").unwrap();
        let cluster = prune_victim(db, victim, &PruneConfig::default());
        let ctx = AnalysisContext::fixed_resistance(db, 1000.0);
        analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default())
            .expect("analysis succeeds")
            .peak
    };
    let before = run(&db);
    let after = run(&db2);
    assert!((before - after).abs() < 1e-9, "identical results through SPEF: {before} vs {after}");
}

#[test]
fn spef_round_trip_on_random_clusters() {
    let tech = Technology::c025();
    for seed in [3u64, 17, 99] {
        let cl = random_cluster(
            &RandomClusterConfig { n_aggressors: 5, seed, ..Default::default() },
            &tech,
        );
        let text = write_spef(&cl.db);
        let db2 = parse_spef(&text).expect("round trip parses");
        assert_eq!(db2.num_nets(), cl.db.num_nets());
        assert_eq!(db2.couplings().len(), cl.db.couplings().len());
        let v = db2.find_net("victim").unwrap();
        assert!(
            (db2.total_cap(v) - cl.db.total_cap(cl.victim)).abs() < 1e-28,
            "total capacitance preserved"
        );
    }
}

#[test]
fn spef_text_is_human_auditable() {
    let tech = Technology::c025();
    let db = sandwich(200e-6, &tech);
    let text = write_spef(&db);
    assert!(text.starts_with("*SPEF"));
    assert!(text.contains("*NET v"));
    assert!(text.contains("*CC"));
    // Every record type round-trips through a comment-tolerant parse.
    let commented = format!("// generated\n{text}");
    assert!(parse_spef(&commented).is_ok());
}
