//! Observatory suite: the engine's event stream, run ledger and memory
//! telemetry must observe without perturbing.
//!
//! Two contracts are under test. First, *determinism of observation*:
//! cluster-scoped event counts are a function of the input, cache state
//! and fault plan — never of worker count or scheduling order. Second,
//! *non-interference*: attaching sinks, writing the ledger and tracking
//! allocations leaves the signoff document byte-identical to an
//! unobserved run.

mod fixtures;

use fixtures::bundle_fixture;
use pcv_engine::{Engine, EngineConfig, FaultKind, FaultPlan};
use pcv_obs::{ledger, CountingSink, EventSink};
use pcv_xtalk::AnalysisContext;
use std::sync::Arc;

fn observed_run(workers: usize, plan: Option<FaultPlan>) -> (Arc<CountingSink>, String) {
    let (db, victims) = bundle_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let sink = Arc::new(CountingSink::new());
    let mut engine = Engine::new(EngineConfig {
        workers,
        sink: Some(sink.clone() as Arc<dyn EventSink>),
        ..Default::default()
    });
    if let Some(plan) = plan {
        engine.set_fault_plan(plan);
    }
    let report = engine.verify(&ctx, &victims).unwrap();
    (sink, report.signoff_json())
}

fn nan_sprinkle() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.seed_probability(11, 0.4, FaultKind::NaN, false);
    plan
}

#[test]
fn cluster_event_counts_are_identical_across_worker_counts() {
    let (baseline_sink, baseline_signoff) = observed_run(1, None);
    let baseline = baseline_sink.cluster_counts();

    // Sanity on the healthy-run shape: one queued/started/missed/finished
    // quartet per victim, nothing cached, nothing retried.
    let victims = baseline["cluster_queued"];
    assert!(victims >= 16);
    assert_eq!(baseline["cluster_started"], victims);
    assert_eq!(baseline["cluster_finished"], victims);
    assert_eq!(baseline["cache_miss"], victims);
    assert!(!baseline.contains_key("cache_hit"));
    assert!(!baseline.contains_key("cluster_retried"));

    for workers in [2usize, 4, 8] {
        let (sink, signoff) = observed_run(workers, None);
        assert_eq!(sink.cluster_counts(), baseline, "{workers}-worker event counts diverged");
        assert_eq!(signoff, baseline_signoff, "{workers}-worker signoff diverged");
        // Environment-scoped kinds scale with the pool instead.
        assert_eq!(sink.count("run_started"), 1);
        assert_eq!(sink.count("run_finished"), 1);
        assert_eq!(sink.count("worker_idle"), workers as u64);
    }
}

#[test]
fn retry_and_degradation_events_are_deterministic_under_faults() {
    let (baseline_sink, baseline_signoff) = observed_run(1, Some(nan_sprinkle()));
    let baseline = baseline_sink.cluster_counts();
    let degraded = baseline.get("cluster_degraded").copied().unwrap_or(0);
    assert!(degraded >= 2, "the sprinkle must fault several clusters, got {degraded}");
    assert!(baseline["cluster_retried"] >= degraded, "every degradation implies a failed attempt");

    for workers in [2usize, 4, 8] {
        let (sink, signoff) = observed_run(workers, Some(nan_sprinkle()));
        assert_eq!(sink.cluster_counts(), baseline, "{workers}-worker fault counts diverged");
        assert_eq!(signoff, baseline_signoff, "{workers}-worker fault signoff diverged");
    }
}

#[test]
fn signoff_bytes_match_an_unobserved_run() {
    let (db, victims) = bundle_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let unobserved = Engine::new(EngineConfig { workers: 4, ..Default::default() })
        .verify(&ctx, &victims)
        .unwrap()
        .signoff_json();
    let (_, observed) = observed_run(4, None);
    assert_eq!(observed, unobserved, "observability must not perturb the signoff document");
}

#[test]
fn ledger_records_a_real_run_trajectory() {
    let (db, victims) = bundle_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let dir = std::env::temp_dir().join(format!("pcv-observatory-ledger-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("signoff.cache");
    let ledger_path = dir.join("signoff.cache.ledger.jsonl");
    let _ = std::fs::remove_file(&cache);
    let _ = std::fs::remove_file(&ledger_path);

    let engine = |sink| {
        Engine::new(EngineConfig {
            workers: 2,
            cache_path: Some(cache.clone()),
            sink,
            ..Default::default()
        })
    };
    // Run twice: a cold run then a fully cached one.
    engine(None).verify(&ctx, &victims).unwrap();
    let sink = Arc::new(CountingSink::new());
    engine(Some(sink.clone() as Arc<dyn EventSink>)).verify(&ctx, &victims).unwrap();
    assert_eq!(sink.count("cache_hit"), victims.len() as u64, "second run must be all hits");

    let records = ledger::read_all(&ledger_path);
    assert_eq!(records.len(), 2, "one ledger line per run");
    let (cold, warm) = (&records[0], &records[1]);
    // Same chip, same config: the fingerprints tie the trajectory together.
    assert_eq!(cold.config_fingerprint, warm.config_fingerprint);
    assert_eq!(cold.chip_fingerprint, warm.chip_fingerprint);
    assert_ne!(cold.chip_fingerprint, 0);
    for rec in [cold, warm] {
        assert_eq!(rec.victims, victims.len());
        assert_eq!(rec.workers, 2);
        assert!(rec.host_parallelism >= 1);
        assert!(rec.wall_ms > 0.0);
        assert_eq!(rec.degraded, 0);
        assert_eq!(rec.errors, 0);
        // Every line survives its own serialization.
        assert_eq!(pcv_obs::RunRecord::parse(&rec.to_json()), Some(rec.clone()));
    }
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, victims.len());
    assert_eq!(warm.cache_hits, victims.len());
    assert_eq!(warm.cache_misses, 0);
    // The warm run skips pruning and analysis entirely.
    assert!(warm.analysis_ms <= cold.analysis_ms);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_telemetry_flows_into_stats_and_profile() {
    // The bench harness compiles pcv-obs with `track-alloc`, but this test
    // binary does not install the tracking allocator, so the engine must
    // degrade to zeros rather than report garbage.
    let (db, victims) = bundle_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let report = Engine::new(EngineConfig { workers: 1, ..Default::default() })
        .verify(&ctx, &victims)
        .unwrap();
    let profile = report.profile_json();
    assert!(profile.contains("\"memory\":{\"peak_alloc_bytes\":"), "profile carries memory block");
    if pcv_obs::mem::active() {
        assert!(report.stats.peak_alloc_bytes > 0);
    } else {
        assert_eq!(report.stats.peak_alloc_bytes, 0);
        assert_eq!(report.stats.allocs, 0);
    }
}

#[test]
fn ledger_scan_is_safe_against_concurrent_appends() {
    // A scanner may race an in-flight append (a live daemon's ledger, a
    // monitoring tail). The contract: a torn in-flight line is counted as
    // skipped or simply not there yet — it must NEVER misparse into a
    // record, and every record the scan does return is a fully written
    // one. The writer tears every line on purpose by appending it in two
    // raw chunks with a scheduling point in between.
    use std::io::Write;

    let dir =
        std::env::temp_dir().join(format!("pcv-observatory-scan-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("runs.ledger.jsonl");

    let sample = pcv_obs::RunRecord::parse(
        pcv_obs::RunRecord {
            config_fingerprint: 0x0123_4567_89ab_cdef,
            chip_fingerprint: 0xfeed_f00d_dead_beef,
            victims: 7,
            workers: 3,
            host_parallelism: 8,
            cache_hits: 2,
            cache_misses: 5,
            journal_hits: 0,
            skipped: 0,
            outcome: "complete".to_owned(),
            degraded: 0,
            errors: 0,
            steals: 11,
            wall_ms: 42.5,
            prune_ms: 1.25,
            analysis_ms: 30.0,
            receiver_ms: 0.0,
            recovery_ms: 0.0,
            peak_alloc_bytes: 0,
            allocs: 0,
        }
        .to_json()
        .as_str(),
    )
    .expect("sample must round-trip");

    const APPENDS: usize = 200;
    let writer = {
        let path = path.clone();
        let line = format!("{}\n", sample.to_json());
        std::thread::spawn(move || {
            let mut file =
                std::fs::OpenOptions::new().create(true).append(true).open(&path).unwrap();
            let split = line.len() / 2;
            for _ in 0..APPENDS {
                // Two separate write(2) calls: a concurrent reader can
                // observe the half-written line.
                file.write_all(&line.as_bytes()[..split]).unwrap();
                file.flush().unwrap();
                std::thread::yield_now();
                file.write_all(&line.as_bytes()[split..]).unwrap();
                file.flush().unwrap();
            }
        })
    };

    let mut max_seen = 0usize;
    let mut observed_torn = 0usize;
    while max_seen < APPENDS {
        let (records, skipped) = ledger::scan(&path);
        // At most the single in-flight line can be torn at any instant.
        assert!(skipped <= 1, "only the in-flight append may be unparseable, saw {skipped}");
        observed_torn += skipped;
        for rec in &records {
            assert_eq!(rec, &sample, "a concurrent scan returned a corrupted record");
        }
        assert!(
            records.len() >= max_seen,
            "scan went backwards: {} after {max_seen}",
            records.len()
        );
        max_seen = records.len();
    }
    writer.join().unwrap();

    let (records, skipped) = ledger::scan(&path);
    assert_eq!(records.len(), APPENDS, "every fully appended record must be scannable");
    assert_eq!(skipped, 0, "a quiesced ledger has no torn lines");
    // The race was actually exercised: with forced mid-line flushes the
    // scanner should have caught at least one torn snapshot. (Not a hard
    // guarantee on any scheduler, so only note it via the counter's use.)
    let _ = observed_torn;

    let _ = std::fs::remove_dir_all(&dir);
}
