//! Kill-and-resume drills: a sign-off run interrupted at an arbitrary
//! progress point must resume from its checkpoint journal to a sign-off
//! document byte-identical to an uninterrupted run — at every worker
//! count, every stop point, and after simulated `SIGKILL` damage (torn
//! journal tail, missing cache).

use pcv_designs::structures::bundle;
use pcv_designs::Technology;
use pcv_engine::{Engine, EngineConfig, EngineReport, Journal, RunLock, StopAfter, StopFlag};
use pcv_netlist::{PNetId, ParasiticDb};
use pcv_obs::{ledger, EventSink};
use pcv_xtalk::{AnalysisContext, XtalkError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A 12-wire bus: small enough to drill many interrupt points, coupled
/// enough that every wire gets a real verdict.
fn fixture() -> (ParasiticDb, Vec<PNetId>) {
    let db = bundle(12, 1200e-6, &Technology::c025());
    let victims = (0..db.num_nets()).map(PNetId).collect();
    (db, victims)
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pcv-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn config(workers: usize, cache: Option<PathBuf>) -> EngineConfig {
    EngineConfig { workers, cache_path: cache, ..Default::default() }
}

/// Run to completion with a cold cache-less engine: the reference
/// sign-off every interrupted-and-resumed run must reproduce bit for bit.
fn baseline_signoff(db: &ParasiticDb, victims: &[PNetId]) -> String {
    let ctx = AnalysisContext::fixed_resistance(db, 1000.0);
    Engine::new(config(2, None)).verify(&ctx, victims).unwrap().signoff_json()
}

/// Run with a stop raised after `stop_after` cluster completions; returns
/// the interrupted report.
fn interrupted_run(
    db: &ParasiticDb,
    victims: &[PNetId],
    workers: usize,
    stop_after: usize,
    cache: &Path,
) -> EngineReport {
    let ctx = AnalysisContext::fixed_resistance(db, 1000.0);
    let flag = StopFlag::new();
    let mut cfg = config(workers, Some(cache.to_owned()));
    cfg.sink = Some(Arc::new(StopAfter::new(flag.clone(), stop_after)) as Arc<dyn EventSink>);
    cfg.durable.stop = Some(flag);
    Engine::new(cfg).verify(&ctx, victims).unwrap()
}

#[test]
fn resume_is_byte_identical_across_stop_points_and_worker_counts() {
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let n = victims.len();

    // Stop at 25%, 50% and 75% of the victim count, under every pool size.
    for workers in [1usize, 2, 4, 8] {
        for stop_after in [n / 4, n / 2, 3 * n / 4] {
            let dir = temp_dir(&format!("matrix-w{workers}-s{stop_after}"));
            let cache = dir.join("signoff.cache");

            let partial = interrupted_run(&db, &victims, workers, stop_after, &cache);
            assert!(partial.interrupted, "w={workers} s={stop_after}: stop must mark the report");
            let completed = n - partial.stats.skipped;
            assert!(completed >= stop_after, "at least the trigger count completed");
            assert!(
                Journal::path_for(&cache).exists(),
                "an interrupted run must leave its journal for the resume"
            );

            // Resume with a fresh engine (no stop): replay the journal,
            // compute only what is missing, discard the journal on success.
            let resumed =
                Engine::new(config(workers, Some(cache.clone()))).resume(&ctx, &victims).unwrap();
            assert!(!resumed.interrupted);
            assert_eq!(
                resumed.signoff_json(),
                baseline,
                "w={workers} s={stop_after}: resumed signoff diverged from the uninterrupted run"
            );
            assert_eq!(
                resumed.stats.journal_hits, completed,
                "every checkpointed verdict must be replayed, not recomputed"
            );
            assert_eq!(resumed.stats.cache_misses, partial.stats.skipped);
            assert!(
                !Journal::path_for(&cache).exists(),
                "a completed resume must retire the journal"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn single_worker_stop_skips_exactly_the_queued_tail() {
    // With one worker the drain point is exact: stop fires inside the
    // Nth job, so precisely n - N clusters are skipped.
    let (db, victims) = fixture();
    let dir = temp_dir("exact");
    let cache = dir.join("signoff.cache");
    let stop_after = 5;
    let partial = interrupted_run(&db, &victims, 1, stop_after, &cache);
    assert_eq!(partial.stats.skipped, victims.len() - stop_after);
    assert_eq!(partial.chip.verdicts.len(), stop_after);

    // The ledger marks the run resumable, then marks the resume complete.
    let ledger_path = {
        let mut os = cache.as_os_str().to_owned();
        os.push(".ledger.jsonl");
        PathBuf::from(os)
    };
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let resumed = Engine::new(config(1, Some(cache))).resume(&ctx, &victims).unwrap();
    let (records, unparsed) = ledger::scan(&ledger_path);
    assert_eq!(unparsed, 0);
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].outcome, "stopped");
    assert_eq!(records[0].skipped, victims.len() - stop_after);
    assert_eq!(records[1].outcome, "complete");
    assert_eq!(records[1].journal_hits, stop_after);
    assert_eq!(resumed.stats.journal_hits, stop_after);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_simulation_with_torn_journal_and_no_cache_still_resumes_identically() {
    // The hard crash: the process died mid-append (half a journal record
    // at the tail) and never reached the cache save. Resume must drop the
    // torn record and recompute — never misread it into a verdict.
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let dir = temp_dir("sigkill");
    let cache = dir.join("signoff.cache");

    let partial = interrupted_run(&db, &victims, 2, victims.len() / 2, &cache);
    let completed = victims.len() - partial.stats.skipped;

    // SIGKILL damage: tear the journal's final record in half and remove
    // the cache file (a killed run never saves its cache).
    let jpath = Journal::path_for(&cache);
    let text = std::fs::read_to_string(&jpath).unwrap();
    let body = text.strip_suffix('\n').unwrap_or(&text);
    let last_start = body.rfind('\n').map_or(0, |i| i + 1);
    let torn_len = last_start + (body.len() - last_start) / 2;
    std::fs::write(&jpath, &body[..torn_len]).unwrap();
    let _ = std::fs::remove_file(&cache);

    let resumed = Engine::new(config(4, Some(cache))).resume(&ctx, &victims).unwrap();
    assert_eq!(resumed.signoff_json(), baseline, "torn journal must not corrupt the signoff");
    // Exactly one checkpoint was destroyed; everything else replays.
    assert_eq!(resumed.stats.journal_hits, completed - 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_a_journal_is_a_plain_verify() {
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let dir = temp_dir("nojournal");
    let report =
        Engine::new(config(2, Some(dir.join("signoff.cache")))).resume(&ctx, &victims).unwrap();
    assert_eq!(report.signoff_json(), baseline);
    assert_eq!(report.stats.journal_hits, 0);
    assert_eq!(report.stats.cache_misses, victims.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_journal_from_another_config_is_ignored() {
    // A journal checkpointed under different thresholds must not leak
    // verdicts into a resume with the current configuration.
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let dir = temp_dir("stale");
    let cache = dir.join("signoff.cache");
    let _ = interrupted_run(&db, &victims, 2, victims.len() / 2, &cache);
    let _ = std::fs::remove_file(&cache); // force recomputation, not cache hits

    let mut cfg = config(2, Some(cache));
    cfg.fail_frac = 0.5; // different config fingerprint
    let resumed = Engine::new(cfg.clone()).resume(&ctx, &victims).unwrap();
    assert_eq!(resumed.stats.journal_hits, 0, "a stale journal must not be replayed");
    let fresh =
        Engine::new(EngineConfig { cache_path: None, ..cfg }).verify(&ctx, &victims).unwrap();
    assert_eq!(resumed.signoff_json(), fresh.signoff_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_run_against_the_same_cache_is_rejected_with_a_typed_error() {
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let dir = temp_dir("lock");
    let cache = dir.join("signoff.cache");

    // Another live run (this process) holds the lock.
    let held = RunLock::acquire(&RunLock::path_for(&cache), 0).unwrap();
    let engine = Engine::new(config(2, Some(cache.clone())));
    match engine.verify(&ctx, &victims) {
        Err(XtalkError::Busy { pid, path }) => {
            assert_eq!(pid, std::process::id());
            assert!(path.ends_with(".lock"));
        }
        other => panic!("expected Busy, got {:?}", other.map(|r| r.stats.victims)),
    }
    drop(held);

    // With the lock released the same engine runs — and releases its own
    // lock on the way out.
    let report = engine.verify(&ctx, &victims).unwrap();
    assert_eq!(report.chip.verdicts.len(), victims.len());
    assert!(!RunLock::path_for(&cache).exists());
    let _ = std::fs::remove_dir_all(&dir);
}
