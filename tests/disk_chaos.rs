//! Disk-fault chaos drills: every persisted artifact (result cache,
//! checkpoint journal, run ledger) must survive torn writes, ENOSPC,
//! fsync/rename failures and silent bit flips by *detecting* the damage
//! and recomputing — never by reading corruption into a verdict.

use pcv_designs::structures::bundle;
use pcv_designs::Technology;
use pcv_engine::{
    DiskFaultPlan, Engine, EngineConfig, Fs, FsFaultKind, Journal, StopAfter, StopFlag,
};
use pcv_netlist::{PNetId, ParasiticDb};
use pcv_obs::{ledger, EventSink};
use pcv_xtalk::AnalysisContext;
use std::path::PathBuf;
use std::sync::Arc;

fn fixture() -> (ParasiticDb, Vec<PNetId>) {
    let db = bundle(10, 1000e-6, &Technology::c025());
    let victims = (0..db.num_nets()).map(PNetId).collect();
    (db, victims)
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pcv-diskchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Engine config pointed at `cache`, journal/lock off unless a drill
/// needs them (isolates the artifact under test from sibling files that
/// share the cache path as a prefix).
fn bare_config(cache: PathBuf, fs: Fs) -> EngineConfig {
    let mut cfg = EngineConfig { workers: 2, cache_path: Some(cache), ..Default::default() };
    cfg.durable.journal = false;
    cfg.durable.lock = false;
    cfg.durable.fs = fs;
    cfg
}

fn baseline_signoff(db: &ParasiticDb, victims: &[PNetId]) -> String {
    let ctx = AnalysisContext::fixed_resistance(db, 1000.0);
    let cfg = EngineConfig { workers: 2, ..Default::default() };
    Engine::new(cfg).verify(&ctx, victims).unwrap().signoff_json()
}

#[test]
fn torn_cache_save_is_detected_and_recomputed() {
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let dir = temp_dir("torn-cache");
    let cache = dir.join("results.cache");

    // The save of the cold run is torn in half — the power-loss shape a
    // non-atomic writer would leave behind.
    let mut plan = DiskFaultPlan::new();
    plan.fail_times("results.cache", FsFaultKind::ShortWrite, 1);
    let first = Engine::new(bare_config(cache.clone(), Fs::with_faults(plan)))
        .verify(&ctx, &victims)
        .unwrap();
    assert_eq!(first.signoff_json(), baseline, "the fault only hits the disk, not the verdicts");

    // The warm run loads the torn file: intact leading entries are kept,
    // the torn tail is dropped, and the missing verdicts are recomputed.
    let warm = Engine::new(bare_config(cache, Fs::real())).verify(&ctx, &victims).unwrap();
    assert_eq!(warm.signoff_json(), baseline, "a torn cache must never skew a verdict");
    assert!(warm.stats.cache_misses > 0, "the dropped tail must be recomputed");
    assert_eq!(warm.stats.cache_hits + warm.stats.cache_misses, victims.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_on_cache_read_never_reaches_a_verdict() {
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let dir = temp_dir("flip-cache");
    let cache = dir.join("results.cache");

    Engine::new(bare_config(cache.clone(), Fs::real())).verify(&ctx, &victims).unwrap();

    // Silent media corruption: one bit flips inside the cache file. The
    // per-record CRC catches it; the damaged record is recomputed.
    let mut plan = DiskFaultPlan::new();
    plan.fail("results.cache", FsFaultKind::BitFlip);
    let warm =
        Engine::new(bare_config(cache, Fs::with_faults(plan))).verify(&ctx, &victims).unwrap();
    assert_eq!(warm.signoff_json(), baseline, "a flipped bit must never skew a verdict");
    assert!(warm.stats.cache_misses > 0, "the corrupt record must be recomputed, not trusted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_cache_replacement_preserves_the_previous_cache() {
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let dir = temp_dir("rename-cache");
    let cache = dir.join("results.cache");

    Engine::new(bare_config(cache.clone(), Fs::real())).verify(&ctx, &victims).unwrap();
    let saved = std::fs::read(&cache).unwrap();

    for kind in [FsFaultKind::RenameFail, FsFaultKind::FsyncFail, FsFaultKind::NoSpace] {
        let mut plan = DiskFaultPlan::new();
        plan.fail("results.cache", kind);
        let report = Engine::new(bare_config(cache.clone(), Fs::with_faults(plan)))
            .verify(&ctx, &victims)
            .unwrap();
        assert_eq!(report.signoff_json(), baseline, "{}: verdicts unaffected", kind.name());
        assert_eq!(
            std::fs::read(&cache).unwrap(),
            saved,
            "{}: a failed replacement must leave the old cache bytes intact",
            kind.name()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_everywhere_still_produces_correct_verdicts() {
    // The disk fills up mid-run: nothing persists, but the in-memory
    // sign-off is still complete and correct.
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let dir = temp_dir("enospc");
    let cache = dir.join("results.cache");

    let mut plan = DiskFaultPlan::new();
    plan.fail("results", FsFaultKind::NoSpace);
    let mut cfg =
        EngineConfig { workers: 2, cache_path: Some(cache.clone()), ..Default::default() };
    cfg.durable.fs = Fs::with_faults(plan);
    let report = Engine::new(cfg).verify(&ctx, &victims).unwrap();
    assert_eq!(report.signoff_json(), baseline);
    assert!(!cache.exists(), "the full disk accepted no cache file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_on_journal_read_drops_only_the_damaged_checkpoint() {
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let dir = temp_dir("flip-journal");
    let cache = dir.join("results.cache");

    // Interrupt a run halfway so a journal with real checkpoints exists.
    let flag = StopFlag::new();
    let mut cfg =
        EngineConfig { workers: 2, cache_path: Some(cache.clone()), ..Default::default() };
    cfg.sink =
        Some(Arc::new(StopAfter::new(flag.clone(), victims.len() / 2)) as Arc<dyn EventSink>);
    cfg.durable.stop = Some(flag);
    let partial = Engine::new(cfg).verify(&ctx, &victims).unwrap();
    assert!(partial.interrupted);
    let completed = victims.len() - partial.stats.skipped;
    // The interrupted run saved its partial cache; remove it so every
    // surviving verdict must come from the journal, not the cache.
    let _ = std::fs::remove_file(&cache);

    // Resume through a disk that flips a bit when the journal is read:
    // the CRC frame rejects the damaged record(s), which are recomputed.
    let mut plan = DiskFaultPlan::new();
    plan.fail(".journal", FsFaultKind::BitFlip);
    let mut cfg =
        EngineConfig { workers: 2, cache_path: Some(cache.clone()), ..Default::default() };
    cfg.durable.fs = Fs::with_faults(plan);
    let resumed = Engine::new(cfg).resume(&ctx, &victims).unwrap();
    assert_eq!(resumed.signoff_json(), baseline, "a corrupt journal must never skew the signoff");
    assert!(resumed.stats.journal_hits < completed, "at least the flipped record must be rejected");
    assert!(!Journal::path_for(&cache).exists(), "the completed resume retires the journal");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_on_the_journal_does_not_change_the_run() {
    // Checkpointing is best-effort: a journal that cannot be written costs
    // resumability, never correctness.
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = baseline_signoff(&db, &victims);
    let dir = temp_dir("enospc-journal");

    let mut plan = DiskFaultPlan::new();
    plan.fail(".journal", FsFaultKind::NoSpace);
    let mut cfg = EngineConfig {
        workers: 2,
        cache_path: Some(dir.join("results.cache")),
        ..Default::default()
    };
    cfg.durable.fs = Fs::with_faults(plan);
    let report = Engine::new(cfg).verify(&ctx, &victims).unwrap();
    assert_eq!(report.signoff_json(), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_ledger_append_is_counted_not_misparsed() {
    let (db, victims) = fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let dir = temp_dir("torn-ledger");
    let cache = dir.join("results.cache");
    let ledger_path = {
        let mut os = cache.as_os_str().to_owned();
        os.push(".ledger.jsonl");
        PathBuf::from(os)
    };

    // First run's ledger append is torn mid-record; the second run's
    // append lands right after the torn bytes on the same line (there was
    // no trailing newline), so that line is garbage. The third run starts
    // a clean line.
    let mut plan = DiskFaultPlan::new();
    plan.fail_times(".ledger", FsFaultKind::ShortWrite, 1);
    let fs = Fs::with_faults(plan);
    for _ in 0..3 {
        let mut cfg =
            EngineConfig { workers: 2, cache_path: Some(cache.clone()), ..Default::default() };
        cfg.durable.fs = fs.clone();
        Engine::new(cfg).verify(&ctx, &victims).unwrap();
    }

    let (records, unparsed) = ledger::scan(&ledger_path);
    assert_eq!(unparsed, 1, "the torn line is counted, not silently accepted");
    assert_eq!(records.len(), 1, "only the clean third record parses");
    assert_eq!(records[0].outcome, "complete");
    let _ = std::fs::remove_dir_all(&dir);
}
