//! Golden-report regression suite: the full verification flow on three
//! fixed-seed fixtures, compared byte-for-byte against checked-in JSON.
//!
//! The reports embed every float's exact IEEE-754 bit pattern
//! ([`pcv_xtalk::ChipReport::to_json`]), so any numerical drift — an
//! accidental reassociation, a changed solver tolerance, instrumentation
//! perturbing the math — fails the suite even when the printed decimals
//! round identically. Intentional changes are re-blessed with
//! `BLESS=1 cargo test -p pcv-bench --test golden_reports`.

mod fixtures;

use fixtures::{bundle_fixture, check_golden, dsp_fixture, random_fixture};
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::PruneConfig;
use pcv_xtalk::{audit_receivers, verify_chip, AnalysisContext, AnalysisOptions};

#[test]
fn golden_bundle_bus_report() {
    let (db, victims) = bundle_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let report =
        verify_chip(&ctx, &victims, &PruneConfig::default(), &AnalysisOptions::default(), 0.1, 0.2)
            .unwrap();
    check_golden("bundle16_bus.json", &report.to_json());
}

#[test]
fn golden_random_cluster_report() {
    let (db, victims) = random_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let report =
        verify_chip(&ctx, &victims, &PruneConfig::default(), &AnalysisOptions::default(), 0.1, 0.2)
            .unwrap();
    check_golden("random_seed99.json", &report.to_json());
}

#[test]
fn golden_dsp_receiver_audit_report() {
    let (block, lib, victims) = dsp_fixture();
    let ctx = AnalysisContext {
        db: &block.parasitics,
        design: Some(&block.design),
        lib: Some(&lib),
        charlib: None,
        driver_model: DriverModelKind::FixedResistance(2000.0),
    };
    let prune = PruneConfig::default();
    let opts = AnalysisOptions::default();
    // Low thresholds so receiver checks actually run on flagged victims.
    let mut report = verify_chip(&ctx, &victims, &prune, &opts, 0.02, 0.05).unwrap();
    audit_receivers(&ctx, &mut report, &prune, &opts).unwrap();
    assert!(
        report.verdicts.iter().any(|v| v.receiver.is_some()),
        "fixture must exercise the receiver audit"
    );
    check_golden("dsp_receivers.json", &report.to_json());
}
