//! Determinism matrix: the engine's merged report must be byte-identical
//! across worker counts {1, 2, 4, 8}, across cold vs. warm cache, and with
//! tracing on vs. off — on the same fixtures the golden suite pins.
//!
//! Comparisons go through [`pcv_xtalk::ChipReport::to_json`], which embeds
//! exact f64 bit patterns, so "identical" here means bit-for-bit.

mod fixtures;

use fixtures::{bundle_fixture, dsp_fixture, random_fixture};
use pcv_engine::{Engine, EngineConfig};
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::AnalysisContext;

fn cache_file(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pcv-determinism-caches");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(tag)
}

#[test]
fn bundle_report_is_identical_across_worker_counts() {
    let (db, victims) = bundle_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = Engine::new(EngineConfig { workers: 1, ..Default::default() })
        .verify(&ctx, &victims)
        .unwrap()
        .chip
        .to_json();
    for workers in [2usize, 4, 8] {
        let report = Engine::new(EngineConfig { workers, ..Default::default() })
            .verify(&ctx, &victims)
            .unwrap();
        assert!(report.errors.is_empty());
        assert_eq!(report.chip.to_json(), baseline, "{workers}-worker run diverged");
    }
}

#[test]
fn random_cluster_report_is_identical_across_worker_counts() {
    let (db, victims) = random_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let baseline = Engine::new(EngineConfig { workers: 1, ..Default::default() })
        .verify(&ctx, &victims)
        .unwrap()
        .chip
        .to_json();
    for workers in [2usize, 4, 8] {
        let report = Engine::new(EngineConfig { workers, ..Default::default() })
            .verify(&ctx, &victims)
            .unwrap();
        assert_eq!(report.chip.to_json(), baseline, "{workers}-worker run diverged");
    }
}

#[test]
fn dsp_receiver_report_is_identical_across_worker_counts_and_cache_states() {
    let (block, lib, victims) = dsp_fixture();
    let ctx = AnalysisContext {
        db: &block.parasitics,
        design: Some(&block.design),
        lib: Some(&lib),
        charlib: None,
        driver_model: DriverModelKind::FixedResistance(2000.0),
    };
    let config = |workers: usize| EngineConfig {
        workers,
        warn_frac: 0.02,
        fail_frac: 0.05,
        check_receivers: true,
        ..Default::default()
    };
    let baseline = Engine::new(config(1)).verify(&ctx, &victims).unwrap().chip.to_json();
    for workers in [2usize, 4, 8] {
        let report = Engine::new(config(workers)).verify(&ctx, &victims).unwrap();
        assert_eq!(report.chip.to_json(), baseline, "{workers}-worker run diverged");
    }

    // Cold vs. warm cache: cached verdicts replay bit-identically.
    let path = cache_file("dsp-cold-warm");
    let _ = std::fs::remove_file(&path);
    let engine = Engine::new(EngineConfig { cache_path: Some(path.clone()), ..config(4) });
    let cold = engine.verify(&ctx, &victims).unwrap();
    assert_eq!(cold.stats.cache_misses, victims.len());
    assert_eq!(cold.chip.to_json(), baseline);
    let warm = engine.verify(&ctx, &victims).unwrap();
    assert_eq!(warm.stats.cache_hits, victims.len());
    assert_eq!(warm.chip.to_json(), baseline, "warm-cache run diverged");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn traced_run_matches_untraced_and_emits_chrome_trace() {
    let (db, victims) = bundle_fixture();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let plain = Engine::new(EngineConfig { workers: 4, ..Default::default() })
        .verify(&ctx, &victims)
        .unwrap();
    assert!(plain.trace.is_none());

    let traced = Engine::new(EngineConfig { workers: 4, trace: true, ..Default::default() })
        .verify(&ctx, &victims)
        .unwrap();
    // Instrumentation must not perturb the numerics.
    assert_eq!(traced.chip.to_json(), plain.chip.to_json(), "tracing changed the report");

    let trace = traced.trace.as_ref().expect("traced run carries a trace");
    assert!(trace.spans.iter().any(|s| s.name == "cluster_job"));
    assert!(trace.spans.iter().any(|s| s.name == "sympvl_reduce"));
    assert!(trace.counters.get("engine.cache.misses").copied() == Some(victims.len() as u64));
    assert!(trace.counters.contains_key("sparse.chol.tri_solves"));
    assert!(trace.counters.contains_key("sparse.chol.factors"));
    let chrome = trace.to_chrome_trace();
    assert!(chrome.starts_with("{\"displayTimeUnit\":"));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"ph\":\"C\""));
    assert!(chrome.ends_with("]}\n") || chrome.ends_with("]}"));

    // Per-cluster cost breakdown covers every victim, most expensive first.
    assert_eq!(traced.clusters.len(), victims.len());
    for w in traced.clusters.windows(2) {
        assert!(w[0].total() >= w[1].total());
    }
}
