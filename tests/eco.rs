//! Splice-equivalence proof harness for incremental ECO re-verification.
//!
//! The contract under test: a spliced sign-off — dirty clusters
//! re-analyzed, everything else served from the prior run's cache — is
//! **byte-identical** to a from-scratch sign-off over the edited netlist.
//! Not structurally equal: `assert_eq!` on the serialized document.
//!
//! Three layers of proof:
//!
//! 1. [`splice_matrix_is_byte_identical_across_edit_sizes_workers_and_cache_states`]
//!    sweeps edit sizes (one net, 0.1%, 1%, 10% of the chip) × worker
//!    counts (1, 2, 4, 8) × cache states (cold, warm). At this harness
//!    scale the sub-1% fractions round up to a single net — the 2048-net
//!    `eco_bench` workload exercises the true 0.1% case.
//! 2. [`daemon_eco_endpoint_serves_a_byte_identical_spliced_artifact`]
//!    mirrors the equivalence through the wire: `POST /sessions/{id}/eco`
//!    against a resident daemon session, interrupt + resume mid-ECO, and
//!    a byte-compare of the served spliced artifact against both a
//!    from-scratch daemon session and the offline batch flow.
//! 3. [`blast_radius_closure_holds_on_randomized_ecos`] drives
//!    `pcv-rng`-seeded random deltas (cap edits, net adds/removes,
//!    coupling adds/drops/scales) and proves the planner's dirty set is
//!    exactly the fingerprint-changed victims — every changed cluster is
//!    caught (soundness of the two-hop radius) and no clean cluster is
//!    re-analyzed (minimality).

use pcv_engine::{cluster_fingerprint, config_hash, EcoPlan, Engine, EngineConfig, ResidentChip};
use pcv_netlist::eco::EcoDelta;
use pcv_netlist::{NetNodeRef, NetParasitics, PNetId, ParasiticDb};
use pcv_rng::Rng;
use pcv_serve::session::{elaborate, DesignSpec};
use pcv_serve::{Client, Server, ServerConfig};
use pcv_trace::json::str_lit;
use pcv_xtalk::prune::prune_victim_with_components;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Chip size for the splice matrix: large enough that 10% is a real
/// multi-cluster edit, small enough for debug-mode CI.
const CHAIN: usize = 200;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pcv-eco-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A coupled chain `n0 - n1 - … - n{n-1}` (nearest-neighbor coupling
/// caps), with the ground cap of net `i` scaled by `edits[i]`.
fn chain_db(n: usize, edits: &BTreeMap<usize, f64>) -> ParasiticDb {
    let mut db = ParasiticDb::new();
    for i in 0..n {
        let mut net = NetParasitics::new(format!("n{i}"));
        let n1 = net.add_node();
        net.add_resistor(0, n1, 150.0 + i as f64);
        net.add_ground_cap(n1, 8e-15 * edits.get(&i).copied().unwrap_or(1.0));
        net.mark_load(n1);
        db.add_net(net);
    }
    for i in 1..n {
        db.add_coupling(
            NetNodeRef { net: PNetId(i - 1), node: 1 },
            NetNodeRef { net: PNetId(i), node: 1 },
            (10 + (i % 7)) as f64 * 1e-15,
        );
    }
    db
}

fn chip(db: ParasiticDb) -> ResidentChip {
    let victims: Vec<PNetId> = (0..db.num_nets()).map(PNetId).collect();
    ResidentChip::fixed_resistance(db, 1000.0, victims)
}

/// Matrix-run configuration: a coarse transient step (50 instead of the
/// default 1000 steps per span) keeps the 40 debug-mode full-chip runs
/// of the sweep inside a CI budget. Splice equivalence is
/// config-independent — every run being byte-compared (scratch, seed,
/// warm, cold) shares this exact configuration.
fn fast_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.analysis.mor.max_step_fraction = 1.0 / 50.0;
    cfg
}

/// `count` edited nets spread evenly over the chain, each with a
/// distinct scale so no two edits are interchangeable.
fn spread_edits(count: usize) -> BTreeMap<usize, f64> {
    let stride = (CHAIN / count).max(1);
    (0..count).map(|i| ((i * stride) % CHAIN, 1.01 + 0.005 * i as f64)).collect()
}

#[test]
fn splice_matrix_is_byte_identical_across_edit_sizes_workers_and_cache_states() {
    let sizes: [(&str, usize); 4] = [
        ("one-net", 1),
        // 0.1% of a 200-net chip rounds up to one net (see module docs).
        ("tenth-pct", CHAIN.div_ceil(1000)),
        ("one-pct", (CHAIN / 100).max(1)),
        ("ten-pct", (CHAIN / 10).max(1)),
    ];
    let old = chip(chain_db(CHAIN, &BTreeMap::new()));

    for (label, count) in sizes {
        let edits = spread_edits(count);
        let new = chip(chain_db(CHAIN, &edits));
        // The reference bytes: one from-scratch run on the edited chip.
        let expected = Engine::new(fast_cfg()).verify_resident(&new, None).unwrap().signoff_json();

        for workers in [1usize, 2, 4, 8] {
            // Warm cache: a prior run over the old chip seeded it, so the
            // ECO run analyzes exactly the plan's dirty set and splices
            // the rest.
            let dir = temp_dir(&format!("warm-{label}-w{workers}"));
            let cache = dir.join("chip.cache");
            let mk = || {
                Engine::new(EngineConfig { workers, cache_path: Some(cache.clone()), ..fast_cfg() })
            };
            let seeded = mk().verify_resident(&old, None).unwrap();
            assert_eq!(seeded.stats.cache_misses, CHAIN, "seed run must be cold");
            let outcome = mk().eco_verify_resident(&old, &new, false, None).unwrap();
            for idx in edits.keys() {
                let name = format!("n{idx}");
                assert!(
                    outcome.plan.dirty.contains(&name),
                    "[{label} w{workers}] edited net {name} missing from dirty set: {:?}",
                    outcome.plan.dirty
                );
            }
            assert_eq!(
                outcome.report.stats.cache_misses,
                outcome.plan.dirty.len(),
                "[{label} w{workers}] warm ECO re-analyzed more than the dirty set"
            );
            assert_eq!(
                outcome.report.stats.cache_hits, outcome.plan.clean,
                "[{label} w{workers}] every clean cluster must splice from cache"
            );
            assert_eq!(
                outcome.report.signoff_json(),
                expected,
                "[{label} w{workers}] warm spliced sign-off diverged from scratch"
            );
            let _ = std::fs::remove_dir_all(&dir);

            // Cold cache: nothing to splice from, everything re-analyzes,
            // and the document still lands on the same bytes.
            let dir = temp_dir(&format!("cold-{label}-w{workers}"));
            let cache = dir.join("chip.cache");
            let outcome =
                Engine::new(EngineConfig { workers, cache_path: Some(cache), ..fast_cfg() })
                    .eco_verify_resident(&old, &new, false, None)
                    .unwrap();
            assert_eq!(
                outcome.report.stats.cache_misses, CHAIN,
                "[{label} w{workers}] cold ECO must analyze the whole chip"
            );
            assert_eq!(
                outcome.report.signoff_json(),
                expected,
                "[{label} w{workers}] cold spliced sign-off diverged from scratch"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn noop_eco_with_a_warm_cache_splices_everything() {
    let dir = temp_dir("noop");
    let cache = dir.join("chip.cache");
    let mk = || Engine::new(EngineConfig { cache_path: Some(cache.clone()), ..fast_cfg() });
    let old = chip(chain_db(24, &BTreeMap::new()));
    let rebuilt = chip(chain_db(24, &BTreeMap::new()));
    let seeded = mk().verify_resident(&old, None).unwrap();

    let outcome = mk().eco_verify_resident(&old, &rebuilt, false, None).unwrap();
    assert!(outcome.plan.is_noop(), "{:?}", outcome.plan);
    assert!(outcome.plan.dirty.is_empty());
    assert_eq!(outcome.plan.splice_fraction(), 1.0);
    assert_eq!(outcome.report.stats.cache_misses, 0, "a no-op ECO analyzes nothing");
    assert_eq!(outcome.report.stats.cache_hits, 24);
    assert_eq!(outcome.report.signoff_json(), seeded.signoff_json());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Daemon mirror: the same equivalence over the wire.
// ---------------------------------------------------------------------------

fn boot(tag: &str) -> (Server, Client, PathBuf) {
    let data_dir = temp_dir(tag);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: data_dir.clone(),
        queue_capacity: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let client = Client::new(server.addr().to_string());
    (server, client, data_dir)
}

fn field(body: &str, key: &str) -> String {
    let doc = pcv_obs::json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body}: {e}"));
    doc.get(key)
        .and_then(pcv_obs::json::Value::as_str)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        .to_owned()
}

fn spef_session_body(spef: &str) -> String {
    format!(
        "{{\"design\":{{\"kind\":\"spef\",\"drive_ohms\":1000,\"victims\":\"all\",\"text\":{}}}}}",
        str_lit(spef)
    )
}

fn post_session(client: &Client, spef: &str) -> String {
    let resp = client.request("POST", "/sessions", &spef_session_body(spef)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    field(&resp.body, "session")
}

fn post_run(client: &Client, session: &str, overlay: &str) -> String {
    let resp = client.request("POST", &format!("/sessions/{session}/runs"), overlay).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    field(&resp.body, "run")
}

/// Tail the run's event stream to its end; returns the trailer line.
fn stream_to_trailer(client: &Client, run: &str) -> String {
    let mut trailer = String::new();
    let status = client
        .stream(&format!("/runs/{run}/events"), |line| {
            if line.contains("\"stream_trailer\"") {
                trailer = line.to_owned();
            }
        })
        .unwrap();
    assert_eq!(status, 200);
    assert!(!trailer.is_empty(), "stream ended without a trailer");
    trailer
}

fn get_signoff(client: &Client, run: &str) -> String {
    let resp = client.request("GET", &format!("/runs/{run}/signoff"), "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    resp.body
}

#[test]
fn daemon_eco_endpoint_serves_a_byte_identical_spliced_artifact() {
    let n = 24;
    let old_spef = pcv_netlist::spef::write_spef(&chain_db(n, &BTreeMap::new()));
    let edits: BTreeMap<usize, f64> = BTreeMap::from([(3, 1.02), (17, 0.97)]);
    let new_spef = pcv_netlist::spef::write_spef(&chain_db(n, &edits));

    let (server, client, _dir) = boot("daemon");
    let session = post_session(&client, &old_spef);

    // Baseline sign-off warms the session cache.
    let base_run = post_run(&client, &session, "{}");
    let trailer = stream_to_trailer(&client, &base_run);
    assert!(trailer.contains("\"state\":\"complete\""), "{trailer}");

    // The ECO, cut short after one cluster verdict: the patch is applied
    // (the resident chip swaps) but the run is interrupted — exactly the
    // crash-matrix case a daemon restart mid-ECO leaves behind.
    let eco_body = format!("{{\"text\":{},\"stop_after\":1}}", str_lit(&new_spef));
    let resp = client.request("POST", &format!("/sessions/{session}/eco"), &eco_body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"eco\":{"), "response must carry the plan: {}", resp.body);
    assert!(resp.body.contains("\"dirty\":["), "{}", resp.body);
    let eco_run = field(&resp.body, "run");
    let trailer = stream_to_trailer(&client, &eco_run);
    assert!(trailer.contains("\"state\":\"interrupted\""), "{trailer}");
    let resp = client.request("GET", &format!("/runs/{eco_run}/signoff"), "").unwrap();
    assert_eq!(resp.status, 409, "interrupted ECO must not serve a sign-off: {}", resp.body);

    // Resume: an ordinary resume run over the (already swapped) resident
    // chip replays the journal and completes the splice.
    let resumed = post_run(&client, &session, "{\"resume\":true}");
    let trailer = stream_to_trailer(&client, &resumed);
    assert!(trailer.contains("\"state\":\"complete\""), "{trailer}");
    let spliced = get_signoff(&client, &resumed);

    // Reference 1: a from-scratch daemon session over the edited SPEF.
    let scratch_session = post_session(&client, &new_spef);
    let scratch_run = post_run(&client, &scratch_session, "{}");
    let trailer = stream_to_trailer(&client, &scratch_run);
    assert!(trailer.contains("\"state\":\"complete\""), "{trailer}");
    let scratch = get_signoff(&client, &scratch_run);
    assert_eq!(spliced, scratch, "served spliced artifact diverged from a from-scratch session");

    // Reference 2: the offline batch flow on the same edited design.
    let spec = DesignSpec::from_json(&spef_session_body(&new_spef)).unwrap();
    let offline = Engine::new(EngineConfig::default())
        .verify_resident(&elaborate(&spec).unwrap(), None)
        .unwrap()
        .signoff_json();
    assert_eq!(spliced, offline, "served spliced artifact diverged from the offline batch flow");

    // A no-op ECO (re-posting the text the session already holds) plans a
    // pure splice and completes to the same bytes.
    let noop_body = format!("{{\"text\":{}}}", str_lit(&new_spef));
    let resp = client.request("POST", &format!("/sessions/{session}/eco"), &noop_body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"edits\":0"), "{}", resp.body);
    assert!(resp.body.contains("\"dirty\":[]"), "{}", resp.body);
    let noop_run = field(&resp.body, "run");
    let trailer = stream_to_trailer(&client, &noop_run);
    assert!(trailer.contains("\"state\":\"complete\""), "{trailer}");
    assert_eq!(get_signoff(&client, &noop_run), spliced);

    // Wire-level error mapping: bad bodies are typed 400s, unknown
    // sessions 404s.
    for (body, needle) in [
        ("{\"stop_after\":1}", "text"),
        ("{\"text\":\"x\",\"bogus_knob\":1}", "bogus_knob"),
        ("{not json", "error"),
    ] {
        let resp = client.request("POST", &format!("/sessions/{session}/eco"), body).unwrap();
        assert_eq!(resp.status, 400, "{body}: {}", resp.body);
        assert!(resp.body.contains(needle), "{body}: {}", resp.body);
    }
    let resp = client.request("POST", "/sessions/s99/eco", &noop_body).unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);

    server.join();
}

// ---------------------------------------------------------------------------
// Property: blast-radius closure on randomized ECOs.
// ---------------------------------------------------------------------------

/// Plain-Rust chip description, mutated by name so net removal cannot
/// silently re-index coupling endpoints.
#[derive(Clone)]
struct NetSpec {
    name: String,
    /// Nodes beyond the driver root; node `k` carries a resistor from
    /// `k-1` and its own ground cap.
    segments: Vec<(f64, f64)>,
}

#[derive(Clone)]
struct CouplingSpec {
    a: (String, usize),
    b: (String, usize),
    farads: f64,
}

#[derive(Clone)]
struct ChipSpec {
    nets: Vec<NetSpec>,
    couplings: Vec<CouplingSpec>,
}

fn materialize(spec: &ChipSpec) -> ParasiticDb {
    let mut db = ParasiticDb::new();
    let mut ids = BTreeMap::new();
    for (i, net) in spec.nets.iter().enumerate() {
        let mut n = NetParasitics::new(&net.name);
        for (k, &(ohms, farads)) in net.segments.iter().enumerate() {
            let node = n.add_node();
            n.add_resistor(k, node, ohms);
            n.add_ground_cap(node, farads);
        }
        n.mark_load(net.segments.len());
        db.add_net(n);
        ids.insert(net.name.clone(), PNetId(i));
    }
    for c in &spec.couplings {
        db.add_coupling(
            NetNodeRef { net: ids[&c.a.0], node: c.a.1 },
            NetNodeRef { net: ids[&c.b.0], node: c.b.1 },
            c.farads,
        );
    }
    db
}

fn random_spec(rng: &mut Rng) -> ChipSpec {
    let n = rng.range_usize(5, 11);
    let nets: Vec<NetSpec> = (0..n)
        .map(|i| NetSpec {
            name: format!("n{i}"),
            segments: (0..rng.range_usize(1, 4))
                .map(|_| (rng.range_f64(50.0, 400.0), rng.range_f64(1e-15, 2e-14)))
                .collect(),
        })
        .collect();
    let mut couplings = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.bool_with(0.3) {
                let a = (nets[i].name.clone(), rng.range_usize(1, nets[i].segments.len() + 1));
                let b = (nets[j].name.clone(), rng.range_usize(1, nets[j].segments.len() + 1));
                let farads = rng.range_f64(1e-15, 3e-14);
                couplings.push(CouplingSpec { a: a.clone(), b: b.clone(), farads });
                // Occasional parallel plate: duplicates are part of the
                // multiset semantics under test.
                if rng.bool_with(0.15) {
                    couplings.push(CouplingSpec { a, b, farads: rng.range_f64(1e-15, 3e-14) });
                }
            }
        }
    }
    ChipSpec { nets, couplings }
}

/// A random ECO: cap edits, a net removal, a net addition, coupling
/// drops/scales/additions — every delta category the planner types.
fn mutate(spec: &ChipSpec, rng: &mut Rng, tag: u64) -> ChipSpec {
    let mut new = spec.clone();
    for net in &mut new.nets {
        if rng.bool_with(0.3) {
            let k = rng.range_usize(0, net.segments.len());
            net.segments[k].1 *= rng.range_f64(0.9, 1.1);
        }
    }
    if rng.bool_with(0.25) && new.nets.len() > 2 {
        let gone = new.nets.remove(rng.range_usize(0, new.nets.len())).name;
        new.couplings.retain(|c| c.a.0 != gone && c.b.0 != gone);
    }
    if rng.bool_with(0.3) {
        let name = format!("x{tag}");
        new.nets.push(NetSpec {
            name: name.clone(),
            segments: vec![(rng.range_f64(50.0, 400.0), rng.range_f64(1e-15, 2e-14))],
        });
        let peer = &new.nets[rng.range_usize(0, new.nets.len() - 1)];
        new.couplings.push(CouplingSpec {
            a: (name, 1),
            b: (peer.name.clone(), rng.range_usize(1, peer.segments.len() + 1)),
            farads: rng.range_f64(1e-15, 3e-14),
        });
    }
    if !new.couplings.is_empty() && rng.bool_with(0.3) {
        new.couplings.remove(rng.range_usize(0, new.couplings.len()));
    }
    if !new.couplings.is_empty() && rng.bool_with(0.4) {
        let k = rng.range_usize(0, new.couplings.len());
        new.couplings[k].farads *= rng.range_f64(0.85, 1.15);
    }
    new
}

/// Canonical v3 fingerprints of every victim, recomputed here from the
/// public primitives the engine itself uses — the oracle the planner's
/// dirty set is checked against.
fn fingerprints(cfg: &EngineConfig, chip: &ResidentChip) -> BTreeMap<String, u64> {
    let ctx = chip.ctx();
    let chash = config_hash(
        &ctx,
        &cfg.prune,
        &cfg.analysis,
        cfg.warn_frac,
        cfg.fail_frac,
        cfg.check_receivers,
    );
    chip.victims()
        .iter()
        .map(|&vic| {
            let cluster =
                prune_victim_with_components(ctx.db, vic, &cfg.prune, chip.component_sizes());
            (ctx.db.net(vic).name().to_owned(), cluster_fingerprint(&ctx, &cluster, chash))
        })
        .collect()
}

#[test]
fn blast_radius_closure_holds_on_randomized_ecos() {
    let cfg = EngineConfig::default();
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let old_spec = random_spec(&mut rng);
        let new_spec = mutate(&old_spec, &mut rng, seed);

        let old = chip(materialize(&old_spec));
        let new = chip(materialize(&new_spec));
        let delta = EcoDelta::diff(old.db(), new.db());
        let plan = EcoPlan::compute(&cfg, &old, &new, &delta);

        let old_fp = fingerprints(&cfg, &old);
        let new_fp = fingerprints(&cfg, &new);
        let dirty: BTreeSet<&String> = plan.dirty.iter().collect();

        for (name, fp) in &new_fp {
            match old_fp.get(name) {
                // Soundness: a victim whose canonical fingerprint changed
                // must be in the dirty set — the radius caught it.
                Some(prior) if prior != fp => assert!(
                    dirty.contains(name),
                    "seed {seed}: fingerprint-changed victim {name} escaped the dirty set\n\
                     delta: {delta:?}\nplan: {plan:?}"
                ),
                // Minimality: an unchanged victim is never re-analyzed.
                Some(_) => assert!(
                    !dirty.contains(name),
                    "seed {seed}: clean victim {name} marked dirty\nplan: {plan:?}"
                ),
                // Fresh victims have nothing to splice from.
                None => assert!(
                    dirty.contains(name),
                    "seed {seed}: fresh victim {name} missing from dirty set\nplan: {plan:?}"
                ),
            }
        }
        for name in old_fp.keys().filter(|k| !new_fp.contains_key(*k)) {
            assert!(
                plan.retired.contains(name),
                "seed {seed}: removed victim {name} not retired\nplan: {plan:?}"
            );
        }
        assert_eq!(
            plan.clean + plan.dirty.len(),
            new_fp.len(),
            "seed {seed}: plan must partition the new chip's victims"
        );

        // The identity ECO: rebuilding the same spec diffs to nothing and
        // plans a pure splice.
        let replica = chip(materialize(&old_spec));
        let noop = EcoDelta::diff(old.db(), replica.db());
        assert!(noop.is_empty(), "seed {seed}: identical rebuild produced a delta: {noop:?}");
        let noop_plan = EcoPlan::compute(&cfg, &old, &replica, &noop);
        assert!(noop_plan.is_noop(), "seed {seed}: {noop_plan:?}");
        assert!(noop_plan.dirty.is_empty());
        assert_eq!(noop_plan.splice_fraction(), 1.0);
    }
}
