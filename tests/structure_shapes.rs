//! Cross-crate integration: the physical *shapes* the paper's Tables 1–2
//! report must emerge from the full pipeline (extraction → pruning →
//! reduction → analysis) — glitch growing with coupled length, coupling
//! slowing opposite-switching victims and speeding same-direction ones.

use pcv_designs::structures::{bundle, sandwich};
use pcv_designs::Technology;
use pcv_netlist::PNetId;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{
    analyze_delay, analyze_glitch, verify_chip, AnalysisContext, AnalysisOptions, DelayMode,
};

fn glitch_at(length: f64) -> f64 {
    let tech = Technology::c025();
    let db = sandwich(length, &tech);
    let victim = db.find_net("v").unwrap();
    let cluster = prune_victim(&db, victim, &PruneConfig::default());
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default())
        .expect("analysis succeeds")
        .peak
}

#[test]
fn table1_shape_glitch_monotone_in_length() {
    // The paper's Table 1: peak glitch increases with coupled length.
    let peaks: Vec<f64> =
        [100e-6, 1000e-6, 2000e-6, 4000e-6].iter().map(|&l| glitch_at(l)).collect();
    for w in peaks.windows(2) {
        assert!(w[1] > w[0], "glitch must grow with length: {peaks:?}");
    }
    // And the long-wire glitch is a substantial fraction of Vdd (the paper
    // reports around a volt at 4000 um).
    assert!(peaks[3] > 0.5, "4000um glitch should be large, got {}", peaks[3]);
    assert!(peaks[3] < 2.5, "but bounded by the rail");
    // Saturation: the growth rate slows at long lengths.
    let g1 = peaks[1] - peaks[0];
    let g3 = peaks[3] - peaks[2];
    assert!(g3 < g1, "growth saturates: {peaks:?}");
}

#[test]
fn table2_shape_coupling_brackets_decoupled_delay() {
    let tech = Technology::c025();
    let db = sandwich(2000e-6, &tech);
    let victim = db.find_net("v").unwrap();
    let cluster = prune_victim(&db, victim, &PruneConfig::default());
    let ctx = AnalysisContext::fixed_resistance(&db, 500.0);
    let opts = AnalysisOptions { tstop: 30e-9, ..Default::default() };

    for rising in [true, false] {
        let base = analyze_delay(&ctx, &cluster, rising, DelayMode::Decoupled, &opts).unwrap();
        let worst = analyze_delay(
            &ctx,
            &cluster,
            rising,
            DelayMode::Coupled { aggressors_opposite: true },
            &opts,
        )
        .unwrap();
        let best = analyze_delay(
            &ctx,
            &cluster,
            rising,
            DelayMode::Coupled { aggressors_opposite: false },
            &opts,
        )
        .unwrap();
        assert!(
            best.delay < base.delay && base.delay < worst.delay,
            "rising={rising}: best {} < decoupled {} < worst {}",
            best.delay,
            base.delay,
            worst.delay
        );
        // The deterioration is significant (paper: tens of percent).
        assert!(
            worst.delay > 1.3 * base.delay,
            "rising={rising}: worst-case penalty should be large"
        );
    }
}

#[test]
fn interior_bus_bits_fare_worse_than_edge_bits() {
    let tech = Technology::c025();
    let db = bundle(6, 1200e-6, &tech);
    let victims: Vec<PNetId> = (0..db.num_nets()).map(PNetId).collect();
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let report =
        verify_chip(&ctx, &victims, &PruneConfig::default(), &AnalysisOptions::default(), 0.1, 0.2)
            .unwrap();
    // Worst victims are interior bits (two strong neighbors).
    let worst_name = &report.verdicts[0].name;
    assert!(
        !["w0", "w5"].contains(&worst_name.as_str()),
        "edge bit {worst_name} should not be worst"
    );
    // Edge bits are the two least affected.
    let names: Vec<&str> = report.verdicts.iter().map(|v| v.name.as_str()).collect();
    assert!(names[4..].contains(&"w0") && names[4..].contains(&"w5"), "{names:?}");
}

#[test]
fn engines_agree_on_extracted_structures() {
    use pcv_xtalk::EngineKind;
    let tech = Technology::c025();
    let db = sandwich(1500e-6, &tech);
    let victim = db.find_net("v").unwrap();
    let cluster = prune_victim(&db, victim, &PruneConfig::default());
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let mor = analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default()).unwrap();
    let spice_opts = AnalysisOptions { engine: EngineKind::Spice, ..AnalysisOptions::default() };
    let spice = analyze_glitch(&ctx, &cluster, true, &spice_opts).unwrap();
    let rel = (mor.peak - spice.peak).abs() / spice.peak.abs();
    assert!(rel < 0.02, "mpvl {} vs spice {} ({rel})", mor.peak, spice.peak);
    // The reduced model is drastically smaller than the extracted cluster.
    assert!(mor.reduced_order.unwrap() <= 16);
}
