//! Fault-tolerant sharded verification: the kill/restart matrix.
//!
//! Every test here drives the real multi-process pipeline — the
//! [`Coordinator`] spawns actual `pcv_serve --shard-worker` child
//! processes (the binary cargo built for this test run) and merges their
//! results — under deterministic failure drills: SIGKILL at fractions of
//! shard progress, stalled workers, torn and duplicated shard journals,
//! exhausted restart budgets, and whole-run deadlines.
//!
//! The invariant under test everywhere: a sharded sign-off is
//! **byte-identical** to the unsharded offline run of the same design, no
//! matter what was killed along the way — and when a shard's restart
//! budget runs out, the run still completes with conservative `WorstCase`
//! verdicts and a recorded degradation trail instead of holes.

use pcv_engine::shard::{partition, ShardFault, ShardFaultPlan};
use pcv_engine::{Engine, EngineConfig, ResidentChip};
use pcv_serve::session::{elaborate, DesignSpec};
use pcv_serve::{ApiError, Coordinator, CoordinatorConfig, ShardRunOutcome};
use pcv_trace::json::str_lit;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The worker binary: the very `pcv_serve` this test run built.
fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_pcv_serve"))
}

/// Fresh scratch directory per test (parallel tests never collide).
fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pcv-shardout-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The design under test: a deterministic DSP block's parasitics shipped
/// as inline SPEF with every net a victim — cheap enough for debug-mode
/// worker processes, big enough that every shard of eight gets victims.
fn spef_body() -> String {
    let block = pcv_designs::dsp::generate(
        &pcv_designs::dsp::DspConfig {
            n_buses: 2,
            bus_bits: 4,
            n_random_nets: 10,
            ..Default::default()
        },
        &pcv_designs::Technology::c025(),
        &pcv_cells::library::CellLibrary::standard_025(),
    );
    let spef = pcv_netlist::spef::write_spef(&block.parasitics);
    format!(
        "{{\"design\":{{\"kind\":\"spef\",\"drive_ohms\":1000,\"victims\":\"all\",\"text\":{}}}}}",
        str_lit(&spef)
    )
}

fn spec() -> DesignSpec {
    DesignSpec::from_json(&spef_body()).unwrap()
}

fn chip() -> Arc<ResidentChip> {
    Arc::new(elaborate(&spec()).unwrap())
}

/// The reference bytes: one unsharded in-process sign-off.
fn offline_doc(chip: &ResidentChip) -> String {
    Engine::new(EngineConfig::default()).verify_resident(chip, None).unwrap().signoff_json()
}

/// Index of the largest slice — the shard that reliably has enough
/// victims for mid-run drills to fire before the worker finishes.
fn biggest_shard(chip: &ResidentChip, shards: usize) -> (usize, usize) {
    partition(chip, chip.victims(), shards)
        .iter()
        .enumerate()
        .map(|(k, s)| (k, s.len()))
        .max_by_key(|&(_, len)| len)
        .unwrap()
}

fn run_with(
    tag: &str,
    shards: usize,
    workers_per_shard: usize,
    plan: ShardFaultPlan,
    tune: impl FnOnce(&mut CoordinatorConfig),
) -> Result<ShardRunOutcome, ApiError> {
    let dir = temp_dir(tag);
    let mut cfg = CoordinatorConfig::new(shards, worker_exe(), dir.join("merged.cache"));
    cfg.workers_per_shard = workers_per_shard;
    cfg.fault_plan = plan;
    tune(&mut cfg);
    Coordinator::new(spec(), chip(), cfg).run(None)
}

#[test]
fn sigkill_matrix_preserves_byte_identity() {
    let chip = chip();
    let expected = offline_doc(&chip);
    for &shards in &[2usize, 4, 8] {
        let (victim_shard, slice_len) = biggest_shard(&chip, shards);
        for &frac in &[0.25f64, 0.5, 0.75] {
            let plan =
                ShardFaultPlan::new().with_fault(victim_shard, ShardFault::SigkillAtFrac(frac));
            let tag = format!("kill-{shards}-{}", (frac * 100.0) as u32);
            let outcome =
                run_with(&tag, shards, 1, plan, |_| {}).unwrap_or_else(|e| panic!("{tag}: {e:?}"));
            assert_eq!(
                outcome.report.signoff_json(),
                expected,
                "{tag}: sharded sign-off diverged after SIGKILL at {frac} of shard \
                 {victim_shard} ({slice_len} victims)"
            );
            assert!(outcome.report.degradations.is_empty(), "{tag}: restart must not degrade");
        }
    }
}

#[test]
fn sigkill_with_multithreaded_workers_preserves_byte_identity() {
    let chip = chip();
    let expected = offline_doc(&chip);
    let (victim_shard, _) = biggest_shard(&chip, 4);
    for &workers in &[2usize, 4] {
        let plan = ShardFaultPlan::new().with_fault(victim_shard, ShardFault::SigkillAtFrac(0.5));
        let outcome = run_with(&format!("kill-w{workers}"), 4, workers, plan, |_| {}).unwrap();
        assert_eq!(outcome.report.signoff_json(), expected, "workers={workers}");
    }
}

#[test]
fn killed_worker_restarts_and_resumes_from_its_journal() {
    let chip = chip();
    let expected = offline_doc(&chip);
    let (victim_shard, slice_len) = biggest_shard(&chip, 2);
    assert!(slice_len >= 4, "test chip must give the drilled shard real work");
    let plan = ShardFaultPlan::new().with_fault(victim_shard, ShardFault::SigkillAtFrac(0.25));
    let outcome = run_with("resume", 2, 1, plan, |_| {}).unwrap();
    assert_eq!(outcome.report.signoff_json(), expected);
    let stats = &outcome.shards[victim_shard];
    assert!(stats.restarts >= 1, "the SIGKILL drill must have fired: {stats:?}");
    assert_eq!(
        stats.from_cache, slice_len,
        "the restarted incarnation must complete the whole slice: {stats:?}"
    );
}

#[test]
fn torn_and_duplicated_shard_journals_are_tolerated() {
    let chip = chip();
    let expected = offline_doc(&chip);
    let (victim_shard, _) = biggest_shard(&chip, 2);
    let other = 1 - victim_shard;
    // Kill both workers mid-slice; corrupt the bigger shard's journal
    // remnant with a mid-frame tear and the other's with a duplicated
    // final record before the replacement incarnations replay them.
    let plan = ShardFaultPlan::new()
        .with_fault(victim_shard, ShardFault::SigkillAtFrac(0.25))
        .with_fault(victim_shard, ShardFault::TornJournal)
        .with_fault(other, ShardFault::SigkillAtFrac(0.25))
        .with_fault(other, ShardFault::DuplicateEntry);
    let outcome = run_with("torn", 2, 1, plan, |_| {}).unwrap();
    assert_eq!(outcome.report.signoff_json(), expected);
    let stats = &outcome.shards[victim_shard];
    assert!(stats.restarts >= 1, "tear drill needs a restart to replay: {stats:?}");
    assert!(
        stats.torn_journal_lines >= 1,
        "the torn line must be seen (and skipped) by the replay: {stats:?}"
    );
}

#[test]
fn stalled_worker_is_killed_and_restarted() {
    let chip = chip();
    let expected = offline_doc(&chip);
    let (victim_shard, _) = biggest_shard(&chip, 2);
    let plan = ShardFaultPlan::new().with_fault(victim_shard, ShardFault::StallAfter(1));
    let outcome = run_with("stall", 2, 1, plan, |cfg| {
        cfg.heartbeat_timeout = Duration::from_millis(1_500);
    })
    .unwrap();
    assert_eq!(outcome.report.signoff_json(), expected);
    assert!(outcome.heartbeat_misses() >= 1, "{:?}", outcome.shards);
    assert!(outcome.shards[victim_shard].restarts >= 1, "{:?}", outcome.shards);
}

#[test]
fn exhausted_restart_budget_degrades_to_worst_case_without_holes() {
    let chip = chip();
    let total = chip.victims().len();
    let shard0_names: Vec<String> = {
        let slices = partition(&chip, chip.victims(), 2);
        slices[0].iter().map(|&v| chip.db().net(v).name().to_owned()).collect()
    };
    assert!(!shard0_names.is_empty());
    // Shard 0 aborts before its first verdict, every incarnation.
    let plan = ShardFaultPlan::new().with_persistent_fault(0, ShardFault::PanicAfter(0));
    let outcome = run_with("budget", 2, 1, plan, |cfg| {
        cfg.restart_budget = 1;
    })
    .unwrap();

    let report = &outcome.report;
    assert_eq!(outcome.degraded_shards(), 1);
    assert!(outcome.shards[0].exhausted);
    assert_eq!(outcome.shards[0].worst_case, shard0_names.len());
    // No holes: every victim still has a verdict.
    assert_eq!(report.chip.verdicts.len(), total);
    // The gaps are conservative worst-case verdicts, adopted bit-for-bit
    // from the synthesized entries (not silently recomputed): the rise
    // peak is exactly Vdd.
    let vdd = EngineConfig::default().analysis.vdd;
    for name in &shard0_names {
        let v = report.chip.verdicts.iter().find(|v| &v.name == name).unwrap();
        assert_eq!(v.rise_peak, vdd, "{name} must carry the worst-case verdict");
    }
    // And the degradation trail names each one, with the budget as reason.
    assert_eq!(report.degradations.len(), shard0_names.len());
    for d in &report.degradations {
        assert!(shard0_names.contains(&d.name), "unexpected degradation {d:?}");
    }
    let doc = report.signoff_json();
    assert!(
        doc.contains("exhausted restart budget"),
        "sign-off must record why the verdicts are conservative"
    );
}

fn field(body: &str, key: &str) -> String {
    let doc = pcv_obs::json::parse(body).unwrap_or_else(|e| panic!("bad JSON {body}: {e}"));
    doc.get(key)
        .and_then(pcv_obs::json::Value::as_str)
        .unwrap_or_else(|| panic!("no {key} in {body}"))
        .to_owned()
}

fn boot_sharded(tag: &str) -> (pcv_serve::Server, pcv_serve::Client) {
    let server = pcv_serve::Server::start(pcv_serve::ServerConfig {
        addr: "127.0.0.1:0".into(),
        data_dir: temp_dir(tag),
        worker_exe: Some(worker_exe()),
        ..pcv_serve::ServerConfig::default()
    })
    .unwrap();
    let client = pcv_serve::Client::new(server.addr().to_string());
    (server, client)
}

/// Tail the run's event stream to the trailer (run completion barrier).
fn stream_to_end(client: &pcv_serve::Client, run: &str) {
    let status = client.stream(&format!("/runs/{run}/events"), |_| {}).unwrap();
    assert_eq!(status, 200);
}

#[test]
fn daemon_serves_sharded_run_byte_identical_with_telemetry() {
    let expected = offline_doc(&chip());
    let (server, client) = boot_sharded("daemon");
    let resp = client.request("POST", "/sessions", &spef_body()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let session = field(&resp.body, "session");

    let overlay =
        "{\"shards\":2,\"shard_timeout_ms\":30000,\"deadline_ms\":600000,\"shard_restarts\":3}";
    let resp = client.request("POST", &format!("/sessions/{session}/runs"), overlay).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let run = field(&resp.body, "run");
    stream_to_end(&client, &run);

    let resp = client.request("GET", &format!("/runs/{run}/signoff"), "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, expected, "daemon sharded sign-off diverged from offline run");

    // The run fed the observatory: shard series exist, healthz reports
    // per-shard torn-line counts.
    let resp = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(resp.status, 200);
    for series in
        ["pcv_shard_restarts_total", "pcv_shard_heartbeat_misses_total", "pcv_shard_degraded_total"]
    {
        assert!(resp.body.contains(series), "missing {series} in exposition:\n{}", resp.body);
    }
    let resp = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.body.contains("\"shard_torn_journal_lines\":{\"0\":0,\"1\":0}"),
        "healthz must carry per-shard torn counts: {}",
        resp.body
    );
    server.join();
}

#[test]
fn daemon_rejects_inconsistent_shard_overlays() {
    let (server, client) = boot_sharded("overlay");
    let resp = client.request("POST", "/sessions", &spef_body()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let session = field(&resp.body, "session");

    // Shard knobs without sharding: typed 400s, not silent acceptance.
    for overlay in
        ["{\"shard_timeout_ms\":5000}", "{\"deadline_ms\":5000}", "{\"shard_restarts\":2}"]
    {
        let resp = client.request("POST", &format!("/sessions/{session}/runs"), overlay).unwrap();
        assert_eq!(resp.status, 400, "{overlay} must be rejected: {}", resp.body);
    }
    // ECO runs cannot shard: the splice plan is inherently resident-side.
    let eco = format!(
        "{{\"text\":{},\"shards\":2}}",
        str_lit("*SPEF\n*DESIGN \"x\"\n*D_NET n0 1.0\n*END\n")
    );
    let resp = client.request("POST", &format!("/sessions/{session}/eco"), &eco).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    server.join();
}

#[test]
fn run_deadline_maps_to_typed_timeout() {
    // Both workers go silent immediately and stay silent forever.
    let plan = ShardFaultPlan::new()
        .with_persistent_fault(0, ShardFault::StallAfter(0))
        .with_persistent_fault(1, ShardFault::StallAfter(0));
    let err = run_with("deadline", 2, 1, plan, |cfg| {
        cfg.heartbeat_timeout = Duration::from_secs(30);
        cfg.deadline = Some(Duration::from_millis(800));
    })
    .unwrap_err();
    match &err {
        ApiError::Timeout(msg) => assert!(msg.contains("deadline"), "{msg}"),
        other => panic!("expected Timeout, got {other:?}"),
    }
    let (status, reason, code) = err.status();
    assert_eq!((status, reason, code), (504, "Gateway Timeout", "deadline_exceeded"));
}
