//! Quickstart: build a two-net coupled parasitic network by hand, prune it,
//! and measure the worst-case crosstalk glitch with the SyMPVL engine.
//!
//! Run with: `cargo run --release -p pcv-bench --example quickstart`

use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb};
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_glitch, AnalysisContext, AnalysisOptions, XtalkError};

fn main() -> Result<(), XtalkError> {
    // --- 1. Describe extracted parasitics (normally parsed from SPEF). ---
    let mut db = ParasiticDb::new();

    // Victim: a 2-segment RC wire with a receiver at the far end.
    let mut victim = NetParasitics::new("victim");
    let v1 = victim.add_node();
    let v2 = victim.add_node();
    victim.add_resistor(0, v1, 120.0);
    victim.add_resistor(v1, v2, 120.0);
    victim.add_ground_cap(v1, 6e-15);
    victim.add_ground_cap(v2, 6e-15);
    victim.mark_load(v2);
    let victim_id = db.add_net(victim);

    // Aggressor: a similar wire routed alongside.
    let mut agg = NetParasitics::new("agg");
    let a1 = agg.add_node();
    let a2 = agg.add_node();
    agg.add_resistor(0, a1, 120.0);
    agg.add_resistor(a1, a2, 120.0);
    agg.add_ground_cap(a1, 6e-15);
    agg.add_ground_cap(a2, 6e-15);
    let agg_id = db.add_net(agg);

    // Coupling capacitance along the parallel run.
    db.add_coupling(
        NetNodeRef { net: victim_id, node: v1 },
        NetNodeRef { net: agg_id, node: a1 },
        15e-15,
    );
    db.add_coupling(
        NetNodeRef { net: victim_id, node: v2 },
        NetNodeRef { net: agg_id, node: a2 },
        15e-15,
    );

    // --- 2. Prune: find the victim's significant aggressors. ---
    let cluster = prune_victim(&db, victim_id, &PruneConfig::default());
    println!(
        "cluster: victim + {} aggressor(s), {:.1} fF decoupled",
        cluster.aggressors.len(),
        cluster.decoupled_cap * 1e15
    );

    // --- 3. Analyze: 1 kOhm linear drivers, SyMPVL engine. ---
    let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
    let opts = AnalysisOptions::default();
    let rising = analyze_glitch(&ctx, &cluster, true, &opts)?;
    let falling = analyze_glitch(&ctx, &cluster, false, &opts)?;

    println!(
        "rising glitch:  {:+.4} V at {:.2} ns (reduced order {})",
        rising.peak,
        rising.t_peak * 1e9,
        rising.reduced_order.unwrap_or(0)
    );
    println!("falling glitch: {:+.4} V at {:.2} ns", falling.peak, falling.t_peak * 1e9);
    let frac = rising.peak.abs().max(falling.peak.abs()) / opts.vdd;
    println!("worst case is {:.1}% of Vdd", 100.0 * frac);
    Ok(())
}
