//! Full-flow DSP sign-off: generate a DSP-like block, pre-characterize the
//! cells its drivers use, and run the chip-level crosstalk audit on every
//! latch-input victim with the nonlinear cell model — the paper's Section 5
//! flow end to end, driven by the parallel `pcv-engine` orchestrator with
//! an incremental result cache (rerun the example to see warm-cache hits).
//!
//! Run with: `cargo run --release -p pcv-bench --example dsp_chip_signoff`
//!
//! While the engine runs, a live status line on stderr shows clusters
//! done, throughput, ETA, cache hits and degradations. Pass `--quiet` (or
//! set `PCV_NO_PROGRESS`) to suppress it; it also disappears on its own
//! when stderr is not a terminal.
//!
//! Pass `--stop-after N` to drill the crash-safe path: the run stops
//! cooperatively after N cluster verdicts (simulating an interrupted
//! sign-off), then resumes from the checkpoint journal and finishes —
//! byte-identical to an uninterrupted run.

use pcv_bench::charlib_for;
use pcv_cells::library::CellLibrary;
use pcv_designs::dsp::{generate, DspConfig};
use pcv_designs::Technology;
use pcv_engine::{Engine, EngineConfig, StopAfter, StopFlag};
use pcv_netlist::PNetId;
use pcv_obs::{EventSink, StderrStatusLine, TeeSink};
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::PruneConfig;
use pcv_xtalk::{verify_chip, AnalysisContext, AnalysisOptions, XtalkError};
use std::sync::Arc;

fn main() -> Result<(), XtalkError> {
    let args: Vec<String> = std::env::args().collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let stop_after = args
        .iter()
        .position(|a| a == "--stop-after")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok());
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();

    println!("generating DSP-like block...");
    let block = generate(
        &DspConfig { n_buses: 3, bus_bits: 12, n_random_nets: 40, ..Default::default() },
        &tech,
        &lib,
    );
    println!(
        "  {} nets, {} instances, {} coupling caps",
        block.parasitics.num_nets(),
        block.design.num_instances(),
        block.parasitics.couplings().len()
    );

    println!("pre-characterizing driver cells (one-time task)...");
    let charlib = charlib_for(&[
        "INVX2", "INVX4", "INVX8", "BUFX4", "BUFX8", "BUFX12", "NAND2X2", "NAND2X4", "NOR2X2",
        "NOR2X4", "TBUFX4", "TBUFX8", "TBUFX16",
    ]);
    println!("  {} cells characterized", charlib.len());

    // Audit every latch-input victim (the state-corruption hazard).
    let victims: Vec<PNetId> = block
        .latch_victims()
        .into_iter()
        .map(|d| block.parasitics.find_net(block.design.net_name(d)).expect("views are aligned"))
        .collect();
    println!("auditing {} latch-input victims...", victims.len());

    let ctx = AnalysisContext::with_design(
        &block.parasitics,
        &block.design,
        &lib,
        &charlib,
        DriverModelKind::Nonlinear,
    );

    // Parallel, cached sign-off run: one cluster job per victim on a
    // work-stealing pool, verdicts stored under topology fingerprints in
    // target/ so an unchanged rerun skips every analysis. Tracing is on,
    // so the run also drops a Chrome trace + profile next to the cache.
    let cache =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/dsp_signoff.cache");
    let status = Arc::new(StderrStatusLine::auto(quiet));
    let base = EngineConfig {
        workers: 0, // one per core
        cache_path: Some(cache.clone()),
        trace: true,
        sink: Some(status.clone()),
        ..Default::default()
    };
    let report = if let Some(n) = stop_after {
        // Crash drill: stop cooperatively after n verdicts (in-flight
        // clusters drain, the journal keeps every completed verdict),
        // then resume from the checkpoint journal and finish the audit.
        let flag = StopFlag::new();
        let stopper: Arc<dyn EventSink> = Arc::new(StopAfter::new(flag.clone(), n));
        let mut cfg = base.clone();
        cfg.sink = Some(Arc::new(TeeSink::new(vec![status.clone(), stopper])));
        cfg.durable.stop = Some(flag);
        let partial = Engine::new(cfg).verify(&ctx, &victims)?;
        println!(
            "stopped early: {}/{} verdict(s) checkpointed, {} skipped — resuming",
            partial.stats.victims - partial.stats.skipped,
            partial.stats.victims,
            partial.stats.skipped
        );
        Engine::new(base).resume(&ctx, &victims)?
    } else {
        Engine::new(base).verify(&ctx, &victims)?
    };
    let progress = status.snapshot();
    println!(
        "live monitor saw {}/{} clusters, {} cached, {} degraded",
        progress.done, progress.total, progress.cached, progress.degraded
    );

    print!("{}", report.to_text());
    // A healthy chip degrades nothing; any entry here names the victim,
    // the recovery rung that stood, and every failed attempt on the way.
    if report.degradations.is_empty() {
        println!("recovery ladder: no cluster needed it (0 degraded verdicts)");
    } else {
        println!("recovery ladder: {} degraded verdict(s):", report.degradations.len());
        for d in &report.degradations {
            println!("  {d}");
        }
    }
    if let Some(trace) = &report.trace {
        println!(
            "trace: {} spans, {} counters — open {}.trace.json in chrome://tracing or Perfetto",
            trace.spans.len(),
            trace.counters.len(),
            cache.display()
        );
        println!("profile: {}.profile.json", cache.display());
    }
    println!(
        "\n{} violations, {} total flagged — pruning kept clusters at {:.1} nets on average",
        report.chip.num_violations(),
        report.chip.flagged().count(),
        report.chip.pruning.mean_after
    );

    // Persist the machine-readable sign-off verdict atomically — this is
    // the artifact the crash drill compares (and CI uploads).
    let signoff = cache.with_extension("signoff.json");
    match pcv_engine::fs::Fs::real().write_atomic(&signoff, report.signoff_json().as_bytes()) {
        Ok(()) => println!("signoff: {}", signoff.display()),
        Err(e) => eprintln!("signoff artifact write failed: {e}"),
    }

    if report.interrupted {
        println!("run was interrupted — skipping the serial cross-check (resume to finish)");
        return Ok(());
    }

    // The serial reference path produces the identical report (the engine
    // is deterministic); keep it as the cross-check of the fast path.
    let serial = verify_chip(
        &ctx,
        &victims,
        &PruneConfig::default(),
        &AnalysisOptions::default(),
        0.10,
        0.20,
    )?;
    assert_eq!(report.chip, serial, "engine must match the serial reference");
    println!("serial reference audit matches the engine report exactly");
    Ok(())
}
