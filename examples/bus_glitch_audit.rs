//! Audit a parallel bus for crosstalk glitches: extract an 8-bit bus routed
//! at minimum pitch, then check every bit with the chip-level verifier —
//! run through the parallel `pcv-engine` pool, with the serial
//! `verify_chip` path kept as the reference cross-check.
//!
//! This is the workload the paper's introduction motivates: long parallel
//! wires at deep-submicron pitch where coupling dominates capacitance.
//!
//! Run with: `cargo run --release -p pcv-bench --example bus_glitch_audit`
//! (pass `--quiet` to suppress the live stderr status line)

use pcv_designs::structures::bundle;
use pcv_designs::Technology;
use pcv_engine::{Engine, EngineConfig};
use pcv_netlist::PNetId;
use pcv_obs::StderrStatusLine;
use pcv_xtalk::prune::PruneConfig;
use pcv_xtalk::{verify_chip, AnalysisContext, AnalysisOptions, XtalkError};
use std::sync::Arc;

fn main() -> Result<(), XtalkError> {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let tech = Technology::c025();
    let engine = Engine::new(EngineConfig {
        workers: 0, // one per core
        analysis: AnalysisOptions::default(),
        trace: true,
        sink: Some(Arc::new(StderrStatusLine::auto(quiet))),
        ..Default::default()
    });

    for &length_um in &[500.0, 1500.0, 3000.0] {
        // An 8-bit bus: adjacent bits couple strongly, edge bits less.
        let db = bundle(8, length_um * 1e-6, &tech);
        let victims: Vec<PNetId> = (0..db.num_nets()).map(PNetId).collect();
        let ctx = AnalysisContext::fixed_resistance(&db, 800.0);
        let report = engine.verify(&ctx, &victims)?;

        println!("=== {length_um:.0} um bus ===");
        print!("{}", report.to_text());
        // Interior bits see two aggressors and fare worst; confirm the
        // audit ranks them above the edge bits.
        let worst = &report.chip.verdicts[0];
        println!("worst bit: {} at {:.1}% of Vdd", worst.name, 100.0 * worst.worst_frac);

        // Serial reference path: must agree bit for bit.
        let serial = verify_chip(
            &ctx,
            &victims,
            &PruneConfig::default(),
            &AnalysisOptions::default(),
            0.10, // warn at 10% of Vdd
            0.20, // fail at 20% of Vdd
        )?;
        assert_eq!(report.chip, serial, "engine must match the serial reference");
        println!("serial reference matches the engine report");

        // Drop the run's profile artifacts (Chrome trace + cost JSON) into
        // target/ for inspection in chrome://tracing or Perfetto. The
        // export is atomic (write-temp + fsync + rename), so a killed run
        // never leaves a torn JSON document here.
        let stem = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join(format!("../../target/bus_audit_{length_um:.0}um"));
        match report.write_profile(&stem) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("profile write failed: {e}"),
        }
        println!();
    }
    Ok(())
}
