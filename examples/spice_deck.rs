//! Standalone SPICE-style usage: parse a circuit deck, run a transient
//! analysis, and print waveform measurements — the `pcv-spice` substrate as
//! a general-purpose simulator.
//!
//! Run with: `cargo run --release -p pcv-bench --example spice_deck`

use pcv_netlist::deck::parse_deck;
use pcv_spice::{SimOptions, Simulator};

const DECK: &str = "\
* CMOS inverter driving a coupled pair of wires
Vdd vdd 0 DC 2.5
Vin in 0 PULSE(0 2.5 1n 0.15n 0.15n 4n 0)
M1 drv in 0 TYPE=N W=1.2u L=0.25u
M2 drv in vdd TYPE=P W=3u L=0.25u
* aggressor wire: three RC segments
R1 drv a1 120
R2 a1 a2 120
R3 a2 a3 120
Ca1 a1 0 4f
Ca2 a2 0 4f
Ca3 a3 0 4f
* victim wire held low through a weak keeper
Rk vic 0 2k
Cv1 vic 0 6f
* coupling
Cc1 a2 vic 12f
Cc2 a3 vic 12f
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ckt = parse_deck(DECK)?;
    let (r, c, v, i, m) = ckt.element_counts();
    println!("parsed deck: {r} R, {c} C, {v} V, {i} I, {m} MOS");

    let sim = Simulator::new(&ckt);
    let result = sim.transient(8e-9, &SimOptions::default())?;

    let drv = ckt.find_node("drv").expect("driver node");
    let far = ckt.find_node("a3").expect("wire end");
    let vic = ckt.find_node("vic").expect("victim node");

    let w_drv = result.waveform(drv);
    let w_far = result.waveform(far);
    let w_vic = result.waveform(vic);

    // The inverter *output* falls when the input pulse rises.
    let t_fall = w_drv.crossing(1.25, false, 0.0).ok_or("driver never fell")?;
    println!("driver 50% fall at {:.3} ns", t_fall * 1e9);
    if let Some(t_far) = w_far.crossing(1.25, false, 0.0) {
        println!(
            "wire-end 50% fall at {:.3} ns (interconnect delay {:.1} ps)",
            t_far * 1e9,
            (t_far - t_fall) * 1e12
        );
    }
    let (t_peak, peak) = w_vic.peak_deviation(0.0);
    println!(
        "victim glitch: {:.3} V at {:.3} ns ({:.1}% of Vdd)",
        peak,
        t_peak * 1e9,
        100.0 * peak.abs() / 2.5
    );
    println!("simulated {} timesteps, {} Newton iterations", result.steps, result.newton_iters);
    Ok(())
}
