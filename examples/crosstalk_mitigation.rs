//! Crosstalk mitigation study: compare the three classic fixes for a noisy
//! victim — shielding, extra spacing, and victim driver upsizing — plus the
//! receiver's own noise immunity.
//!
//! Run with: `cargo run --release -p pcv-bench --example crosstalk_mitigation`

use pcv_cells::library::CellLibrary;
use pcv_designs::extract::{extract, WireGeom};
use pcv_designs::structures::{sandwich, shielded_sandwich};
use pcv_designs::Technology;
use pcv_netlist::ParasiticDb;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::receiver::check_receiver_propagation;
use pcv_xtalk::{analyze_glitch, AnalysisContext, AnalysisOptions, XtalkError};

const LEN: f64 = 2000e-6;

fn glitch(db: &ParasiticDb, r_drive: f64) -> Result<(f64, pcv_netlist::Waveform), XtalkError> {
    let victim = db.find_net("v").expect("victim exists");
    let cluster = prune_victim(db, victim, &PruneConfig::default());
    // One shared drive resistance for victim holder and aggressors; the
    // upsizing experiment lowers it.
    let ctx = AnalysisContext::fixed_resistance(db, r_drive);
    let res = analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default())?;
    Ok((res.peak, res.waveform))
}

fn main() -> Result<(), XtalkError> {
    let tech = Technology::c025();

    // Baseline: minimum-pitch sandwich.
    let base = sandwich(LEN, &tech);
    let (peak_base, wave_base) = glitch(&base, 1000.0)?;
    println!("baseline (min pitch, 1 kohm victim):   {peak_base:.3} V");

    // Fix 1: grounded shields between victim and aggressors.
    let shielded = shielded_sandwich(LEN, &tech);
    let (peak_shield, _) = glitch(&shielded, 1000.0)?;
    println!(
        "shielded:                              {peak_shield:.3} V  ({:.0}% reduction)",
        100.0 * (1.0 - peak_shield / peak_base)
    );

    // Fix 2: double spacing (route aggressors two tracks away).
    let spaced_wires = vec![
        WireGeom::min_width("a1", 0, 0.0, LEN, &tech),
        WireGeom::min_width("v", 2, 0.0, LEN, &tech),
        WireGeom::min_width("a2", 4, 0.0, LEN, &tech),
    ];
    let spaced = extract(&spaced_wires, &tech, 50e-6);
    let (peak_spaced, _) = glitch(&spaced, 1000.0)?;
    println!(
        "double spacing:                        {peak_spaced:.3} V  ({:.0}% reduction)",
        100.0 * (1.0 - peak_spaced / peak_base)
    );

    // Fix 3: upsize the victim holder (1 kohm -> 250 ohm).
    let (peak_upsized, _) = glitch(&base, 250.0)?;
    println!(
        "victim driver upsized (250 ohm):       {peak_upsized:.3} V  ({:.0}% reduction)",
        100.0 * (1.0 - peak_upsized / peak_base)
    );

    // And the receiver side: does the baseline glitch actually propagate
    // through an INVX4 receiver?
    let lib = CellLibrary::standard_025();
    let inv = lib.cell("INVX4").expect("INVX4 exists");
    let check = check_receiver_propagation(inv, &wave_base, 0.0, 2.5, 0.2)?;
    println!(
        "\nreceiver check (INVX4): input peak {:.3} V -> output peak {:.3} V, \
         amplification {:.2}, propagates: {}",
        check.input_peak, check.output_peak, check.amplification, check.propagates
    );
    Ok(())
}
