//! Delay impact of coupling: how much the naive decoupled (grounded-cap)
//! delay estimate misses, as a function of coupled length — the Table 2
//! story, swept continuously.
//!
//! Run with: `cargo run --release -p pcv-bench --example delay_impact`

use pcv_designs::structures::sandwich;
use pcv_designs::Technology;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_delay, AnalysisContext, AnalysisOptions, DelayMode, XtalkError};

fn main() -> Result<(), XtalkError> {
    let tech = Technology::c025();
    println!("victim rise delay through a coupled sandwich (500 ohm drivers)");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>9}",
        "len (um)", "decoupled", "worst (ns)", "best (ns)", "penalty"
    );
    for &len_um in &[250.0, 500.0, 1000.0, 2000.0, 3000.0, 4000.0] {
        let db = sandwich(len_um * 1e-6, &tech);
        let victim = db.find_net("v").expect("victim exists");
        let cluster = prune_victim(&db, victim, &PruneConfig::default());
        let ctx = AnalysisContext::fixed_resistance(&db, 500.0);
        let opts = AnalysisOptions { tstop: 25e-9, ..Default::default() };

        let base = analyze_delay(&ctx, &cluster, true, DelayMode::Decoupled, &opts)?;
        let worst = analyze_delay(
            &ctx,
            &cluster,
            true,
            DelayMode::Coupled { aggressors_opposite: true },
            &opts,
        )?;
        let best = analyze_delay(
            &ctx,
            &cluster,
            true,
            DelayMode::Coupled { aggressors_opposite: false },
            &opts,
        )?;
        println!(
            "{:>9.0} {:>10.4}ns {:>10.4}ns {:>10.4}ns {:>8.1}%",
            len_um,
            base.delay * 1e9,
            worst.delay * 1e9,
            best.delay * 1e9,
            100.0 * (worst.delay - base.delay) / base.delay
        );
    }
    println!("\npenalty = worst-case slowdown the decoupled estimate misses");
    Ok(())
}
