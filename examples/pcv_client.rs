//! `pcv_client` — command-line client for the `pcv_serve` daemon.
//!
//! ```text
//! pcv_client --addr HOST:PORT <command> [args]
//!
//! commands:
//!   load-dsp [--buses N] [--bits N] [--random N]   create a DSP-fixture session
//!   load-spef FILE [--drive OHMS]                  create a session from a SPEF file
//!   run SESSION [--workers N] [--resume] [--stop-after N]
//!       [--shards N] [--shard-timeout-ms MS] [--deadline-ms MS]
//!   eco SESSION FILE [--workers N] [--resume]      patch the resident parasitics with an
//!                                                  edited SPEF and splice-verify the delta
//!   events RUN                                     tail the live JSONL event stream
//!   verdicts RUN [--net NAME]                      fetch (partial) verdicts
//!   signoff RUN [--out FILE]                       fetch the sign-off document
//!   stat [--raw] [--out FILE]                      scrape /metrics (summary or raw exposition)
//!   smoke [--out FILE]                             load DSP + run + stream + sign-off
//!   shutdown                                       ask the daemon to drain
//! ```
//!
//! `smoke` drives the full lifecycle with the same DSP configuration the
//! batch `dsp_chip_signoff` example uses, so CI can byte-compare the
//! served document against the offline one.
//!
//! Run and ECO submissions honor the daemon's `Retry-After` on 429 with
//! bounded backoff (a handful of attempts, ≤ 2 s sleeps), so a briefly
//! full queue looks like a slow accept rather than a hard failure.

use pcv_serve::Client;
use std::io::Write;
use std::process::exit;
use std::time::Duration;

/// Busy-retry policy for submissions: up to 5 attempts, each backoff the
/// server's `Retry-After` capped at 2 s.
const RETRY_ATTEMPTS: u32 = 5;
const RETRY_CAP: Duration = Duration::from_secs(2);

fn fail(msg: &str) -> ! {
    eprintln!("pcv_client: {msg}");
    exit(1);
}

/// Pull the value following `flag` out of `args`, if present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        fail(&format!("{flag} needs a value"));
    }
    args.remove(i);
    Some(args.remove(i))
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn expect_ok(what: &str, resp: &pcv_serve::Response) {
    if !resp.ok() {
        fail(&format!("{what}: HTTP {}: {}", resp.status, resp.body));
    }
}

/// Extract `"key":"value"` from a flat JSON object without a parser
/// dependency — the daemon's ids are plain identifiers.
fn json_str_field(body: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = body.find(&tag)? + tag.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_owned())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".into());
    let client = Client::new(addr);
    if args.is_empty() {
        fail("no command; try: load-dsp | load-spef | run | eco | events | verdicts | signoff | stat | smoke | shutdown");
    }
    let command = args.remove(0);
    match command.as_str() {
        "load-dsp" => {
            let buses = take_flag(&mut args, "--buses").unwrap_or_else(|| "4".into());
            let bits = take_flag(&mut args, "--bits").unwrap_or_else(|| "16".into());
            let random = take_flag(&mut args, "--random").unwrap_or_else(|| "60".into());
            let body = format!(
                "{{\"design\":{{\"kind\":\"dsp\",\"buses\":{buses},\"bits\":{bits},\"random\":{random}}}}}"
            );
            let resp =
                client.request("POST", "/sessions", &body).unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("load-dsp", &resp);
            println!("{}", resp.body);
        }
        "load-spef" => {
            if args.is_empty() {
                fail("load-spef needs a SPEF file path");
            }
            let path = args.remove(0);
            let drive = take_flag(&mut args, "--drive").unwrap_or_else(|| "1000".into());
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let body = format!(
                "{{\"design\":{{\"kind\":\"spef\",\"drive_ohms\":{drive},\"victims\":\"all\",\"text\":{}}}}}",
                pcv_trace::json::str_lit(&text)
            );
            let resp =
                client.request("POST", "/sessions", &body).unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("load-spef", &resp);
            println!("{}", resp.body);
        }
        "run" => {
            if args.is_empty() {
                fail("run needs a session id");
            }
            let session = args.remove(0);
            let mut fields = Vec::new();
            if let Some(w) = take_flag(&mut args, "--workers") {
                fields.push(format!("\"workers\":{w}"));
            }
            if let Some(n) = take_flag(&mut args, "--stop-after") {
                fields.push(format!("\"stop_after\":{n}"));
            }
            if let Some(n) = take_flag(&mut args, "--shards") {
                fields.push(format!("\"shards\":{n}"));
            }
            if let Some(ms) = take_flag(&mut args, "--shard-timeout-ms") {
                fields.push(format!("\"shard_timeout_ms\":{ms}"));
            }
            if let Some(ms) = take_flag(&mut args, "--deadline-ms") {
                fields.push(format!("\"deadline_ms\":{ms}"));
            }
            if take_switch(&mut args, "--resume") {
                fields.push("\"resume\":true".into());
            }
            let body = format!("{{{}}}", fields.join(","));
            let path = format!("/sessions/{session}/runs");
            let resp = client
                .request_with_retry("POST", &path, &body, RETRY_ATTEMPTS, RETRY_CAP)
                .unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("run", &resp);
            println!("{}", resp.body);
        }
        "eco" => {
            if args.len() < 2 {
                fail("eco needs a session id and an edited SPEF file path");
            }
            let session = args.remove(0);
            let path = args.remove(0);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let mut fields = vec![format!("\"text\":{}", pcv_trace::json::str_lit(&text))];
            if let Some(w) = take_flag(&mut args, "--workers") {
                fields.push(format!("\"workers\":{w}"));
            }
            if take_switch(&mut args, "--resume") {
                fields.push("\"resume\":true".into());
            }
            let body = format!("{{{}}}", fields.join(","));
            let resp = client
                .request_with_retry(
                    "POST",
                    &format!("/sessions/{session}/eco"),
                    &body,
                    RETRY_ATTEMPTS,
                    RETRY_CAP,
                )
                .unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("eco", &resp);
            println!("{}", resp.body);
        }
        "events" => {
            if args.is_empty() {
                fail("events needs a run id");
            }
            let run = args.remove(0);
            let status = client
                .stream(&format!("/runs/{run}/events"), |line| println!("{line}"))
                .unwrap_or_else(|e| fail(&e.to_string()));
            if status != 200 {
                exit(1);
            }
        }
        "verdicts" => {
            if args.is_empty() {
                fail("verdicts needs a run id");
            }
            let run = args.remove(0);
            let path = match take_flag(&mut args, "--net") {
                Some(net) => format!("/runs/{run}/verdicts?net={net}"),
                None => format!("/runs/{run}/verdicts"),
            };
            let resp = client.request("GET", &path, "").unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("verdicts", &resp);
            println!("{}", resp.body);
        }
        "signoff" => {
            if args.is_empty() {
                fail("signoff needs a run id");
            }
            let run = args.remove(0);
            let resp = client
                .request("GET", &format!("/runs/{run}/signoff"), "")
                .unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("signoff", &resp);
            emit(&resp.body, take_flag(&mut args, "--out"));
        }
        "stat" => {
            let raw = take_switch(&mut args, "--raw");
            let out = take_flag(&mut args, "--out");
            let resp =
                client.request("GET", "/metrics", "").unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("stat", &resp);
            if raw || out.is_some() {
                emit(&resp.body, out);
            } else {
                // Compact human summary: one line per series, comments
                // dropped, histogram buckets collapsed to _sum/_count.
                for line in resp.body.lines() {
                    if line.starts_with('#') || line.contains("_bucket{") {
                        continue;
                    }
                    println!("{line}");
                }
            }
        }
        "smoke" => {
            // The batch dsp_chip_signoff example's configuration, so the
            // served sign-off is byte-comparable against the offline one.
            let out = take_flag(&mut args, "--out");
            let body = "{\"design\":{\"kind\":\"dsp\",\"buses\":3,\"bits\":12,\"random\":40}}";
            let resp =
                client.request("POST", "/sessions", body).unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("smoke: load", &resp);
            let session = json_str_field(&resp.body, "session")
                .unwrap_or_else(|| fail(&format!("no session id in {}", resp.body)));
            eprintln!("smoke: session {session} ready");
            let resp = client
                .request_with_retry(
                    "POST",
                    &format!("/sessions/{session}/runs"),
                    "{}",
                    RETRY_ATTEMPTS,
                    RETRY_CAP,
                )
                .unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("smoke: run", &resp);
            let run = json_str_field(&resp.body, "run")
                .unwrap_or_else(|| fail(&format!("no run id in {}", resp.body)));
            eprintln!("smoke: run {run} queued, streaming events");
            let mut events = 0usize;
            let mut trailer = String::new();
            let status = client
                .stream(&format!("/runs/{run}/events"), |line| {
                    events += 1;
                    if line.contains("\"stream_trailer\"") {
                        trailer = line.to_owned();
                    }
                })
                .unwrap_or_else(|e| fail(&e.to_string()));
            if status != 200 {
                fail(&format!("smoke: event stream answered HTTP {status}"));
            }
            eprintln!("smoke: {events} stream lines, trailer {trailer}");
            let resp = client
                .request("GET", &format!("/runs/{run}/signoff"), "")
                .unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("smoke: signoff", &resp);
            emit(&resp.body, out);
        }
        "shutdown" => {
            let resp =
                client.request("POST", "/shutdown", "").unwrap_or_else(|e| fail(&e.to_string()));
            expect_ok("shutdown", &resp);
            println!("{}", resp.body);
        }
        other => fail(&format!("unknown command {other:?}")),
    }
}

fn emit(body: &str, out: Option<String>) {
    match out {
        Some(path) => {
            let mut file = std::fs::File::create(&path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
            file.write_all(body.as_bytes())
                .and_then(|()| file.flush())
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {} bytes to {path}", body.len());
        }
        None => println!("{body}"),
    }
}
