//! Driver models for crosstalk analysis: the paper's two cell abstractions.
//!
//! * [`LinearDriverModel`] — Section 4.1's timing-library based model: a
//!   Thevenin source (fitted drive resistance behind an idealized output
//!   ramp). Cheap, but Table 3 of the paper shows its accuracy limits.
//! * [`NonlinearDriverModel`] — Section 4.2's pre-characterized nonlinear
//!   model: the quasi-static output current surface `I(V_in(t), V_out)`
//!   plus an effective output capacitance. It captures the transient output
//!   waveform including the interconnect's resistive loading, and recovers
//!   Table 4's accuracy.
//!
//! Both implement (or produce) [`Termination`], so the same object plugs
//! into the SPICE substrate and the SyMPVL reduced integration.

use crate::charlib::{CharCell, IvSurface};
use pcv_netlist::termination::{Termination, TheveninTermination};
use pcv_netlist::SourceWave;

/// Factory for the timing-library based linear (Thevenin) driver model.
#[derive(Debug, Clone, Copy)]
pub struct LinearDriverModel;

impl LinearDriverModel {
    /// A switching driver: drive resistance from the characterized
    /// delay-vs-load slope, open-circuit voltage ramping at the *unloaded*
    /// output transition time (the RC shaping of the actual load is added
    /// by the network the model drives).
    ///
    /// `t_switch` is when the output transition starts; `in_slew` selects
    /// the table row.
    pub fn switching(
        ch: &CharCell,
        rising: bool,
        t_switch: f64,
        in_slew: f64,
        vdd: f64,
    ) -> TheveninTermination {
        let r = if rising { ch.rout_rise } else { ch.rout_fall };
        // Unloaded (minimum-load) output transition time; the table stores
        // 10–90 % slew, so scale to the full swing.
        let (_, out_slew) = ch.timing.lookup(in_slew, ch.timing.loads[0], rising);
        let ramp = out_slew / 0.8;
        let (v0, v1) = if rising { (0.0, vdd) } else { (vdd, 0.0) };
        TheveninTermination::new(r, SourceWave::step(v0, v1, t_switch, ramp))
    }

    /// A quiet (holding) driver: the victim's cell holding its output at a
    /// rail through its on-resistance.
    pub fn holding(ch: &CharCell, high: bool, vdd: f64) -> TheveninTermination {
        // Holding high means the pull-up network is on, and vice versa.
        let (r, level) = if high { (ch.rout_rise, vdd) } else { (ch.rout_fall, 0.0) };
        TheveninTermination::new(r, SourceWave::Dc(level))
    }
}

/// The pre-characterized nonlinear driver model: output current surface
/// `I(V_in(t), V_out)` plus an effective output capacitance.
///
/// Implements [`Termination`] directly, so it attaches to both engines.
#[derive(Debug, Clone)]
pub struct NonlinearDriverModel {
    iv: IvSurface,
    cout: f64,
    vin_wave: SourceWave,
}

impl NonlinearDriverModel {
    /// A switching driver: the cell input ramps between the rails starting
    /// at `t_switch` with the given input slew (10–90 %, as in timing
    /// libraries).
    ///
    /// `out_rising` names the *output* edge; the input edge direction is
    /// derived from the cell's logic polarity.
    pub fn switching(
        ch: &CharCell,
        out_rising: bool,
        t_switch: f64,
        in_slew: f64,
        vdd: f64,
    ) -> Self {
        let in_rising = if ch.kind.inverting() { !out_rising } else { out_rising };
        let (v0, v1) = if in_rising { (0.0, vdd) } else { (vdd, 0.0) };
        // Apply the characterized effective-input calibration: the imposed
        // ramp is delayed and stretched so the quasi-static surface
        // reproduces the cell's true dynamic response (vital for
        // multi-stage cells, whose internal delay the surface cannot see).
        let (delay, stretch) = ch.vin_calibration(in_slew, out_rising);
        NonlinearDriverModel {
            iv: ch.iv.clone(),
            cout: ch.cout,
            vin_wave: SourceWave::step(v0, v1, t_switch + delay, in_slew / 0.8 * stretch),
        }
    }

    /// A quiet (holding) driver: input pinned so the output holds at the
    /// given rail — the nonlinear holding model for victim nets.
    pub fn holding(ch: &CharCell, out_high: bool, vdd: f64) -> Self {
        let vin = match (ch.kind.inverting(), out_high) {
            (true, true) | (false, false) => 0.0,
            (true, false) | (false, true) => vdd,
        };
        NonlinearDriverModel { iv: ch.iv.clone(), cout: ch.cout, vin_wave: SourceWave::Dc(vin) }
    }

    /// The input waveform imposed on the model.
    pub fn vin_wave(&self) -> &SourceWave {
        &self.vin_wave
    }
}

impl Termination for NonlinearDriverModel {
    fn eval(&self, t: f64, v: f64) -> (f64, f64) {
        let vin = self.vin_wave.value_at(t);
        let (inject, d_inject) = self.iv.at(vin, v);
        // Termination current is drawn *from* the node; the cell injects
        // *into* it. The cell's output conductance -dI/dV is non-negative.
        (-inject, (-d_inject).max(0.0))
    }

    fn capacitance(&self) -> f64 {
        self.cout
    }

    fn breakpoints(&self) -> Vec<f64> {
        self.vin_wave.breakpoints()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charlib::characterize;
    use crate::library::CellLibrary;
    use crate::VDD;
    use pcv_netlist::Circuit;
    use pcv_spice::{SimOptions, Simulator};

    fn inv4() -> CharCell {
        let lib = CellLibrary::standard_025();
        characterize(lib.cell("INVX4").unwrap()).unwrap()
    }

    #[test]
    fn linear_model_resistances_follow_direction() {
        let ch = inv4();
        let rise = LinearDriverModel::switching(&ch, true, 1e-9, 0.1e-9, VDD);
        let fall = LinearDriverModel::switching(&ch, false, 1e-9, 0.1e-9, VDD);
        assert!((rise.ohms() - ch.rout_rise).abs() < 1e-9);
        assert!((fall.ohms() - ch.rout_fall).abs() < 1e-9);
        // Open-circuit waves end at the right rails.
        assert!((rise.wave().value_at(1e-6) - VDD).abs() < 1e-12);
        assert!(fall.wave().value_at(1e-6).abs() < 1e-12);
    }

    #[test]
    fn holding_models_pin_the_rails() {
        let ch = inv4();
        let low = LinearDriverModel::holding(&ch, false, VDD);
        assert_eq!(low.wave().value_at(0.0), 0.0);
        let high = LinearDriverModel::holding(&ch, true, VDD);
        assert_eq!(high.wave().value_at(0.0), VDD);

        // Nonlinear holding at 0: near v=0 the device sinks any positive
        // excursion.
        let nl = NonlinearDriverModel::holding(&ch, false, VDD);
        let (i, g) = nl.eval(0.0, 0.3);
        assert!(i > 0.0, "drawing current to restore 0, got {i}");
        assert!(g > 0.0, "positive holding conductance");
        // And at equilibrium the current is ~0.
        let (i0, _) = nl.eval(0.0, 0.0);
        assert!(i0.abs() < 1e-6);
    }

    #[test]
    fn nonlinear_switching_tracks_logic_polarity() {
        let ch = inv4();
        // Output rising on an inverter means the input falls.
        let m = NonlinearDriverModel::switching(&ch, true, 1e-9, 0.2e-9, VDD);
        assert_eq!(m.vin_wave().value_at(0.0), VDD);
        assert_eq!(m.vin_wave().value_at(1e-6), 0.0);
        assert!(!m.breakpoints().is_empty());
        assert!(m.capacitance() > 0.0);
    }

    #[test]
    fn nonlinear_model_matches_transistor_level_delay() {
        // Drive an RC line with (a) the transistor-level inverter and
        // (b) the nonlinear model; the far-end 50 % crossing must agree
        // closely (this is the Table 4 claim in miniature).
        let ch = inv4();
        let lib = CellLibrary::standard_025();
        let cell = lib.cell("INVX4").unwrap();
        let segs = 6;
        let r_seg = 80.0;
        let c_seg = 8e-15;
        let tstop = 6e-9;

        // (a) transistor level.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("w0");
        ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
        // Inverter output rises ⇒ input falls.
        ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::step(VDD, 0.0, 1e-9, 0.2e-9 / 0.8));
        cell.build(&mut ckt, &[inp], out, vdd);
        let mut prev = out;
        for i in 1..segs {
            let n = ckt.node(&format!("w{i}"));
            ckt.add_resistor(prev, n, r_seg);
            ckt.add_capacitor(n, Circuit::GROUND, c_seg);
            prev = n;
        }
        ckt.add_capacitor(prev, Circuit::GROUND, 20e-15);
        let spice =
            Simulator::new(&ckt).transient_probed(tstop, &SimOptions::default(), &[prev]).unwrap();
        let t_ref = spice
            .waveform(prev)
            .crossing(0.5 * VDD, true, 0.0)
            .expect("transistor-level output rises");

        // (b) nonlinear model driving the same line.
        let mut ckt2 = Circuit::new();
        let out2 = ckt2.node("w0");
        let mut prev2 = out2;
        for i in 1..segs {
            let n = ckt2.node(&format!("w{i}"));
            ckt2.add_resistor(prev2, n, r_seg);
            ckt2.add_capacitor(n, Circuit::GROUND, c_seg);
            prev2 = n;
        }
        ckt2.add_capacitor(prev2, Circuit::GROUND, 20e-15);
        let model = NonlinearDriverModel::switching(&ch, true, 1e-9, 0.2e-9, VDD);
        let mut sim = Simulator::new(&ckt2);
        sim.add_termination(out2, &model);
        let res = sim.transient_probed(tstop, &SimOptions::default(), &[prev2]).unwrap();
        let t_model =
            res.waveform(prev2).crossing(0.5 * VDD, true, 0.0).expect("modeled output rises");

        let rel = (t_model - t_ref).abs() / t_ref;
        assert!(rel < 0.10, "nonlinear model delay {t_model} vs ref {t_ref} ({rel})");
    }

    #[test]
    fn linear_model_is_less_accurate_than_nonlinear() {
        // The Table 3 vs Table 4 story: on a low-resistance net the linear
        // model's error exceeds the nonlinear model's.
        let ch = inv4();
        let lib = CellLibrary::standard_025();
        let cell = lib.cell("INVX4").unwrap();
        let load = 60e-15;
        let tstop = 6e-9;

        // Reference: transistor level driving a lumped load.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
        ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::step(VDD, 0.0, 1e-9, 0.25e-9));
        cell.build(&mut ckt, &[inp], out, vdd);
        ckt.add_capacitor(out, Circuit::GROUND, load);
        let spice =
            Simulator::new(&ckt).transient_probed(tstop, &SimOptions::default(), &[out]).unwrap();
        let t_ref = spice.waveform(out).crossing(0.5 * VDD, true, 0.0).unwrap();

        let run_model = |term: &dyn Termination| -> f64 {
            let mut ckt2 = Circuit::new();
            let out2 = ckt2.node("out");
            ckt2.add_capacitor(out2, Circuit::GROUND, load);
            let mut sim = Simulator::new(&ckt2);
            sim.add_termination(out2, term);
            let res = sim.transient_probed(tstop, &SimOptions::default(), &[out2]).unwrap();
            res.waveform(out2).crossing(0.5 * VDD, true, 0.0).unwrap()
        };
        let lin = LinearDriverModel::switching(&ch, true, 1e-9, 0.2e-9, VDD);
        let nl = NonlinearDriverModel::switching(&ch, true, 1e-9, 0.2e-9, VDD);
        let err_lin = (run_model(&lin) - t_ref).abs() / t_ref;
        let err_nl = (run_model(&nl) - t_ref).abs() / t_ref;
        assert!(
            err_nl < err_lin + 0.02,
            "nonlinear ({err_nl}) should not be much worse than linear ({err_lin})"
        );
        assert!(err_nl < 0.1, "nonlinear model within 10%, got {err_nl}");
    }
}
