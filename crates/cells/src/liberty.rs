//! Liberty-lite: a compact text format for characterized cell libraries.
//!
//! Characterization is a *one-time task* (paper, Section 4.2) — production
//! flows persist its results in a library file rather than re-running
//! SPICE. This module provides that persistence with a deliberately small,
//! Liberty-inspired grammar:
//!
//! ```text
//! library (pcv_lite) {
//!   cell (INVX4) {
//!     kind: inverter; strength: 4; cin: 1.2e-15; cout: 2.4e-15;
//!     rout_rise: 820.0; rout_fall: 390.0;
//!     index_slew: 5e-11 1.5e-10 4e-10 1e-09;
//!     index_load: 5e-15 2.5e-14 8e-14 2e-13;
//!     values (delay_rise) { ... }          // one row per slew
//!     values (delay_fall) { ... }
//!     values (slew_rise) { ... }
//!     values (slew_fall) { ... }
//!     index_vin: 0 0.3125 ...;
//!     index_vout: 0 0.3125 ...;
//!     values (iv) { ... }                  // one row per vin
//!   }
//! }
//! ```

use crate::charlib::{CharCell, CharLibrary, IvSurface, TimingTable};
use crate::library::CellKind;
use pcv_sparse::Dense;
use std::fmt;

/// Errors produced while parsing Liberty-lite text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseLibertyError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "liberty parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLibertyError {}

fn kind_name(k: CellKind) -> &'static str {
    match k {
        CellKind::Inverter => "inverter",
        CellKind::Buffer => "buffer",
        CellKind::Nand2 => "nand2",
        CellKind::Nor2 => "nor2",
        CellKind::TristateBuffer => "tristate_buffer",
        CellKind::Latch => "latch",
    }
}

fn kind_from(name: &str) -> Option<CellKind> {
    Some(match name {
        "inverter" => CellKind::Inverter,
        "buffer" => CellKind::Buffer,
        "nand2" => CellKind::Nand2,
        "nor2" => CellKind::Nor2,
        "tristate_buffer" => CellKind::TristateBuffer,
        "latch" => CellKind::Latch,
        _ => return None,
    })
}

fn write_matrix(out: &mut String, name: &str, m: &Dense) {
    out.push_str(&format!("    values ({name}) {{\n"));
    for r in 0..m.nrows() {
        out.push_str("      ");
        for c in 0..m.ncols() {
            out.push_str(&format!("{:e} ", m[(r, c)]));
        }
        out.push('\n');
    }
    out.push_str("    }\n");
}

/// Serialize a characterized library.
pub fn write_liberty(lib: &CharLibrary) -> String {
    let mut out = String::from("library (pcv_lite) {\n");
    for ch in lib.iter() {
        out.push_str(&format!("  cell ({}) {{\n", ch.name));
        out.push_str(&format!(
            "    kind: {}; strength: {:e}; cin: {:e}; cout: {:e};\n",
            kind_name(ch.kind),
            ch.strength,
            ch.cin,
            ch.cout
        ));
        let list = |xs: &[f64]| xs.iter().map(|x| format!("{x:e}")).collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "    rout_rise: {:e}; rout_fall: {:e};\n",
            ch.rout_rise, ch.rout_fall
        ));
        out.push_str(&format!("    vin_delay_rise: {};\n", list(&ch.vin_delay_rise)));
        out.push_str(&format!("    vin_delay_fall: {};\n", list(&ch.vin_delay_fall)));
        out.push_str(&format!("    vin_stretch_rise: {};\n", list(&ch.vin_stretch_rise)));
        out.push_str(&format!("    vin_stretch_fall: {};\n", list(&ch.vin_stretch_fall)));
        out.push_str(&format!("    index_slew: {};\n", list(&ch.timing.slews)));
        out.push_str(&format!("    index_load: {};\n", list(&ch.timing.loads)));
        write_matrix(&mut out, "delay_rise", &ch.timing.delay_rise);
        write_matrix(&mut out, "delay_fall", &ch.timing.delay_fall);
        write_matrix(&mut out, "slew_rise", &ch.timing.slew_rise);
        write_matrix(&mut out, "slew_fall", &ch.timing.slew_fall);
        out.push_str(&format!("    index_vin: {};\n", list(&ch.iv.vin)));
        out.push_str(&format!("    index_vout: {};\n", list(&ch.iv.vout)));
        write_matrix(&mut out, "iv", &ch.iv.current);
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

/// Parser state for one cell being assembled.
#[derive(Default)]
struct CellBuilder {
    name: String,
    kind: Option<CellKind>,
    strength: Option<f64>,
    cin: Option<f64>,
    cout: Option<f64>,
    rout_rise: Option<f64>,
    rout_fall: Option<f64>,
    vin_delay_rise: Vec<f64>,
    vin_delay_fall: Vec<f64>,
    vin_stretch_rise: Vec<f64>,
    vin_stretch_fall: Vec<f64>,
    slews: Vec<f64>,
    loads: Vec<f64>,
    vin: Vec<f64>,
    vout: Vec<f64>,
    matrices: std::collections::BTreeMap<String, Vec<Vec<f64>>>,
}

impl CellBuilder {
    fn finish(self, line: usize) -> Result<CharCell, ParseLibertyError> {
        let err =
            |m: &str| ParseLibertyError { line, message: format!("{m} in cell {}", self.name) };
        let matrix = |name: &str, rows: usize, cols: usize| -> Result<Dense, ParseLibertyError> {
            let raw =
                self.matrices.get(name).ok_or_else(|| err(&format!("missing values ({name})")))?;
            if raw.len() != rows || raw.iter().any(|r| r.len() != cols) {
                return Err(err(&format!("values ({name}) has wrong shape")));
            }
            Ok(Dense::from_fn(rows, cols, |r, c| raw[r][c]))
        };
        let (ns, nl) = (self.slews.len(), self.loads.len());
        if ns < 2 || nl < 2 {
            return Err(err("index_slew/index_load need at least 2 points"));
        }
        let (nvi, nvo) = (self.vin.len(), self.vout.len());
        if nvi < 2 || nvo < 2 {
            return Err(err("index_vin/index_vout need at least 2 points"));
        }
        Ok(CharCell {
            name: self.name.clone(),
            kind: self.kind.ok_or_else(|| err("missing kind"))?,
            strength: self.strength.ok_or_else(|| err("missing strength"))?,
            cin: self.cin.ok_or_else(|| err("missing cin"))?,
            cout: self.cout.ok_or_else(|| err("missing cout"))?,
            rout_rise: self.rout_rise.ok_or_else(|| err("missing rout_rise"))?,
            rout_fall: self.rout_fall.ok_or_else(|| err("missing rout_fall"))?,
            timing: TimingTable {
                slews: self.slews.clone(),
                loads: self.loads.clone(),
                delay_rise: matrix("delay_rise", ns, nl)?,
                delay_fall: matrix("delay_fall", ns, nl)?,
                slew_rise: matrix("slew_rise", ns, nl)?,
                slew_fall: matrix("slew_fall", ns, nl)?,
            },
            iv: IvSurface {
                vin: self.vin.clone(),
                vout: self.vout.clone(),
                current: matrix("iv", nvi, nvo)?,
            },
            vin_delay_rise: self.vin_delay_rise,
            vin_delay_fall: self.vin_delay_fall,
            vin_stretch_rise: self.vin_stretch_rise,
            vin_stretch_fall: self.vin_stretch_fall,
        })
    }
}

/// Parse Liberty-lite text into a characterized library.
///
/// # Errors
///
/// Returns [`ParseLibertyError`] with a line number for malformed records.
pub fn parse_liberty(text: &str) -> Result<CharLibrary, ParseLibertyError> {
    let mut lib = CharLibrary::default();
    let mut cell: Option<CellBuilder> = None;
    let mut matrix: Option<(String, Vec<Vec<f64>>)> = None;

    let parse_floats = |s: &str, line: usize| -> Result<Vec<f64>, ParseLibertyError> {
        s.split_whitespace()
            .map(|t| {
                t.parse::<f64>().map_err(|_| ParseLibertyError {
                    line,
                    message: format!("invalid number {t:?}"),
                })
            })
            .collect()
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let t = raw.trim();
        let err = |m: &str| ParseLibertyError { line, message: m.to_owned() };
        if t.is_empty() || t.starts_with("//") || t.starts_with("library") || t == "}" {
            // `}` at top level closes the library; cell/matrix closers are
            // handled below because they appear on their own lines too.
            if t == "}" {
                if let Some((name, rows)) = matrix.take() {
                    let c = cell.as_mut().ok_or_else(|| err("values outside cell"))?;
                    c.matrices.insert(name, rows);
                } else if let Some(c) = cell.take() {
                    let done = c.finish(line)?;
                    lib.insert(done);
                }
                // else: closing the library block.
            }
            continue;
        }
        if let Some(rest) = t.strip_prefix("cell (") {
            if cell.is_some() {
                return Err(err("nested cell"));
            }
            let name = rest
                .split(')')
                .next()
                .ok_or_else(|| err("malformed cell header"))?
                .trim()
                .to_owned();
            cell = Some(CellBuilder { name, ..Default::default() });
            continue;
        }
        if let Some(rest) = t.strip_prefix("values (") {
            if matrix.is_some() {
                return Err(err("nested values block"));
            }
            let name = rest
                .split(')')
                .next()
                .ok_or_else(|| err("malformed values header"))?
                .trim()
                .to_owned();
            matrix = Some((name, Vec::new()));
            continue;
        }
        if let Some((_, rows)) = matrix.as_mut() {
            rows.push(parse_floats(t, line)?);
            continue;
        }
        let c = cell.as_mut().ok_or_else(|| err("attribute outside cell"))?;
        // Attribute lines: `key: value; key: value;`
        for stmt in t.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            let (key, value) = stmt
                .split_once(':')
                .ok_or_else(|| err(&format!("malformed attribute {stmt:?}")))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "kind" => {
                    c.kind = Some(kind_from(value).ok_or_else(|| err("unknown cell kind"))?);
                }
                "strength" => c.strength = Some(parse_floats(value, line)?[0]),
                "cin" => c.cin = Some(parse_floats(value, line)?[0]),
                "cout" => c.cout = Some(parse_floats(value, line)?[0]),
                "rout_rise" => c.rout_rise = Some(parse_floats(value, line)?[0]),
                "rout_fall" => c.rout_fall = Some(parse_floats(value, line)?[0]),
                "vin_delay_rise" => c.vin_delay_rise = parse_floats(value, line)?,
                "vin_delay_fall" => c.vin_delay_fall = parse_floats(value, line)?,
                "vin_stretch_rise" => c.vin_stretch_rise = parse_floats(value, line)?,
                "vin_stretch_fall" => c.vin_stretch_fall = parse_floats(value, line)?,
                "index_slew" => c.slews = parse_floats(value, line)?,
                "index_load" => c.loads = parse_floats(value, line)?,
                "index_vin" => c.vin = parse_floats(value, line)?,
                "index_vout" => c.vout = parse_floats(value, line)?,
                other => return Err(err(&format!("unknown attribute {other:?}"))),
            }
        }
    }
    if cell.is_some() || matrix.is_some() {
        return Err(ParseLibertyError {
            line: text.lines().count(),
            message: "unterminated block".into(),
        });
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charlib::characterize;
    use crate::library::CellLibrary;

    #[test]
    fn round_trip_preserves_characterization() {
        let lib = CellLibrary::standard_025();
        let ch = characterize(lib.cell("INVX2").unwrap()).unwrap();
        let mut charlib = CharLibrary::default();
        charlib.insert(ch);
        let text = write_liberty(&charlib);
        let back = parse_liberty(&text).unwrap();
        let a = charlib.cell("INVX2").unwrap();
        let b = back.cell("INVX2").unwrap();
        assert_eq!(a.kind, b.kind);
        assert!((a.rout_rise - b.rout_rise).abs() < 1e-9);
        assert!((a.cin - b.cin).abs() < 1e-25);
        // Table lookups agree everywhere.
        for &slew in &a.timing.slews {
            for &load in &a.timing.loads {
                let (d1, s1) = a.timing.lookup(slew, load, true);
                let (d2, s2) = b.timing.lookup(slew, load, true);
                assert!((d1 - d2).abs() < 1e-18 && (s1 - s2).abs() < 1e-18);
            }
        }
        // IV surface agrees on and off grid.
        let (i1, g1) = a.iv.at(1.3, 0.7);
        let (i2, g2) = b.iv.at(1.3, 0.7);
        assert!((i1 - i2).abs() < 1e-12 && (g1 - g2).abs() < 1e-9);
        // Effective-input calibration vectors round-trip.
        assert_eq!(a.vin_delay_rise.len(), b.vin_delay_rise.len());
        for (x, y) in a.vin_stretch_fall.iter().zip(&b.vin_stretch_fall) {
            assert!((x - y).abs() < 1e-12);
        }
        let ca = a.vin_calibration(0.3e-9, false);
        let cb = b.vin_calibration(0.3e-9, false);
        assert!((ca.0 - cb.0).abs() < 1e-18 && (ca.1 - cb.1).abs() < 1e-12);
    }

    #[test]
    fn parse_errors_have_line_numbers() {
        let e = parse_liberty("library (x) {\n  cell (A) {\n    bogus line\n  }\n}\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn incomplete_cell_rejected() {
        let text = "library (x) {\n  cell (A) {\n    kind: inverter;\n  }\n}\n";
        let e = parse_liberty(text).unwrap_err();
        assert!(e.message.contains("cell A"), "{}", e.message);
    }

    #[test]
    fn unterminated_block_rejected() {
        assert!(parse_liberty("library (x) {\n  cell (A) {\n").is_err());
        assert!(parse_liberty("library (x) {\n  cell (A) {\n    values (iv) {\n").is_err());
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [
            CellKind::Inverter,
            CellKind::Buffer,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::TristateBuffer,
            CellKind::Latch,
        ] {
            assert_eq!(kind_from(kind_name(k)), Some(k));
        }
        assert_eq!(kind_from("mystery"), None);
    }

    #[test]
    fn empty_library_round_trips() {
        let text = write_liberty(&CharLibrary::default());
        let lib = parse_liberty(&text).unwrap();
        assert!(lib.is_empty());
    }
}
