//! Cell pre-characterization: the one-time flow that turns transistor-level
//! cell netlists into the tables both driver models consume.
//!
//! For each cell, the harness runs the `pcv-spice` substrate to produce:
//!
//! * an NLDM-style [`TimingTable`] — 50 % delay and 10–90 % output slew over
//!   an (input slew × load capacitance) grid, rise and fall;
//! * fitted *drive resistances* (`rout_rise`, `rout_fall`) from the slope of
//!   delay versus load (`delay ≈ d0 + R·C·ln 2`) — the paper's
//!   "timing-library based" linear driver;
//! * a quasi-static [`IvSurface`] `I(V_in, V_out)` from DC sweeps with the
//!   output clamped — the paper's "non-linear yet simple cell model";
//! * pin capacitances (`cin` analytic from gate areas, `cout` from junction
//!   areas).

use crate::error::CellError;
use crate::library::{Cell, CellKind, CellLibrary};
use crate::VDD;
use pcv_netlist::{Circuit, SourceWave};
use pcv_sparse::Dense;
use pcv_spice::{SimOptions, Simulator};
use std::collections::BTreeMap;

/// Characterization grid: input slews (seconds).
pub const SLEW_GRID: [f64; 4] = [0.05e-9, 0.15e-9, 0.4e-9, 1.0e-9];
/// Characterization grid: load capacitances (farads).
pub const LOAD_GRID: [f64; 4] = [5e-15, 25e-15, 80e-15, 200e-15];
/// I–V surface grid resolution per axis (rail-refined, see
/// [`iv_grid`]).
pub const IV_POINTS: usize = 13;

/// The I–V surface sampling grid: non-uniform, refined near the rails
/// where a quiet victim's holding conductance lives (a uniform grid's
/// secant underestimates the triode conductance at `v ≈ 0` and `v ≈ Vdd`).
pub fn iv_grid() -> Vec<f64> {
    // Fractions of Vdd.
    const FRACS: [f64; IV_POINTS] =
        [0.0, 0.03, 0.08, 0.16, 0.28, 0.42, 0.5, 0.58, 0.72, 0.84, 0.92, 0.97, 1.0];
    FRACS.iter().map(|f| f * VDD).collect()
}

/// NLDM-style delay/slew tables over (input slew × load) for both edges.
#[derive(Debug, Clone)]
pub struct TimingTable {
    /// Input slew axis (seconds).
    pub slews: Vec<f64>,
    /// Load capacitance axis (farads).
    pub loads: Vec<f64>,
    /// 50 % delay, output rising (`[slew_idx, load_idx]`).
    pub delay_rise: Dense,
    /// 50 % delay, output falling.
    pub delay_fall: Dense,
    /// 10–90 % output slew, rising.
    pub slew_rise: Dense,
    /// 90–10 % output slew, falling.
    pub slew_fall: Dense,
}

impl TimingTable {
    /// Bilinear lookup with clamping: `(delay, output_slew)` for the given
    /// input slew, load and edge direction.
    pub fn lookup(&self, in_slew: f64, load: f64, rising: bool) -> (f64, f64) {
        let (d, s) = if rising {
            (&self.delay_rise, &self.slew_rise)
        } else {
            (&self.delay_fall, &self.slew_fall)
        };
        (
            bilinear(&self.slews, &self.loads, d, in_slew, load),
            bilinear(&self.slews, &self.loads, s, in_slew, load),
        )
    }
}

/// Quasi-static output current surface `I(V_in, V_out)`: the current the
/// cell injects into its output node, tabulated on a rectangular grid.
#[derive(Debug, Clone)]
pub struct IvSurface {
    /// Input voltage axis.
    pub vin: Vec<f64>,
    /// Output voltage axis.
    pub vout: Vec<f64>,
    /// `current[(i, j)]` = injected current at `vin[i]`, `vout[j]`.
    pub current: Dense,
}

impl IvSurface {
    /// Injected current and its derivative with respect to `vout`, bilinear
    /// on the grid (clamped outside).
    pub fn at(&self, vin: f64, vout: f64) -> (f64, f64) {
        let i = bilinear(&self.vin, &self.vout, &self.current, vin, vout);
        // Derivative along vout from the enclosing grid cell.
        let j = bracket(&self.vout, vout);
        let (v0, v1) = (self.vout[j], self.vout[j + 1]);
        let ii = bracket(&self.vin, vin);
        let frac = if self.vin[ii + 1] > self.vin[ii] {
            ((vin - self.vin[ii]) / (self.vin[ii + 1] - self.vin[ii])).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let di_lo = (self.current[(ii, j + 1)] - self.current[(ii, j)]) / (v1 - v0);
        let di_hi = (self.current[(ii + 1, j + 1)] - self.current[(ii + 1, j)]) / (v1 - v0);
        (i, di_lo + frac * (di_hi - di_lo))
    }
}

/// A fully characterized cell.
#[derive(Debug, Clone)]
pub struct CharCell {
    /// Cell name.
    pub name: String,
    /// Logical function.
    pub kind: CellKind,
    /// Drive strength.
    pub strength: f64,
    /// Input pin capacitance (farads).
    pub cin: f64,
    /// Effective output (junction) capacitance (farads).
    pub cout: f64,
    /// Fitted pull-up drive resistance (ohms).
    pub rout_rise: f64,
    /// Fitted pull-down drive resistance (ohms).
    pub rout_fall: f64,
    /// Delay/slew tables.
    pub timing: TimingTable,
    /// Nonlinear output current surface.
    pub iv: IvSurface,
    /// Effective-input calibration for rising outputs, one entry per
    /// [`TimingTable::slews`] point: extra delay (seconds) applied to the
    /// imposed input waveform so the quasi-static model reproduces the
    /// measured min-load delay (absorbs internal stage delay of
    /// multi-stage cells).
    pub vin_delay_rise: Vec<f64>,
    /// Effective-input calibration for falling outputs (seconds/slew point).
    pub vin_delay_fall: Vec<f64>,
    /// Effective-input stretch factors for rising outputs (per slew point):
    /// the imposed input ramp is lengthened so the quasi-static model
    /// reproduces the measured min-load output slew.
    pub vin_stretch_rise: Vec<f64>,
    /// Effective-input stretch factors for falling outputs.
    pub vin_stretch_fall: Vec<f64>,
}

impl CharCell {
    /// Interpolated effective-input calibration `(delay, stretch)` for the
    /// given input slew and output edge.
    pub fn vin_calibration(&self, in_slew: f64, out_rising: bool) -> (f64, f64) {
        let (delays, stretches) = if out_rising {
            (&self.vin_delay_rise, &self.vin_stretch_rise)
        } else {
            (&self.vin_delay_fall, &self.vin_stretch_fall)
        };
        if delays.is_empty() {
            return (0.0, 1.0);
        }
        let xs = &self.timing.slews;
        if delays.len() != xs.len() {
            return (delays[0], stretches.first().copied().unwrap_or(1.0));
        }
        let interp = |ys: &[f64]| -> f64 {
            if in_slew <= xs[0] {
                return ys[0];
            }
            if in_slew >= xs[xs.len() - 1] {
                return ys[ys.len() - 1];
            }
            let i = xs.partition_point(|&v| v <= in_slew).clamp(1, xs.len() - 1);
            let f = (in_slew - xs[i - 1]) / (xs[i] - xs[i - 1]);
            ys[i - 1] + f * (ys[i] - ys[i - 1])
        };
        (interp(delays), interp(stretches))
    }
}

/// A characterized library keyed by cell name.
#[derive(Debug, Clone, Default)]
pub struct CharLibrary {
    cells: BTreeMap<String, CharCell>,
}

impl CharLibrary {
    /// Insert (or replace) a characterized cell.
    pub fn insert(&mut self, cell: CharCell) {
        self.cells.insert(cell.name.clone(), cell);
    }

    /// Look up a characterized cell.
    pub fn cell(&self, name: &str) -> Option<&CharCell> {
        self.cells.get(name)
    }

    /// Look up a characterized cell, erroring on absence.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::UnknownCell`].
    pub fn require(&self, name: &str) -> Result<&CharCell, CellError> {
        self.cell(name).ok_or_else(|| CellError::UnknownCell { name: name.to_owned() })
    }

    /// Number of characterized cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate in name order.
    pub fn iter(&self) -> impl Iterator<Item = &CharCell> {
        self.cells.values()
    }
}

/// Characterize every driver cell of a library (latches get pin caps only
/// and are excluded here; their `cin` comes from [`Cell::input_cap`]).
///
/// # Errors
///
/// Propagates the first characterization failure.
pub fn characterize_library(lib: &CellLibrary) -> Result<CharLibrary, CellError> {
    let mut out = CharLibrary::default();
    for cell in lib.iter() {
        if cell.kind == CellKind::Latch {
            continue;
        }
        let ch = characterize(cell)?;
        out.cells.insert(ch.name.clone(), ch);
    }
    Ok(out)
}

/// Characterize a single cell.
///
/// # Errors
///
/// Returns [`CellError::Sim`] on simulation failure or
/// [`CellError::Measurement`] if an output transition cannot be observed.
pub fn characterize(cell: &Cell) -> Result<CharCell, CellError> {
    let slews: Vec<f64> = SLEW_GRID.to_vec();
    let loads: Vec<f64> = LOAD_GRID.to_vec();
    let ns = slews.len();
    let nl = loads.len();
    let mut delay_rise = Dense::zeros(ns, nl);
    let mut delay_fall = Dense::zeros(ns, nl);
    let mut slew_rise = Dense::zeros(ns, nl);
    let mut slew_fall = Dense::zeros(ns, nl);

    for (si, &slew) in slews.iter().enumerate() {
        for (li, &load) in loads.iter().enumerate() {
            let (d, s) = measure_edge(cell, slew, load, true)?;
            delay_rise[(si, li)] = d;
            slew_rise[(si, li)] = s;
            let (d, s) = measure_edge(cell, slew, load, false)?;
            delay_fall[(si, li)] = d;
            slew_fall[(si, li)] = s;
        }
    }

    // Drive resistance from the delay-vs-load slope at the mid slew:
    // delay ≈ d0 + R C ln 2 (the classic lumped-RC charge model).
    let mid = ns / 2;
    let fit = |table: &Dense| -> f64 {
        let (c0, c1) = (loads[0], loads[nl - 1]);
        let (d0, d1) = (table[(mid, 0)], table[(mid, nl - 1)]);
        ((d1 - d0) / (c1 - c0) / std::f64::consts::LN_2).max(1.0)
    };
    let rout_rise = fit(&delay_rise);
    let rout_fall = fit(&delay_fall);

    let iv = measure_iv(cell)?;
    let cout = output_cap(cell);
    let timing = TimingTable { slews, loads, delay_rise, delay_fall, slew_rise, slew_fall };

    // Effective-input calibration: make the quasi-static IV model reproduce
    // the measured min-load delay and slew at every input-slew grid point.
    // Single-stage cells come out near (0, 1); multi-stage cells absorb
    // their internal stage delay and edge-rate saturation.
    let mut vin_delay_rise = Vec::with_capacity(ns);
    let mut vin_stretch_rise = Vec::with_capacity(ns);
    let mut vin_delay_fall = Vec::with_capacity(ns);
    let mut vin_stretch_fall = Vec::with_capacity(ns);
    for &cal_slew in &timing.slews {
        let (d, st) = calibrate_vin(cell, &iv, &timing, cout, true, cal_slew);
        vin_delay_rise.push(d);
        vin_stretch_rise.push(st);
        let (d, st) = calibrate_vin(cell, &iv, &timing, cout, false, cal_slew);
        vin_delay_fall.push(d);
        vin_stretch_fall.push(st);
    }

    Ok(CharCell {
        name: cell.name.clone(),
        kind: cell.kind,
        strength: cell.strength,
        cin: cell.input_cap(),
        cout,
        rout_rise,
        rout_fall,
        timing,
        iv,
        vin_delay_rise,
        vin_delay_fall,
        vin_stretch_rise,
        vin_stretch_fall,
    })
}

/// Fixed-point calibration of the effective input waveform: find the extra
/// delay and ramp stretch that make the quasi-static model match the
/// characterized (delay, output slew) at the minimum table load.
fn calibrate_vin(
    cell: &Cell,
    iv: &IvSurface,
    timing: &TimingTable,
    cout: f64,
    out_rising: bool,
    in_slew: f64,
) -> (f64, f64) {
    let load = timing.loads[0];
    let (target_delay, target_slew) = timing.lookup(in_slew, load, out_rising);
    let in_rising = if cell.kind.inverting() { !out_rising } else { out_rising };
    let (v0_in, v1_in) = if in_rising { (0.0, VDD) } else { (VDD, 0.0) };
    let c_total = load + cout;

    let mut delay = 0.0f64;
    let mut stretch = 1.0f64;
    for _ in 0..5 {
        // Integrate C dv/dt = I(vin(t), v) with an imposed effective ramp.
        let t0 = 0.2e-9;
        let ramp = (in_slew / 0.8) * stretch;
        let t_in_50 = t0 + 0.5 * (in_slew / 0.8); // 50% of the *raw* input
        let t_end = t0 + delay.max(0.0) + ramp + 20.0 * target_delay.max(50e-12) + 2e-9;
        let dt = (t_end / 40_000.0).min(2e-13);
        let mut v = if out_rising { 0.0 } else { VDD };
        let mut t = 0.0;
        let mut times = Vec::with_capacity(2048);
        let mut vals = Vec::with_capacity(2048);
        let mut step = 0usize;
        while t < t_end {
            let frac = ((t - t0 - delay) / ramp).clamp(0.0, 1.0);
            let vin = v0_in + (v1_in - v0_in) * frac;
            let (i, _) = iv.at(vin, v);
            v += dt * i / c_total;
            v = v.clamp(-0.5, VDD + 0.5);
            t += dt;
            if step.is_multiple_of(16) {
                times.push(t);
                vals.push(v);
            }
            step += 1;
        }
        let w = pcv_netlist::Waveform::from_samples(times, vals);
        let t_out = w.crossing(0.5 * VDD, out_rising, 0.0);
        let s_out = w.slew_10_90(VDD, out_rising, 0.0);
        let (Some(t_out), Some(s_out)) = (t_out, s_out) else {
            // Model never transitions (pathological surface): keep current
            // calibration rather than diverging.
            break;
        };
        let model_delay = t_out - t_in_50;
        let d_err = target_delay - model_delay;
        let s_ratio = (target_slew / s_out).clamp(0.25, 4.0);
        delay += d_err;
        stretch = (stretch * s_ratio).clamp(0.1, 10.0);
        if d_err.abs() < 1e-12 && (s_ratio - 1.0).abs() < 0.02 {
            break;
        }
    }
    // A slightly negative delay is legitimate: the *effective* ramp of a
    // stretched edge must begin before the nominal switch time for the 50 %
    // crossing to line up. Bound it to stay causally sane.
    (delay.clamp(-1e-9, 2e-9), stretch)
}

/// One transient measurement: input edge with the given slew into the cell
/// loaded by `load`; returns `(50 % delay, 10–90 % output slew)`.
fn measure_edge(
    cell: &Cell,
    slew: f64,
    load: f64,
    out_rising: bool,
) -> Result<(f64, f64), CellError> {
    // Output rises when the controlling input goes to the "asserting low"
    // level for inverting cells, high for non-inverting ones.
    let in_rising = if cell.kind.inverting() { !out_rising } else { out_rising };
    let (v0, v1) = if in_rising { (0.0, VDD) } else { (VDD, 0.0) };

    let mut tstop = 2e-9 + 4.0 * slew + 40.0 * (1500.0 / cell.strength) * load;
    for _attempt in 0..4 {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
        // 10–90 % slew corresponds to 0.8 of the full-swing ramp.
        let t0 = 0.2 * tstop.min(1e-9);
        ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::step(v0, v1, t0, slew / 0.8));
        let inputs = vec![inp; cell.kind.num_inputs()];
        cell.build(&mut ckt, &inputs, out, vdd);
        ckt.add_capacitor(out, Circuit::GROUND, load.max(1e-18));

        let res =
            Simulator::new(&ckt).transient_probed(tstop, &SimOptions::default(), &[inp, out])?;
        let win = res.waveform(inp);
        let wout = res.waveform(out);
        let t_in = win.crossing(0.5 * VDD, in_rising, 0.0);
        let t_out = wout.crossing(0.5 * VDD, out_rising, 0.0);
        let s_out = wout.slew_10_90(VDD, out_rising, 0.0);
        if let (Some(ti), Some(to), Some(so)) = (t_in, t_out, s_out) {
            return Ok((to - ti, so));
        }
        tstop *= 3.0;
    }
    Err(CellError::Measurement { what: "output transition", cell: cell.name.clone() })
}

/// Sample the quasi-static output current surface by clamping the output
/// with a voltage source and reading its branch current at DC.
fn measure_iv(cell: &Cell) -> Result<IvSurface, CellError> {
    let grid: Vec<f64> = iv_grid();
    let mut current = Dense::zeros(IV_POINTS, IV_POINTS);
    for (i, &vin) in grid.iter().enumerate() {
        for (j, &vout) in grid.iter().enumerate() {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let inp = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_vsrc(vdd, Circuit::GROUND, SourceWave::Dc(VDD));
            ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::Dc(vin));
            let inputs = vec![inp; cell.kind.num_inputs()];
            cell.build(&mut ckt, &inputs, out, vdd);
            // Output clamp: its branch current *is* the injected current
            // (positive current leaves the node into the clamp).
            let clamp_idx = ckt.add_vsrc(out, Circuit::GROUND, SourceWave::Dc(vout));
            let sim = Simulator::new(&ckt);
            let x = sim.dc(&SimOptions::default())?;
            let row = sim
                .layout()
                .vsrc_rows()
                .iter()
                .find(|&&(e, _)| e == clamp_idx)
                .map(|&(_, r)| r)
                .expect("clamp source has a branch row");
            current[(i, j)] = x[row];
        }
    }
    Ok(IvSurface { vin: grid.clone(), vout: grid, current })
}

/// Junction capacitance hanging on the output node, per cell topology.
fn output_cap(cell: &Cell) -> f64 {
    let (wn, wp) = cell.widths();
    use pcv_netlist::MosParams;
    let nj = |w: f64| MosParams::nmos_025(w).junction_cap();
    let pj = |w: f64| MosParams::pmos_025(w).junction_cap();
    match cell.kind {
        CellKind::Inverter | CellKind::Buffer | CellKind::TristateBuffer => nj(wn) + pj(wp),
        CellKind::Nand2 => nj(2.0 * wn) + 2.0 * pj(wp),
        CellKind::Nor2 => 2.0 * nj(wn) + pj(2.0 * wp),
        CellKind::Latch => 0.0,
    }
}

/// Bilinear interpolation on a rectangular grid with clamping.
fn bilinear(xs: &[f64], ys: &[f64], z: &Dense, x: f64, y: f64) -> f64 {
    let i = bracket(xs, x);
    let j = bracket(ys, y);
    let fx = frac(xs[i], xs[i + 1], x);
    let fy = frac(ys[j], ys[j + 1], y);
    let z00 = z[(i, j)];
    let z10 = z[(i + 1, j)];
    let z01 = z[(i, j + 1)];
    let z11 = z[(i + 1, j + 1)];
    z00 * (1.0 - fx) * (1.0 - fy) + z10 * fx * (1.0 - fy) + z01 * (1.0 - fx) * fy + z11 * fx * fy
}

fn bracket(xs: &[f64], x: f64) -> usize {
    debug_assert!(xs.len() >= 2);
    let mut i = xs.partition_point(|&v| v <= x);
    i = i.clamp(1, xs.len() - 1);
    i - 1
}

fn frac(a: f64, b: f64, x: f64) -> f64 {
    if b > a {
        ((x - a) / (b - a)).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellLibrary;

    fn inv4() -> CharCell {
        let lib = CellLibrary::standard_025();
        characterize(lib.cell("INVX4").unwrap()).unwrap()
    }

    #[test]
    fn inverter_characterization_is_sane() {
        let ch = inv4();
        // Delays grow with load at fixed slew.
        for si in 0..SLEW_GRID.len() {
            for li in 1..LOAD_GRID.len() {
                assert!(
                    ch.timing.delay_rise[(si, li)] > ch.timing.delay_rise[(si, li - 1)],
                    "rise delay monotone in load"
                );
                assert!(
                    ch.timing.delay_fall[(si, li)] > ch.timing.delay_fall[(si, li - 1)],
                    "fall delay monotone in load"
                );
            }
        }
        // Drive resistances in a plausible range for an X4 0.25 µm inverter.
        assert!(ch.rout_fall > 100.0 && ch.rout_fall < 5000.0, "{}", ch.rout_fall);
        assert!(ch.rout_rise > 100.0 && ch.rout_rise < 5000.0, "{}", ch.rout_rise);
        assert!(ch.cin > 0.0 && ch.cout > 0.0);
    }

    #[test]
    fn stronger_cells_have_lower_resistance() {
        let lib = CellLibrary::standard_025();
        let ch1 = characterize(lib.cell("INVX1").unwrap()).unwrap();
        let ch8 = characterize(lib.cell("INVX8").unwrap()).unwrap();
        assert!(
            ch8.rout_fall < 0.5 * ch1.rout_fall,
            "X8 {} vs X1 {}",
            ch8.rout_fall,
            ch1.rout_fall
        );
    }

    #[test]
    fn iv_surface_signs_and_derivative() {
        let ch = inv4();
        // Input low → pull-up: positive injection when output below VDD.
        let (i_up, g_up) = ch.iv.at(0.0, 0.5 * VDD);
        assert!(i_up > 1e-5, "pull-up current, got {i_up}");
        assert!(g_up < 0.0, "current falls as vout rises toward vdd");
        // Input high → pull-down: negative injection when output above 0.
        let (i_dn, _) = ch.iv.at(VDD, 0.5 * VDD);
        assert!(i_dn < -1e-5, "pull-down current, got {i_dn}");
        // Equilibrium corners: held output carries ~no current.
        let (i_hold, _) = ch.iv.at(VDD, 0.0);
        assert!(i_hold.abs() < 1e-6, "held-low equilibrium, got {i_hold}");
    }

    #[test]
    fn timing_lookup_interpolates() {
        let ch = inv4();
        let (d_lo, _) = ch.timing.lookup(SLEW_GRID[0], LOAD_GRID[0], true);
        let (d_hi, _) = ch.timing.lookup(SLEW_GRID[0], LOAD_GRID[3], true);
        let (d_mid, _) = ch.timing.lookup(SLEW_GRID[0], 0.5 * (LOAD_GRID[0] + LOAD_GRID[3]), true);
        assert!(d_lo < d_mid && d_mid < d_hi);
        // Clamping outside the grid.
        let (d_clamp, _) = ch.timing.lookup(SLEW_GRID[0], 10.0 * LOAD_GRID[3], true);
        assert!((d_clamp - d_hi).abs() < 1e-15);
    }

    #[test]
    fn nand_characterizes_with_tied_inputs() {
        let lib = CellLibrary::standard_025();
        let ch = characterize(lib.cell("NAND2X2").unwrap()).unwrap();
        assert!(ch.rout_rise > 10.0 && ch.rout_fall > 10.0);
        assert_eq!(ch.kind, CellKind::Nand2);
    }

    #[test]
    fn char_library_skips_latch() {
        let mut lib = CellLibrary::new();
        lib.add(crate::library::Cell {
            name: "INVX2".into(),
            kind: CellKind::Inverter,
            strength: 2.0,
        });
        lib.add(crate::library::Cell {
            name: "LATCH".into(),
            kind: CellKind::Latch,
            strength: 1.0,
        });
        let ch = characterize_library(&lib).unwrap();
        assert_eq!(ch.len(), 1);
        assert!(ch.cell("INVX2").is_some());
        assert!(ch.require("LATCH").is_err());
        assert!(!ch.is_empty());
        assert_eq!(ch.iter().count(), 1);
    }

    #[test]
    fn calibration_vectors_align_with_slew_grid() {
        let ch = inv4();
        assert_eq!(ch.vin_delay_rise.len(), ch.timing.slews.len());
        assert_eq!(ch.vin_stretch_fall.len(), ch.timing.slews.len());
        // Interpolation endpoints match the stored vectors.
        let (d0, s0) = ch.vin_calibration(ch.timing.slews[0], true);
        assert!((d0 - ch.vin_delay_rise[0]).abs() < 1e-18);
        assert!((s0 - ch.vin_stretch_rise[0]).abs() < 1e-12);
        // Clamped outside the grid.
        let (d_hi, _) = ch.vin_calibration(1.0, true);
        assert!((d_hi - *ch.vin_delay_rise.last().unwrap()).abs() < 1e-18);
    }

    #[test]
    fn buffers_get_larger_calibration_than_inverters() {
        // A two-stage buffer hides internal delay the quasi-static surface
        // cannot see; calibration must absorb it. Single-stage inverters
        // need much less.
        let lib = CellLibrary::standard_025();
        let inv = characterize(lib.cell("INVX4").unwrap()).unwrap();
        let buf = characterize(lib.cell("BUFX8").unwrap()).unwrap();
        // Buffers saturate their output edge rate, so their effective input
        // needs far more stretching than an inverter's at fast slews.
        let (_, st_inv) = inv.vin_calibration(inv.timing.slews[1], true);
        let (_, st_buf) = buf.vin_calibration(buf.timing.slews[1], true);
        assert!(
            st_buf > 1.5 * st_inv,
            "buffer needs more edge correction: inv {st_inv} vs buf {st_buf}"
        );
        // Stretch factors are positive and sane.
        for ch in [&inv, &buf] {
            for &st in ch.vin_stretch_rise.iter().chain(&ch.vin_stretch_fall) {
                assert!(st > 0.05 && st <= 10.0, "sane stretch {st}");
            }
        }
    }

    #[test]
    fn bilinear_helper_basics() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let z = Dense::from_rows(&[&[0.0, 1.0], &[2.0, 3.0]]);
        assert_eq!(bilinear(&xs, &ys, &z, 0.0, 0.0), 0.0);
        assert_eq!(bilinear(&xs, &ys, &z, 1.0, 1.0), 3.0);
        assert_eq!(bilinear(&xs, &ys, &z, 0.5, 0.5), 1.5);
        // Clamps.
        assert_eq!(bilinear(&xs, &ys, &z, -1.0, 2.0), 1.0);
    }
}
