//! Error type for cell characterization.

use std::fmt;

/// Errors produced while characterizing cells or building driver models.
#[derive(Debug)]
pub enum CellError {
    /// The underlying circuit simulation failed.
    Sim(pcv_spice::SimError),
    /// A waveform measurement (crossing, slew) was not observable.
    Measurement {
        /// What was being measured.
        what: &'static str,
        /// The cell being characterized.
        cell: String,
    },
    /// A referenced cell does not exist in the library.
    UnknownCell {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Sim(e) => write!(f, "characterization simulation failed: {e}"),
            CellError::Measurement { what, cell } => {
                write!(f, "could not measure {what} for cell {cell}")
            }
            CellError::UnknownCell { name } => write!(f, "unknown cell {name:?}"),
        }
    }
}

impl std::error::Error for CellError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CellError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pcv_spice::SimError> for CellError {
    fn from(e: pcv_spice::SimError) -> Self {
        CellError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CellError::UnknownCell { name: "X".into() };
        assert!(e.to_string().contains("X"));
        let e = CellError::Measurement { what: "slew", cell: "INVX1".into() };
        assert!(e.to_string().contains("INVX1"));
        let e = CellError::Sim(pcv_spice::SimError::NoConvergence { t: 0.0 });
        assert!(e.to_string().contains("failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
