//! The 0.25 µm cell library: cell definitions and their transistor-level
//! netlists.
//!
//! Drive strengths follow the usual `X<n>` convention: an `X4` device uses
//! 4× the unit transistor widths. The PMOS/NMOS width ratio is 2.5 to
//! roughly balance rise and fall strength at this technology's mobility
//! ratio.

use pcv_netlist::{Circuit, MosParams, NodeId};
use std::collections::BTreeMap;

/// Unit NMOS width (meters) for an X1 cell.
pub const UNIT_WN: f64 = 0.6e-6;
/// PMOS/NMOS width ratio.
pub const PN_RATIO: f64 = 2.5;

/// Logical function of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Single-stage inverter.
    Inverter,
    /// Two-stage (non-inverting) buffer.
    Buffer,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Tri-state buffer (electrically a buffer when enabled; the tri-state
    /// property matters to the bus analysis rules, not to the device
    /// physics).
    TristateBuffer,
    /// Transparent latch data pin (used as a pure receiver in the DSP
    /// design; never a driver).
    Latch,
}

impl CellKind {
    /// Number of logic inputs.
    pub fn num_inputs(self) -> usize {
        match self {
            CellKind::Nand2 | CellKind::Nor2 => 2,
            _ => 1,
        }
    }

    /// Whether the output logically inverts the (first) input.
    pub fn inverting(self) -> bool {
        matches!(self, CellKind::Inverter | CellKind::Nand2 | CellKind::Nor2)
    }

    /// Whether instances of this kind drive buses tri-state.
    pub fn tristate(self) -> bool {
        matches!(self, CellKind::TristateBuffer)
    }
}

/// A library cell: a kind plus a drive strength.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell name, e.g. `"INVX4"`.
    pub name: String,
    /// Logical function.
    pub kind: CellKind,
    /// Drive strength multiplier (the `X` number).
    pub strength: f64,
}

impl Cell {
    /// Unit NMOS/PMOS widths scaled by this cell's strength.
    pub fn widths(&self) -> (f64, f64) {
        (UNIT_WN * self.strength, UNIT_WN * PN_RATIO * self.strength)
    }

    /// Input pin capacitance (farads), computed from the gate areas of the
    /// transistors the pin drives.
    pub fn input_cap(&self) -> f64 {
        let (wn, wp) = self.widths();
        let stage1_scale = match self.kind {
            // Buffers present a smaller first stage to the net.
            CellKind::Buffer | CellKind::TristateBuffer => 0.25,
            // A latch data pin looks like a small transmission gate + inverter.
            CellKind::Latch => 0.35,
            _ => 1.0,
        };
        let n = MosParams::nmos_025(wn * stage1_scale);
        let p = MosParams::pmos_025(wp * stage1_scale);
        n.gate_cap() + p.gate_cap()
    }

    /// Build the transistor-level netlist of this cell inside `ckt`.
    ///
    /// `inputs` must have [`CellKind::num_inputs`] entries; `vdd` is the
    /// supply node. Internal nodes get fresh names. For characterization and
    /// crosstalk analysis the tri-state buffer is built enabled.
    ///
    /// # Panics
    ///
    /// Panics if the input count is wrong or the kind is [`CellKind::Latch`]
    /// (latches are receivers, not drivers).
    pub fn build(&self, ckt: &mut Circuit, inputs: &[NodeId], output: NodeId, vdd: NodeId) {
        assert_eq!(inputs.len(), self.kind.num_inputs(), "input count mismatch");
        let (wn, wp) = self.widths();
        let gnd = Circuit::GROUND;
        match self.kind {
            CellKind::Inverter => {
                ckt.add_mosfet(output, inputs[0], gnd, MosParams::nmos_025(wn));
                ckt.add_mosfet(output, inputs[0], vdd, MosParams::pmos_025(wp));
            }
            CellKind::Buffer | CellKind::TristateBuffer => {
                let mid = ckt.fresh_node("buf_mid");
                // First stage at quarter strength, second at full strength.
                ckt.add_mosfet(mid, inputs[0], gnd, MosParams::nmos_025(wn * 0.25));
                ckt.add_mosfet(mid, inputs[0], vdd, MosParams::pmos_025(wp * 0.25));
                ckt.add_mosfet(output, mid, gnd, MosParams::nmos_025(wn));
                ckt.add_mosfet(output, mid, vdd, MosParams::pmos_025(wp));
            }
            CellKind::Nand2 => {
                // Series NMOS (each 2x to compensate stacking), parallel PMOS.
                let mid = ckt.fresh_node("nand_mid");
                ckt.add_mosfet(output, inputs[0], mid, MosParams::nmos_025(2.0 * wn));
                ckt.add_mosfet(mid, inputs[1], gnd, MosParams::nmos_025(2.0 * wn));
                ckt.add_mosfet(output, inputs[0], vdd, MosParams::pmos_025(wp));
                ckt.add_mosfet(output, inputs[1], vdd, MosParams::pmos_025(wp));
            }
            CellKind::Nor2 => {
                // Parallel NMOS, series PMOS (each 2x).
                let mid = ckt.fresh_node("nor_mid");
                ckt.add_mosfet(output, inputs[0], gnd, MosParams::nmos_025(wn));
                ckt.add_mosfet(output, inputs[1], gnd, MosParams::nmos_025(wn));
                ckt.add_mosfet(output, inputs[0], mid, MosParams::pmos_025(2.0 * wp));
                ckt.add_mosfet(mid, inputs[1], vdd, MosParams::pmos_025(2.0 * wp));
            }
            CellKind::Latch => panic!("latch cells are receivers, not drivers"),
        }
    }
}

/// A named collection of cells.
///
/// # Example
///
/// ```
/// # use pcv_cells::library::CellLibrary;
/// let lib = CellLibrary::standard_025();
/// assert!(lib.len() >= 50);
/// assert!(lib.cell("INVX4").is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CellLibrary {
    cells: BTreeMap<String, Cell>,
}

impl CellLibrary {
    /// An empty library.
    pub fn new() -> Self {
        CellLibrary::default()
    }

    /// The standard 0.25 µm library: 53 cells across five kinds and a
    /// ladder of drive strengths (the paper's experiments span "more than 50
    /// different types of 0.25 µm cells").
    pub fn standard_025() -> Self {
        let mut lib = CellLibrary::new();
        let inv_strengths =
            [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0, 32.0, 40.0, 48.0];
        for &s in &inv_strengths {
            lib.add(Cell {
                name: format!("INVX{}", fmt_x(s)),
                kind: CellKind::Inverter,
                strength: s,
            });
        }
        let buf_strengths =
            [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0, 32.0, 40.0, 48.0];
        for &s in &buf_strengths {
            lib.add(Cell {
                name: format!("BUFX{}", fmt_x(s)),
                kind: CellKind::Buffer,
                strength: s,
            });
        }
        let nand_strengths = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0];
        for &s in &nand_strengths {
            lib.add(Cell {
                name: format!("NAND2X{}", fmt_x(s)),
                kind: CellKind::Nand2,
                strength: s,
            });
        }
        let nor_strengths = [1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0];
        for &s in &nor_strengths {
            lib.add(Cell { name: format!("NOR2X{}", fmt_x(s)), kind: CellKind::Nor2, strength: s });
        }
        let tbuf_strengths = [2.0, 4.0, 8.0, 16.0, 32.0];
        for &s in &tbuf_strengths {
            lib.add(Cell {
                name: format!("TBUFX{}", fmt_x(s)),
                kind: CellKind::TristateBuffer,
                strength: s,
            });
        }
        lib.add(Cell { name: "LATCH".into(), kind: CellKind::Latch, strength: 1.0 });
        lib
    }

    /// Add a cell (replacing any cell of the same name).
    pub fn add(&mut self, cell: Cell) {
        self.cells.insert(cell.name.clone(), cell);
    }

    /// Look up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.get(name)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate cells in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.cells.values()
    }

    /// Names of all *driver* cells (everything except latches), in name
    /// order — the population the characterization studies sweep.
    pub fn driver_names(&self) -> Vec<&str> {
        self.cells.values().filter(|c| c.kind != CellKind::Latch).map(|c| c.name.as_str()).collect()
    }
}

fn fmt_x(s: f64) -> String {
    if (s - s.round()).abs() < 1e-9 {
        format!("{}", s.round() as i64)
    } else {
        format!("{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_size_and_lookup() {
        let lib = CellLibrary::standard_025();
        assert_eq!(lib.len(), 53);
        assert!(lib.cell("INVX1").is_some());
        assert!(lib.cell("BUFX32").is_some());
        assert!(lib.cell("NAND2X8").is_some());
        assert!(lib.cell("TBUFX16").is_some());
        assert!(lib.cell("LATCH").is_some());
        assert!(lib.cell("XYZ").is_none());
        assert!(!lib.is_empty());
    }

    #[test]
    fn driver_names_exclude_latch() {
        let lib = CellLibrary::standard_025();
        let drivers = lib.driver_names();
        assert!(!drivers.contains(&"LATCH"));
        assert_eq!(drivers.len(), lib.len() - 1);
    }

    #[test]
    fn widths_scale_with_strength() {
        let lib = CellLibrary::standard_025();
        let x1 = lib.cell("INVX1").unwrap();
        let x4 = lib.cell("INVX4").unwrap();
        assert!((x4.widths().0 / x1.widths().0 - 4.0).abs() < 1e-12);
        assert!(x4.input_cap() > x1.input_cap());
    }

    #[test]
    fn inverter_netlist_shape() {
        let lib = CellLibrary::standard_025();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let z = ckt.node("z");
        lib.cell("INVX2").unwrap().build(&mut ckt, &[a], z, vdd);
        assert_eq!(ckt.element_counts().4, 2);
    }

    #[test]
    fn nand_and_nor_netlists() {
        let lib = CellLibrary::standard_025();
        for name in ["NAND2X2", "NOR2X2"] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let a = ckt.node("a");
            let b = ckt.node("b");
            let z = ckt.node("z");
            lib.cell(name).unwrap().build(&mut ckt, &[a, b], z, vdd);
            assert_eq!(ckt.element_counts().4, 4, "{name} has 4 transistors");
        }
    }

    #[test]
    fn buffer_has_two_stages() {
        let lib = CellLibrary::standard_025();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let z = ckt.node("z");
        lib.cell("BUFX4").unwrap().build(&mut ckt, &[a], z, vdd);
        assert_eq!(ckt.element_counts().4, 4);
    }

    #[test]
    #[should_panic(expected = "input count")]
    fn wrong_input_count_panics() {
        let lib = CellLibrary::standard_025();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let z = ckt.node("z");
        lib.cell("NAND2X1").unwrap().build(&mut ckt, &[a], z, vdd);
    }

    #[test]
    #[should_panic(expected = "receivers")]
    fn latch_cannot_drive() {
        let lib = CellLibrary::standard_025();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let z = ckt.node("z");
        lib.cell("LATCH").unwrap().build(&mut ckt, &[a], z, vdd);
    }

    #[test]
    fn kind_properties() {
        assert_eq!(CellKind::Nand2.num_inputs(), 2);
        assert_eq!(CellKind::Inverter.num_inputs(), 1);
        assert!(CellKind::Inverter.inverting());
        assert!(!CellKind::Buffer.inverting());
        assert!(CellKind::TristateBuffer.tristate());
        assert!(!CellKind::Inverter.tristate());
    }
}
