//! Digital cell library, characterization and driver models for
//! signal-integrity verification.
//!
//! Section 4 of the DATE 1999 paper compares two driver abstractions for
//! chip-level crosstalk analysis:
//!
//! * a **timing-library based linear model** — a Thevenin source whose
//!   resistance is deduced from delay-vs-load characterization data
//!   ([`models::LinearDriverModel`]), and
//! * a **pre-characterized nonlinear model** — the cell's quasi-static
//!   output current surface `I(V_in, V_out)` plus an effective output
//!   capacitance ([`models::NonlinearDriverModel`]), which captures the
//!   output transient waveform and is what makes Table 4's accuracy
//!   possible.
//!
//! Both are produced by running the transistor-level cell netlists through
//! the `pcv-spice` substrate, exactly the *one-time pre-characterization*
//! flow the paper describes:
//!
//! * [`library::CellLibrary::standard_025`] generates a 0.25 µm-class
//!   library (inverters, buffers, NAND/NOR, tri-state drivers at many drive
//!   strengths — 53 cells, matching the paper's experiments).
//! * [`charlib::characterize`] builds NLDM-style delay/slew tables, fits the
//!   linear drive resistances and samples the nonlinear I–V surface.
//!
//! # Example
//!
//! ```no_run
//! # use pcv_cells::{library::CellLibrary, charlib};
//! # fn main() -> Result<(), pcv_cells::CellError> {
//! let lib = CellLibrary::standard_025();
//! let ch = charlib::characterize(lib.cell("INVX4").unwrap())?;
//! println!("INVX4 pull-down resistance: {:.0} ohms", ch.rout_fall);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod charlib;
pub mod error;
pub mod liberty;
pub mod library;
pub mod models;

pub use charlib::{
    characterize, characterize_library, CharCell, CharLibrary, IvSurface, TimingTable,
};
pub use error::CellError;
pub use liberty::{parse_liberty, write_liberty};
pub use library::{Cell, CellKind, CellLibrary};
pub use models::{LinearDriverModel, NonlinearDriverModel};

/// Supply voltage of the 0.25 µm library (volts). The paper's cell-model
/// accuracy tables use Vdd = 3.0 V; the technology's nominal 2.5 V is also
/// common — the library is characterized at this value.
pub const VDD: f64 = 2.5;
