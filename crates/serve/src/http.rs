//! Just enough HTTP/1.1 to serve the verification API over a localhost
//! `TcpStream`: request parsing with `Content-Length` bodies, fixed
//! responses, and chunked transfer encoding for unbounded event streams.
//! One request per connection (`Connection: close`) — the clients are
//! local tools, not browsers, and the simplicity buys robustness.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Largest accepted head (request line + headers) in bytes.
const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted request body in bytes (SPEF uploads dominate).
const MAX_BODY: usize = 64 * 1024 * 1024;

/// One parsed request: method, decoded path, query pairs, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string stripped, percent-decoded.
    pub path: String,
    /// Query pairs in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: String,
}

impl Request {
    /// First value for query key `key`.
    pub fn query_get(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Split the decoded path into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Decode `%XX` escapes and `+`-as-space.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed request: {what}"))
}

/// Read and parse one request from `stream`.
///
/// # Errors
///
/// I/O failures, oversized heads/bodies, and malformed request lines all
/// surface as `io::Error` — the connection handler answers 400 and closes.
pub fn read_request(stream: &mut dyn Read) -> io::Result<Request> {
    // Read byte-wise until the blank line; the head is tiny and the
    // syscall count is irrelevant next to a verification run.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad("head too large"));
        }
        match stream.read(&mut byte)? {
            0 => return Err(bad("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("no method"))?.to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| bad("no target"))?;
    let mut headers: BTreeMap<String, String> = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
        }
    }
    let content_length: usize = match headers.get("content-length") {
        Some(v) => v.parse().map_err(|_| bad("unreadable content-length"))?,
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method,
        path: percent_decode(path_raw),
        query: parse_query(query_raw),
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Write a complete response with a `Content-Length` body and close
/// semantics.
///
/// # Errors
///
/// Propagates stream write failures (a vanished client).
pub fn respond(
    stream: &mut dyn Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Like [`respond`], with extra response headers (each a `(name, value)`
/// pair) between the fixed headers and the body — the hook `Retry-After`
/// on 429 responses rides through.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn respond_with(
    stream: &mut dyn Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Shorthand for a JSON response.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn respond_json(
    stream: &mut dyn Write,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    respond(stream, status, reason, "application/json", body.as_bytes())
}

/// An in-flight chunked (streaming) response. Each [`ChunkedWriter::line`]
/// becomes one chunk; [`ChunkedWriter::finish`] writes the terminal chunk.
/// Dropping without `finish` just closes the connection — the client sees
/// a truncated stream, which is the honest signal for an aborted server.
pub struct ChunkedWriter<'a> {
    stream: &'a mut dyn Write,
}

impl<'a> ChunkedWriter<'a> {
    /// Start a `200 OK` chunked response with the given content type.
    ///
    /// # Errors
    ///
    /// Propagates stream write failures.
    pub fn begin(stream: &'a mut dyn Write, content_type: &str) -> io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Send `text` plus a newline as one chunk, flushed immediately so a
    /// tailing client sees events as they happen.
    ///
    /// # Errors
    ///
    /// Propagates stream write failures (the client hung up — the caller
    /// stops streaming).
    pub fn line(&mut self, text: &str) -> io::Result<()> {
        write!(self.stream, "{:x}\r\n{text}\n\r\n", text.len() + 1)?;
        self.stream.flush()
    }

    /// Terminate the stream cleanly (zero-length chunk).
    ///
    /// # Errors
    ///
    /// Propagates stream write failures.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_line_query_and_body() {
        let raw = b"POST /sessions/s1/runs?net=bus0_3&x=a%20b HTTP/1.1\r\n\
                    Host: localhost\r\nContent-Length: 9\r\n\r\n{\"w\":1}\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/s1/runs");
        assert_eq!(req.segments(), vec!["sessions", "s1", "runs"]);
        assert_eq!(req.query_get("net"), Some("bus0_3"));
        assert_eq!(req.query_get("x"), Some("a b"));
        assert_eq!(req.body, "{\"w\":1}\r\n");
    }

    #[test]
    fn missing_body_and_query_are_empty() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_empty());
        assert!(req.body.is_empty());
        assert_eq!(req.query_get("net"), None);
    }

    #[test]
    fn truncated_head_is_an_error() {
        let raw = b"GET /x HTTP/1.1\r\nHost";
        assert!(read_request(&mut &raw[..]).is_err());
    }

    #[test]
    fn respond_writes_content_length_and_body() {
        let mut out = Vec::new();
        respond_json(&mut out, 429, "Too Many Requests", "{\"error\":\"busy\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.ends_with("{\"error\":\"busy\"}"));
    }

    #[test]
    fn extra_headers_land_between_fixed_headers_and_body() {
        let mut out = Vec::new();
        respond_with(
            &mut out,
            429,
            "Too Many Requests",
            "application/json",
            &[("Retry-After", "1")],
            b"{\"error\":\"busy\"}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("\r\n\r\n{\"error\":\"busy\"}"), "{text}");
    }

    #[test]
    fn chunked_stream_round_trips() {
        let mut out = Vec::new();
        {
            let mut w = ChunkedWriter::begin(&mut out, "application/jsonl").unwrap();
            w.line("{\"kind\":\"run_started\"}").unwrap();
            w.line("{\"kind\":\"run_finished\"}").unwrap();
            w.finish().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        // 22 bytes of payload + newline = 0x17.
        assert!(text.contains("17\r\n{\"kind\":\"run_started\"}\n\r\n"), "{text}");
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
