//! Sessions: the daemon-side lifecycle of one resident chip.
//!
//! A session is born from a [`DesignSpec`] posted by a client and walks a
//! linear state machine:
//!
//! ```text
//! Parsed → Elaborated → Ready → Running → Completed
//! ```
//!
//! *Parsed* means the wire payload was understood; *Elaborated* means the
//! expensive one-time work is done (design generated or SPEF parsed,
//! drivers characterized, coupling union-find built — all owned by a
//! [`ResidentChip`]); *Ready* means runs can be submitted. *Running* and
//! *Completed* track the latest run: a session bounces `Ready/Completed →
//! Running → Completed` once per run, paying elaboration exactly once.

use crate::error::ApiError;
use pcv_cells::charlib::{characterize, CharLibrary};
use pcv_cells::library::CellLibrary;
use pcv_designs::dsp::{generate, DspConfig};
use pcv_designs::Technology;
use pcv_engine::ResidentChip;
use pcv_netlist::spef::parse_spef;
use pcv_netlist::PNetId;
use pcv_obs::json::{parse, Value};
use pcv_xtalk::drivers::DriverModelKind;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

/// Which nets of a SPEF upload to audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VictimSel {
    /// Every net in the parasitics.
    All,
    /// Exactly the named nets (unknown names are a [`ApiError::BadRequest`]).
    Named(Vec<String>),
}

/// What a client asks the daemon to keep resident.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSpec {
    /// Generate the paper's DSP-like block and audit its latch-input
    /// victims with the nonlinear cell model — the served twin of the
    /// `dsp_chip_signoff` batch flow.
    Dsp {
        /// Generator configuration (seeded, so the chip is reproducible).
        config: DspConfig,
    },
    /// Parse an uploaded SPEF document and audit with uniform
    /// fixed-resistance drivers.
    Spef {
        /// SPEF text.
        text: String,
        /// Uniform driver resistance in ohms.
        drive_ohms: f64,
        /// Victim selection.
        victims: VictimSel,
    },
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

impl DesignSpec {
    /// Parse the `POST /sessions` body. Unknown `kind`s and missing
    /// required fields are [`ApiError::BadRequest`].
    ///
    /// # Errors
    ///
    /// [`ApiError::BadRequest`] with the offending detail.
    pub fn from_json(body: &str) -> Result<DesignSpec, ApiError> {
        let doc = parse(body).map_err(|e| ApiError::BadRequest(format!("session spec: {e}")))?;
        let design = doc
            .get("design")
            .ok_or_else(|| ApiError::BadRequest("session spec needs a \"design\" object".into()))?;
        let kind = design
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| ApiError::BadRequest("design needs a string \"kind\"".into()))?;
        match kind {
            "dsp" => {
                let d = DspConfig::default();
                let config = DspConfig {
                    n_buses: num(design, "buses").map(|n| n as usize).unwrap_or(d.n_buses),
                    bus_bits: num(design, "bits").map(|n| n as usize).unwrap_or(d.bus_bits),
                    n_random_nets: num(design, "random")
                        .map(|n| n as usize)
                        .unwrap_or(d.n_random_nets),
                    cycle: num(design, "cycle").unwrap_or(d.cycle),
                    seed: design.get("seed").and_then(Value::as_u64).unwrap_or(d.seed),
                };
                if config.n_buses * config.bus_bits + config.n_random_nets == 0 {
                    return Err(ApiError::BadRequest("dsp design generates no nets".into()));
                }
                Ok(DesignSpec::Dsp { config })
            }
            "spef" => {
                let text = design
                    .get("text")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ApiError::BadRequest("spef design needs \"text\"".into()))?
                    .to_owned();
                let drive_ohms = num(design, "drive_ohms").unwrap_or(1000.0);
                if !(drive_ohms.is_finite() && drive_ohms > 0.0) {
                    return Err(ApiError::BadRequest("drive_ohms must be positive".into()));
                }
                let victims = match design.get("victims") {
                    None => VictimSel::All,
                    Some(Value::Str(s)) if s == "all" => VictimSel::All,
                    Some(Value::Arr(items)) => {
                        let mut names = Vec::with_capacity(items.len());
                        for it in items {
                            names.push(
                                it.as_str()
                                    .ok_or_else(|| {
                                        ApiError::BadRequest("victims must be net names".into())
                                    })?
                                    .to_owned(),
                            );
                        }
                        VictimSel::Named(names)
                    }
                    Some(_) => {
                        return Err(ApiError::BadRequest(
                            "victims must be \"all\" or a list of net names".into(),
                        ))
                    }
                };
                Ok(DesignSpec::Spef { text, drive_ohms, victims })
            }
            other => Err(ApiError::BadRequest(format!("unknown design kind {other:?}"))),
        }
    }

    /// Serialize back to the `POST /sessions` wire shape — the form the
    /// shard coordinator hands each worker process so it elaborates the
    /// *identical* chip (same net ids, same fingerprints) the daemon
    /// holds. Round-trips through [`DesignSpec::from_json`].
    pub fn to_json(&self) -> String {
        use pcv_trace::json::str_lit;
        match self {
            DesignSpec::Dsp { config } => format!(
                "{{\"design\":{{\"kind\":\"dsp\",\"buses\":{},\"bits\":{},\"random\":{},\"cycle\":{},\"seed\":{}}}}}",
                config.n_buses,
                config.bus_bits,
                config.n_random_nets,
                pcv_trace::json::f64_lit(config.cycle),
                config.seed
            ),
            DesignSpec::Spef { text, drive_ohms, victims } => {
                let victims = match victims {
                    VictimSel::All => "\"all\"".to_owned(),
                    VictimSel::Named(names) => {
                        let items: Vec<String> = names.iter().map(|n| str_lit(n)).collect();
                        format!("[{}]", items.join(","))
                    }
                };
                format!(
                    "{{\"design\":{{\"kind\":\"spef\",\"text\":{},\"drive_ohms\":{},\"victims\":{}}}}}",
                    str_lit(text),
                    pcv_trace::json::f64_lit(*drive_ohms),
                    victims
                )
            }
        }
    }
}

/// Driver cells the DSP generator instantiates — the set the batch
/// sign-off example characterizes, kept in lockstep so a served DSP run
/// reproduces the batch artifact byte for byte.
const DSP_DRIVER_CELLS: [&str; 13] = [
    "INVX2", "INVX4", "INVX8", "BUFX4", "BUFX8", "BUFX12", "NAND2X2", "NAND2X4", "NOR2X2",
    "NOR2X4", "TBUFX4", "TBUFX8", "TBUFX16",
];

/// Characterize the named cells, caching Liberty-lite files under
/// `target/pcv_charlib_cache/` (shared with the batch fixtures, so the
/// daemon and the examples pay the one-time task once between them).
fn charlib_for(names: &[&str]) -> Result<CharLibrary, ApiError> {
    let lib = CellLibrary::standard_025();
    let cache_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/pcv_charlib_cache");
    let _ = std::fs::create_dir_all(&cache_dir);
    let mut out = CharLibrary::default();
    for &n in names {
        let cell =
            lib.cell(n).ok_or_else(|| ApiError::Internal(format!("unknown driver cell {n}")))?;
        let cache = cache_dir.join(format!("{n}.lib"));
        if let Ok(text) = std::fs::read_to_string(&cache) {
            if let Ok(cached) = pcv_cells::liberty::parse_liberty(&text) {
                if let Some(ch) = cached.cell(n) {
                    out.insert(ch.clone());
                    continue;
                }
            }
        }
        let ch = characterize(cell)
            .map_err(|e| ApiError::Internal(format!("characterizing {n}: {e}")))?;
        let mut single = CharLibrary::default();
        single.insert(ch.clone());
        let _ = std::fs::write(&cache, pcv_cells::liberty::write_liberty(&single));
        out.insert(ch);
    }
    Ok(out)
}

/// Do the elaborate-once work for a spec: build the [`ResidentChip`] that
/// every run of the session will borrow. Public so offline tools (tests,
/// the CI smoke diff) can construct the *identical* chip the daemon holds.
///
/// # Errors
///
/// [`ApiError::BadRequest`] for specs referencing nonexistent nets,
/// [`ApiError::Internal`] for elaboration failures.
pub fn elaborate(spec: &DesignSpec) -> Result<ResidentChip, ApiError> {
    match spec {
        DesignSpec::Dsp { config } => {
            let tech = Technology::c025();
            let lib = CellLibrary::standard_025();
            let block = generate(config, &tech, &lib);
            let charlib = charlib_for(&DSP_DRIVER_CELLS)?;
            let victims: Vec<PNetId> = block
                .latch_victims()
                .into_iter()
                .map(|d| {
                    block
                        .parasitics
                        .find_net(block.design.net_name(d))
                        .expect("design and parasitic views are generated aligned")
                })
                .collect();
            Ok(ResidentChip::with_design(
                block.parasitics,
                block.design,
                lib,
                charlib,
                DriverModelKind::Nonlinear,
                victims,
            ))
        }
        DesignSpec::Spef { text, drive_ohms, victims } => {
            let db =
                parse_spef(text).map_err(|e| ApiError::BadRequest(format!("spef parse: {e}")))?;
            let ids: Vec<PNetId> = match victims {
                VictimSel::All => db.iter().map(|(id, _)| id).collect(),
                VictimSel::Named(names) => {
                    let mut ids = Vec::with_capacity(names.len());
                    for name in names {
                        ids.push(db.find_net(name).ok_or_else(|| {
                            // The typed xtalk error, so the wire mapping
                            // (satellite: BadRequest → 400) is exercised
                            // end to end through From<XtalkError>.
                            ApiError::from(pcv_xtalk::XtalkError::BadRequest {
                                what: format!("no such net {name:?} in uploaded parasitics"),
                            })
                        })?);
                    }
                    ids
                }
            };
            Ok(ResidentChip::fixed_resistance(db, *drive_ohms, ids))
        }
    }
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SessionState {
    /// Spec understood, nothing built yet.
    Parsed,
    /// One-time elaboration finished; bookkeeping still pending.
    Elaborated,
    /// Accepting runs; none in flight and none finished yet.
    Ready,
    /// A run over this session is executing right now.
    Running,
    /// At least one run finished; accepting more.
    Completed,
}

impl SessionState {
    /// Stable lower-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            SessionState::Parsed => "parsed",
            SessionState::Elaborated => "elaborated",
            SessionState::Ready => "ready",
            SessionState::Running => "running",
            SessionState::Completed => "completed",
        }
    }
}

/// The re-elaboration context an ECO patch needs: how the session's
/// original SPEF upload was turned into a chip, minus the text itself.
#[derive(Debug, Clone)]
struct EcoContext {
    drive_ohms: f64,
    victims: VictimSel,
}

/// One resident chip plus its lifecycle state and cache location.
///
/// The chip slot is swappable: an ECO patch replaces it with a freshly
/// elaborated chip while the session identity, cache and state survive —
/// that continuity is exactly what makes the next run a warm splice
/// instead of a cold sweep.
#[derive(Debug)]
pub struct Session {
    /// Session id (`s1`, `s2`, ...).
    pub id: String,
    /// The elaborated chip, shared with the executor and query handlers.
    chip: RwLock<Arc<ResidentChip>>,
    /// The engine cache/journal/ledger stem for this session's runs.
    pub cache_path: PathBuf,
    /// How to re-elaborate an edited SPEF upload (`None` for generated
    /// designs, which have no parasitics document to patch).
    eco_ctx: Option<EcoContext>,
    /// The wire spec the chip was elaborated from — what a shard
    /// coordinator ships to worker processes. Kept in lockstep with the
    /// chip across ECO swaps (see [`Session::record_eco_text`]).
    spec: Mutex<DesignSpec>,
    state: Mutex<SessionState>,
}

impl Session {
    /// Build a session: parse already happened (the spec), elaboration
    /// happens here, and the returned session is `Ready`.
    ///
    /// # Errors
    ///
    /// Propagates [`elaborate`] failures.
    pub fn build(
        id: String,
        spec: &DesignSpec,
        data_dir: &std::path::Path,
    ) -> Result<Session, ApiError> {
        let eco_ctx = match spec {
            DesignSpec::Spef { drive_ohms, victims, .. } => {
                Some(EcoContext { drive_ohms: *drive_ohms, victims: victims.clone() })
            }
            DesignSpec::Dsp { .. } => None,
        };
        let session = Session {
            cache_path: data_dir.join(format!("session-{id}.cache")),
            id,
            chip: RwLock::new(Arc::new(elaborate(spec)?)),
            eco_ctx,
            spec: Mutex::new(spec.clone()),
            state: Mutex::new(SessionState::Parsed),
        };
        session.set_state(SessionState::Elaborated);
        session.set_state(SessionState::Ready);
        Ok(session)
    }

    /// The currently resident chip (an `Arc` clone; cheap).
    pub fn chip(&self) -> Arc<ResidentChip> {
        Arc::clone(&self.chip.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Elaborate an edited SPEF document with this session's original
    /// driver resistance and victim selection — the chip an ECO patch
    /// swaps in.
    ///
    /// # Errors
    ///
    /// [`ApiError::Conflict`] for sessions that hold a generated design
    /// (there is no SPEF to patch); [`elaborate`] failures otherwise —
    /// including a [`ApiError::BadRequest`] when the edit removed a net
    /// the session's named victim list still references.
    pub fn elaborate_eco(&self, text: &str) -> Result<ResidentChip, ApiError> {
        let ctx = self.eco_ctx.as_ref().ok_or_else(|| {
            ApiError::Conflict(format!(
                "session {} holds a generated design — only spef sessions accept eco patches",
                self.id
            ))
        })?;
        elaborate(&DesignSpec::Spef {
            text: text.to_owned(),
            drive_ohms: ctx.drive_ohms,
            victims: ctx.victims.clone(),
        })
    }

    /// The wire spec the resident chip was elaborated from (a clone).
    pub fn spec(&self) -> DesignSpec {
        self.spec.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Record the SPEF text an accepted ECO patch swapped in, keeping the
    /// stored spec aligned with the resident chip so shard workers
    /// elaborate the post-ECO netlist. No-op for generated designs.
    pub fn record_eco_text(&self, text: &str) {
        let mut spec = self.spec.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let DesignSpec::Spef { text: stored, .. } = &mut *spec {
            text.clone_into(stored);
        }
    }

    /// Swap the resident chip, returning the one it replaces (the ECO
    /// diff's "old" side).
    pub fn swap_chip(&self, next: Arc<ResidentChip>) -> Arc<ResidentChip> {
        std::mem::replace(
            &mut self.chip.write().unwrap_or_else(std::sync::PoisonError::into_inner),
            next,
        )
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        *self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Move to `next` (states only ever advance or bounce between the two
    /// idle states and `Running`).
    pub fn set_state(&self, next: SessionState) {
        *self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = next;
    }

    /// The `{"session":...}` info object served for this session.
    pub fn info_json(&self) -> String {
        use pcv_trace::json::str_lit;
        let chip = self.chip();
        format!(
            "{{\"session\":{},\"state\":{},\"nets\":{},\"victims\":{}}}",
            str_lit(&self.id),
            str_lit(self.state().name()),
            chip.num_nets(),
            chip.victims().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::spef::write_spef;
    use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb};

    fn small_db() -> ParasiticDb {
        let mut db = ParasiticDb::new();
        let mk = |name: &str, cg: f64| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 150.0);
            n.add_ground_cap(n1, cg);
            n.mark_load(n1);
            n
        };
        let v = db.add_net(mk("vic", 8e-15));
        let a = db.add_net(mk("agg", 6e-15));
        db.add_coupling(NetNodeRef { net: v, node: 1 }, NetNodeRef { net: a, node: 1 }, 25e-15);
        db
    }

    #[test]
    fn parses_dsp_spec_with_defaults_and_overrides() {
        let spec = DesignSpec::from_json(
            "{\"design\":{\"kind\":\"dsp\",\"buses\":2,\"bits\":4,\"random\":6}}",
        )
        .unwrap();
        match spec {
            DesignSpec::Dsp { config } => {
                assert_eq!(config.n_buses, 2);
                assert_eq!(config.bus_bits, 4);
                assert_eq!(config.n_random_nets, 6);
                assert_eq!(config.seed, DspConfig::default().seed);
            }
            other => panic!("expected dsp, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_specs_as_bad_request() {
        for body in [
            "not json",
            "{}",
            "{\"design\":{\"kind\":\"warp\"}}",
            "{\"design\":{\"kind\":\"spef\"}}",
            "{\"design\":{\"kind\":\"spef\",\"text\":\"x\",\"victims\":7}}",
            "{\"design\":{\"kind\":\"dsp\",\"buses\":0,\"bits\":0,\"random\":0}}",
        ] {
            match DesignSpec::from_json(body) {
                Err(ApiError::BadRequest(_)) => {}
                other => panic!("{body}: expected BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn spef_session_elaborates_and_walks_states() {
        let text = write_spef(&small_db());
        let spec = DesignSpec::Spef {
            text,
            drive_ohms: 1200.0,
            victims: VictimSel::Named(vec!["vic".into()]),
        };
        let dir = std::env::temp_dir().join(format!("pcv-serve-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = Session::build("s1".into(), &spec, &dir).unwrap();
        assert_eq!(s.state(), SessionState::Ready);
        assert_eq!(s.chip().victims().len(), 1);
        assert_eq!(s.chip().num_nets(), 2);
        assert!(s.info_json().contains("\"state\":\"ready\""));
        assert!(s.cache_path.starts_with(&dir));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eco_reelaborates_with_the_original_driver_context_and_swaps() {
        let spec = DesignSpec::Spef {
            text: write_spef(&small_db()),
            drive_ohms: 1200.0,
            victims: VictimSel::All,
        };
        let dir = std::env::temp_dir().join(format!("pcv-serve-eco-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = Session::build("s1".into(), &spec, &dir).unwrap();

        // Patch: one more net, coupled to nothing.
        let mut db = small_db();
        let mut extra = NetParasitics::new("spare");
        let e1 = extra.add_node();
        extra.add_resistor(0, e1, 80.0);
        extra.add_ground_cap(e1, 3e-15);
        extra.mark_load(e1);
        db.add_net(extra);
        let patched = s.elaborate_eco(&write_spef(&db)).unwrap();
        assert_eq!(patched.num_nets(), 3);
        assert_eq!(patched.victims().len(), 3, "VictimSel::All re-applies to the new netlist");

        let old = s.swap_chip(Arc::new(patched));
        assert_eq!(old.num_nets(), 2);
        assert_eq!(s.chip().num_nets(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eco_on_a_generated_design_is_a_conflict() {
        let spec = DesignSpec::from_json(
            "{\"design\":{\"kind\":\"dsp\",\"buses\":1,\"bits\":2,\"random\":0}}",
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("pcv-serve-eco-dsp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = Session::build("s9".into(), &spec, &dir).unwrap();
        match s.elaborate_eco("*SPEF pcv-lite 1.0\n") {
            Err(ApiError::Conflict(m)) => assert!(m.contains("generated design"), "{m}"),
            other => panic!("expected Conflict, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_victim_is_a_typed_bad_request() {
        let text = write_spef(&small_db());
        let spec = DesignSpec::Spef {
            text,
            drive_ohms: 1200.0,
            victims: VictimSel::Named(vec!["ghost".into()]),
        };
        match elaborate(&spec) {
            Err(ApiError::BadRequest(m)) => assert!(m.contains("ghost"), "{m}"),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }
}
