//! # pcv-serve — resident verification-as-a-service
//!
//! Verification of a chip for parasitic-coupling violations has an
//! expensive fixed prelude — parse the netlist/SPEF, elaborate drivers
//! and characterize cells, partition the coupling graph — and a
//! comparatively cheap iterative tail: run, inspect, adjust thresholds,
//! run again. The batch flow pays the prelude on every invocation. This
//! crate keeps the elaborated chip **resident**: a long-lived localhost
//! daemon owns [`pcv_engine::ResidentChip`] sessions and serves runs,
//! live event streams, mid-run verdicts, and durable sign-off artifacts
//! over a minimal HTTP/1.1 + JSONL wire protocol.
//!
//! ## The API surface
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /sessions` | Load and elaborate a design once (DSP fixture or inline SPEF) |
//! | `GET /sessions/{id}` | Session state: `parsed → elaborated → ready → running → completed` |
//! | `POST /sessions/{id}/runs` | Queue a run with a per-run config overlay; 429 when the bounded queue is full |
//! | `GET /runs/{id}/events` | Chunked JSONL live event stream, ending in a `stream_trailer` with delivered/dropped counts |
//! | `GET /runs/{id}/verdicts?net=` | Per-net verdicts, including mid-run partials from the run's [`pcv_engine::VerdictSnapshot`] |
//! | `GET /runs/{id}/signoff` | The durable sign-off document — byte-identical to the offline batch flow |
//! | `GET /metrics` | Prometheus text exposition: HTTP/run/engine series from the daemon's [`Observatory`] |
//! | `GET /debug/flight` | The always-on flight recorder's ring of recent engine + HTTP observations |
//! | `GET /healthz` | Liveness + readiness: version, uptime, elaborating count, torn-ledger lines |
//! | `POST /shutdown` | Graceful drain: the in-flight run checkpoints via [`pcv_engine::StopFlag`] and stays resumable |
//!
//! Every failure is a typed [`ApiError`] with exactly one HTTP status;
//! engine-side contention ([`pcv_xtalk::XtalkError::Busy`]) surfaces as
//! 429, not a generic 500 — and every 429 carries a `Retry-After` header
//! the bundled client honors with bounded backoff.
//!
//! ## Observability (inert by construction)
//!
//! Each HTTP request is minted a correlation ID threaded through the
//! response body, the run it queues, the event-stream trailer, the daemon
//! run ledger, and the JSONL access log — one grep ties a client call to
//! everything it caused. A stall watchdog (opt-in via
//! [`ServerConfig::stall_timeout_ms`]) warns — never kills — when an
//! in-flight run stops publishing verdicts. None of it feeds back into
//! verification: sign-off artifacts are byte-identical with the
//! observatory enabled or disabled.
//!
//! ## Determinism contract
//!
//! A served run and an offline [`pcv_engine::Engine::verify`] run of the
//! same design with the same analysis knobs produce **byte-identical**
//! sign-off documents: the engine's config fingerprint covers only
//! result-affecting knobs, and worker count, event sinks and cache
//! placement are all outside it. The load-test suite and the CI
//! `serve-smoke` job both enforce this with byte comparisons.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod error;
pub mod http;
pub mod observe;
pub mod server;
pub mod session;
pub mod shard;
pub mod worker;

pub use client::{Client, Response};
pub use error::ApiError;
pub use observe::{check_access_log, check_exposition, Observatory};
pub use server::{Server, ServerConfig};
pub use session::{DesignSpec, Session, SessionState, VictimSel};
pub use shard::{Coordinator, CoordinatorConfig, ShardRunOutcome, ShardStats};
