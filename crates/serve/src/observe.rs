//! The daemon's observatory: metrics recording, request correlation, the
//! access log, and the exposition/access-log validators.
//!
//! [`Observatory`] is the single sink every serve-side observability call
//! goes through. It owns the process-wide [`Registry`], the always-on
//! [`FlightRecorder`], the correlation-ID mint, and the durable access
//! log. When constructed disabled (`--no-observe`) every recording method
//! is a no-op and no access log is written — but `/metrics` and
//! `/debug/flight` still answer (with an idle registry and an empty ring),
//! so scrapers never see the surface disappear.
//!
//! The inertness contract is structural: nothing in this module is read
//! by the verification path, and nothing here writes anywhere near the
//! cache, journal, or sign-off artifacts. Enabling or disabling the
//! observatory cannot change a single sign-off byte — a property the
//! serve test-suite asserts by byte-comparing artifacts across the two
//! configurations.

use pcv_engine::fs::Fs;
use pcv_engine::EngineReport;
use pcv_obs::{FlightRecorder, Registry};
use pcv_trace::json::str_lit;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Help strings live next to the metric names; DESIGN.md §13 mirrors this
/// table.
const HELP_HTTP_REQS: &str = "HTTP requests served, by route pattern and status.";
const HELP_HTTP_LAT: &str = "HTTP request latency in seconds, by route pattern.";
const HELP_RUNS: &str = "Engine runs executed by the daemon, by outcome.";
const HELP_STALLS: &str = "Stall-watchdog trips (no-progress warnings); never kills the run.";

/// The serve-side observability hub; see the module docs.
pub struct Observatory {
    enabled: bool,
    registry: Registry,
    flight: Arc<FlightRecorder>,
    access_path: PathBuf,
    start: Instant,
    /// Torn (unparseable) lines seen by the most recent engine-ledger
    /// rescan — surfaced in `/metrics` and `/healthz`.
    torn: AtomicU64,
    /// Per-shard torn journal-line counts from the most recent sharded
    /// run (index = shard) — surfaced in `/healthz`.
    shard_torn: std::sync::Mutex<Vec<u64>>,
    /// Sessions currently elaborating (readiness: ready once 0).
    elaborating: AtomicU64,
    next_corr: AtomicU64,
}

impl std::fmt::Debug for Observatory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observatory").field("enabled", &self.enabled).finish()
    }
}

impl Observatory {
    /// An observatory writing its access log to `<data_dir>/access.jsonl`.
    /// When `enabled` is false, recording is a no-op but the read surfaces
    /// (`render_metrics`, `flight`) stay live.
    pub fn new(data_dir: &Path, enabled: bool) -> Self {
        Observatory {
            enabled,
            registry: Registry::new(),
            flight: Arc::new(FlightRecorder::new(512)),
            access_path: data_dir.join("access.jsonl"),
            start: Instant::now(),
            torn: AtomicU64::new(0),
            shard_torn: std::sync::Mutex::new(Vec::new()),
            elaborating: AtomicU64::new(0),
            next_corr: AtomicU64::new(0),
        }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The always-on flight recorder (shared so it can ride in an engine
    /// [`TeeSink`](pcv_obs::TeeSink)).
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.flight)
    }

    /// The metrics registry (for direct gauge/counter access in handlers).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Seconds since the daemon booted.
    pub fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Mint a fresh correlation ID (`c1`, `c2`, ... per process).
    pub fn mint_corr(&self) -> String {
        format!("c{}", self.next_corr.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Record the latest engine-ledger torn-line count.
    pub fn set_torn_lines(&self, torn: u64) {
        self.torn.store(torn, Ordering::Relaxed);
    }

    /// Torn engine-ledger lines from the latest rescan.
    pub fn torn_lines(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }

    /// Bracket a session elaboration (readiness accounting).
    pub fn elaboration_started(&self) {
        self.elaborating.fetch_add(1, Ordering::AcqRel);
    }

    /// See [`Observatory::elaboration_started`].
    pub fn elaboration_finished(&self) {
        self.elaborating.fetch_sub(1, Ordering::AcqRel);
    }

    /// Sessions currently elaborating.
    pub fn elaborating(&self) -> u64 {
        self.elaborating.load(Ordering::Acquire)
    }

    /// Record one served HTTP request: count + latency histogram, flight
    /// note, durable access-log line.
    pub fn record_http(&self, corr: &str, method: &str, path: &str, status: u16, seconds: f64) {
        if !self.enabled {
            return;
        }
        let route = route_label(method, path);
        let status_str = status.to_string();
        self.registry.counter_add(
            "pcv_http_requests_total",
            HELP_HTTP_REQS,
            &[("route", route), ("status", &status_str)],
            1,
        );
        self.registry.observe(
            "pcv_http_request_seconds",
            HELP_HTTP_LAT,
            &[("route", route)],
            &pcv_obs::metrics::LATENCY_BOUNDS_S,
            seconds,
        );
        self.flight.note("http", format!("{corr} {method} {path} -> {status}"));
        let line = format!(
            "{{\"corr\":{},\"method\":{},\"path\":{},\"status\":{},\"ms\":{:.3}}}\n",
            str_lit(corr),
            str_lit(method),
            str_lit(path),
            status,
            seconds * 1e3
        );
        let _ = Fs::real().append_durable(&self.access_path, line.as_bytes());
    }

    /// Count a run that failed before producing a report.
    pub fn record_failed_run(&self) {
        if !self.enabled {
            return;
        }
        self.registry.counter_add("pcv_runs_total", HELP_RUNS, &[("outcome", "failed")], 1);
    }

    /// Bump the stall-warning counter (watchdog trip).
    pub fn record_stall(&self, run: &str) {
        if !self.enabled {
            return;
        }
        self.registry.counter_add("pcv_stall_warnings_total", HELP_STALLS, &[("run", run)], 1);
    }

    /// Stall warnings recorded for `run` so far.
    pub fn stall_count(&self, run: &str) -> u64 {
        self.registry.counter_value("pcv_stall_warnings_total", &[("run", run)])
    }

    /// Fold one finished engine run into the registry: run outcome,
    /// `EngineStats` counters and gauges, ECO splice fraction, and the
    /// run's trace when one was collected.
    pub fn absorb_report(&self, report: &EngineReport, outcome: &str, is_eco: bool) {
        if !self.enabled {
            return;
        }
        let r = &self.registry;
        r.counter_add("pcv_runs_total", HELP_RUNS, &[("outcome", outcome)], 1);
        let s = &report.stats;
        let c = |name, help, v: u64| r.counter_add(name, help, &[], v);
        c("pcv_engine_cache_hits_total", "Result-cache hits across runs.", s.cache_hits as u64);
        c(
            "pcv_engine_cache_misses_total",
            "Result-cache misses across runs.",
            s.cache_misses as u64,
        );
        c("pcv_engine_journal_hits_total", "Journal replays across runs.", s.journal_hits as u64);
        c(
            "pcv_engine_degraded_total",
            "Clusters that completed on a degraded rung.",
            s.degraded as u64,
        );
        c("pcv_engine_skipped_total", "Clusters skipped by cooperative stop.", s.skipped as u64);
        c("pcv_engine_steals_total", "Work-steal operations across runs.", s.steals);
        c(
            "pcv_engine_events_dropped_total",
            "Observability events shed by bounded sinks.",
            s.events_dropped,
        );
        r.gauge_set(
            "pcv_engine_cache_hit_rate",
            "Cache hit rate of the most recent run.",
            &[],
            s.hit_rate(),
        );
        r.gauge_set(
            "pcv_engine_peak_alloc_bytes",
            "Peak tracked heap of the most recent run (0 without track-alloc).",
            &[],
            s.peak_alloc_bytes as f64,
        );
        if is_eco && s.victims > 0 {
            r.gauge_set(
                "pcv_eco_splice_fraction",
                "Fraction of the last ECO run's victims spliced from cache.",
                &[],
                s.cache_hits as f64 / s.victims as f64,
            );
        }
        if let Some(trace) = &report.trace {
            r.absorb_trace(trace);
        }
    }

    /// Fold a finished sharded run's supervision telemetry into the
    /// registry (`pcv_shard_*` series) and the `/healthz` per-shard torn
    /// counts. The merged report itself still goes through
    /// [`Observatory::absorb_report`] like any other run.
    pub fn absorb_shard_run(&self, outcome: &crate::shard::ShardRunOutcome) {
        if !self.enabled {
            return;
        }
        let torn: Vec<u64> = outcome.shards.iter().map(|s| s.torn_journal_lines as u64).collect();
        *self.shard_torn.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = torn;
        let r = &self.registry;
        r.counter_add(
            "pcv_shard_restarts_total",
            "Shard-worker restarts performed by the coordinator.",
            &[],
            outcome.restarts(),
        );
        r.counter_add(
            "pcv_shard_heartbeat_misses_total",
            "Shard-worker heartbeat deadlines missed (each kills an incarnation).",
            &[],
            outcome.heartbeat_misses(),
        );
        r.counter_add(
            "pcv_shard_degraded_total",
            "Shards that exhausted their restart budget (WorstCase fill).",
            &[],
            outcome.degraded_shards(),
        );
        for s in &outcome.shards {
            r.gauge_set(
                "pcv_shard_peak_heap_bytes",
                "Peak tracked heap per shard worker (0 without track-alloc).",
                &[("shard", &s.shard.to_string())],
                s.peak_alloc_bytes as f64,
            );
        }
    }

    /// The `/healthz` per-shard torn-line object: `{"0":1,"1":0,...}`
    /// (`{}` before any sharded run).
    pub fn shard_torn_json(&self) -> String {
        let torn = self.shard_torn.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::from("{");
        for (k, t) in torn.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{t}"));
        }
        out.push('}');
        out
    }

    /// Refresh the scrape-time gauges and render the registry as
    /// Prometheus text exposition.
    pub fn render_metrics(&self, queue_depth: usize, sessions: usize) -> String {
        let r = &self.registry;
        r.gauge_set("pcv_uptime_seconds", "Seconds since the daemon booted.", &[], {
            // Quantized so consecutive scrapes in tests are stable enough
            // to eyeball; Prometheus only needs ~second resolution here.
            (self.uptime_s() * 1e3).round() / 1e3
        });
        r.gauge_set(
            "pcv_run_queue_depth",
            "Runs waiting in the bounded queue.",
            &[],
            queue_depth as f64,
        );
        r.gauge_set("pcv_sessions_resident", "Sessions currently resident.", &[], sessions as f64);
        r.gauge_set(
            "pcv_ledger_torn_lines",
            "Torn engine-ledger lines seen by the latest rescan.",
            &[],
            self.torn_lines() as f64,
        );
        r.gauge_set(
            "pcv_flight_entries",
            "Observations currently held by the flight recorder.",
            &[],
            self.flight.len() as f64,
        );
        r.render()
    }
}

/// Collapse a concrete request path to its low-cardinality route pattern —
/// metrics labels must not grow with session/run count.
pub fn route_label(method: &str, path: &str) -> &'static str {
    let names: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, names.as_slice()) {
        ("GET", ["healthz"]) => "/healthz",
        ("GET", ["metrics"]) => "/metrics",
        ("GET", ["debug", "flight"]) => "/debug/flight",
        ("POST", ["shutdown"]) => "/shutdown",
        ("POST", ["sessions"]) => "/sessions",
        ("GET", ["sessions", _]) => "/sessions/{id}",
        ("POST", ["sessions", _, "runs"]) => "/sessions/{id}/runs",
        ("POST", ["sessions", _, "eco"]) => "/sessions/{id}/eco",
        ("GET", ["runs", _, "events"]) => "/runs/{id}/events",
        ("GET", ["runs", _, "verdicts"]) => "/runs/{id}/verdicts",
        ("GET", ["runs", _, "signoff"]) => "/runs/{id}/signoff",
        _ => "other",
    }
}

/// Validate Prometheus text exposition: every sample belongs to a family
/// announced by a preceding `# TYPE`, histogram families carry
/// `_bucket`/`_sum`/`_count` with a closing `+Inf` bucket, label syntax is
/// well-formed, and every value parses.
///
/// # Errors
///
/// The first violation, as a human-readable message with its line number.
pub fn check_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    let mut inf_closed: HashMap<String, bool> = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let at = |what: &str| format!("line {}: {what}: {line}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| at("TYPE without a name"))?;
            let kind = parts.next().ok_or_else(|| at("TYPE without a kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(at("unknown TYPE kind"));
            }
            types.insert(name.to_owned(), kind.to_owned());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample: name[{labels}] value
        let (series, value) = match line.find('{') {
            Some(open) => {
                // The closing brace must be found quote-aware: label
                // *values* may contain literal braces (route patterns
                // like "/runs/{id}/events").
                let close = closing_brace(line, open).ok_or_else(|| at("{ without }"))?;
                let labels = &line[open + 1..close];
                for pair in split_labels(labels) {
                    let (_, v) = pair.split_once('=').ok_or_else(|| at("label pair without ="))?;
                    if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(at("label value not quoted"));
                    }
                }
                (&line[..open], line[close + 1..].trim())
            }
            None => {
                let (name, value) =
                    line.split_once(' ').ok_or_else(|| at("sample without a value"))?;
                (name, value.trim())
            }
        };
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(at("unparseable sample value"));
        }
        // Resolve the family: histogram samples suffix the family name.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                series.strip_suffix(suf).filter(|base| {
                    types.get(*base).is_some_and(|k| k == "histogram" || k == "summary")
                })
            })
            .unwrap_or(series);
        let Some(kind) = types.get(family) else {
            return Err(at("sample without a preceding # TYPE"));
        };
        if kind == "histogram" {
            if series == format!("{family}_bucket") && line.contains("le=\"+Inf\"") {
                inf_closed.insert(family.to_owned(), true);
            }
            if series.ends_with("_bucket") && !line.contains("le=\"") {
                return Err(at("histogram bucket without an le label"));
            }
        }
    }
    for (family, kind) in &types {
        if kind == "histogram" && !inf_closed.get(family).copied().unwrap_or(false) {
            return Err(format!("histogram {family} has no +Inf bucket"));
        }
    }
    Ok(())
}

/// Index of the `}` closing the label block opened at `open`, skipping
/// braces inside quoted (possibly escape-containing) label values.
fn closing_brace(line: &str, open: usize) -> Option<usize> {
    let (mut in_quotes, mut escaped) = (false, false);
    for (i, c) in line[open + 1..].char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(open + 1 + i),
            _ => escaped = false,
        }
    }
    None
}

/// Split a label body on commas that sit outside quoted values.
fn split_labels(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                if !body[start..i].is_empty() {
                    out.push(&body[start..i]);
                }
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if !body[start..].is_empty() {
        out.push(&body[start..]);
    }
    out
}

/// Validate the daemon's access log: every line is a JSON object carrying
/// `corr`, `method`, `path`, a numeric `status`, and a numeric `ms`.
///
/// # Errors
///
/// The first malformed line, with its line number.
pub fn check_access_log(text: &str) -> Result<(), String> {
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc =
            pcv_obs::json::parse(line).map_err(|e| format!("access log line {}: {e}", i + 1))?;
        for key in ["corr", "method", "path"] {
            if doc.get(key).and_then(|v| v.as_str()).is_none() {
                return Err(format!("access log line {}: missing string {key:?}", i + 1));
            }
        }
        for key in ["status", "ms"] {
            if doc.get(key).and_then(|v| v.as_f64()).is_none() {
                return Err(format!("access log line {}: missing numeric {key:?}", i + 1));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_labels_stay_low_cardinality() {
        assert_eq!(route_label("GET", "/healthz"), "/healthz");
        assert_eq!(route_label("GET", "/sessions/s17"), "/sessions/{id}");
        assert_eq!(route_label("POST", "/sessions/s17/runs"), "/sessions/{id}/runs");
        assert_eq!(route_label("GET", "/runs/r99/events"), "/runs/{id}/events");
        assert_eq!(route_label("GET", "/runs/r99/signoff"), "/runs/{id}/signoff");
        assert_eq!(route_label("DELETE", "/sessions/s17"), "other");
        assert_eq!(route_label("GET", "/nope"), "other");
    }

    #[test]
    fn checker_accepts_the_registry_render() {
        let obs = Observatory::new(Path::new("target/pcv_observe_test"), true);
        obs.record_stall("r1");
        let text = obs.render_metrics(2, 1);
        check_exposition(&text).expect("own render must validate");
        assert!(text.contains("pcv_run_queue_depth 2\n"), "{text}");
        assert!(text.contains("pcv_sessions_resident 1\n"), "{text}");
        assert!(text.contains("pcv_stall_warnings_total{run=\"r1\"} 1\n"), "{text}");
    }

    #[test]
    fn checker_rejects_malformed_exposition() {
        assert!(check_exposition("pcv_x 1\n").is_err(), "sample without TYPE");
        assert!(check_exposition("# TYPE pcv_x counter\npcv_x notanumber\n").is_err());
        assert!(check_exposition("# TYPE pcv_x counter\npcv_x{a=unquoted} 1\n").is_err());
        assert!(
            check_exposition(
                "# TYPE pcv_h histogram\npcv_h_bucket{le=\"1\"} 1\npcv_h_sum 1\npcv_h_count 1\n"
            )
            .is_err(),
            "histogram must close with +Inf"
        );
        let good = "# TYPE pcv_h histogram\npcv_h_bucket{le=\"1\"} 1\n\
                    pcv_h_bucket{le=\"+Inf\"} 1\npcv_h_sum 1\npcv_h_count 1\n";
        check_exposition(good).unwrap();
        // Label values may contain literal braces — route patterns do.
        check_exposition("# TYPE pcv_x counter\npcv_x{route=\"/runs/{id}/events\"} 1\n").unwrap();
    }

    #[test]
    fn access_log_checker_wants_all_fields() {
        let good = "{\"corr\":\"c1\",\"method\":\"GET\",\"path\":\"/healthz\",\"status\":200,\"ms\":0.21}\n";
        check_access_log(good).unwrap();
        check_access_log("").unwrap();
        assert!(check_access_log("{\"corr\":\"c1\"}\n").is_err());
        assert!(check_access_log("not json\n").is_err());
    }

    #[test]
    fn disabled_observatory_records_nothing() {
        let obs = Observatory::new(Path::new("target/pcv_observe_off"), false);
        obs.record_http("c1", "GET", "/healthz", 200, 0.001);
        obs.record_stall("r1");
        let text = obs.render_metrics(0, 0);
        // Scrape-time gauges still render (the surface stays live), but no
        // request/stall series were recorded and no access log exists.
        assert!(!text.contains("pcv_http_requests_total"), "{text}");
        assert!(!text.contains("pcv_stall_warnings_total"), "{text}");
        assert!(text.contains("pcv_uptime_seconds"), "{text}");
        assert!(!Path::new("target/pcv_observe_off/access.jsonl").exists());
    }

    #[test]
    fn correlation_ids_are_unique_and_ordered() {
        let obs = Observatory::new(Path::new("target/pcv_observe_corr"), true);
        assert_eq!(obs.mint_corr(), "c1");
        assert_eq!(obs.mint_corr(), "c2");
        assert_eq!(obs.mint_corr(), "c3");
    }
}
