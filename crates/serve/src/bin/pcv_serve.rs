//! The `pcv_serve` daemon binary: bind, serve, drain on SIGTERM/SIGINT.
//!
//! ```text
//! pcv_serve [--addr 127.0.0.1:7171] [--data-dir DIR] [--queue N] [--port-file PATH]
//!           [--stall-timeout-ms MS] [--no-observe]
//! ```
//!
//! `--port-file` writes the bound address (one line, `host:port`) after a
//! successful bind — CI boots the daemon on an ephemeral port (`:0`) and
//! reads the real port back from this file.
//!
//! `--stall-timeout-ms` arms the stall watchdog (default 30000; 0
//! disables); `--no-observe` turns the whole observatory off — metrics,
//! access log, flight recording, watchdog — while leaving the `/metrics`
//! and `/debug/flight` surfaces answering.
//!
//! Crash capture: SIGQUIT dumps the flight recorder to
//! `<data_dir>/flight-sigquit.json` (and keeps serving); a panic on any
//! thread dumps to `<data_dir>/flight-panic.json` before unwinding.
//!
//! `pcv_serve --shard-worker` is a different animal entirely: no
//! listener, no daemon — the process reads one JSON config line on stdin,
//! verifies one shard of a chip, streams JSONL progress on stdout, and
//! exits. The shard coordinator (a daemon run with `"shards": N`, or the
//! `Coordinator` API directly) spawns these.

use pcv_engine::fs::Fs;
use pcv_obs::TrackingAlloc;
use pcv_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Track allocations so shard workers report a real `peak_alloc_bytes`
/// in their `done` line (the per-shard bounded-memory telemetry).
#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc::system();

/// Set by the signal handler; the main loop polls it.
static TERMINATE: AtomicBool = AtomicBool::new(false);
/// Set by SIGQUIT; the main loop dumps the flight recorder and clears it.
static DUMP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    TERMINATE.store(true, Ordering::Release);
}

extern "C" fn on_dump_signal(_sig: i32) {
    DUMP.store(true, Ordering::Release);
}

/// Install `on_signal` for SIGTERM/SIGINT and `on_dump_signal` for SIGQUIT
/// via the libc `signal(2)` entry point — the workspace is std-only, and
/// this one symbol is in every libc std already links against.
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGQUIT: i32 = 3;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
            signal(SIGQUIT, on_dump_signal);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pcv_serve [--addr HOST:PORT] [--data-dir DIR] [--queue N] [--port-file PATH]\n\
         \x20                [--stall-timeout-ms MS] [--no-observe]"
    );
    std::process::exit(2);
}

fn main() {
    // Worker mode dispatches before the daemon flag loop: the child's
    // whole argv is `--shard-worker` and its config arrives on stdin.
    if std::env::args().nth(1).as_deref() == Some("--shard-worker") {
        std::process::exit(pcv_serve::worker::run_worker());
    }
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7171".into(),
        stall_timeout_ms: 30_000,
        ..ServerConfig::default()
    };
    let mut port_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--data-dir" => cfg.data_dir = PathBuf::from(value("--data-dir")),
            "--queue" => cfg.queue_capacity = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file"))),
            "--stall-timeout-ms" => {
                cfg.stall_timeout_ms =
                    value("--stall-timeout-ms").parse().unwrap_or_else(|_| usage());
            }
            "--no-observe" => cfg.observe = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    install_signal_handlers();

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pcv_serve: failed to start: {e}");
            std::process::exit(1);
        }
    };

    // A panic on any thread dumps the flight recorder (atomically, so a
    // half-written dump is never observed) before the default unwind
    // message — the ring answers "what was it doing just before?".
    {
        let flight = server.flight();
        let dump_path = server.data_dir().join("flight-panic.json");
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = Fs::real().write_atomic(&dump_path, flight.dump_json().as_bytes());
            previous(info);
        }));
    }

    let addr = server.addr();
    eprintln!("pcv_serve: listening on {addr}");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{addr}\n")) {
            eprintln!("pcv_serve: cannot write port file {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    // Serve until a signal or an over-the-wire POST /shutdown arrives,
    // then drain: the in-flight run checkpoints and its journal stays
    // resumable, queued runs are refused, the listener stops last.
    while !TERMINATE.load(Ordering::Acquire) && !server.is_shutting_down() {
        if DUMP.swap(false, Ordering::AcqRel) {
            match server.dump_flight("sigquit") {
                Ok(path) => eprintln!("pcv_serve: flight dump at {}", path.display()),
                Err(e) => eprintln!("pcv_serve: flight dump failed: {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("pcv_serve: draining");
    server.join();
    eprintln!("pcv_serve: stopped");
}

fn usage_for(flag: &str) -> String {
    eprintln!("pcv_serve: {flag} needs a value");
    usage()
}
