//! `promcheck` — validate a Prometheus text exposition and/or the daemon's
//! JSONL access log. CI scrapes `/metrics` mid-run and pipes the capture
//! through this checker; exit status 1 with the first violation on stderr.
//!
//! ```text
//! promcheck [--metrics FILE] [--access-log FILE]
//! ```
//!
//! The checks are the same [`pcv_serve::check_exposition`] and
//! [`pcv_serve::check_access_log`] the serve test-suite runs in-process,
//! so CI and tests can never disagree about what "valid" means.

use pcv_serve::{check_access_log, check_exposition};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: promcheck [--metrics FILE] [--access-log FILE]");
    std::process::exit(2);
}

fn main() {
    let mut metrics: Option<PathBuf> = None;
    let mut access_log: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("promcheck: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics"))),
            "--access-log" => access_log = Some(PathBuf::from(value("--access-log"))),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if metrics.is_none() && access_log.is_none() {
        usage();
    }

    let read = |path: &PathBuf| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("promcheck: cannot read {}: {e}", path.display());
            std::process::exit(1);
        })
    };
    let mut failed = false;
    if let Some(path) = &metrics {
        match check_exposition(&read(path)) {
            Ok(()) => println!("promcheck: {} is valid exposition", path.display()),
            Err(e) => {
                eprintln!("promcheck: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if let Some(path) = &access_log {
        match check_access_log(&read(path)) {
            Ok(()) => println!("promcheck: {} parses cleanly", path.display()),
            Err(e) => {
                eprintln!("promcheck: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
