//! The service's typed error surface and its one HTTP status mapping.
//!
//! Every handler returns [`ApiError`] on failure, and exactly one place —
//! [`ApiError::status`] — decides the wire status. Engine and analysis
//! failures arrive as [`XtalkError`] and convert through `From`, so the
//! typed run-lock contention ([`XtalkError::Busy`]) and malformed-request
//! ([`XtalkError::BadRequest`]) variants keep their meaning on the wire
//! (429 and 400) instead of collapsing into a generic 500.

use pcv_trace::json::str_lit;
use pcv_xtalk::XtalkError;
use std::fmt;

/// A request-level failure, one variant per HTTP status the service emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// 400 — the request was malformed or referenced something that does
    /// not exist in the targeted session (bad JSON, unknown field, a net
    /// that is not a victim).
    BadRequest(String),
    /// 404 — no such route, session, run, or artifact.
    NotFound(String),
    /// 409 — the resource exists but is not in a state the request can be
    /// served from (sign-off fetch of an unfinished run).
    Conflict(String),
    /// 429 — the service cannot take more work right now: the bounded run
    /// queue is full, or the engine's advisory run lock is held.
    Busy(String),
    /// 500 — the run itself failed in a way the client cannot repair.
    Internal(String),
    /// 504 — a sharded run blew through its coordinator-side deadline;
    /// the workers were killed and the run failed with this typed error
    /// instead of leaving the client on a hung stream.
    Timeout(String),
}

impl ApiError {
    /// The HTTP status code, reason phrase, and stable machine-readable
    /// error code for this failure.
    pub fn status(&self) -> (u16, &'static str, &'static str) {
        match self {
            ApiError::BadRequest(_) => (400, "Bad Request", "bad_request"),
            ApiError::NotFound(_) => (404, "Not Found", "not_found"),
            ApiError::Conflict(_) => (409, "Conflict", "conflict"),
            ApiError::Busy(_) => (429, "Too Many Requests", "busy"),
            ApiError::Internal(_) => (500, "Internal Server Error", "internal"),
            ApiError::Timeout(_) => (504, "Gateway Timeout", "deadline_exceeded"),
        }
    }

    /// The human-readable detail message.
    pub fn message(&self) -> &str {
        match self {
            ApiError::BadRequest(m)
            | ApiError::NotFound(m)
            | ApiError::Conflict(m)
            | ApiError::Busy(m)
            | ApiError::Internal(m)
            | ApiError::Timeout(m) => m,
        }
    }

    /// The JSON body every error response carries:
    /// `{"error":"<code>","message":"<detail>"}`.
    pub fn to_json(&self) -> String {
        let (_, _, code) = self.status();
        format!("{{\"error\":{},\"message\":{}}}", str_lit(code), str_lit(self.message()))
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (status, _, code) = self.status();
        write!(f, "{status} {code}: {}", self.message())
    }
}

impl std::error::Error for ApiError {}

impl From<XtalkError> for ApiError {
    fn from(e: XtalkError) -> Self {
        match e {
            // The engine's typed contention error IS the service's 429:
            // another writer owns the session's cache directory right now.
            XtalkError::Busy { path, pid } => {
                ApiError::Busy(format!("run lock {path} held by live pid {pid}"))
            }
            XtalkError::BadRequest { what } => ApiError::BadRequest(what),
            XtalkError::InvalidConfig { what } => ApiError::BadRequest(what.to_owned()),
            other => ApiError::Internal(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_status_per_variant() {
        assert_eq!(ApiError::BadRequest("x".into()).status().0, 400);
        assert_eq!(ApiError::NotFound("x".into()).status().0, 404);
        assert_eq!(ApiError::Conflict("x".into()).status().0, 409);
        assert_eq!(ApiError::Busy("x".into()).status().0, 429);
        assert_eq!(ApiError::Internal("x".into()).status().0, 500);
        assert_eq!(ApiError::Timeout("x".into()).status().0, 504);
        assert!(ApiError::Timeout("x".into()).to_json().contains("deadline_exceeded"));
    }

    #[test]
    fn engine_busy_maps_to_429_not_500() {
        let e = ApiError::from(XtalkError::Busy { path: "/tmp/c.lock".into(), pid: 77 });
        assert_eq!(e.status().0, 429);
        assert!(e.message().contains("77"));
        assert!(e.to_json().contains("\"error\":\"busy\""));
    }

    #[test]
    fn typed_bad_request_maps_to_400() {
        let e = ApiError::from(XtalkError::BadRequest { what: "no such net \"b9\"".into() });
        assert_eq!(e.status().0, 400);
        assert!(e.to_json().contains("\\\"b9\\\""), "message is escaped: {}", e.to_json());
        let e = ApiError::from(XtalkError::InvalidConfig { what: "mixed thresholds" });
        assert_eq!(e.status().0, 400);
    }

    #[test]
    fn other_engine_errors_are_internal() {
        let e = ApiError::from(XtalkError::Measurement { what: "crossing" });
        assert_eq!(e.status().0, 500);
        assert!(e.to_string().contains("crossing"));
    }
}
