//! The shard coordinator: fan a sign-off out to worker processes and
//! merge the pieces back into one byte-identical report.
//!
//! # Supervision state machine
//!
//! Each shard gets one supervisor thread driving a simple loop:
//!
//! ```text
//!            ┌────────────── backoff ◄─────────────┐
//!            ▼                                     │
//! spawn → streaming ──done+exit 0──► harvested     │
//!            │                                     │
//!            ├── crash (nonzero exit, EOF) ────────┤ restarts ≤ budget
//!            ├── stall (heartbeat deadline) ─kill──┤
//!            │                                     │
//!            └──────── restarts > budget ──► exhausted (WorstCase fill)
//! ```
//!
//! Any stdout line is a heartbeat; [`pcv_engine::VerdictSnapshot::beats`]
//! carries worker liveness into the daemon's stall watchdog exactly as a
//! single-process run would. Restart backoff is exponential (50 ms base,
//! doubling, 2 s cap) and bounded by `restart_budget`.
//!
//! # Merge protocol
//!
//! Workers never stream authoritative results — files do. A shard that
//! completed delivers its verdicts through its result cache (written
//! atomically at run end); a shard that died mid-run leaves a checkpoint
//! journal remnant; a shard that exhausted its budget has the gaps filled
//! with conservative `WorstCase` entries carrying a recorded degradation
//! trail. The coordinator folds all of it into one merged journal under
//! its own `(config, chip)` fingerprint header and replays it through
//! [`pcv_engine::Engine::resume_resident`] — entry adoption is
//! fingerprint-guarded bit-for-bit, stragglers are recomputed in-process,
//! and byte-identity with an unsharded run follows from the resume
//! equivalence the durability layer already proves.

use crate::error::ApiError;
use crate::session::DesignSpec;
use crate::worker::parse_verdict;
use pcv_engine::durable::StopFlag;
use pcv_engine::fs::Fs;
use pcv_engine::shard::{harvest_shard, partition, ShardFault, ShardFaultPlan};
use pcv_engine::{
    chip_slice_fingerprint, config_hash, write_merged_journal, Engine, EngineConfig, EngineReport,
    ResidentChip, VerdictSnapshot,
};
use pcv_obs::json::{parse, Value};
use pcv_obs::EventSink;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a sharded run is set up: topology, timeouts, budgets, drills.
#[derive(Clone)]
pub struct CoordinatorConfig {
    /// Number of shards (worker processes), ≥ 1.
    pub shards: usize,
    /// The `pcv_serve` binary to spawn with `--shard-worker`.
    pub worker_exe: PathBuf,
    /// Merged cache stem; shard `k` journals and caches under
    /// `<cache>.shard<k>`.
    pub cache_path: PathBuf,
    /// Engine threads inside each worker (0 = auto).
    pub workers_per_shard: usize,
    /// Warning threshold override (fraction of Vdd).
    pub warn_frac: Option<f64>,
    /// Failure threshold override (fraction of Vdd).
    pub fail_frac: Option<f64>,
    /// Receiver-propagation check override.
    pub check_receivers: Option<bool>,
    /// A worker silent for this long is declared stalled and killed.
    pub heartbeat_timeout: Duration,
    /// Whole-run deadline; exceeding it kills every worker and fails the
    /// run with [`ApiError::Timeout`] instead of hanging the stream.
    pub deadline: Option<Duration>,
    /// Restarts allowed per shard before it is declared exhausted.
    pub restart_budget: u32,
    /// Deterministic failure drills.
    pub fault_plan: ShardFaultPlan,
    /// Event sink for the merge run (the daemon threads its hub here).
    pub sink: Option<Arc<dyn EventSink>>,
    /// Cooperative stop for the merge run (the daemon's drain flag).
    pub stop: Option<StopFlag>,
}

impl CoordinatorConfig {
    /// A config with production defaults: 10 s heartbeat, no deadline,
    /// 3 restarts per shard, no drills.
    #[must_use]
    pub fn new(shards: usize, worker_exe: PathBuf, cache_path: PathBuf) -> Self {
        CoordinatorConfig {
            shards: shards.max(1),
            worker_exe,
            cache_path,
            workers_per_shard: 0,
            warn_frac: None,
            fail_frac: None,
            check_receivers: None,
            heartbeat_timeout: Duration::from_millis(10_000),
            deadline: None,
            restart_budget: 3,
            fault_plan: ShardFaultPlan::new(),
            sink: None,
            stop: None,
        }
    }
}

/// What one shard went through, for `/metrics`, `/healthz`, and tests.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Victims in the shard's slice.
    pub victims: usize,
    /// Worker restarts performed.
    pub restarts: u32,
    /// Heartbeat deadlines missed (each one kills an incarnation).
    pub heartbeat_misses: u32,
    /// Whether the restart budget ran out (WorstCase fill applied).
    pub exhausted: bool,
    /// Torn journal lines the shard's replays skipped (worker-reported,
    /// plus what the coordinator's own harvest load skipped).
    pub torn_journal_lines: usize,
    /// Peak worker heap, bytes (0 when allocation tracking is off).
    pub peak_alloc_bytes: u64,
    /// Verdicts harvested from the shard's result cache.
    pub from_cache: usize,
    /// Verdicts harvested from the shard's journal remnant.
    pub from_journal: usize,
    /// Conservative worst-case verdicts synthesized for missing victims.
    pub worst_case: usize,
}

/// A completed sharded run: the merged report plus per-shard telemetry.
#[derive(Debug)]
pub struct ShardRunOutcome {
    /// The merged report; `signoff_json()` is byte-identical to an
    /// unsharded run (plus any budget-exhaustion degradations).
    pub report: EngineReport,
    /// Per-shard supervision statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl ShardRunOutcome {
    /// Total restarts across shards.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.restarts)).sum()
    }

    /// Total heartbeat misses across shards.
    #[must_use]
    pub fn heartbeat_misses(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.heartbeat_misses)).sum()
    }

    /// Shards that exhausted their restart budget.
    #[must_use]
    pub fn degraded_shards(&self) -> u64 {
        self.shards.iter().filter(|s| s.exhausted).count() as u64
    }
}

/// Per-incarnation drill knobs extracted from the fault plan.
#[derive(Debug, Clone, Copy, Default)]
struct Drills {
    panic_after: Option<usize>,
    stall_after: Option<usize>,
    sigkill_frac: Option<f64>,
    torn_journal: bool,
    duplicate_entry: bool,
}

fn drills_for(plan: &ShardFaultPlan, shard: usize, incarnation: u32) -> Drills {
    let mut d = Drills::default();
    for f in plan.faults_for(shard, incarnation) {
        match f.fault {
            ShardFault::PanicAfter(n) => d.panic_after = Some(n),
            ShardFault::StallAfter(n) => d.stall_after = Some(n),
            ShardFault::SigkillAtFrac(x) => d.sigkill_frac = Some(x),
            ShardFault::TornJournal => d.torn_journal = true,
            ShardFault::DuplicateEntry => d.duplicate_entry = true,
        }
    }
    d
}

/// Tear the journal's final line mid-frame (what a crash mid-append
/// leaves behind) — the replay must drop exactly that line.
fn tear_journal_tail(path: &Path) {
    if let Ok(bytes) = std::fs::read(path) {
        if bytes.len() > 8 {
            let _ = std::fs::write(path, &bytes[..bytes.len() - 7]);
        }
    }
}

/// Append a copy of the journal's last intact record — replay must
/// dedupe by victim name, not double-count.
fn duplicate_journal_tail(path: &Path) {
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Some(last) = text.lines().rfind(|l| !l.is_empty()) {
            let mut f = match std::fs::OpenOptions::new().append(true).open(path) {
                Ok(f) => f,
                Err(_) => return,
            };
            let _ = writeln!(f, "{last}");
        }
    }
}

/// One supervisor's terminal state.
struct ShardResult {
    stats: ShardStats,
    exhausted_reason: Option<String>,
    timed_out: bool,
}

struct ShardJob {
    shard: usize,
    slice_len: usize,
    config_line: String, // without the trailing '}' and drill keys
    cache: PathBuf,
    worker_exe: PathBuf,
    heartbeat_timeout: Duration,
    deadline: Option<Instant>,
    restart_budget: u32,
    plan: ShardFaultPlan,
    snapshot: Arc<VerdictSnapshot>,
}

fn spawn_worker(
    job: &ShardJob,
    drills: Drills,
) -> std::io::Result<(Child, mpsc::Receiver<String>)> {
    let mut child = Command::new(&job.worker_exe)
        .arg("--shard-worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()?;
    let mut line = job.config_line.clone();
    if let Some(n) = drills.panic_after {
        line.push_str(&format!(",\"panic_after\":{n}"));
    }
    if let Some(n) = drills.stall_after {
        line.push_str(&format!(",\"stall_after\":{n}"));
    }
    line.push('}');
    if let Some(mut stdin) = child.stdin.take() {
        let _ = writeln!(stdin, "{line}");
        // Dropping stdin closes the pipe; the worker has its one line.
    }
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let reader = BufReader::new(stdout);
        for read in reader.lines() {
            let Ok(l) = read else { break };
            if tx.send(l).is_err() {
                break;
            }
        }
        // EOF drops tx; the supervisor sees Disconnected.
    });
    Ok((child, rx))
}

/// Why one worker incarnation ended.
enum Exit {
    Done { peak: u64, torn: usize },
    Crashed,
    Stalled,
    TimedOut,
}

fn supervise_incarnation(
    job: &ShardJob,
    child: &mut Child,
    rx: &mpsc::Receiver<String>,
    drills: Drills,
    stats: &mut ShardStats,
) -> Exit {
    let mut emitted = 0usize;
    let mut sigkill_frac = drills.sigkill_frac;
    loop {
        let wait = match job.deadline {
            Some(d) => {
                let Some(left) = d.checked_duration_since(Instant::now()) else {
                    let _ = child.kill();
                    return Exit::TimedOut;
                };
                job.heartbeat_timeout.min(left)
            }
            None => job.heartbeat_timeout,
        };
        match rx.recv_timeout(wait) {
            Ok(line) => {
                job.snapshot.beat();
                let Ok(doc) = parse(&line) else { continue };
                match doc.get("kind").and_then(Value::as_str) {
                    Some("hello") => {
                        if let Some(t) = doc.get("torn_journal_lines").and_then(Value::as_u64) {
                            stats.torn_journal_lines = stats.torn_journal_lines.max(t as usize);
                        }
                    }
                    Some("verdict") => {
                        if let Some(v) = parse_verdict(&doc) {
                            job.snapshot.insert(v);
                        }
                        emitted += 1;
                        if let Some(frac) = sigkill_frac {
                            if emitted as f64 >= frac * job.slice_len as f64 {
                                sigkill_frac = None;
                                let _ = child.kill();
                                // The drill *is* the crash; fall through to
                                // EOF → restart like any real kill -9.
                            }
                        }
                    }
                    Some("done") => {
                        let peak = doc.get("peak_alloc_bytes").and_then(Value::as_u64).unwrap_or(0);
                        let torn =
                            doc.get("torn_journal_lines").and_then(Value::as_u64).unwrap_or(0)
                                as usize;
                        return Exit::Done { peak, torn };
                    }
                    _ => {} // beats and anything future just prove liveness
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if let Some(d) = job.deadline {
                    if Instant::now() >= d {
                        let _ = child.kill();
                        return Exit::TimedOut;
                    }
                }
                if matches!(child.try_wait(), Ok(Some(_))) {
                    return Exit::Crashed;
                }
                stats.heartbeat_misses += 1;
                let _ = child.kill();
                return Exit::Stalled;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Exit::Crashed,
        }
    }
}

fn supervise_shard(job: &ShardJob) -> ShardResult {
    let mut stats =
        ShardStats { shard: job.shard, victims: job.slice_len, ..ShardStats::default() };
    let mut incarnation = 0u32;
    loop {
        if let Some(d) = job.deadline {
            if Instant::now() >= d {
                return ShardResult { stats, exhausted_reason: None, timed_out: true };
            }
        }
        let drills = drills_for(&job.plan, job.shard, incarnation);
        let Ok((mut child, rx)) = spawn_worker(job, drills) else {
            // Spawn failure burns a restart like any other incarnation
            // death — persistent spawn failure ends in WorstCase fill,
            // not a hung coordinator.
            stats.restarts += 1;
            if stats.restarts > job.restart_budget {
                return exhausted(job, stats);
            }
            incarnation += 1;
            backoff(incarnation);
            continue;
        };
        let exit = supervise_incarnation(job, &mut child, &rx, drills, &mut stats);
        // After a done line the child is exiting on its own — killing it
        // here would race its natural exit and turn an honest completion
        // into a SIGKILL status. Everything else gets killed so a child is
        // never leaked.
        let status = match exit {
            Exit::Done { .. } => wait_bounded(&mut child, job.heartbeat_timeout),
            _ => {
                let _ = child.kill();
                child.wait()
            }
        };
        match exit {
            Exit::Done { peak, torn } => {
                if matches!(&status, Ok(s) if s.success()) {
                    stats.peak_alloc_bytes = stats.peak_alloc_bytes.max(peak);
                    stats.torn_journal_lines = stats.torn_journal_lines.max(torn);
                    return ShardResult { stats, exhausted_reason: None, timed_out: false };
                }
                // A done line from a worker that then failed is not
                // trustworthy; treat as a crash.
            }
            Exit::TimedOut => {
                return ShardResult { stats, exhausted_reason: None, timed_out: true }
            }
            Exit::Crashed | Exit::Stalled => {}
        }
        // Post-mortem journal drills: corrupt the shard journal the way a
        // real crash can, *between* death and restart, so the replacement
        // incarnation's replay proves the tolerance.
        let journal = pcv_engine::Journal::path_for(&job.cache);
        if drills.torn_journal {
            tear_journal_tail(&journal);
        }
        if drills.duplicate_entry {
            duplicate_journal_tail(&journal);
        }
        stats.restarts += 1;
        if stats.restarts > job.restart_budget {
            return exhausted(job, stats);
        }
        incarnation += 1;
        backoff(incarnation);
    }
}

fn exhausted(job: &ShardJob, mut stats: ShardStats) -> ShardResult {
    stats.exhausted = true;
    let reason = format!(
        "shard {} worker exhausted restart budget ({} restarts)",
        job.shard, job.restart_budget
    );
    ShardResult { stats, exhausted_reason: Some(reason), timed_out: false }
}

/// Wait for a child's natural exit, but never past `limit` — a worker
/// that said "done" yet won't die still gets reaped.
fn wait_bounded(child: &mut Child, limit: Duration) -> std::io::Result<std::process::ExitStatus> {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(status);
        }
        if start.elapsed() >= limit {
            let _ = child.kill();
            return child.wait();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Exponential backoff: 50 ms doubling per restart, capped at 2 s.
fn backoff(incarnation: u32) {
    let ms = 50u64.saturating_mul(1u64 << incarnation.saturating_sub(1).min(6));
    std::thread::sleep(Duration::from_millis(ms.min(2_000)));
}

/// The coordinator: owns the chip view, the shard topology, and the
/// merge. Construct one per sharded run.
pub struct Coordinator {
    spec: DesignSpec,
    chip: Arc<ResidentChip>,
    cfg: CoordinatorConfig,
}

impl Coordinator {
    /// A coordinator for `chip`, which must be the elaboration of `spec`
    /// (workers re-elaborate from the spec and must agree on net ids).
    #[must_use]
    pub fn new(spec: DesignSpec, chip: Arc<ResidentChip>, cfg: CoordinatorConfig) -> Self {
        Coordinator { spec, chip, cfg }
    }

    /// Shard `k`'s cache stem.
    #[must_use]
    pub fn shard_cache(&self, shard: usize) -> PathBuf {
        PathBuf::from(format!("{}.shard{shard}", self.cfg.cache_path.display()))
    }

    fn worker_config_line(&self, shard: usize, cache: &Path) -> String {
        use pcv_trace::json::str_lit;
        let mut line = self.spec.to_json();
        debug_assert!(line.ends_with('}'));
        line.pop();
        line.push_str(&format!(
            ",\"shards\":{},\"shard\":{},\"cache\":{},\"workers\":{}",
            self.cfg.shards,
            shard,
            str_lit(&cache.display().to_string()),
            self.cfg.workers_per_shard
        ));
        if let Some(w) = self.cfg.warn_frac {
            line.push_str(&format!(",\"warn_frac\":{}", pcv_trace::json::f64_lit(w)));
        }
        if let Some(f) = self.cfg.fail_frac {
            line.push_str(&format!(",\"fail_frac\":{}", pcv_trace::json::f64_lit(f)));
        }
        if let Some(c) = self.cfg.check_receivers {
            line.push_str(&format!(",\"check_receivers\":{c}"));
        }
        line // drill keys + closing '}' are appended per incarnation
    }

    /// The engine configuration the merge run (and the fingerprints) use
    /// — the same resolution a single-process run of this overlay gets.
    fn merge_engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig {
            cache_path: Some(self.cfg.cache_path.clone()),
            ..EngineConfig::default()
        };
        if let Some(w) = self.cfg.warn_frac {
            cfg.warn_frac = w;
        }
        if let Some(f) = self.cfg.fail_frac {
            cfg.fail_frac = f;
        }
        if let Some(c) = self.cfg.check_receivers {
            cfg.check_receivers = c;
        }
        cfg
    }

    /// Run the sharded sign-off: fan out, supervise, merge, prove.
    ///
    /// `snapshot`, when given, is mirrored live: worker verdict lines are
    /// inserted as they stream in (bumping `beats`, which keeps the
    /// daemon's stall watchdog honest), and idle worker beats tick it too.
    ///
    /// # Errors
    ///
    /// [`ApiError::Timeout`] when the run deadline expires;
    /// [`ApiError::Internal`] for merge-journal I/O failures; engine
    /// errors from the merge run mapped through `From<XtalkError>`.
    pub fn run(
        &self,
        snapshot: Option<&Arc<VerdictSnapshot>>,
    ) -> Result<ShardRunOutcome, ApiError> {
        let slices = partition(&self.chip, self.chip.victims(), self.cfg.shards);
        let deadline = self.cfg.deadline.map(|d| Instant::now() + d);
        let own_snapshot = Arc::new(VerdictSnapshot::new());

        let results: Vec<ShardResult> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(slices.len());
            for (k, slice) in slices.iter().enumerate() {
                let cache = self.shard_cache(k);
                let job = ShardJob {
                    shard: k,
                    slice_len: slice.len(),
                    config_line: self.worker_config_line(k, &cache),
                    cache,
                    worker_exe: self.cfg.worker_exe.clone(),
                    heartbeat_timeout: self.cfg.heartbeat_timeout,
                    deadline,
                    restart_budget: self.cfg.restart_budget,
                    plan: self.cfg.fault_plan.clone(),
                    snapshot: snapshot.map_or_else(|| Arc::clone(&own_snapshot), Arc::clone),
                };
                handles.push(scope.spawn(move || supervise_shard(&job)));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| ShardResult {
                        stats: ShardStats::default(),
                        exhausted_reason: None,
                        timed_out: true,
                    })
                })
                .collect()
        });

        if results.iter().any(|r| r.timed_out) {
            return Err(ApiError::Timeout(format!(
                "sharded run exceeded its deadline of {:?}",
                self.cfg.deadline.unwrap_or_default()
            )));
        }

        // Merge: harvest every shard's files, fill exhausted shards with
        // WorstCase, write one journal, resume in-process.
        let ecfg = self.merge_engine_config();
        let ctx = self.chip.ctx();
        let chash = config_hash(
            &ctx,
            &ecfg.prune,
            &ecfg.analysis,
            ecfg.warn_frac,
            ecfg.fail_frac,
            ecfg.check_receivers,
        );
        let chip_fp = chip_slice_fingerprint(&ctx, self.chip.victims());
        let fs = Fs::real();
        let mut entries = Vec::new();
        let mut shard_stats = Vec::with_capacity(results.len());
        for (k, result) in results.into_iter().enumerate() {
            let (es, contrib) = harvest_shard(
                &self.chip,
                &ecfg.prune,
                chash,
                ecfg.analysis.vdd,
                &slices[k],
                &self.shard_cache(k),
                &fs,
                result.exhausted_reason.as_deref(),
            );
            entries.extend(es);
            let mut stats = result.stats;
            stats.torn_journal_lines = stats.torn_journal_lines.max(contrib.torn_lines);
            stats.from_cache = contrib.from_cache;
            stats.from_journal = contrib.from_journal;
            stats.worst_case = contrib.worst_case;
            shard_stats.push(stats);
        }
        write_merged_journal(&fs, &self.cfg.cache_path, chash, chip_fp, &entries)
            .map_err(|e| ApiError::Internal(format!("merged journal: {e}")))?;

        let mut merge_cfg = self.merge_engine_config();
        merge_cfg.sink = self.cfg.sink.clone();
        merge_cfg.durable.stop = self.cfg.stop.clone();
        let engine = Engine::new(merge_cfg);
        let report = engine.resume_resident(&self.chip, snapshot.map(Arc::as_ref))?;
        Ok(ShardRunOutcome { report, shards: shard_stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded() {
        // Just exercise the arithmetic paths (no sleep assertions — the
        // cap is the contract).
        for i in 0..40 {
            let ms = 50u64.saturating_mul(1u64 << i.min(6)).min(2_000);
            assert!(ms <= 2_000);
        }
    }

    #[test]
    fn shard_cache_paths_are_distinct() {
        let cfg = CoordinatorConfig::new(4, "/bin/true".into(), "/tmp/s.cache".into());
        let spec = DesignSpec::from_json(
            "{\"design\":{\"kind\":\"dsp\",\"buses\":1,\"bits\":2,\"random\":0}}",
        )
        .unwrap();
        let chip = Arc::new(crate::session::elaborate(&spec).unwrap());
        let c = Coordinator::new(spec, chip, cfg);
        let mut seen = std::collections::HashSet::new();
        for k in 0..4 {
            assert!(seen.insert(c.shard_cache(k)));
        }
    }
}
