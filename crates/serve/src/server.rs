//! The daemon: a localhost TCP listener, a bounded run queue, and one
//! executor thread that owns every engine run.
//!
//! Concurrency model, in one paragraph: *writes are serial, reads are
//! concurrent*. All verification runs execute on a single executor thread
//! (matching the engine's single-writer-per-cache-directory model — the
//! advisory [`RunLock`](pcv_engine::RunLock) stays uncontended), fed by a
//! bounded FIFO queue; a full queue answers a typed 429 instead of
//! accepting unbounded work. Queries — event streams, mid-run verdicts,
//! sign-off fetches — run on per-connection threads and never touch the
//! run queue lock or the engine: they read the run's [`EventHub`] archive
//! and [`VerdictSnapshot`], both designed for lock-free-ish concurrent
//! reads while a run is in flight.
//!
//! Graceful shutdown (`POST /shutdown` or [`Server::initiate_shutdown`])
//! raises the in-flight run's [`StopFlag`]: the engine drains — in-flight
//! clusters finish and are checkpointed, queued clusters are skipped — so
//! the session's journal on disk is resumable, either by a restarted
//! daemon (`"resume": true` on the next run) or offline with
//! [`Engine::resume`](pcv_engine::Engine::resume).

use crate::error::ApiError;
use crate::http::{self, ChunkedWriter, Request};
use crate::observe::Observatory;
use crate::session::{DesignSpec, Session, SessionState};
use crate::shard::{Coordinator, CoordinatorConfig};
use pcv_engine::fs::Fs;
use pcv_engine::{
    EcoPlan, Engine, EngineConfig, FaultKind, FaultPlan, ResidentChip, StopAfter, StopFlag,
    VerdictSnapshot,
};
use pcv_netlist::eco::EcoDelta;
use pcv_obs::json::{parse, Value};
use pcv_obs::{CursorState, EngineEvent, EventHub, EventSink, FlightRecorder, TeeSink};
use pcv_trace::json::{f64_bits, f64_lit, str_lit};
use pcv_xtalk::{NetVerdict, XtalkError};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the daemon is provisioned.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (read it back with
    /// [`Server::addr`]).
    pub addr: String,
    /// Directory for caches, journals, ledgers and sign-off artifacts.
    pub data_dir: PathBuf,
    /// Bounded run-queue capacity: submissions beyond this answer 429.
    pub queue_capacity: usize,
    /// Per-run event archive capacity; overflow is shed and counted in
    /// the `/events` stream trailer.
    pub hub_capacity: usize,
    /// Whether the observatory records (metrics, access log, flight
    /// recorder, watchdog). When false the `/metrics` and `/debug/flight`
    /// surfaces stay up but nothing is recorded — and sign-off artifacts
    /// are byte-identical either way.
    pub observe: bool,
    /// Stall-watchdog no-progress interval in milliseconds; 0 disables
    /// the watchdog. On a trip it emits a `StallWarning` event, dumps the
    /// flight recorder, and bumps `pcv_stall_warnings_total` — it never
    /// stops the run.
    pub stall_timeout_ms: u64,
    /// The `pcv_serve` binary to spawn as `--shard-worker` children for
    /// sharded runs. `None` means the daemon's own executable (the normal
    /// deployment); tests hosting a [`Server`] in-process point this at
    /// the real binary.
    pub worker_exe: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: PathBuf::from("target/pcv_serve"),
            queue_capacity: 8,
            hub_capacity: 1 << 16,
            observe: true,
            stall_timeout_ms: 0,
            worker_exe: None,
        }
    }
}

/// Where a run is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
enum RunState {
    Queued,
    Running,
    Complete,
    /// Stopped mid-run (shutdown drain or `stop_after`); the journal on
    /// disk makes it resumable.
    Interrupted,
    Failed(ApiError),
}

impl RunState {
    fn name(&self) -> &'static str {
        match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Complete => "complete",
            RunState::Interrupted => "interrupted",
            RunState::Failed(_) => "failed",
        }
    }
}

/// Per-run configuration overlay posted with the run.
#[derive(Debug, Clone, Default)]
struct RunOverlay {
    workers: Option<usize>,
    warn_frac: Option<f64>,
    fail_frac: Option<f64>,
    check_receivers: Option<bool>,
    /// Drill knob: stop cooperatively after this many cluster verdicts
    /// (the served twin of `dsp_chip_signoff --stop-after`).
    stop_after: Option<usize>,
    /// Replay the session journal before running (complete an
    /// interrupted run).
    resume: bool,
    /// Collect a trace for this run (absorbed into `/metrics` after it
    /// finishes; never touches the sign-off bytes).
    trace: bool,
    /// Drill knob: seed a [`FaultKind::Slow`] fault on this fraction of
    /// victims, forcing them through the slow SPICE-fallback rung — the
    /// deterministic way to exercise the stall watchdog.
    drill_slow_frac: Option<f64>,
    /// Seed for `drill_slow_frac`'s per-victim decision (default 1).
    drill_seed: Option<u64>,
    /// ≥ 2 routes the run through the shard coordinator: this many worker
    /// processes, merged back byte-identically.
    shards: Option<usize>,
    /// Per-shard heartbeat deadline in milliseconds (default 10 000): a
    /// worker silent this long is killed and restarted.
    shard_timeout_ms: Option<u64>,
    /// Whole-run deadline in milliseconds; blowing it fails the run with
    /// a typed 504 instead of hanging the event stream.
    deadline_ms: Option<u64>,
    /// Restart budget per shard before WorstCase degradation (default 3).
    shard_restarts: Option<u32>,
}

impl RunOverlay {
    /// Consume one `key: value` pair if it names an overlay option;
    /// `Ok(false)` means the key is not an overlay's (the caller decides
    /// whether that is an error).
    fn apply(&mut self, key: &str, value: &Value) -> Result<bool, ApiError> {
        match key {
            "workers" => self.workers = Some(uint(value, key)?),
            "warn_frac" => self.warn_frac = Some(float(value, key)?),
            "fail_frac" => self.fail_frac = Some(float(value, key)?),
            "check_receivers" => self.check_receivers = Some(boolean(value, key)?),
            "stop_after" => self.stop_after = Some(uint(value, key)?),
            "resume" => self.resume = boolean(value, key)?,
            "trace" => self.trace = boolean(value, key)?,
            "drill_slow_frac" => self.drill_slow_frac = Some(float(value, key)?),
            "drill_seed" => self.drill_seed = Some(uint(value, key)? as u64),
            "shards" => self.shards = Some(uint(value, key)?),
            "shard_timeout_ms" => self.shard_timeout_ms = Some(uint(value, key)? as u64),
            "deadline_ms" => self.deadline_ms = Some(uint(value, key)? as u64),
            "shard_restarts" => self.shard_restarts = Some(uint(value, key)? as u32),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn from_json(body: &str) -> Result<RunOverlay, ApiError> {
        if body.trim().is_empty() {
            return Ok(RunOverlay::default());
        }
        let doc = parse(body).map_err(|e| ApiError::BadRequest(format!("run overlay: {e}")))?;
        let obj = doc
            .as_obj()
            .ok_or_else(|| ApiError::BadRequest("run overlay must be a JSON object".into()))?;
        let mut overlay = RunOverlay::default();
        for (key, value) in obj {
            if !overlay.apply(key, value)? {
                return Err(ApiError::BadRequest(format!("unknown run option {key:?}")));
            }
        }
        overlay.validate()?;
        Ok(overlay)
    }

    /// Cross-field checks shared by the run and ECO submit paths.
    fn validate(&self) -> Result<(), ApiError> {
        let sharded = self.shards.is_some_and(|s| s >= 2);
        if !sharded {
            for (set, key) in [
                (self.shard_timeout_ms.is_some(), "shard_timeout_ms"),
                (self.deadline_ms.is_some(), "deadline_ms"),
                (self.shard_restarts.is_some(), "shard_restarts"),
            ] {
                if set {
                    return Err(ApiError::BadRequest(format!("{key} requires \"shards\" >= 2")));
                }
            }
        }
        Ok(())
    }

    /// The engine configuration this overlay resolves to. The same
    /// resolution feeds the executor's run and the ECO planner's
    /// fingerprint check, so the plan's dirty set is computed under
    /// exactly the configuration the run will use.
    fn engine_config(&self, cache_path: PathBuf, sink: Option<Arc<dyn EventSink>>) -> EngineConfig {
        let mut cfg = EngineConfig {
            workers: self.workers.unwrap_or(0),
            cache_path: Some(cache_path),
            sink,
            ..EngineConfig::default()
        };
        if let Some(w) = self.warn_frac {
            cfg.warn_frac = w;
        }
        if let Some(f) = self.fail_frac {
            cfg.fail_frac = f;
        }
        if let Some(c) = self.check_receivers {
            cfg.check_receivers = c;
        }
        cfg.trace = self.trace;
        cfg
    }
}

fn uint(v: &Value, key: &str) -> Result<usize, ApiError> {
    v.as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| ApiError::BadRequest(format!("{key} must be a non-negative integer")))
}

fn float(v: &Value, key: &str) -> Result<f64, ApiError> {
    v.as_f64().ok_or_else(|| ApiError::BadRequest(format!("{key} must be a number")))
}

fn boolean(v: &Value, key: &str) -> Result<bool, ApiError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(ApiError::BadRequest(format!("{key} must be a boolean"))),
    }
}

/// An ECO re-verification queued behind a run: the exact chip pair the
/// delta was planned over, pinned so a later patch on the same session
/// cannot shift what this run verifies.
struct EcoJob {
    old: Arc<ResidentChip>,
    new: Arc<ResidentChip>,
    /// [`EcoPlan::to_json`] of the plan answered at submit time; recorded
    /// in the run ledger when the run completes.
    plan: String,
}

/// One submitted run: identity, live state, and the two concurrent-read
/// surfaces (event archive, verdict snapshot).
struct RunHandle {
    id: String,
    session: String,
    /// The correlation ID of the HTTP request that submitted this run,
    /// threaded through the event-stream trailer and the run ledger.
    corr: String,
    state: Mutex<RunState>,
    hub: Arc<EventHub>,
    snapshot: Arc<VerdictSnapshot>,
    total: usize,
    overlay: RunOverlay,
    /// `Some` when this run is an ECO splice rather than a plain sweep.
    eco: Option<EcoJob>,
    signoff: Mutex<Option<String>>,
}

impl RunHandle {
    fn state(&self) -> RunState {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    fn set_state(&self, next: RunState) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = next;
    }
}

struct Shared {
    cfg: ServerConfig,
    sessions: RwLock<HashMap<String, Arc<Session>>>,
    runs: RwLock<HashMap<String, Arc<RunHandle>>>,
    queue: Mutex<VecDeque<String>>,
    queue_cv: Condvar,
    next_session: AtomicU64,
    next_run: AtomicU64,
    shutting_down: AtomicBool,
    listener_stop: AtomicBool,
    /// The in-flight run's stop flag, for the shutdown drain.
    current_stop: Mutex<Option<StopFlag>>,
    /// The in-flight run handle, for the stall watchdog's heartbeat poll.
    current_run: Mutex<Option<Arc<RunHandle>>>,
    watchdog_stop: AtomicBool,
    obs: Observatory,
}

/// The resident verification daemon. [`Server::start`] binds and spawns
/// the listener and executor; the handle is the control plane tests and
/// the `pcv_serve` binary use.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    listener: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr`, create the data directory, and start serving.
    ///
    /// # Errors
    ///
    /// Bind or directory-creation failures.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let obs = Observatory::new(&cfg.data_dir, cfg.observe);
        let shared = Arc::new(Shared {
            cfg,
            sessions: RwLock::new(HashMap::new()),
            runs: RwLock::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            next_session: AtomicU64::new(0),
            next_run: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            listener_stop: AtomicBool::new(false),
            current_stop: Mutex::new(None),
            current_run: Mutex::new(None),
            watchdog_stop: AtomicBool::new(false),
            obs,
        });
        let accept_shared = Arc::clone(&shared);
        let listener_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        let exec_shared = Arc::clone(&shared);
        let executor_thread = std::thread::spawn(move || executor_loop(exec_shared));
        let watchdog_thread = if shared.cfg.observe && shared.cfg.stall_timeout_ms > 0 {
            let wd_shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || watchdog_loop(wd_shared)))
        } else {
            None
        };
        Ok(Server {
            shared,
            addr,
            listener: Some(listener_thread),
            executor: Some(executor_thread),
            watchdog: watchdog_thread,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's flight recorder (always present; records only while
    /// the observatory is enabled or something notes into it directly).
    pub fn flight(&self) -> Arc<FlightRecorder> {
        self.shared.obs.flight()
    }

    /// The daemon's data directory (caches, artifacts, logs, dumps).
    pub fn data_dir(&self) -> &Path {
        &self.shared.cfg.data_dir
    }

    /// Dump the flight recorder atomically to
    /// `<data_dir>/flight-<tag>.json` and return the path — the crash /
    /// signal / watchdog capture path.
    ///
    /// # Errors
    ///
    /// Propagates the atomic-write failure.
    pub fn dump_flight(&self, tag: &str) -> std::io::Result<PathBuf> {
        dump_flight(&self.shared, tag)
    }

    /// Begin the graceful drain: refuse new sessions and runs, raise the
    /// in-flight run's [`StopFlag`] so the engine checkpoints and returns,
    /// and mark still-queued runs interrupted. Idempotent.
    pub fn initiate_shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Whether a shutdown has been initiated (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Acquire)
    }

    /// Wait for the drain to finish: the executor exits after the
    /// in-flight run checkpoints, then the listener stops accepting.
    /// Implies [`Server::initiate_shutdown`].
    pub fn join(mut self) {
        self.initiate_shutdown();
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
        self.shared.listener_stop.store(true, Ordering::Release);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        self.shared.watchdog_stop.store(true, Ordering::Release);
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (not joined) server still stops its threads.
        initiate_shutdown(&self.shared);
        self.shared.listener_stop.store(true, Ordering::Release);
        self.shared.watchdog_stop.store(true, Ordering::Release);
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

/// Atomic flight-recorder dump shared by the watchdog, the public
/// [`Server::dump_flight`], and (through it) the binary's signal hooks.
fn dump_flight(shared: &Shared, tag: &str) -> std::io::Result<PathBuf> {
    let path = shared.cfg.data_dir.join(format!("flight-{tag}.json"));
    Fs::real().write_atomic(&path, shared.obs.flight().dump_json().as_bytes())?;
    Ok(path)
}

/// The stall watchdog: poll the in-flight run's lock-free heartbeat
/// ([`VerdictSnapshot::beats`]); when it has not advanced for the
/// configured interval, emit a [`EngineEvent::StallWarning`] onto the
/// run's event stream, capture a flight dump, and bump the stall metric.
/// Then re-arm — a watchdog observes, it never kills.
fn watchdog_loop(shared: Arc<Shared>) {
    let timeout = Duration::from_millis(shared.cfg.stall_timeout_ms.max(1));
    let tick = timeout.min(Duration::from_millis(50));
    // (run id, last seen heartbeat, episode start, next warning threshold).
    // The threshold doubles on every warning so one long stall produces
    // O(log duration) warnings, not a flood that fills the event archive
    // and sheds the run's real events.
    let mut tracked: Option<(String, u64, Instant, Duration)> = None;
    while !shared.watchdog_stop.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        let current = shared.current_run.lock().unwrap_or_else(PoisonError::into_inner).clone();
        let Some(run) = current.filter(|r| r.state() == RunState::Running) else {
            tracked = None;
            continue;
        };
        let beats = run.snapshot.beats();
        match &mut tracked {
            Some((id, last, since, warn_at)) if *id == run.id => {
                if beats != *last {
                    // Progress: the episode (if any) is over.
                    *last = beats;
                    *since = Instant::now();
                    *warn_at = timeout;
                    continue;
                }
                if since.elapsed() < *warn_at {
                    continue;
                }
                // `stalled_ms` is the episode's total age, so successive
                // warnings read 10 ms, 20 ms, 40 ms, … of the same stall.
                let stalled_ms = since.elapsed().as_millis() as u64;
                let warning =
                    EngineEvent::StallWarning { completed: run.snapshot.len(), stalled_ms };
                run.hub.event(&warning);
                shared.obs.record_stall(&run.id);
                shared.obs.flight().note(
                    "watchdog",
                    format!("run {} ({}) made no progress for {stalled_ms} ms", run.id, run.corr),
                );
                let _ = dump_flight(&shared, &format!("stall-{}", run.id));
                *warn_at = warn_at.saturating_mul(2);
            }
            _ => tracked = Some((run.id.clone(), beats, Instant::now(), timeout)),
        }
    }
}

fn initiate_shutdown(shared: &Shared) {
    shared.shutting_down.store(true, Ordering::Release);
    if let Some(stop) = &*shared.current_stop.lock().unwrap_or_else(PoisonError::into_inner) {
        stop.stop();
    }
    // Wake the executor so it can observe the flag and drain the queue.
    shared.queue_cv.notify_all();
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.listener_stop.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let started = Instant::now();
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let err = ApiError::BadRequest(e.to_string());
            let (status, reason, _) = err.status();
            let _ = http::respond_json(&mut stream, status, reason, &err.to_json());
            return;
        }
    };
    // Every parsed request gets a correlation ID; it rides through the
    // response bodies, the event-stream trailer, the run ledger, and the
    // access log, so one grep ties a client call to everything it caused.
    let corr = shared.obs.mint_corr();
    let segments: Vec<String> = request.segments().iter().map(|s| s.to_string()).collect();
    let names: Vec<&str> = segments.iter().map(String::as_str).collect();
    // The events route streams and owns the connection; metrics answers
    // plain text; everything else produces one JSON document (or a typed
    // error).
    let status: u16 = if request.method == "GET"
        && names.len() == 3
        && names[0] == "runs"
        && names[2] == "events"
    {
        stream_events(&mut stream, &shared, names[1], &corr)
    } else if request.method == "GET" && names == ["metrics"] {
        let body = shared.obs.render_metrics(
            shared.queue.lock().unwrap_or_else(PoisonError::into_inner).len(),
            shared.sessions.read().unwrap_or_else(PoisonError::into_inner).len(),
        );
        let _ = http::respond(&mut stream, 200, "OK", "text/plain; version=0.0.4", body.as_bytes());
        200
    } else {
        match route(&request, &names, &shared, &corr) {
            Ok(body) => {
                let _ = http::respond_json(&mut stream, 200, "OK", &body);
                200
            }
            Err(err) => {
                let (status, reason, _) = err.status();
                if status == 429 {
                    // A typed busy is transient by construction (bounded
                    // queue, draining daemon, advisory run lock) — tell
                    // the client when to come back.
                    let _ = http::respond_with(
                        &mut stream,
                        status,
                        reason,
                        "application/json",
                        &[("Retry-After", "1")],
                        err.to_json().as_bytes(),
                    );
                } else {
                    let _ = http::respond_json(&mut stream, status, reason, &err.to_json());
                }
                status
            }
        }
    };
    shared.obs.record_http(
        &corr,
        &request.method,
        &request.path,
        status,
        started.elapsed().as_secs_f64(),
    );
}

fn route(
    request: &Request,
    names: &[&str],
    shared: &Arc<Shared>,
    corr: &str,
) -> Result<String, ApiError> {
    match (request.method.as_str(), names) {
        ("GET", ["healthz"]) => Ok(healthz(shared)),
        ("GET", ["debug", "flight"]) => Ok(shared.obs.flight().dump_json()),
        ("POST", ["shutdown"]) => {
            initiate_shutdown(shared);
            Ok("{\"draining\":true}".to_owned())
        }
        ("POST", ["sessions"]) => create_session(shared, &request.body, corr),
        ("GET", ["sessions", sid]) => Ok(lookup_session(shared, sid)?.info_json()),
        ("POST", ["sessions", sid, "runs"]) => submit_run(shared, sid, &request.body, corr),
        ("POST", ["sessions", sid, "eco"]) => submit_eco(shared, sid, &request.body, corr),
        ("GET", ["runs", rid, "verdicts"]) => verdicts(shared, rid, request.query_get("net")),
        ("GET", ["runs", rid, "signoff"]) => signoff(shared, rid),
        _ => Err(ApiError::NotFound(format!("no route for {} {}", request.method, request.path))),
    }
}

/// The liveness/readiness document: `ok` (liveness) stays first for
/// compatibility; `ready` means "not draining and no session mid-
/// elaboration"; `torn_ledger_lines` surfaces what `ledger::scan` found
/// on the latest rescan (it used to be computed and dropped).
fn healthz(shared: &Shared) -> String {
    let draining = shared.shutting_down.load(Ordering::Acquire);
    let elaborating = shared.obs.elaborating();
    format!(
        "{{\"ok\":true,\"version\":{},\"uptime_s\":{:.3},\"ready\":{},\"elaborating\":{},\
         \"sessions\":{},\"runs\":{},\"draining\":{},\"torn_ledger_lines\":{},\
         \"shard_torn_journal_lines\":{}}}",
        str_lit(env!("CARGO_PKG_VERSION")),
        shared.obs.uptime_s(),
        !draining && elaborating == 0,
        elaborating,
        shared.sessions.read().unwrap_or_else(PoisonError::into_inner).len(),
        shared.runs.read().unwrap_or_else(PoisonError::into_inner).len(),
        draining,
        shared.obs.torn_lines(),
        shared.obs.shard_torn_json()
    )
}

fn lookup_session(shared: &Shared, sid: &str) -> Result<Arc<Session>, ApiError> {
    shared
        .sessions
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(sid)
        .cloned()
        .ok_or_else(|| ApiError::NotFound(format!("no session {sid:?}")))
}

fn lookup_run(shared: &Shared, rid: &str) -> Result<Arc<RunHandle>, ApiError> {
    shared
        .runs
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .get(rid)
        .cloned()
        .ok_or_else(|| ApiError::NotFound(format!("no run {rid:?}")))
}

/// Splice `"corr":"..."` into a response object's trailing position, tying
/// the answered resource back to the request that created it.
fn with_corr(json: String, corr: &str) -> String {
    debug_assert!(json.ends_with('}'));
    format!("{},\"corr\":{}}}", &json[..json.len() - 1], str_lit(corr))
}

fn create_session(shared: &Arc<Shared>, body: &str, corr: &str) -> Result<String, ApiError> {
    if shared.shutting_down.load(Ordering::Acquire) {
        return Err(ApiError::Busy("daemon is draining".into()));
    }
    let spec = DesignSpec::from_json(body)?;
    let id = format!("s{}", shared.next_session.fetch_add(1, Ordering::Relaxed) + 1);
    // Elaboration (the expensive one-time task) runs on this connection's
    // thread — the executor and other queries are unaffected. The
    // readiness probe reports "elaborating" while it is in flight.
    shared.obs.elaboration_started();
    let built = Session::build(id.clone(), &spec, &shared.cfg.data_dir);
    shared.obs.elaboration_finished();
    let session = Arc::new(built?);
    let info = session.info_json();
    shared.sessions.write().unwrap_or_else(PoisonError::into_inner).insert(id, session);
    Ok(with_corr(info, corr))
}

fn submit_run(shared: &Arc<Shared>, sid: &str, body: &str, corr: &str) -> Result<String, ApiError> {
    let overlay = RunOverlay::from_json(body)?;
    let session = lookup_session(shared, sid)?;
    if shared.shutting_down.load(Ordering::Acquire) {
        return Err(ApiError::Busy("daemon is draining".into()));
    }
    let total = session.chip().victims().len();
    let run = enqueue(shared, &session.id, total, overlay, None, corr)?;
    Ok(format!(
        "{{\"run\":{},\"session\":{},\"state\":\"queued\",\"total\":{},\"corr\":{}}}",
        str_lit(&run.id),
        str_lit(sid),
        run.total,
        str_lit(corr)
    ))
}

/// `POST /sessions/{sid}/eco` — patch the resident parasitics with an
/// edited SPEF document and queue the incremental re-verification.
///
/// The body carries `"text"` (the full edited SPEF) plus any run-overlay
/// option. The handler elaborates the new chip with the session's
/// original driver context, diffs it against the resident one, plans the
/// dirty set (the fingerprint confirmation costs a handful of prunes, not
/// a chip sweep), swaps the session's chip, and queues a run pinned to
/// the exact old/new pair. The answered JSON carries the plan; the run's
/// sign-off artifact is the spliced document, byte-identical to a
/// from-scratch sweep of the edited chip.
fn submit_eco(shared: &Arc<Shared>, sid: &str, body: &str, corr: &str) -> Result<String, ApiError> {
    let doc = parse(body).map_err(|e| ApiError::BadRequest(format!("eco body: {e}")))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| ApiError::BadRequest("eco body must be a JSON object".into()))?;
    let mut overlay = RunOverlay::default();
    let mut text: Option<String> = None;
    for (key, value) in obj {
        if key == "text" {
            text = Some(
                value
                    .as_str()
                    .ok_or_else(|| ApiError::BadRequest("text must be a string".into()))?
                    .to_owned(),
            );
        } else if !overlay.apply(key, value)? {
            return Err(ApiError::BadRequest(format!("unknown eco option {key:?}")));
        }
    }
    let text = text.ok_or_else(|| {
        ApiError::BadRequest("eco needs \"text\": the full edited SPEF document".into())
    })?;
    overlay.validate()?;
    if overlay.shards.is_some_and(|s| s >= 2) {
        // An ECO splice reads the warm session cache in-process; fanning
        // it out would recompute the clean set and defeat the splice.
        return Err(ApiError::BadRequest("eco runs cannot be sharded".into()));
    }
    let session = lookup_session(shared, sid)?;
    if shared.shutting_down.load(Ordering::Acquire) {
        return Err(ApiError::Busy("daemon is draining".into()));
    }
    // Elaboration and planning run on this connection's thread, exactly
    // like session creation — the executor keeps draining other runs.
    let new = Arc::new(session.elaborate_eco(&text)?);
    let old = session.chip();
    let delta = EcoDelta::diff(old.db(), new.db());
    let cfg = overlay.engine_config(session.cache_path.clone(), None);
    let plan = EcoPlan::compute(&cfg, &old, &new, &delta);
    let plan_json = plan.to_json();
    let total = new.victims().len();
    let eco = EcoJob { old, new: Arc::clone(&new), plan: plan_json.clone() };
    let run = enqueue(shared, &session.id, total, overlay, Some(eco), corr)?;
    // The swap happens only after the run is safely queued: a 429 above
    // leaves the resident chip untouched. The stored spec follows the
    // chip, so a later sharded run's workers elaborate the patched
    // netlist, not the original upload.
    session.swap_chip(new);
    session.record_eco_text(&text);
    Ok(format!(
        "{{\"run\":{},\"session\":{},\"state\":\"queued\",\"total\":{},\"corr\":{},\"eco\":{}}}",
        str_lit(&run.id),
        str_lit(sid),
        run.total,
        str_lit(corr),
        plan_json
    ))
}

/// Register a run handle and push it onto the bounded queue.
fn enqueue(
    shared: &Arc<Shared>,
    sid: &str,
    total: usize,
    overlay: RunOverlay,
    eco: Option<EcoJob>,
    corr: &str,
) -> Result<Arc<RunHandle>, ApiError> {
    let id = format!("r{}", shared.next_run.fetch_add(1, Ordering::Relaxed) + 1);
    let run = Arc::new(RunHandle {
        id: id.clone(),
        session: sid.to_owned(),
        corr: corr.to_owned(),
        state: Mutex::new(RunState::Queued),
        hub: Arc::new(EventHub::new(shared.cfg.hub_capacity)),
        snapshot: Arc::new(VerdictSnapshot::new()),
        total,
        overlay,
        eco,
        signoff: Mutex::new(None),
    });
    {
        // Bounded backpressure: the queue admits at most queue_capacity
        // *waiting* runs; beyond that the caller gets a typed 429 and
        // retries later. Nothing blocks.
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= shared.cfg.queue_capacity {
            return Err(ApiError::Busy(format!(
                "run queue full ({} waiting, capacity {})",
                queue.len(),
                shared.cfg.queue_capacity
            )));
        }
        shared
            .runs
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id.clone(), Arc::clone(&run));
        queue.push_back(id);
    }
    shared.queue_cv.notify_one();
    Ok(run)
}

/// Render one verdict in the exact shape `ChipReport::to_json` uses
/// (readable decimal + exact IEEE-754 bits per float), so a client can
/// byte-compare served verdicts against sign-off documents.
fn verdict_json(v: &NetVerdict) -> String {
    let mut out = String::new();
    let float = |out: &mut String, key: &str, x: f64| {
        out.push_str(&format!("\"{key}\":{},\"{key}_bits\":{}", f64_lit(x), f64_bits(x)));
    };
    out.push_str(&format!("{{\"net\":{},\"name\":{},", v.net.0, str_lit(&v.name)));
    float(&mut out, "rise_peak", v.rise_peak);
    out.push(',');
    float(&mut out, "fall_peak", v.fall_peak);
    out.push(',');
    float(&mut out, "worst_frac", v.worst_frac);
    out.push_str(&format!(
        ",\"severity\":{},\"cluster_size\":{},\"neighbors_before\":{}",
        str_lit(&v.severity.to_string()),
        v.cluster_size,
        v.neighbors_before
    ));
    out.push_str(",\"receiver\":");
    match &v.receiver {
        Some(r) => {
            out.push_str(&format!("{{\"cell\":{},", str_lit(&r.cell)));
            float(&mut out, "output_peak", r.output_peak);
            out.push_str(&format!(",\"propagates\":{}}}", r.propagates));
        }
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

fn verdicts(shared: &Shared, rid: &str, net: Option<&str>) -> Result<String, ApiError> {
    let run = lookup_run(shared, rid)?;
    let listed: Vec<NetVerdict> = match net {
        Some(name) => {
            let session = lookup_session(shared, &run.session)?;
            if !session.chip().is_victim(name) {
                // The typed engine-side error, mapped through From so the
                // wire sees 400 with the offending name.
                return Err(ApiError::from(XtalkError::BadRequest {
                    what: format!("net {name:?} is not a victim of session {}", run.session),
                }));
            }
            run.snapshot.get(name).into_iter().collect()
        }
        None => run.snapshot.all(),
    };
    let mut out = format!(
        "{{\"run\":{},\"state\":{},\"completed\":{},\"total\":{},\"verdicts\":[",
        str_lit(rid),
        str_lit(run.state().name()),
        run.snapshot.len(),
        run.total
    );
    for (i, v) in listed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&verdict_json(v));
    }
    out.push_str("]}");
    Ok(out)
}

fn signoff(shared: &Shared, rid: &str) -> Result<String, ApiError> {
    match lookup_run(shared, rid) {
        Ok(run) => match run.state() {
            RunState::Complete => {
                if let Some(bytes) =
                    run.signoff.lock().unwrap_or_else(PoisonError::into_inner).clone()
                {
                    return Ok(bytes);
                }
                signoff_from_ledger(shared, rid)
            }
            RunState::Failed(err) => Err(err),
            other => Err(ApiError::Conflict(format!(
                "run {rid} is {} — no sign-off artifact yet",
                other.name()
            ))),
        },
        // Unknown to this process: maybe a previous daemon instance ran
        // it. The durable run ledger is the source of truth.
        Err(not_found) => signoff_from_ledger(shared, rid).map_err(|e| match e {
            ApiError::NotFound(_) => not_found,
            other => other,
        }),
    }
}

/// Fetch a sign-off artifact by run id through the daemon's durable run
/// ledger (`<data_dir>/runs.jsonl`) — works across daemon restarts.
fn signoff_from_ledger(shared: &Shared, rid: &str) -> Result<String, ApiError> {
    let ledger = shared.cfg.data_dir.join("runs.jsonl");
    let text = std::fs::read_to_string(&ledger)
        .map_err(|_| ApiError::NotFound(format!("no recorded run {rid:?}")))?;
    // Scan newest-last; a torn trailing line parses as an error and is
    // skipped, exactly like the engine-side ledger scan.
    let mut artifact: Option<String> = None;
    for line in text.lines() {
        if let Ok(doc) = parse(line) {
            if doc.get("run").and_then(Value::as_str) == Some(rid)
                && doc.get("outcome").and_then(Value::as_str) == Some("complete")
            {
                artifact = doc.get("artifact").and_then(Value::as_str).map(str::to_owned);
            }
        }
    }
    let path = artifact.ok_or_else(|| ApiError::NotFound(format!("no recorded run {rid:?}")))?;
    std::fs::read_to_string(&path)
        .map_err(|e| ApiError::Internal(format!("artifact {path} unreadable: {e}")))
}

fn stream_events(stream: &mut TcpStream, shared: &Shared, rid: &str, corr: &str) -> u16 {
    let run = match lookup_run(shared, rid) {
        Ok(run) => run,
        Err(err) => {
            let (status, reason, _) = err.status();
            let _ = http::respond_json(stream, status, reason, &err.to_json());
            return status;
        }
    };
    let mut cursor = run.hub.subscribe();
    let Ok(mut writer) = ChunkedWriter::begin(stream, "application/jsonl") else {
        return 200;
    };
    loop {
        match cursor.poll() {
            Ok(event) => {
                if writer.line(&event.to_json()).is_err() {
                    return 200; // client hung up
                }
            }
            Err(CursorState::Open) => std::thread::sleep(Duration::from_millis(5)),
            Err(CursorState::Closed) => break,
        }
    }
    // The stream trailer: how much this subscriber got and how much the
    // bounded archive shed — dropped events are counted, never silent.
    // It carries two correlation IDs: the run's (who submitted it) and
    // this subscriber's own request.
    let trailer = format!(
        "{{\"kind\":\"stream_trailer\",\"run\":{},\"state\":{},\"delivered\":{},\
         \"dropped\":{},\"run_corr\":{},\"corr\":{}}}",
        str_lit(rid),
        str_lit(run.state().name()),
        cursor.delivered(),
        cursor.dropped(),
        str_lit(&run.corr),
        str_lit(corr)
    );
    if writer.line(&trailer).is_ok() {
        let _ = writer.finish();
    }
    200
}

fn executor_loop(shared: Arc<Shared>) {
    loop {
        let next = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(id) = queue.pop_front() {
                    break Some(id);
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let Some(run_id) = next else {
            return;
        };
        if shared.shutting_down.load(Ordering::Acquire) {
            // Draining: queued-but-unstarted runs are not executed; their
            // sessions were never touched, so nothing needs resuming.
            if let Ok(run) = lookup_run(&shared, &run_id) {
                run.set_state(RunState::Interrupted);
                run.hub.close();
            }
            continue;
        }
        execute_run(&shared, &run_id);
    }
}

fn execute_run(shared: &Shared, run_id: &str) {
    let Ok(run) = lookup_run(shared, run_id) else {
        return;
    };
    let Ok(session) = lookup_session(shared, &run.session) else {
        run.set_state(RunState::Failed(ApiError::Internal("session vanished".into())));
        run.hub.close();
        return;
    };
    run.set_state(RunState::Running);
    session.set_state(SessionState::Running);

    let stop = StopFlag::new();
    {
        let mut current = shared.current_stop.lock().unwrap_or_else(PoisonError::into_inner);
        *current = Some(stop.clone());
    }
    {
        let mut current = shared.current_run.lock().unwrap_or_else(PoisonError::into_inner);
        *current = Some(Arc::clone(&run));
    }
    // Close the race with a shutdown that arrived between queue pop and
    // flag install: drain immediately instead of running blind.
    if shared.shutting_down.load(Ordering::Acquire) {
        stop.stop();
    }

    let mut sinks: Vec<Arc<dyn EventSink>> = vec![Arc::clone(&run.hub) as Arc<dyn EventSink>];
    if let Some(n) = run.overlay.stop_after {
        sinks.push(Arc::new(StopAfter::new(stop.clone(), n)) as Arc<dyn EventSink>);
    }
    if shared.cfg.observe {
        // The flight recorder rides as one more sink: a bounded ring whose
        // eviction is by design, so it reports zero shed events and leaves
        // EngineStats (and therefore the sign-off bytes) untouched.
        sinks.push(shared.obs.flight() as Arc<dyn EventSink>);
    }
    let sink: Arc<dyn EventSink> = if sinks.len() == 1 {
        sinks.pop().expect("one sink")
    } else {
        Arc::new(TeeSink::new(sinks))
    };
    let sharded = run.eco.is_none() && run.overlay.shards.is_some_and(|s| s >= 2);
    let outcome: Result<pcv_engine::EngineReport, ApiError> = if sharded {
        execute_sharded(shared, &session, &run, sink, &stop)
    } else {
        let mut cfg = run.overlay.engine_config(session.cache_path.clone(), Some(sink));
        cfg.durable.stop = Some(stop.clone());

        let mut engine = Engine::new(cfg);
        if let Some(frac) = run.overlay.drill_slow_frac {
            // The watchdog drill: seed deterministic slow faults so victims
            // escalate through the recovery ladder's slow rung.
            let mut plan = FaultPlan::new();
            plan.seed_probability(
                run.overlay.drill_seed.unwrap_or(1),
                frac,
                FaultKind::Slow,
                false,
            );
            engine.set_fault_plan(plan);
        }
        match &run.eco {
            // An ECO run verifies exactly the chip pair the plan was
            // answered for; clean clusters splice from the warm cache.
            Some(eco) => engine
                .eco_verify_resident(&eco.old, &eco.new, run.overlay.resume, Some(&run.snapshot))
                .map(|o| o.report),
            None if run.overlay.resume => {
                engine.resume_resident(&session.chip(), Some(&run.snapshot))
            }
            None => engine.verify_resident(&session.chip(), Some(&run.snapshot)),
        }
        .map_err(ApiError::from)
    };
    {
        let mut current = shared.current_stop.lock().unwrap_or_else(PoisonError::into_inner);
        *current = None;
    }
    {
        let mut current = shared.current_run.lock().unwrap_or_else(PoisonError::into_inner);
        *current = None;
    }

    absorb_run_observations(shared, &session, &run, &outcome);
    match outcome {
        Ok(report) if report.interrupted => {
            run.set_state(RunState::Interrupted);
            ledger_append(shared, &run, "interrupted", None);
        }
        Ok(report) => {
            let bytes = report.signoff_json();
            let artifact = shared.cfg.data_dir.join(format!("run-{}.signoff.json", run.id));
            // The durable artifact is written atomically, then recorded in
            // the run ledger — a crash between the two loses the ledger
            // line, never serves a torn document.
            let stored = Fs::real().write_atomic(&artifact, bytes.as_bytes()).is_ok();
            *run.signoff.lock().unwrap_or_else(PoisonError::into_inner) = Some(bytes);
            run.set_state(RunState::Complete);
            ledger_append(shared, &run, "complete", stored.then_some(artifact));
        }
        Err(e) => {
            run.set_state(RunState::Failed(e));
            ledger_append(shared, &run, "failed", None);
        }
    }
    run.hub.close();
    session.set_state(SessionState::Completed);
}

/// The shard-coordinator dispatch: resolve the worker binary, map the
/// overlay's shard knobs onto a [`CoordinatorConfig`], run, and fold the
/// per-shard telemetry into the observatory.
fn execute_sharded(
    shared: &Shared,
    session: &Session,
    run: &RunHandle,
    sink: Arc<dyn EventSink>,
    stop: &StopFlag,
) -> Result<pcv_engine::EngineReport, ApiError> {
    let worker_exe = match &shared.cfg.worker_exe {
        Some(p) => p.clone(),
        None => std::env::current_exe()
            .map_err(|e| ApiError::Internal(format!("locating worker executable: {e}")))?,
    };
    let shards = run.overlay.shards.unwrap_or(2);
    let mut cfg = CoordinatorConfig::new(shards, worker_exe, session.cache_path.clone());
    cfg.workers_per_shard = run.overlay.workers.unwrap_or(0);
    cfg.warn_frac = run.overlay.warn_frac;
    cfg.fail_frac = run.overlay.fail_frac;
    cfg.check_receivers = run.overlay.check_receivers;
    if let Some(ms) = run.overlay.shard_timeout_ms {
        cfg.heartbeat_timeout = Duration::from_millis(ms);
    }
    cfg.deadline = run.overlay.deadline_ms.map(Duration::from_millis);
    if let Some(budget) = run.overlay.shard_restarts {
        cfg.restart_budget = budget;
    }
    cfg.sink = Some(sink);
    cfg.stop = Some(stop.clone());
    let coordinator = Coordinator::new(session.spec(), session.chip(), cfg);
    let outcome = coordinator.run(Some(&run.snapshot))?;
    shared.obs.absorb_shard_run(&outcome);
    Ok(outcome.report)
}

/// Fold a finished run into the observatory: outcome + `EngineStats` into
/// the registry, the run's trace (when one was requested), and a rescan of
/// the session's engine ledger so its torn-line count — previously
/// computed by `ledger::scan` and dropped on this path — reaches
/// `/metrics` and `/healthz`.
fn absorb_run_observations(
    shared: &Shared,
    session: &Session,
    run: &RunHandle,
    outcome: &Result<pcv_engine::EngineReport, ApiError>,
) {
    if !shared.cfg.observe {
        return;
    }
    if let Ok(report) = outcome {
        let name = if report.interrupted { "interrupted" } else { "complete" };
        shared.obs.absorb_report(report, name, run.eco.is_some());
    } else {
        shared.obs.record_failed_run();
    }
    let mut ledger_path = session.cache_path.as_os_str().to_owned();
    ledger_path.push(".ledger.jsonl");
    let (_, torn) = pcv_obs::ledger::scan(Path::new(&ledger_path));
    shared.obs.set_torn_lines(torn as u64);
}

/// Append one line to the daemon's durable run ledger
/// (`<data_dir>/runs.jsonl`): run id → outcome (+ artifact path when one
/// was published, + the ECO plan when the run was a splice). Best-effort,
/// fsync'd.
fn ledger_append(shared: &Shared, run: &RunHandle, outcome: &str, artifact: Option<PathBuf>) {
    let ledger = shared.cfg.data_dir.join("runs.jsonl");
    let mut line = format!(
        "{{\"run\":{},\"session\":{},\"corr\":{},\"outcome\":{},\"victims\":{}",
        str_lit(&run.id),
        str_lit(&run.session),
        str_lit(&run.corr),
        str_lit(outcome),
        run.total
    );
    if let Some(path) = artifact {
        line.push_str(&format!(",\"artifact\":{}", str_lit(&path.display().to_string())));
    }
    if let Some(eco) = &run.eco {
        line.push_str(&format!(",\"eco\":{}", eco.plan));
    }
    line.push_str("}\n");
    let _ = Fs::real().append_durable(&ledger, line.as_bytes());
}
