//! The shard-worker process: one slice of a sharded sign-off.
//!
//! `pcv_serve --shard-worker` reads a single JSON config line on stdin,
//! elaborates the **full** chip from the embedded [`DesignSpec`] (so net
//! ids and cluster fingerprints match the coordinator's view exactly),
//! partitions the victim set with [`pcv_engine::shard::partition`], and
//! verifies only its own slice — always through the resume path, so a
//! restarted incarnation replays its shard journal and recomputes just
//! the tail.
//!
//! Everything the worker says goes to stdout as JSONL:
//!
//! ```text
//! {"kind":"hello","shard":K,"victims":N,"torn_journal_lines":T}
//! {"kind":"verdict","net":...,"name":...,...}        // as they land
//! {"kind":"beat","done":N}                            // idle liveness
//! {"kind":"done","outcome":"complete","peak_alloc_bytes":B,"torn_journal_lines":T}
//! ```
//!
//! Any line is a heartbeat to the coordinator; silence past the deadline
//! is what gets a worker killed and restarted. Exit status 0 means the
//! `done` line is trustworthy; anything else is a crash.
//!
//! The config line may also arm deterministic worker-side drills
//! ([`pcv_engine::shard::ShardFault`]): `panic_after` aborts the process
//! after N verdicts have been emitted, `stall_after` silences all output
//! after N verdicts while the process stays alive — the two failure
//! modes (crash vs. hang) the supervisor must distinguish.

use crate::session::{elaborate, DesignSpec};
use pcv_engine::durable::Journal;
use pcv_engine::fs::Fs;
use pcv_engine::shard::partition;
use pcv_engine::{Engine, EngineConfig, VerdictSnapshot};
use pcv_obs::json::{parse, Value};
use pcv_xtalk::{NetVerdict, ReceiverVerdict, Severity};
use std::collections::HashSet;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Serialize a verdict for the worker→coordinator stream: peaks as exact
/// `f64` bits, so the coordinator's mirrored snapshot is bit-identical
/// to the worker's. Bit patterns travel as JSON *strings* — the daemon's
/// minimal JSON parser stores numbers as `f64`, which would silently
/// round any integer above 2^53.
pub fn verdict_line(v: &NetVerdict) -> String {
    use pcv_trace::json::str_lit;
    let receiver = match &v.receiver {
        None => "null".to_owned(),
        Some(r) => format!(
            "{{\"cell\":{},\"output_bits\":\"{}\",\"propagates\":{}}}",
            str_lit(&r.cell),
            r.output_peak.to_bits(),
            r.propagates
        ),
    };
    format!(
        "{{\"kind\":\"verdict\",\"net\":{},\"name\":{},\"rise_bits\":\"{}\",\"fall_bits\":\"{}\",\"worst_bits\":\"{}\",\"severity\":{},\"cluster_size\":{},\"neighbors_before\":{},\"receiver\":{}}}",
        v.net.0,
        str_lit(&v.name),
        v.rise_peak.to_bits(),
        v.fall_peak.to_bits(),
        v.worst_frac.to_bits(),
        str_lit(&v.severity.to_string()),
        v.cluster_size,
        v.neighbors_before,
        receiver
    )
}

/// Parse a [`verdict_line`] back into a [`NetVerdict`] (coordinator side).
pub fn parse_verdict(v: &Value) -> Option<NetVerdict> {
    let bits = |key: &str| {
        let raw = v.get(key)?.as_str()?.parse::<u64>().ok()?;
        Some(f64::from_bits(raw))
    };
    let severity = match v.get("severity")?.as_str()? {
        "clean" => Severity::Clean,
        "warning" => Severity::Warning,
        "VIOLATION" => Severity::Violation,
        _ => return None,
    };
    let receiver = match v.get("receiver") {
        None | Some(Value::Null) => None,
        Some(r) => Some(ReceiverVerdict {
            cell: r.get("cell")?.as_str()?.to_owned(),
            output_peak: f64::from_bits(r.get("output_bits")?.as_str()?.parse::<u64>().ok()?),
            propagates: matches!(r.get("propagates")?, Value::Bool(true)),
        }),
    };
    Some(NetVerdict {
        net: pcv_netlist::PNetId(v.get("net")?.as_u64()? as usize),
        name: v.get("name")?.as_str()?.to_owned(),
        rise_peak: bits("rise_bits")?,
        fall_peak: bits("fall_bits")?,
        worst_frac: bits("worst_bits")?,
        severity,
        cluster_size: v.get("cluster_size")?.as_u64()? as usize,
        neighbors_before: v.get("neighbors_before")?.as_u64()? as usize,
        receiver,
    })
}

fn emit(line: &str) {
    let out = std::io::stdout();
    let mut lock = out.lock();
    let _ = writeln!(lock, "{line}");
    let _ = lock.flush();
}

struct WorkerConfig {
    spec: DesignSpec,
    shards: usize,
    shard: usize,
    cache: PathBuf,
    workers: usize,
    warn_frac: Option<f64>,
    fail_frac: Option<f64>,
    check_receivers: Option<bool>,
    panic_after: Option<usize>,
    stall_after: Option<usize>,
}

fn parse_config(line: &str) -> Result<WorkerConfig, String> {
    let spec = DesignSpec::from_json(line).map_err(|e| format!("design spec: {e:?}"))?;
    let doc = parse(line).map_err(|e| format!("config line: {e}"))?;
    let uint = |key: &str| doc.get(key).and_then(Value::as_u64).map(|n| n as usize);
    let shards = uint("shards").ok_or("config needs \"shards\"")?;
    let shard = uint("shard").ok_or("config needs \"shard\"")?;
    if shards == 0 || shard >= shards {
        return Err(format!("shard {shard} out of range for {shards} shards"));
    }
    let cache =
        doc.get("cache").and_then(Value::as_str).ok_or("config needs a \"cache\" path")?.into();
    Ok(WorkerConfig {
        spec,
        shards,
        shard,
        cache,
        workers: uint("workers").unwrap_or(0),
        warn_frac: doc.get("warn_frac").and_then(Value::as_f64),
        fail_frac: doc.get("fail_frac").and_then(Value::as_f64),
        check_receivers: doc.get("check_receivers").map(|v| matches!(v, Value::Bool(true))),
        panic_after: uint("panic_after"),
        stall_after: uint("stall_after"),
    })
}

/// Entry point for `pcv_serve --shard-worker`: run one shard to
/// completion and return the process exit code.
#[must_use]
pub fn run_worker() -> i32 {
    let mut line = String::new();
    if std::io::stdin().lock().read_line(&mut line).is_err() || line.trim().is_empty() {
        eprintln!("pcv-shard-worker: expected one JSON config line on stdin");
        return 2;
    }
    match worker_main(&line) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("pcv-shard-worker: {e}");
            2
        }
    }
}

fn worker_main(line: &str) -> Result<i32, String> {
    let cfg = parse_config(line)?;
    let chip = elaborate(&cfg.spec).map_err(|e| format!("elaborate: {e:?}"))?;
    let slice = partition(&chip, chip.victims(), cfg.shards).swap_remove(cfg.shard);
    let torn = Journal::load(&Fs::real(), &Journal::path_for(&cfg.cache)).skipped;
    emit(&format!(
        "{{\"kind\":\"hello\",\"shard\":{},\"victims\":{},\"torn_journal_lines\":{}}}",
        cfg.shard,
        slice.len(),
        torn
    ));

    let snapshot = Arc::new(VerdictSnapshot::new());
    let finished = Arc::new(AtomicBool::new(false));
    let silenced = Arc::new(AtomicBool::new(false));
    let poller = spawn_poller(
        Arc::clone(&snapshot),
        Arc::clone(&finished),
        Arc::clone(&silenced),
        cfg.panic_after,
        cfg.stall_after,
    );

    let mut ecfg = EngineConfig {
        workers: cfg.workers,
        cache_path: Some(cfg.cache.clone()),
        ..EngineConfig::default()
    };
    if let Some(w) = cfg.warn_frac {
        ecfg.warn_frac = w;
    }
    if let Some(f) = cfg.fail_frac {
        ecfg.fail_frac = f;
    }
    if let Some(c) = cfg.check_receivers {
        ecfg.check_receivers = c;
    }
    let engine = Engine::new(ecfg);
    // Always the resume path: a first incarnation finds no journal and
    // runs fresh; a restarted one replays its checkpoints and finishes
    // only the tail. The header fingerprint check guards staleness.
    let result = engine.resume_slice(&chip, &slice, Some(&snapshot));

    finished.store(true, Ordering::Release);
    let _ = poller.join();

    if silenced.load(Ordering::Acquire) {
        // Stall drill: stay alive but say nothing — the coordinator's
        // heartbeat deadline, not process exit, must catch this.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    let report = result.map_err(|e| format!("verify: {e}"))?;
    let outcome = if report.interrupted { "interrupted" } else { "complete" };
    emit(&format!(
        "{{\"kind\":\"done\",\"outcome\":\"{}\",\"peak_alloc_bytes\":{},\"torn_journal_lines\":{}}}",
        outcome, report.stats.peak_alloc_bytes, torn
    ));
    Ok(0)
}

/// Stream verdicts off the snapshot as they land (~20 ms cadence), with
/// idle beats (~100 ms) so a slow cluster doesn't read as a dead worker.
/// Owns the worker-side fault drills, which are keyed to the *emitted*
/// verdict count so SIGKILL-at-fraction drills line up deterministically.
fn spawn_poller(
    snapshot: Arc<VerdictSnapshot>,
    finished: Arc<AtomicBool>,
    silenced: Arc<AtomicBool>,
    panic_after: Option<usize>,
    stall_after: Option<usize>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut seen: HashSet<String> = HashSet::new();
        let mut idle_ticks = 0u32;
        loop {
            let done = finished.load(Ordering::Acquire);
            let mut fresh = Vec::new();
            for v in snapshot.all() {
                if !seen.contains(&v.name) {
                    fresh.push(v);
                }
            }
            let mut emitted_new = false;
            for v in fresh {
                if let Some(n) = stall_after {
                    if seen.len() >= n {
                        silenced.store(true, Ordering::Release);
                        return;
                    }
                }
                emit(&verdict_line(&v));
                seen.insert(v.name.clone());
                emitted_new = true;
                if let Some(n) = panic_after {
                    if seen.len() >= n {
                        // A crash, not a clean exit: no done line, no
                        // journal discard, nonzero status.
                        std::process::abort();
                    }
                }
            }
            if let (Some(0), _) | (_, Some(0)) = (panic_after, stall_after) {
                // Zero-threshold drills fire even before any verdict.
                if panic_after == Some(0) {
                    std::process::abort();
                }
                silenced.store(true, Ordering::Release);
                return;
            }
            if done {
                return;
            }
            if emitted_new {
                idle_ticks = 0;
            } else {
                idle_ticks += 1;
                if idle_ticks >= 5 {
                    emit(&format!("{{\"kind\":\"beat\",\"done\":{}}}", seen.len()));
                    idle_ticks = 0;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::PNetId;

    #[test]
    fn verdict_line_round_trips_bit_exactly() {
        let v = NetVerdict {
            net: PNetId(7),
            name: "bus0.3".into(),
            rise_peak: 0.123_456_789_012_345,
            fall_peak: -0.098_765_432_1,
            worst_frac: 0.049_382_716,
            severity: Severity::Warning,
            cluster_size: 11,
            neighbors_before: 4,
            receiver: Some(ReceiverVerdict {
                cell: "INVX2".into(),
                output_peak: 0.001_234,
                propagates: false,
            }),
        };
        let line = verdict_line(&v);
        let parsed = parse_verdict(&parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, v);

        let bare = NetVerdict { receiver: None, severity: Severity::Violation, ..v };
        let parsed = parse_verdict(&parse(&verdict_line(&bare)).unwrap()).unwrap();
        assert_eq!(parsed, bare);
    }

    #[test]
    fn config_parse_rejects_out_of_range_shard() {
        let body = "{\"design\":{\"kind\":\"dsp\",\"buses\":1,\"bits\":2,\"random\":0},\"shards\":2,\"shard\":2,\"cache\":\"/tmp/x\"}";
        assert!(parse_config(body).is_err());
        let body = "{\"design\":{\"kind\":\"dsp\",\"buses\":1,\"bits\":2,\"random\":0},\"shards\":2,\"shard\":1,\"cache\":\"/tmp/x\"}";
        let cfg = parse_config(body).unwrap();
        assert_eq!((cfg.shards, cfg.shard), (2, 1));
    }
}
