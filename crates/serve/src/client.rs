//! A small blocking HTTP client for the daemon, used by the `pcv_client`
//! tool, the load-test suite, and CI smoke jobs. Speaks exactly the
//! dialect [`crate::http`] serves: `Content-Length` responses for the
//! document routes, chunked transfer encoding for `/events` streams.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One complete (non-streaming) response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON on every API route).
    pub body: String,
    /// Parsed `Retry-After` header in seconds, present on the daemon's
    /// 429 busy responses.
    pub retry_after: Option<u64>,
}

impl Response {
    /// `true` for any 2xx status.
    pub fn ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// A client bound to one daemon address. Each request opens a fresh
/// connection (the server closes after every response), so a `Client` is
/// freely shareable across threads by cloning.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the daemon at `addr` (e.g. `127.0.0.1:7171`).
    pub fn new(addr: impl Into<String>) -> Self {
        Client { addr: addr.into() }
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn send(&self, method: &str, path: &str, body: &str) -> io::Result<BufReader<TcpStream>> {
        let mut stream = self.connect()?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n",
            self.addr,
            body.len()
        )?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        Ok(BufReader::new(stream))
    }

    /// Issue `method path` with `body` and read the full response.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures; HTTP error statuses are returned
    /// in [`Response::status`], not as `Err`.
    pub fn request(&self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        let mut reader = self.send(method, path, body)?;
        let (status, headers) = read_head(&mut reader)?;
        let body = if header(&headers, "transfer-encoding").is_some_and(|v| v == "chunked") {
            let mut text = String::new();
            read_chunks(&mut reader, |line| {
                text.push_str(line);
                text.push('\n');
            })?;
            text
        } else {
            let len: usize =
                header(&headers, "content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            String::from_utf8_lossy(&buf).into_owned()
        };
        let retry_after = header(&headers, "retry-after").and_then(|v| v.parse().ok());
        Ok(Response { status, body, retry_after })
    }

    /// Like [`Client::request`], but honor 429 busy responses with bounded
    /// backoff: sleep for the server's `Retry-After` (capped at
    /// `max_backoff`, default 1 s when the header is missing) and retry up
    /// to `attempts` times total. Any non-429 response — success or a
    /// different error — returns immediately; after the final attempt the
    /// last 429 is returned as-is so the caller still sees the truth.
    ///
    /// # Errors
    ///
    /// Connection or protocol failures on any attempt.
    pub fn request_with_retry(
        &self,
        method: &str,
        path: &str,
        body: &str,
        attempts: u32,
        max_backoff: Duration,
    ) -> io::Result<Response> {
        let mut last = self.request(method, path, body)?;
        for _ in 1..attempts.max(1) {
            if last.status != 429 {
                return Ok(last);
            }
            let hinted = Duration::from_secs(last.retry_after.unwrap_or(1));
            std::thread::sleep(hinted.min(max_backoff));
            last = self.request(method, path, body)?;
        }
        Ok(last)
    }

    /// `GET path` expecting a chunked JSONL stream; `on_line` is called
    /// with each line (events, then the stream trailer) as it arrives.
    /// Returns the HTTP status (an error status delivers the error body
    /// through `on_line` once).
    ///
    /// # Errors
    ///
    /// Connection or protocol failures.
    pub fn stream(&self, path: &str, mut on_line: impl FnMut(&str)) -> io::Result<u16> {
        let mut reader = self.send("GET", path, "")?;
        let (status, headers) = read_head(&mut reader)?;
        if header(&headers, "transfer-encoding").is_some_and(|v| v == "chunked") {
            read_chunks(&mut reader, on_line)?;
        } else {
            let len: usize =
                header(&headers, "content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            on_line(&String::from_utf8_lossy(&buf));
        }
        Ok(status)
    }
}

fn protocol(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {what}"))
}

fn read_head(reader: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| protocol("no status code"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
        }
    }
    Ok((status, headers))
}

fn header<'a>(headers: &'a [(String, String)], key: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Decode a chunked body, invoking `on_line` for every newline-terminated
/// line of payload (the server emits exactly one JSONL line per chunk,
/// but this decoder does not rely on that).
fn read_chunks(reader: &mut impl BufRead, mut on_line: impl FnMut(&str)) -> io::Result<()> {
    let mut pending = String::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            break; // server aborted: deliver what we have
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| protocol("unreadable chunk size"))?;
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size + 2]; // payload + CRLF
        reader.read_exact(&mut chunk)?;
        chunk.truncate(size);
        pending.push_str(&String::from_utf8_lossy(&chunk));
        while let Some(pos) = pending.find('\n') {
            let line: String = pending.drain(..=pos).collect();
            on_line(line.trim_end_matches('\n'));
        }
    }
    if !pending.is_empty() {
        on_line(&pending);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_decoder_reassembles_lines_across_chunks() {
        let raw = b"3\r\nab\n\r\n5\r\ncd\nef\r\n2\r\n\ng\r\n0\r\n\r\n";
        let mut lines = Vec::new();
        read_chunks(&mut &raw[..], |l| lines.push(l.to_owned())).unwrap();
        assert_eq!(lines, vec!["ab", "cd", "ef", "g"]);
    }

    #[test]
    fn head_parser_reads_status_and_headers() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
                    Content-Length: 2\r\n\r\n{}";
        let mut reader = &raw[..];
        let (status, headers) = read_head(&mut reader).unwrap();
        assert_eq!(status, 429);
        assert_eq!(header(&headers, "content-length"), Some("2"));
        assert_eq!(header(&headers, "content-type"), Some("application/json"));
    }
}
