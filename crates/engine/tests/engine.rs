//! Engine acceptance tests: determinism against the serial flow on the
//! DSP fixture, fault isolation under an injected panic, and incremental
//! cache behavior (full warm-run hits, exact invalidation).

use pcv_cells::library::CellLibrary;
use pcv_designs::dsp::{generate, DspConfig};
use pcv_designs::Technology;
use pcv_engine::{cluster_fingerprint, config_hash, Engine, EngineConfig};
use pcv_netlist::{NetNodeRef, NetParasitics, PNetId, ParasiticDb};
use pcv_rng::Rng;
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{audit_receivers, verify_chip, AnalysisContext, AnalysisOptions};

/// A small DSP block plus its latch-input victim list.
fn dsp_fixture() -> (pcv_designs::dsp::DspBlock, CellLibrary, Vec<PNetId>) {
    let tech = Technology::c025();
    let lib = CellLibrary::standard_025();
    let block = generate(
        &DspConfig { n_buses: 2, bus_bits: 6, n_random_nets: 16, ..Default::default() },
        &tech,
        &lib,
    );
    let victims: Vec<PNetId> = block
        .latch_victims()
        .into_iter()
        .map(|d| block.parasitics.find_net(block.design.net_name(d)).expect("views are aligned"))
        .collect();
    (block, lib, victims)
}

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig { workers, ..Default::default() }
}

#[test]
fn parallel_run_matches_serial_on_dsp_fixture() {
    let (block, lib, victims) = dsp_fixture();
    assert!(victims.len() >= 4, "fixture must exercise real parallelism");
    let ctx = AnalysisContext {
        db: &block.parasitics,
        design: Some(&block.design),
        lib: Some(&lib),
        charlib: None,
        driver_model: DriverModelKind::FixedResistance(2000.0),
    };
    let prune = PruneConfig::default();
    let opts = AnalysisOptions::default();
    let serial = verify_chip(&ctx, &victims, &prune, &opts, 0.1, 0.2).unwrap();

    for workers in [1usize, 2, 4] {
        let report = Engine::new(engine_config(workers)).verify(&ctx, &victims).unwrap();
        assert!(report.errors.is_empty());
        // Verdict for verdict, bit for bit — including order.
        assert_eq!(report.chip, serial, "{workers}-worker run diverged from serial");
        assert_eq!(report.stats.cache_misses, victims.len());
        assert_eq!(report.stats.cache_hits, 0);
        assert_eq!(report.stats.worker_busy.len(), workers);
    }
}

#[test]
fn receiver_audit_matches_serial_on_dsp_fixture() {
    let (block, lib, victims) = dsp_fixture();
    let ctx = AnalysisContext {
        db: &block.parasitics,
        design: Some(&block.design),
        lib: Some(&lib),
        charlib: None,
        driver_model: DriverModelKind::FixedResistance(2000.0),
    };
    let prune = PruneConfig::default();
    let opts = AnalysisOptions::default();
    // Low thresholds so some victims are flagged and receiver checks run.
    let mut serial = verify_chip(&ctx, &victims, &prune, &opts, 0.02, 0.05).unwrap();
    audit_receivers(&ctx, &mut serial, &prune, &opts).unwrap();
    assert!(
        serial.verdicts.iter().any(|v| v.receiver.is_some()),
        "fixture must flag at least one victim"
    );

    let engine = Engine::new(EngineConfig {
        workers: 4,
        warn_frac: 0.02,
        fail_frac: 0.05,
        check_receivers: true,
        ..Default::default()
    });
    let report = engine.verify(&ctx, &victims).unwrap();
    assert!(report.errors.is_empty());
    assert_eq!(report.chip, serial);
}

#[test]
fn injected_panic_yields_one_error_and_a_complete_report() {
    let (block, lib, victims) = dsp_fixture();
    let ctx = AnalysisContext {
        db: &block.parasitics,
        design: Some(&block.design),
        lib: Some(&lib),
        charlib: None,
        driver_model: DriverModelKind::FixedResistance(2000.0),
    };
    let faulted = block.parasitics.net(victims[1]).name().to_owned();
    let mut engine = Engine::new(engine_config(4));
    engine.inject_fault(faulted.clone());
    let report = engine.verify(&ctx, &victims).unwrap();

    assert_eq!(report.errors.len(), 1);
    assert_eq!(report.errors[0].name, faulted);
    assert_eq!(report.errors[0].net, victims[1]);
    assert!(report.errors[0].message.contains("injected fault"));
    // No victim is silently missing: the persistently panicking cluster is
    // worst-cased by the recovery ladder instead of dropped.
    assert_eq!(report.chip.verdicts.len(), victims.len());
    let worst = report.chip.verdicts.iter().find(|v| v.name == faulted).unwrap();
    assert_eq!(worst.worst_frac, 1.0);
    assert_eq!(report.degradations.len(), 1);
    assert_eq!(report.degradations[0].name, faulted);
    // The survivors match a serial run over the same survivors, bit for
    // bit (the worst-cased verdict removed, order preserved).
    let rest: Vec<PNetId> = victims.iter().copied().filter(|&v| v != victims[1]).collect();
    let serial =
        verify_chip(&ctx, &rest, &PruneConfig::default(), &AnalysisOptions::default(), 0.1, 0.2)
            .unwrap();
    let survivors: Vec<_> =
        report.chip.verdicts.iter().filter(|v| v.name != faulted).cloned().collect();
    assert_eq!(survivors, serial.verdicts);
}

/// Disjoint victim/aggressor pairs: perturbing one pair's coupling must
/// invalidate exactly that victim's cache entry.
fn pair_db(couplings: &[f64]) -> (ParasiticDb, Vec<PNetId>) {
    let mut db = ParasiticDb::new();
    let mut victims = Vec::new();
    for (k, &cc) in couplings.iter().enumerate() {
        let mk = |name: String| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 150.0);
            n.add_ground_cap(n1, 8e-15);
            n.mark_load(n1);
            n
        };
        let v = db.add_net(mk(format!("v{k}")));
        let a = db.add_net(mk(format!("a{k}")));
        db.add_coupling(NetNodeRef { net: v, node: 1 }, NetNodeRef { net: a, node: 1 }, cc);
        victims.push(v);
    }
    (db, victims)
}

fn cache_file(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pcv-engine-test-caches");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(tag)
}

#[test]
fn warm_cache_rerun_hits_every_cluster() {
    let path = cache_file("warm-rerun");
    let _ = std::fs::remove_file(&path);
    let (db, victims) = pair_db(&[30e-15, 25e-15, 20e-15, 15e-15]);
    let ctx = AnalysisContext::fixed_resistance(&db, 1500.0);
    let engine = Engine::new(EngineConfig {
        workers: 2,
        cache_path: Some(path.clone()),
        ..Default::default()
    });

    let cold = engine.verify(&ctx, &victims).unwrap();
    assert_eq!(cold.stats.cache_misses, victims.len());
    assert_eq!(cold.stats.cache_hits, 0);

    let warm = engine.verify(&ctx, &victims).unwrap();
    assert_eq!(warm.stats.cache_hits, victims.len(), "100% hits on unchanged rerun");
    assert_eq!(warm.stats.cache_misses, 0);
    assert!((warm.stats.hit_rate() - 1.0).abs() < 1e-12);
    // Cached verdicts are bit-identical to recomputed ones.
    assert_eq!(warm.chip, cold.chip);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn perturbing_one_coupling_invalidates_exactly_that_cluster() {
    let path = cache_file("perturb-one");
    let _ = std::fs::remove_file(&path);
    let caps = [30e-15, 25e-15, 20e-15, 15e-15];
    let (db, victims) = pair_db(&caps);
    let ctx = AnalysisContext::fixed_resistance(&db, 1500.0);
    let engine = Engine::new(EngineConfig {
        workers: 2,
        cache_path: Some(path.clone()),
        ..Default::default()
    });
    let cold = engine.verify(&ctx, &victims).unwrap();

    // Same design, except pair 2's coupling capacitor grew by 20%.
    let mut perturbed = caps;
    perturbed[2] *= 1.2;
    let (db2, victims2) = pair_db(&perturbed);
    let ctx2 = AnalysisContext::fixed_resistance(&db2, 1500.0);
    let second = engine.verify(&ctx2, &victims2).unwrap();

    assert_eq!(second.stats.cache_hits, victims2.len() - 1);
    assert_eq!(second.stats.cache_misses, 1, "only the touched cluster re-ran");
    // The touched victim's verdict moved; the others are bit-identical.
    let v2_before = cold.chip.verdicts.iter().find(|v| v.name == "v2").unwrap();
    let v2_after = second.chip.verdicts.iter().find(|v| v.name == "v2").unwrap();
    assert!(v2_after.worst_frac > v2_before.worst_frac);
    for name in ["v0", "v1", "v3"] {
        let before = cold.chip.verdicts.iter().find(|v| v.name == name).unwrap();
        let after = second.chip.verdicts.iter().find(|v| v.name == name).unwrap();
        assert_eq!(before, after);
    }
    let _ = std::fs::remove_file(&path);
}

/// Fisher–Yates shuffle driven by the deterministic test RNG.
fn shuffled<T>(mut items: Vec<T>, rng: &mut Rng) -> Vec<T> {
    for i in (1..items.len()).rev() {
        let j = rng.range_usize(0, i + 1);
        items.swap(i, j);
    }
    items
}

/// One victim chained through four nodes plus two multi-tap aggressors.
/// Every element list (resistors, ground caps, couplings) is inserted in a
/// `seed`-shuffled order, modeling a parasitic extractor that emits the
/// same layout in a different file order. `perturb` scales one coupling
/// capacitor to model an actual layout change.
fn reorderable_db(seed: u64, perturb: Option<f64>) -> (ParasiticDb, PNetId) {
    let mut rng = Rng::new(seed);
    let mut db = ParasiticDb::new();
    let mk = |rng: &mut Rng, name: &str| {
        let mut n = NetParasitics::new(name);
        for _ in 0..3 {
            n.add_node();
        }
        for (a, b, ohms) in shuffled(vec![(0, 1, 150.0), (1, 2, 180.0), (2, 3, 120.0)], rng) {
            n.add_resistor(a, b, ohms);
        }
        for (node, c) in shuffled(vec![(1, 4e-15), (2, 5e-15), (3, 6e-15)], rng) {
            n.add_ground_cap(node, c);
        }
        n.mark_load(3);
        n
    };
    let victim = db.add_net(mk(&mut rng, "victim"));
    let a0 = db.add_net(mk(&mut rng, "agg0"));
    let a1 = db.add_net(mk(&mut rng, "agg1"));
    let mut couplings =
        vec![(1, a0, 1, 20e-15), (2, a0, 2, 15e-15), (2, a1, 1, 18e-15), (3, a1, 3, 12e-15)];
    if let Some(scale) = perturb {
        couplings[2].3 *= scale;
    }
    for (vn, agg, an, cc) in shuffled(couplings, &mut rng) {
        db.add_coupling(
            NetNodeRef { net: victim, node: vn },
            NetNodeRef { net: agg, node: an },
            cc,
        );
    }
    (db, victim)
}

fn fingerprint_of(db: &ParasiticDb, victim: PNetId) -> u64 {
    let ctx = AnalysisContext::fixed_resistance(db, 1500.0);
    let prune = PruneConfig::default();
    let opts = AnalysisOptions::default();
    let cluster = prune_victim(db, victim, &prune);
    assert_eq!(cluster.size(), 3, "fixture must keep both aggressors");
    let chash = config_hash(&ctx, &prune, &opts, 0.1, 0.2, false);
    cluster_fingerprint(&ctx, &cluster, chash)
}

#[test]
fn fingerprint_is_stable_under_element_reordering() {
    let (db, victim) = reorderable_db(1, None);
    let baseline = fingerprint_of(&db, victim);
    for seed in 2..12 {
        let (db, victim) = reorderable_db(seed, None);
        assert_eq!(
            fingerprint_of(&db, victim),
            baseline,
            "insertion order (seed {seed}) leaked into the fingerprint"
        );
    }
}

#[test]
fn fingerprint_changes_when_one_coupling_cap_moves() {
    let (db, victim) = reorderable_db(1, None);
    let baseline = fingerprint_of(&db, victim);
    for seed in 1..8 {
        let (db, victim) = reorderable_db(seed, Some(1.01));
        assert_ne!(
            fingerprint_of(&db, victim),
            baseline,
            "a 1% coupling change (insertion seed {seed}) must invalidate"
        );
    }
}

#[test]
fn cache_survives_netlist_reordering() {
    let path = cache_file("reordered-extraction");
    let _ = std::fs::remove_file(&path);
    let engine = Engine::new(EngineConfig {
        workers: 2,
        cache_path: Some(path.clone()),
        ..Default::default()
    });

    let (db, victim) = reorderable_db(3, None);
    let ctx = AnalysisContext::fixed_resistance(&db, 1500.0);
    let cold = engine.verify(&ctx, &[victim]).unwrap();
    assert_eq!(cold.stats.cache_misses, 1);

    // Same layout, different extractor emission order: still a cache hit.
    let (db2, victim2) = reorderable_db(8, None);
    let ctx2 = AnalysisContext::fixed_resistance(&db2, 1500.0);
    let warm = engine.verify(&ctx2, &[victim2]).unwrap();
    assert_eq!(warm.stats.cache_hits, 1, "reordered netlist must stay warm");
    assert_eq!(warm.chip, cold.chip);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn changing_analysis_options_invalidates_the_whole_cache() {
    let path = cache_file("config-change");
    let _ = std::fs::remove_file(&path);
    let (db, victims) = pair_db(&[30e-15, 25e-15]);
    let ctx = AnalysisContext::fixed_resistance(&db, 1500.0);
    let engine = Engine::new(EngineConfig {
        workers: 2,
        cache_path: Some(path.clone()),
        ..Default::default()
    });
    engine.verify(&ctx, &victims).unwrap();

    let mut stricter = Engine::new(EngineConfig {
        workers: 2,
        cache_path: Some(path.clone()),
        ..Default::default()
    });
    stricter.config.warn_frac = 0.05;
    let report = stricter.verify(&ctx, &victims).unwrap();
    assert_eq!(report.stats.cache_hits, 0, "options are part of the fingerprint");
    assert_eq!(report.stats.cache_misses, victims.len());
    let _ = std::fs::remove_file(&path);
}
