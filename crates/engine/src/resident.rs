//! The resident-chip handle: elaborate once, verify many times.
//!
//! The batch flow pays its dominant fixed cost — parsing parasitics,
//! aligning the gate-level view, characterizing drivers, and building the
//! coupling union-find — before the first verdict, on *every* invocation.
//! A verification service must pay it once: [`ResidentChip`] owns all of
//! that state, keeps it hot in memory, and hands the engine a borrowed
//! [`AnalysisContext`] per run. [`Engine::verify_resident`] and
//! [`Engine::resume_resident`](crate::Engine::resume_resident) reuse the
//! precomputed component sizes instead of rebuilding the union-find, so a
//! warm run starts analyzing immediately.
//!
//! [`VerdictSnapshot`] is the run-scoped read side: the engine publishes
//! every completed verdict into it as the run progresses, so concurrent
//! clients can query per-net results mid-run — including verdicts from
//! clusters that finished while the rest of the chip is still in flight —
//! without touching the run lock or waiting for the merged report.
//!
//! [`Engine::verify_resident`]: crate::Engine::verify_resident

use pcv_cells::charlib::CharLibrary;
use pcv_cells::library::CellLibrary;
use pcv_netlist::{Design, PNetId, ParasiticDb};
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::coupling_component_sizes;
use pcv_xtalk::{AnalysisContext, NetVerdict};
use std::collections::HashMap;
use std::sync::Mutex;

/// A chip elaborated once and held resident for many verification runs.
///
/// Owns the parasitics, the optional gate-level design and libraries, the
/// victim list, and the precomputed coupling-component sizes (the
/// union-find over the whole netlist that every pruning pass needs).
/// Cheap to share behind an `Arc`: every field is immutable after
/// elaboration, so concurrent runs and queries need no locking.
#[derive(Debug)]
pub struct ResidentChip {
    db: ParasiticDb,
    design: Option<Design>,
    lib: Option<CellLibrary>,
    charlib: Option<CharLibrary>,
    driver_model: DriverModelKind,
    victims: Vec<PNetId>,
    component_sizes: Vec<usize>,
}

impl ResidentChip {
    /// Elaborate a design-less chip with uniform fixed-resistance drivers
    /// (the SPEF-only ingest path).
    pub fn fixed_resistance(db: ParasiticDb, ohms: f64, victims: Vec<PNetId>) -> Self {
        let component_sizes = coupling_component_sizes(&db);
        ResidentChip {
            db,
            design: None,
            lib: None,
            charlib: None,
            driver_model: DriverModelKind::FixedResistance(ohms),
            victims,
            component_sizes,
        }
    }

    /// Elaborate a full chip: parasitics plus gate-level design, cell
    /// library and characterized drivers.
    pub fn with_design(
        db: ParasiticDb,
        design: Design,
        lib: CellLibrary,
        charlib: CharLibrary,
        driver_model: DriverModelKind,
        victims: Vec<PNetId>,
    ) -> Self {
        let component_sizes = coupling_component_sizes(&db);
        ResidentChip {
            db,
            design: Some(design),
            lib: Some(lib),
            charlib: Some(charlib),
            driver_model,
            victims,
            component_sizes,
        }
    }

    /// A borrowed analysis context over the resident data — the same
    /// context the batch flow builds per invocation.
    pub fn ctx(&self) -> AnalysisContext<'_> {
        AnalysisContext {
            db: &self.db,
            design: self.design.as_ref(),
            lib: self.lib.as_ref(),
            charlib: self.charlib.as_ref(),
            driver_model: self.driver_model,
        }
    }

    /// The victim population this chip is audited over.
    pub fn victims(&self) -> &[PNetId] {
        &self.victims
    }

    /// Precomputed coupling-component sizes (indexable by net id).
    pub fn component_sizes(&self) -> &[usize] {
        &self.component_sizes
    }

    /// The resident parasitics.
    pub fn db(&self) -> &ParasiticDb {
        &self.db
    }

    /// Nets in the resident parasitics.
    pub fn num_nets(&self) -> usize {
        self.db.num_nets()
    }

    /// Whether `name` names one of the audited victims.
    pub fn is_victim(&self, name: &str) -> bool {
        self.victims.iter().any(|&v| self.db.net(v).name() == name)
    }
}

/// A run-scoped, concurrently readable store of completed verdicts.
///
/// The engine inserts each cluster's [`NetVerdict`] the moment its job
/// finishes (computed, cached, or replayed from the journal), so readers
/// polling mid-run see partial results grow monotonically. Reads never
/// touch the advisory run lock — a query cannot block, or be blocked by,
/// the run itself.
#[derive(Debug, Default)]
pub struct VerdictSnapshot {
    done: Mutex<HashMap<String, NetVerdict>>,
    /// Monotonic publication counter — a lock-free heartbeat for stall
    /// watchdogs, bumped on every [`VerdictSnapshot::insert`]. Unlike
    /// [`VerdictSnapshot::len`] it never takes the verdict lock, so a
    /// watchdog polling it cannot contend with the engine's inserts or a
    /// client's verdict reads.
    beats: std::sync::atomic::AtomicU64,
}

impl VerdictSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish one completed verdict (engine-side).
    pub fn insert(&self, verdict: NetVerdict) {
        let mut done = self.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        done.insert(verdict.name.clone(), verdict);
        drop(done);
        self.beats.fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// Verdict publications so far (monotonic, lock-free). Counts every
    /// insert — including a re-publication of an already-present net — so
    /// it is a progress *heartbeat*, not a distinct-verdict count.
    pub fn beats(&self) -> u64 {
        self.beats.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Record a liveness beat without publishing a verdict — how a shard
    /// coordinator keeps the stall watchdog informed while workers are
    /// between verdicts (an idle-but-alive worker is not a stall).
    pub fn beat(&self) {
        self.beats.fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// The verdict for one net, if its cluster has completed.
    pub fn get(&self, name: &str) -> Option<NetVerdict> {
        let done = self.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        done.get(name).cloned()
    }

    /// Completed verdicts so far.
    pub fn len(&self) -> usize {
        self.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether no verdict has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every completed verdict, sorted by net name (a deterministic order
    /// for a partial set — worst-first only makes sense once the run has
    /// merged).
    pub fn all(&self) -> Vec<NetVerdict> {
        let done = self.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out: Vec<NetVerdict> = done.values().cloned().collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig};
    use pcv_netlist::{NetNodeRef, NetParasitics};
    use pcv_xtalk::Severity;
    use std::sync::Arc;

    fn chip() -> ResidentChip {
        let mut db = ParasiticDb::new();
        let mk = |name: &str, cg: f64| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 200.0);
            n.add_ground_cap(n1, cg);
            n.mark_load(n1);
            n
        };
        let hot = db.add_net(mk("hot", 5e-15));
        let cold = db.add_net(mk("cold", 50e-15));
        let agg = db.add_net(mk("agg", 5e-15));
        db.add_coupling(NetNodeRef { net: hot, node: 1 }, NetNodeRef { net: agg, node: 1 }, 60e-15);
        db.add_coupling(
            NetNodeRef { net: cold, node: 1 },
            NetNodeRef { net: agg, node: 1 },
            0.4e-15,
        );
        ResidentChip::fixed_resistance(db, 2000.0, vec![cold, hot])
    }

    #[test]
    fn resident_run_matches_the_borrowing_path() {
        let chip = chip();
        let engine = Engine::new(EngineConfig { workers: 2, ..Default::default() });
        let borrowed = engine.verify(&chip.ctx(), chip.victims()).unwrap();
        let resident = engine.verify_resident(&chip, None).unwrap();
        assert_eq!(resident.chip, borrowed.chip);
        assert_eq!(resident.signoff_json(), borrowed.signoff_json());
    }

    #[test]
    fn snapshot_collects_every_completed_verdict() {
        let chip = chip();
        let snap = Arc::new(VerdictSnapshot::new());
        let engine = Engine::new(EngineConfig { workers: 2, ..Default::default() });
        let report = engine.verify_resident(&chip, Some(&snap)).unwrap();
        assert_eq!(snap.len(), report.chip.verdicts.len());
        let hot = snap.get("hot").expect("hot completed");
        let in_report = report.chip.verdicts.iter().find(|v| v.name == "hot").unwrap();
        assert_eq!(&hot, in_report);
        assert!(snap.get("no_such_net").is_none());
        let all = snap.all();
        assert_eq!(all.len(), 2);
        assert!(all.windows(2).all(|w| w[0].name <= w[1].name), "sorted by name");
        assert!(all.iter().all(|v| v.severity >= Severity::Clean));
    }

    #[test]
    fn victim_lookup_by_name() {
        let chip = chip();
        assert!(chip.is_victim("hot"));
        assert!(chip.is_victim("cold"));
        assert!(!chip.is_victim("agg"), "aggressors are not victims");
        assert_eq!(chip.num_nets(), 3);
        assert_eq!(chip.component_sizes().len(), 3);
    }
}
