//! A std-only work-stealing scheduler for independent indexed jobs.
//!
//! Jobs `0..n` are dealt round-robin onto per-worker deques. Each worker
//! pops from the back of its own deque (LIFO keeps its cache warm) and,
//! when empty, steals from the *front* of a sibling's deque (FIFO steals
//! take the oldest, largest-grained work). Every job runs under
//! [`std::panic::catch_unwind`], so one panicking job surfaces as an error
//! result instead of tearing down the run.
//!
//! Results are reported with their job index, so callers can reassemble a
//! deterministic, input-ordered output regardless of which worker ran what
//! when.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Scheduler-level statistics for one [`run`].
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Jobs a worker stole from a sibling's deque.
    pub steals: u64,
    /// Per-worker time spent executing jobs.
    pub worker_busy: Vec<Duration>,
}

/// Extract a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

/// Run jobs `0..n_jobs` across `workers` threads, stealing work between
/// them, and return each job's result in job order.
///
/// `Ok` holds the job's return value; `Err` holds the panic message if the
/// job panicked. The job function receives the job index.
///
/// # Panics
///
/// Panics if `workers == 0` or a worker thread itself dies outside a job
/// (both are scheduler bugs, not job faults).
pub fn run<T, F>(workers: usize, n_jobs: usize, job: F) -> (Vec<Result<T, String>>, RunStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_with_idle(workers, n_jobs, job, |_| {})
}

/// [`run`], plus an idle callback: `on_idle(worker)` fires once per worker
/// the moment it finds no job in its own deque and nothing left to steal —
/// i.e. when it goes idle for good. Observability hooks (progress sinks)
/// use this to report tail-end worker starvation; the callback runs on the
/// worker thread and must not panic.
pub fn run_with_idle<T, F, I>(
    workers: usize,
    n_jobs: usize,
    job: F,
    on_idle: I,
) -> (Vec<Result<T, String>>, RunStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn(usize) + Sync,
{
    assert!(workers > 0, "need at least one worker");
    if n_jobs == 0 {
        for worker in 0..workers {
            on_idle(worker);
        }
        return (Vec::new(), RunStats { steals: 0, worker_busy: vec![Duration::ZERO; workers] });
    }

    // Deal jobs round-robin so initial queues are balanced.
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for idx in 0..n_jobs {
        deques[idx % workers].lock().expect("deque poisoned").push_back(idx);
    }

    let steals = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();

    let mut busy = vec![Duration::ZERO; workers];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let steals = &steals;
            let job = &job;
            let on_idle = &on_idle;
            handles.push(scope.spawn(move || {
                let mut busy = Duration::ZERO;
                loop {
                    // Own queue first (back = most recently dealt).
                    let mut next = None;
                    {
                        let mut q = deques[me].lock().expect("deque poisoned");
                        if let Some(idx) = q.pop_back() {
                            pcv_trace::value("engine.queue_depth", q.len() as u64);
                            next = Some(idx);
                        }
                    }
                    if next.is_none() {
                        // Steal the oldest job from the first non-empty
                        // sibling.
                        for (other, deque) in deques.iter().enumerate() {
                            if other == me {
                                continue;
                            }
                            if let Some(idx) = deque.lock().expect("deque poisoned").pop_front() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                pcv_trace::count("engine.steals", 1);
                                next = Some(idx);
                                break;
                            }
                        }
                    }
                    let Some(idx) = next else {
                        on_idle(me);
                        break;
                    };
                    let start = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| job(idx))).map_err(panic_message);
                    busy += start.elapsed();
                    if tx.send((idx, result)).is_err() {
                        break;
                    }
                }
                busy
            }));
        }
        drop(tx);
        for (worker, h) in handles.into_iter().enumerate() {
            busy[worker] = h.join().expect("worker thread died outside a job");
            pcv_trace::value("engine.worker_busy_us", busy[worker].as_micros() as u64);
        }
    });

    let mut slots: Vec<Option<Result<T, String>>> = (0..n_jobs).map(|_| None).collect();
    for (idx, result) in rx {
        slots[idx] = Some(result);
    }
    let results = slots.into_iter().map(|s| s.expect("every job reports exactly once")).collect();
    (results, RunStats { steals: steals.load(Ordering::Relaxed), worker_busy: busy })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 4] {
            let (results, stats) = run(workers, 37, |i| i * i);
            assert_eq!(stats.worker_busy.len(), workers);
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r, Ok(i * i));
            }
        }
    }

    #[test]
    fn empty_run_is_fine() {
        let (results, stats) = run(4, 0, |i| i);
        assert!(results.is_empty());
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn a_panicking_job_is_isolated() {
        let (results, _) = run(3, 10, |i| {
            if i == 4 {
                panic!("boom on {i}");
            }
            i + 1
        });
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                assert_eq!(r.as_ref().unwrap_err(), "boom on 4");
            } else {
                assert_eq!(*r, Ok(i + 1));
            }
        }
    }

    #[test]
    fn idle_callback_fires_once_per_worker() {
        use std::sync::atomic::AtomicU64;
        for (workers, jobs) in [(1usize, 5usize), (4, 9), (4, 0)] {
            let idles = AtomicU64::new(0);
            let (results, _) = run_with_idle(
                workers,
                jobs,
                |i| i,
                |_w| {
                    idles.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(results.len(), jobs);
            assert_eq!(idles.load(Ordering::Relaxed), workers as u64);
        }
    }

    #[test]
    fn uneven_jobs_get_stolen() {
        // Worker 0's queue holds all the slow jobs; the others must steal
        // to finish. With round-robin dealing over 2 workers, even indices
        // land on worker 0.
        let (results, stats) = run(2, 40, |i| {
            if i % 2 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            i
        });
        assert_eq!(results.len(), 40);
        // Stealing is opportunistic, so only assert it is recorded
        // coherently.
        assert!(stats.steals <= 40);
    }
}
