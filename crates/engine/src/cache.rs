//! On-disk incremental result cache.
//!
//! One entry per victim net, keyed by name and guarded by the cluster
//! [fingerprint](crate::fingerprint): a hit requires the stored fingerprint
//! to match the one recomputed from the current database, so any edit that
//! could change the verdict — a coupling capacitor, wire RC, a driver cell,
//! an analysis knob — invalidates exactly the entries it touches.
//!
//! The store is a line-oriented text file (`pcv-engine-cache v1`) with
//! peaks serialized as `f64` bit patterns, so a cache round-trip is
//! bit-exact. Loading is tolerant: a missing file is an empty cache and
//! malformed lines are skipped, so a corrupt store degrades to cache
//! misses, never to wrong verdicts.

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;

/// Header line of the store format.
const HEADER: &str = "pcv-engine-cache v1";

/// Cached receiver verdict (mirrors [`pcv_xtalk::ReceiverVerdict`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedReceiver {
    /// Receiver cell name.
    pub cell: String,
    /// Output peak bit pattern.
    pub output_peak_bits: u64,
    /// Whether the glitch propagates.
    pub propagates: bool,
}

/// Cached analysis outcome for one victim.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Fingerprint of the cluster + configuration that produced this entry.
    pub fingerprint: u64,
    /// Worst rising peak, as `f64` bits.
    pub rise_bits: u64,
    /// Worst falling peak, as `f64` bits.
    pub fall_bits: u64,
    /// Receiver check outcome, when one ran.
    pub receiver: Option<CachedReceiver>,
}

/// In-memory cache: victim net name → entry.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    entries: HashMap<String, CacheEntry>,
}

impl ResultCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up an entry by victim name **and** fingerprint; a stale
    /// fingerprint is a miss.
    pub fn lookup(&self, name: &str, fingerprint: u64) -> Option<&CacheEntry> {
        self.entries.get(name).filter(|e| e.fingerprint == fingerprint)
    }

    /// Insert or replace an entry.
    pub fn insert(&mut self, name: String, entry: CacheEntry) {
        self.entries.insert(name, entry);
    }

    /// Load a cache from disk. A missing file yields an empty cache;
    /// malformed lines are skipped.
    pub fn load(path: &Path) -> Self {
        let mut cache = Self::new();
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return cache;
        }
        for line in lines {
            if let Some((name, entry)) = parse_line(line) {
                cache.insert(name, entry);
            }
        }
        cache
    }

    /// Write the cache to disk, sorted by victim name so the file is
    /// stable across runs. Errors are returned for the caller to surface
    /// or ignore — a failed save only costs future hits.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut names: Vec<&String> = self.entries.keys().collect();
        names.sort();
        let mut out = String::with_capacity(64 * (1 + self.entries.len()));
        out.push_str(HEADER);
        out.push('\n');
        for name in names {
            let e = &self.entries[name];
            let (cell, peak, prop) = match &e.receiver {
                Some(r) => (
                    r.cell.as_str(),
                    format!("{:016x}", r.output_peak_bits),
                    if r.propagates { "1" } else { "0" },
                ),
                None => ("-", "-".to_owned(), "-"),
            };
            out.push_str(&format!(
                "{name}\t{:016x}\t{:016x}\t{:016x}\t{cell}\t{peak}\t{prop}\n",
                e.fingerprint, e.rise_bits, e.fall_bits
            ));
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(out.as_bytes())
    }
}

/// Parse one store line; `None` for malformed input.
fn parse_line(line: &str) -> Option<(String, CacheEntry)> {
    let mut f = line.split('\t');
    let name = f.next()?;
    if name.is_empty() {
        return None;
    }
    let fingerprint = u64::from_str_radix(f.next()?, 16).ok()?;
    let rise_bits = u64::from_str_radix(f.next()?, 16).ok()?;
    let fall_bits = u64::from_str_radix(f.next()?, 16).ok()?;
    // A bit pattern that parses but encodes NaN/∞ can only come from a
    // corrupted store (the engine never caches non-finite peaks); treat it
    // as a miss rather than let it poison a verdict.
    if !f64::from_bits(rise_bits).is_finite() || !f64::from_bits(fall_bits).is_finite() {
        return None;
    }
    let cell = f.next()?;
    let peak = f.next()?;
    let prop = f.next()?;
    if f.next().is_some() {
        return None;
    }
    let receiver = match (cell, peak, prop) {
        ("-", "-", "-") => None,
        _ => {
            let output_peak_bits = u64::from_str_radix(peak, 16).ok()?;
            if !f64::from_bits(output_peak_bits).is_finite() {
                return None;
            }
            Some(CachedReceiver {
                cell: cell.to_owned(),
                output_peak_bits,
                propagates: match prop {
                    "1" => true,
                    "0" => false,
                    _ => return None,
                },
            })
        }
    };
    Some((name.to_owned(), CacheEntry { fingerprint, rise_bits, fall_bits, receiver }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultCache {
        let mut c = ResultCache::new();
        c.insert(
            "bus0_1".into(),
            CacheEntry {
                fingerprint: 0xdead_beef,
                rise_bits: 0.31_f64.to_bits(),
                fall_bits: (-0.07_f64).to_bits(),
                receiver: None,
            },
        );
        c.insert(
            "acc_q3".into(),
            CacheEntry {
                fingerprint: 1,
                rise_bits: 0.6_f64.to_bits(),
                fall_bits: (-0.58_f64).to_bits(),
                receiver: Some(CachedReceiver {
                    cell: "INVX4".into(),
                    output_peak_bits: (-1.2_f64).to_bits(),
                    propagates: true,
                }),
            },
        );
        c
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        let c = sample();
        c.save(&path).unwrap();
        let back = ResultCache::load(&path);
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup("bus0_1", 0xdead_beef), c.lookup("bus0_1", 0xdead_beef));
        assert_eq!(back.lookup("acc_q3", 1), c.lookup("acc_q3", 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_fingerprint_misses() {
        let c = sample();
        assert!(c.lookup("bus0_1", 0xdead_beef).is_some());
        assert!(c.lookup("bus0_1", 0xdead_bee0).is_none());
        assert!(c.lookup("absent", 0xdead_beef).is_none());
    }

    #[test]
    fn missing_file_is_empty_cache() {
        let c = ResultCache::load(Path::new("/nonexistent/pcv-engine-cache"));
        assert!(c.is_empty());
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let good = "w1\t0000000000000001\t0000000000000002\t0000000000000003\t-\t-\t-";
        let text =
            format!("{HEADER}\n{good}\nnot a line\nw2\tzz\t0\t0\t-\t-\t-\n\t1\t2\t3\t-\t-\t-\n");
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        std::fs::write(&path, text).unwrap();
        let c = ResultCache::load(&path);
        assert_eq!(c.len(), 1);
        assert!(c.lookup("w1", 1).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_finite_bit_patterns_are_misses() {
        let nan = f64::NAN.to_bits();
        let inf = f64::INFINITY.to_bits();
        let fin = 0.25_f64.to_bits();
        let text = format!(
            "{HEADER}\n\
             w1\t1\t{nan:016x}\t{fin:016x}\t-\t-\t-\n\
             w2\t1\t{fin:016x}\t{inf:016x}\t-\t-\t-\n\
             w3\t1\t{fin:016x}\t{fin:016x}\tINVX1\t{nan:016x}\t1\n\
             w4\t1\t{fin:016x}\t{fin:016x}\t-\t-\t-\n"
        );
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-nonfinite");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        std::fs::write(&path, text).unwrap();
        let c = ResultCache::load(&path);
        assert_eq!(c.len(), 1, "only the all-finite entry survives");
        assert!(c.lookup("w4", 1).is_some());
        for poisoned in ["w1", "w2", "w3"] {
            assert!(c.lookup(poisoned, 1).is_none(), "{poisoned} must be a miss");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_header_is_empty_cache() {
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-hdr");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        std::fs::write(&path, "pcv-engine-cache v999\nw1\t1\t2\t3\t-\t-\t-\n").unwrap();
        assert!(ResultCache::load(&path).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
