//! On-disk incremental result cache.
//!
//! One entry per victim net, keyed by name and guarded by the cluster
//! [fingerprint](crate::fingerprint): a hit requires the stored fingerprint
//! to match the one recomputed from the current database, so any edit that
//! could change the verdict — a coupling capacitor, wire RC, a driver cell,
//! an analysis knob — invalidates exactly the entries it touches.
//!
//! The store is a line-oriented text file (`pcv-engine-cache v2`) with
//! peaks serialized as `f64` bit patterns, so a cache round-trip is
//! bit-exact. Since v2 the store is crash-safe end to end: every entry
//! line carries a CRC32 of its fields, the file ends in a `#footer` line
//! (entry count + whole-body CRC), and saves go through the atomic
//! write-temp + fsync + rename path in [`crate::fs`]. Loading is
//! tolerant: a missing file is an empty cache, a v1 (or foreign) header
//! loads as empty, CRC-damaged lines are skipped and counted, and a
//! missing or mismatching footer flags the load as torn while the intact
//! lines still count — so a corrupt store degrades to cache misses, never
//! to wrong verdicts.

use crate::fs::{crc32, Fs};
use std::collections::HashMap;
use std::path::Path;

/// Header line of the store format.
const HEADER: &str = "pcv-engine-cache v2";

/// Prefix of the file-level integrity footer.
const FOOTER_PREFIX: &str = "#footer ";

/// Cached receiver verdict (mirrors [`pcv_xtalk::ReceiverVerdict`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedReceiver {
    /// Receiver cell name.
    pub cell: String,
    /// Output peak bit pattern.
    pub output_peak_bits: u64,
    /// Whether the glitch propagates.
    pub propagates: bool,
}

/// Cached analysis outcome for one victim.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Fingerprint of the cluster + configuration that produced this entry.
    pub fingerprint: u64,
    /// Worst rising peak, as `f64` bits.
    pub rise_bits: u64,
    /// Worst falling peak, as `f64` bits.
    pub fall_bits: u64,
    /// Receiver check outcome, when one ran.
    pub receiver: Option<CachedReceiver>,
}

/// What a cache load found on disk — surfaced so callers (and chaos
/// drills) can tell a clean store from a damaged-but-recovered one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLoadStats {
    /// Entries that loaded intact.
    pub entries: usize,
    /// Lines dropped for CRC or parse damage.
    pub skipped: usize,
    /// The integrity footer was missing, unparseable, or did not match —
    /// the signature of a torn (interrupted) write.
    pub torn: bool,
}

/// In-memory cache: victim net name → entry.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    entries: HashMap<String, CacheEntry>,
}

impl ResultCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up an entry by victim name **and** fingerprint; a stale
    /// fingerprint is a miss.
    pub fn lookup(&self, name: &str, fingerprint: u64) -> Option<&CacheEntry> {
        self.entries.get(name).filter(|e| e.fingerprint == fingerprint)
    }

    /// Look up an entry by victim name alone — the shard-merge harvest
    /// path, where the caller recomputes the fingerprint itself and
    /// decides freshness on its own terms.
    pub fn get(&self, name: &str) -> Option<&CacheEntry> {
        self.entries.get(name)
    }

    /// Insert or replace an entry.
    pub fn insert(&mut self, name: String, entry: CacheEntry) {
        self.entries.insert(name, entry);
    }

    /// Load a cache from disk ([`ResultCache::load_with`] on the real
    /// filesystem, discarding the load statistics).
    pub fn load(path: &Path) -> Self {
        Self::load_with(&Fs::real(), path).0
    }

    /// Load a cache through `fs`, reporting what was found. A missing
    /// file or a non-v2 header yields an empty cache; damaged lines are
    /// skipped and counted.
    pub fn load_with(fs: &Fs, path: &Path) -> (Self, CacheLoadStats) {
        let mut cache = Self::new();
        let mut stats = CacheLoadStats::default();
        let Ok(text) = fs.read_to_string(path) else {
            return (cache, stats);
        };
        let mut lines: Vec<&str> = text.lines().collect();
        if lines.first() != Some(&HEADER) {
            return (cache, stats);
        }
        let footer = if lines.last().is_some_and(|l| l.starts_with(FOOTER_PREFIX)) {
            lines.pop()
        } else {
            None
        };
        let entry_lines = &lines[1..];
        for line in entry_lines {
            match parse_line(line) {
                Some((name, entry)) => cache.insert(name, entry),
                None => stats.skipped += 1,
            }
        }
        stats.entries = cache.len();
        stats.torn = match footer.and_then(parse_footer) {
            Some((count, crc)) => {
                // Re-derive the body exactly as it was written; an intact
                // file reproduces it byte for byte.
                let mut body = String::with_capacity(HEADER.len() + 1 + text.len());
                body.push_str(HEADER);
                body.push('\n');
                for line in entry_lines {
                    body.push_str(line);
                    body.push('\n');
                }
                count != entry_lines.len() || crc32(body.as_bytes()) != crc
            }
            None => true,
        };
        (cache, stats)
    }

    /// Write the cache to disk ([`ResultCache::save_with`] on the real
    /// filesystem).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures — a failed save only costs future hits.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.save_with(&Fs::real(), path)
    }

    /// Write the cache through `fs`: CRC per entry line, an integrity
    /// footer, and an atomic replace of the destination — a reader never
    /// observes a half-written store. Entries are sorted by victim name so
    /// the file is stable across runs.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures — a failed save leaves any previous store
    /// intact and only costs future hits.
    pub fn save_with(&self, fs: &Fs, path: &Path) -> std::io::Result<()> {
        let mut names: Vec<&String> = self.entries.keys().collect();
        names.sort();
        let mut out = String::with_capacity(80 * (2 + self.entries.len()));
        out.push_str(HEADER);
        out.push('\n');
        for name in &names {
            let e = &self.entries[*name];
            let (cell, peak, prop) = match &e.receiver {
                Some(r) => (
                    r.cell.as_str(),
                    format!("{:016x}", r.output_peak_bits),
                    if r.propagates { "1" } else { "0" },
                ),
                None => ("-", "-".to_owned(), "-"),
            };
            let body = format!(
                "{name}\t{:016x}\t{:016x}\t{:016x}\t{cell}\t{peak}\t{prop}",
                e.fingerprint, e.rise_bits, e.fall_bits
            );
            out.push_str(&format!("{body}\t{:08x}\n", crc32(body.as_bytes())));
        }
        out.push_str(&format!("{FOOTER_PREFIX}{} {:08x}\n", names.len(), crc32(out.as_bytes())));
        fs.write_atomic(path, out.as_bytes())
    }
}

/// Parse the footer line: `#footer <count> <crc32 hex>`.
fn parse_footer(line: &str) -> Option<(usize, u32)> {
    let mut f = line.strip_prefix(FOOTER_PREFIX)?.split(' ');
    let count = f.next()?.parse().ok()?;
    let crc = u32::from_str_radix(f.next()?, 16).ok()?;
    if f.next().is_some() {
        return None;
    }
    Some((count, crc))
}

/// Parse one store line; `None` for malformed or CRC-damaged input.
fn parse_line(line: &str) -> Option<(String, CacheEntry)> {
    // The trailing field is the CRC of everything before it.
    let (body, crc_hex) = line.rsplit_once('\t')?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(body.as_bytes()) != crc {
        return None;
    }
    let mut f = body.split('\t');
    let name = f.next()?;
    if name.is_empty() {
        return None;
    }
    let fingerprint = u64::from_str_radix(f.next()?, 16).ok()?;
    let rise_bits = u64::from_str_radix(f.next()?, 16).ok()?;
    let fall_bits = u64::from_str_radix(f.next()?, 16).ok()?;
    // A bit pattern that parses but encodes NaN/∞ can only come from a
    // corrupted store (the engine never caches non-finite peaks); treat it
    // as a miss rather than let it poison a verdict.
    if !f64::from_bits(rise_bits).is_finite() || !f64::from_bits(fall_bits).is_finite() {
        return None;
    }
    let cell = f.next()?;
    let peak = f.next()?;
    let prop = f.next()?;
    if f.next().is_some() {
        return None;
    }
    let receiver = match (cell, peak, prop) {
        ("-", "-", "-") => None,
        _ => {
            let output_peak_bits = u64::from_str_radix(peak, 16).ok()?;
            if !f64::from_bits(output_peak_bits).is_finite() {
                return None;
            }
            Some(CachedReceiver {
                cell: cell.to_owned(),
                output_peak_bits,
                propagates: match prop {
                    "1" => true,
                    "0" => false,
                    _ => return None,
                },
            })
        }
    };
    Some((name.to_owned(), CacheEntry { fingerprint, rise_bits, fall_bits, receiver }))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A valid v2 entry line for hand-built store fixtures.
    fn line(body: &str) -> String {
        format!("{body}\t{:08x}", crc32(body.as_bytes()))
    }

    /// A hand-built store with the given entry lines and a correct footer.
    fn store(entry_lines: &[String]) -> String {
        let mut out = format!("{HEADER}\n");
        for l in entry_lines {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(&format!(
            "{FOOTER_PREFIX}{} {:08x}\n",
            entry_lines.len(),
            crc32(out.as_bytes())
        ));
        out
    }

    fn sample() -> ResultCache {
        let mut c = ResultCache::new();
        c.insert(
            "bus0_1".into(),
            CacheEntry {
                fingerprint: 0xdead_beef,
                rise_bits: 0.31_f64.to_bits(),
                fall_bits: (-0.07_f64).to_bits(),
                receiver: None,
            },
        );
        c.insert(
            "acc_q3".into(),
            CacheEntry {
                fingerprint: 1,
                rise_bits: 0.6_f64.to_bits(),
                fall_bits: (-0.58_f64).to_bits(),
                receiver: Some(CachedReceiver {
                    cell: "INVX4".into(),
                    output_peak_bits: (-1.2_f64).to_bits(),
                    propagates: true,
                }),
            },
        );
        c
    }

    #[test]
    fn roundtrip_is_bit_exact_and_clean() {
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        let c = sample();
        c.save(&path).unwrap();
        let (back, stats) = ResultCache::load_with(&Fs::real(), &path);
        assert_eq!(back.len(), 2);
        assert_eq!(stats, CacheLoadStats { entries: 2, skipped: 0, torn: false });
        assert_eq!(back.lookup("bus0_1", 0xdead_beef), c.lookup("bus0_1", 0xdead_beef));
        assert_eq!(back.lookup("acc_q3", 1), c.lookup("acc_q3", 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_fingerprint_misses() {
        let c = sample();
        assert!(c.lookup("bus0_1", 0xdead_beef).is_some());
        assert!(c.lookup("bus0_1", 0xdead_bee0).is_none());
        assert!(c.lookup("absent", 0xdead_beef).is_none());
    }

    #[test]
    fn missing_file_is_empty_cache() {
        let c = ResultCache::load(Path::new("/nonexistent/pcv-engine-cache"));
        assert!(c.is_empty());
    }

    #[test]
    fn malformed_and_crc_damaged_lines_are_skipped() {
        let good = line("w1\t0000000000000001\t0000000000000002\t0000000000000003\t-\t-\t-");
        // A valid body whose recorded CRC is wrong: one flipped store bit.
        let bad_crc = format!("{}\tdeadbeef", "w9\t1\t2\t3\t-\t-\t-");
        let text = store(&[
            good,
            "not a line".into(),
            line("w2\tzz\t0\t0\t-\t-\t-"),
            line("\t1\t2\t3\t-\t-\t-"),
            bad_crc,
        ]);
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        std::fs::write(&path, text).unwrap();
        let (c, stats) = ResultCache::load_with(&Fs::real(), &path);
        assert_eq!(c.len(), 1);
        assert!(c.lookup("w1", 1).is_some());
        assert_eq!(stats.skipped, 4);
        assert!(!stats.torn, "the footer still matched the bytes on disk");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_finite_bit_patterns_are_misses() {
        let nan = f64::NAN.to_bits();
        let inf = f64::INFINITY.to_bits();
        let fin = 0.25_f64.to_bits();
        let text = store(&[
            line(&format!("w1\t1\t{nan:016x}\t{fin:016x}\t-\t-\t-")),
            line(&format!("w2\t1\t{fin:016x}\t{inf:016x}\t-\t-\t-")),
            line(&format!("w3\t1\t{fin:016x}\t{fin:016x}\tINVX1\t{nan:016x}\t1")),
            line(&format!("w4\t1\t{fin:016x}\t{fin:016x}\t-\t-\t-")),
        ]);
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-nonfinite");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        std::fs::write(&path, text).unwrap();
        let c = ResultCache::load(&path);
        assert_eq!(c.len(), 1, "only the all-finite entry survives");
        assert!(c.lookup("w4", 1).is_some());
        for poisoned in ["w1", "w2", "w3"] {
            assert!(c.lookup(poisoned, 1).is_none(), "{poisoned} must be a miss");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn old_and_foreign_headers_load_as_empty() {
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-hdr");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        // The v1 format had no line CRCs; it is versioned out, not parsed.
        std::fs::write(&path, "pcv-engine-cache v1\nw1\t1\t2\t3\t-\t-\t-\n").unwrap();
        assert!(ResultCache::load(&path).is_empty());
        std::fs::write(&path, "pcv-engine-cache v999\nw1\t1\t2\t3\t-\t-\t-\n").unwrap();
        assert!(ResultCache::load(&path).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_store_is_torn_but_intact_lines_survive() {
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        sample().save(&path).unwrap();
        // Chop the file mid-way: the footer (and part of a line) is lost.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let (c, stats) = ResultCache::load_with(&Fs::real(), &path);
        assert!(stats.torn, "a chopped store must read as torn");
        assert!(c.len() < 2, "the damaged tail cannot load fully");
        for (name, entry) in &c.entries {
            assert_eq!(Some(entry), sample().entries.get(name), "survivors are intact");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footer_count_mismatch_reads_as_torn() {
        let good = line("w1\t1\t2\t3\t-\t-\t-");
        let mut text = store(std::slice::from_ref(&good));
        // Claim two entries where one exists.
        text = text.replace(&format!("{FOOTER_PREFIX}1 "), &format!("{FOOTER_PREFIX}2 "));
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-count");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        std::fs::write(&path, text).unwrap();
        let (c, stats) = ResultCache::load_with(&Fs::real(), &path);
        assert_eq!(c.len(), 1, "the intact line still loads");
        assert!(stats.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_short_write_is_detected_on_load() {
        use crate::fs::{DiskFaultPlan, FsFaultKind};
        let dir = std::env::temp_dir().join("pcv-engine-cache-test-chaos");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        let mut plan = DiskFaultPlan::new();
        plan.fail_times("store", FsFaultKind::ShortWrite, 1);
        let fs = Fs::with_faults(plan);
        sample().save_with(&fs, &path).unwrap();
        let (_, stats) = ResultCache::load_with(&fs, &path);
        assert!(stats.torn, "the torn save must not read back clean");
        std::fs::remove_dir_all(&dir).ok();
    }
}
