//! Incremental ECO re-verification: dirty-set planning and report
//! splicing over a resident chip.
//!
//! An ECO (engineering change order) replaces a session's parasitics with
//! an edited netlist. Re-verifying the whole chip from scratch wastes the
//! work already proven for every cluster the edit cannot reach; this
//! module computes exactly which clusters an [`EcoDelta`] can dirty and
//! drives a run that re-analyzes only those, splicing every untouched
//! verdict out of the incremental result cache **bit-for-bit**.
//!
//! The pipeline:
//!
//! 1. [`EcoDelta::diff`] (in `pcv-netlist`) types the edit: nets
//!    added/removed/re-parasitized and coupling-cap edits.
//! 2. [`pcv_xtalk::blast_radius`] maps the touched nets to every victim
//!    within two coupling hops — the only clusters whose canonical v3
//!    fingerprint *can* change (see that module for the soundness
//!    argument).
//! 3. [`EcoPlan::compute`] confirms each candidate against the actual
//!    [`cluster_fingerprint`]s of the old and new chips, yielding the
//!    minimal dirty set.
//! 4. [`Engine::eco_verify_resident`] runs the engine over the **new**
//!    chip with the session's warm cache. Clean clusters hit the cache
//!    (same fingerprint ⇒ the stored peak bits are exactly what a fresh
//!    analysis would produce) and are spliced into the report without
//!    analysis; dirty clusters re-analyze. The merged
//!    [`EngineReport::signoff_json`] is **byte-identical** to a
//!    from-scratch run on the edited chip: verdict values come from the
//!    same bits, ordering uses the same stable comparator, and pruning
//!    statistics are recomputed over every cluster either way.
//!
//! The run itself is an ordinary engine run — journaled, resumable,
//! observable — so an interrupted ECO completes with the same crash
//! matrix as any sign-off.

use crate::engine::{Engine, EngineConfig};
use crate::fingerprint::{cluster_fingerprint, config_hash};
use crate::report::EngineReport;
use crate::resident::{ResidentChip, VerdictSnapshot};
use pcv_netlist::eco::EcoDelta;
use pcv_xtalk::dirty::blast_radius;
use pcv_xtalk::prune::prune_victim_with_components;
use pcv_xtalk::{AnalysisContext, XtalkError};
use std::collections::{BTreeMap, BTreeSet};

/// The planned scope of an incremental re-verification.
///
/// All net collections are sorted by name, so the plan is deterministic
/// and directly serializable.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoPlan {
    /// Element-level edit count of the delta ([`EcoDelta::num_edits`]).
    pub edits: usize,
    /// Nets the delta touches directly.
    pub touched: Vec<String>,
    /// Victims of the new chip inside the coupling-aware blast radius —
    /// the candidate dirty clusters.
    pub candidates: Vec<String>,
    /// Candidates whose canonical fingerprint actually changed (or that
    /// have no old counterpart): the minimal set to re-analyze.
    pub dirty: Vec<String>,
    /// Victims of the new chip whose verdicts splice from the prior run.
    pub clean: usize,
    /// Victims of the old chip that no longer exist (their verdicts are
    /// dropped, not spliced).
    pub retired: Vec<String>,
}

impl EcoPlan {
    /// Fraction of the new chip's victims served by splicing, in
    /// `[0, 1]`. `1.0` for a no-op delta on a non-empty chip.
    pub fn splice_fraction(&self) -> f64 {
        let total = self.clean + self.dirty.len();
        if total == 0 {
            1.0
        } else {
            self.clean as f64 / total as f64
        }
    }

    /// Whether the delta dirties nothing (pure splice).
    pub fn is_noop(&self) -> bool {
        self.dirty.is_empty() && self.retired.is_empty()
    }

    /// The plan as one JSON object — the shape `pcv-serve` returns from
    /// `POST /sessions/{id}/eco` and records in the run ledger.
    pub fn to_json(&self) -> String {
        use pcv_trace::json::{f64_lit, str_lit};
        let names = |list: &[String]| {
            let mut out = String::from("[");
            for (i, n) in list.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&str_lit(n));
            }
            out.push(']');
            out
        };
        format!(
            "{{\"edits\":{},\"touched\":{},\"candidates\":{},\"dirty\":{},\"clean\":{},\
             \"retired\":{},\"splice_fraction\":{}}}",
            self.edits,
            names(&self.touched),
            names(&self.candidates),
            names(&self.dirty),
            self.clean,
            names(&self.retired),
            f64_lit(self.splice_fraction()),
        )
    }
}

/// Canonical fingerprints of every victim of a chip under one engine
/// configuration, keyed by net name.
fn victim_fingerprints(
    cfg: &EngineConfig,
    ctx: &AnalysisContext<'_>,
    chip: &ResidentChip,
    only: Option<&BTreeSet<String>>,
) -> BTreeMap<String, u64> {
    let chash = config_hash(
        ctx,
        &cfg.prune,
        &cfg.analysis,
        cfg.warn_frac,
        cfg.fail_frac,
        cfg.check_receivers,
    );
    let mut out = BTreeMap::new();
    for &vic in chip.victims() {
        let name = ctx.db.net(vic).name();
        if only.is_some_and(|set| !set.contains(name)) {
            continue;
        }
        let cluster = prune_victim_with_components(ctx.db, vic, &cfg.prune, chip.component_sizes());
        out.insert(name.to_owned(), cluster_fingerprint(ctx, &cluster, chash));
    }
    out
}

impl EcoPlan {
    /// Plan the incremental run for `delta` between two elaborated chips.
    ///
    /// Only candidate victims (those inside the blast radius) are
    /// fingerprinted — for a small edit on a large chip the plan costs a
    /// handful of prunes, not a chip sweep. Victims outside the radius
    /// cannot change fingerprint (the two-hop soundness argument in
    /// [`pcv_xtalk::dirty`]), and the engine's fingerprint-guarded cache
    /// re-checks every cluster during the run anyway, so a plan can never
    /// cause a stale verdict even if its assumptions were violated.
    pub fn compute(
        cfg: &EngineConfig,
        old: &ResidentChip,
        new: &ResidentChip,
        delta: &EcoDelta,
    ) -> EcoPlan {
        let touched = delta.touched_nets();
        let radius = blast_radius(old.db(), new.db(), &touched);

        let new_ctx = new.ctx();
        let old_ctx = old.ctx();
        let old_victims: BTreeSet<&str> =
            old.victims().iter().map(|&v| old.db().net(v).name()).collect();
        let new_victims: BTreeSet<&str> =
            new.victims().iter().map(|&v| new.db().net(v).name()).collect();

        // Victims that are new to the audit are dirty regardless of the
        // radius (there is nothing to splice for them); retired victims
        // just drop out of the report.
        let retired: Vec<String> = old_victims
            .iter()
            .filter(|v| !new_victims.contains(*v))
            .map(|v| (*v).to_owned())
            .collect();
        let fresh: BTreeSet<String> = new_victims
            .iter()
            .filter(|v| !old_victims.contains(*v))
            .map(|v| (*v).to_owned())
            .collect();

        let candidates: Vec<String> = new_victims
            .iter()
            .filter(|v| radius.contains(**v) || fresh.contains(**v))
            .map(|v| (*v).to_owned())
            .collect();
        let candidate_set: BTreeSet<String> = candidates.iter().cloned().collect();

        let new_fps = victim_fingerprints(cfg, &new_ctx, new, Some(&candidate_set));
        let old_fps = victim_fingerprints(cfg, &old_ctx, old, Some(&candidate_set));

        let dirty: Vec<String> = candidates
            .iter()
            .filter(|name| old_fps.get(*name) != new_fps.get(*name))
            .cloned()
            .collect();

        EcoPlan {
            edits: delta.num_edits(),
            touched: touched.into_iter().collect(),
            candidates,
            clean: new_victims.len() - dirty.len(),
            dirty,
            retired,
        }
    }
}

/// An incremental run's outcome: the plan plus the (spliced) report.
#[derive(Debug)]
pub struct EcoOutcome {
    /// What the delta dirtied.
    pub plan: EcoPlan,
    /// The full-chip report over the edited netlist — byte-identical (via
    /// [`EngineReport::signoff_json`]) to a from-scratch run.
    pub report: EngineReport,
}

impl Engine {
    /// Incrementally re-verify `new` against the prior state `old`.
    ///
    /// Requires the engine's `cache_path` to point at the cache the prior
    /// run over `old` populated; clean clusters splice from it without
    /// re-analysis (their fingerprints are unchanged, so the cached bits
    /// are exactly what a fresh analysis would produce). With a cold or
    /// missing cache the result is still correct — everything simply
    /// re-analyzes.
    ///
    /// With `resume`, a checkpoint journal left by an interrupted ECO run
    /// over `new` is replayed first, exactly like
    /// [`Engine::resume_resident`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::verify`].
    pub fn eco_verify_resident(
        &self,
        old: &ResidentChip,
        new: &ResidentChip,
        resume: bool,
        snapshot: Option<&VerdictSnapshot>,
    ) -> Result<EcoOutcome, XtalkError> {
        let delta = EcoDelta::diff(old.db(), new.db());
        let plan = EcoPlan::compute(&self.config, old, new, &delta);
        let report = if resume {
            self.resume_resident(new, snapshot)?
        } else {
            self.verify_resident(new, snapshot)?
        };
        Ok(EcoOutcome { plan, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::{NetNodeRef, NetParasitics, PNetId, ParasiticDb};

    /// A 6-net chain with nearest-neighbor coupling; every net a victim.
    fn chain_db(perturb: Option<(usize, f64)>) -> ParasiticDb {
        let mut db = ParasiticDb::new();
        for i in 0..6 {
            let mut n = NetParasitics::new(format!("n{i}"));
            let n1 = n.add_node();
            n.add_resistor(0, n1, 150.0 + i as f64);
            let cg = match perturb {
                Some((at, scale)) if at == i => 8e-15 * scale,
                _ => 8e-15,
            };
            n.add_ground_cap(n1, cg);
            n.mark_load(n1);
            db.add_net(n);
        }
        for i in 1..6 {
            db.add_coupling(
                NetNodeRef { net: PNetId(i - 1), node: 1 },
                NetNodeRef { net: PNetId(i), node: 1 },
                (10 + i) as f64 * 1e-15,
            );
        }
        db
    }

    fn chip(db: ParasiticDb) -> ResidentChip {
        let victims: Vec<PNetId> = (0..db.num_nets()).map(PNetId).collect();
        ResidentChip::fixed_resistance(db, 1000.0, victims)
    }

    #[test]
    fn noop_delta_plans_a_pure_splice() {
        let cfg = EngineConfig::default();
        let old = chip(chain_db(None));
        let new = chip(chain_db(None));
        let delta = EcoDelta::diff(old.db(), new.db());
        assert!(delta.is_empty());
        let plan = EcoPlan::compute(&cfg, &old, &new, &delta);
        assert!(plan.is_noop(), "{plan:?}");
        assert!(plan.dirty.is_empty());
        assert_eq!(plan.clean, 6);
        assert_eq!(plan.splice_fraction(), 1.0);
    }

    #[test]
    fn ground_cap_edit_dirties_exactly_the_radius_confirmed_clusters() {
        let cfg = EngineConfig::default();
        let old = chip(chain_db(None));
        let new = chip(chain_db(Some((0, 1.01))));
        let delta = EcoDelta::diff(old.db(), new.db());
        assert_eq!(delta.reparasitized.len(), 1);
        let plan = EcoPlan::compute(&cfg, &old, &new, &delta);
        // n0's own cap changed: n0 dirty; n1's cluster contains n0; n2's
        // cluster contains n1 whose coupling list is unchanged — but n0's
        // gcap is hashed only through clusters n0 and n1. n2 is a radius
        // candidate whose fingerprint check must clear it.
        assert_eq!(plan.candidates, vec!["n0", "n1", "n2"]);
        assert_eq!(plan.dirty, vec!["n0", "n1"]);
        assert_eq!(plan.clean, 4);
        assert!(!plan.is_noop());
        assert!((plan.splice_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn eco_run_splices_byte_identically_with_a_warm_cache() {
        let dir = std::env::temp_dir().join("pcv-eco-engine-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("chip.cache");

        let old = chip(chain_db(None));
        let new = chip(chain_db(Some((5, 1.02))));
        let mk = || {
            Engine::new(EngineConfig {
                workers: 2,
                cache_path: Some(cache.clone()),
                ..Default::default()
            })
        };
        // Prior run populates the cache.
        let prior = mk().verify_resident(&old, None).unwrap();
        assert_eq!(prior.stats.cache_misses, 6);

        let outcome = mk().eco_verify_resident(&old, &new, false, None).unwrap();
        assert_eq!(outcome.plan.dirty, vec!["n4", "n5"]);
        // Only the dirty clusters re-analyzed.
        assert_eq!(outcome.report.stats.cache_misses, outcome.plan.dirty.len());
        assert_eq!(outcome.report.stats.cache_hits, outcome.plan.clean);

        // Byte-identity against a from-scratch run on the edited chip.
        let scratch = Engine::new(EngineConfig { workers: 2, ..Default::default() })
            .verify_resident(&new, None)
            .unwrap();
        assert_eq!(outcome.report.signoff_json(), scratch.signoff_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn added_and_retired_victims_are_planned() {
        let cfg = EngineConfig::default();
        let old = chip(chain_db(None));
        let mut db = chain_db(None);
        let mut extra = NetParasitics::new("spare");
        let s1 = extra.add_node();
        extra.add_resistor(0, s1, 90.0);
        extra.add_ground_cap(s1, 4e-15);
        extra.mark_load(s1);
        db.add_net(extra);
        let new = chip(db);
        let delta = EcoDelta::diff(old.db(), new.db());
        assert_eq!(delta.added, vec!["spare"]);
        let plan = EcoPlan::compute(&cfg, &old, &new, &delta);
        assert!(plan.dirty.contains(&"spare".to_owned()), "{plan:?}");
        // The spare net couples to nothing: every existing cluster stays
        // clean.
        assert_eq!(plan.dirty, vec!["spare"]);
        assert_eq!(plan.clean, 6);
        // Reverse: dropping the net retires its verdict.
        let rplan = EcoPlan::compute(&cfg, &new, &old, &EcoDelta::diff(new.db(), old.db()));
        assert_eq!(rplan.retired, vec!["spare"]);
        assert!(rplan.dirty.is_empty());
    }
}
