//! Cluster fingerprints for the incremental result cache.
//!
//! A fingerprint is an FNV-1a hash over everything that can change a
//! cluster's verdict: the cluster's own RC topology, every coupling
//! capacitor incident to a member (member-to-member couplings enter the
//! analyzed network; member-to-outside couplings are grounded onto the
//! member by conservative decoupling, so they matter too), the design
//! annotations the analysis consults (receiver loads, switching windows,
//! complement pairs, driver cells), and the global analysis configuration.
//!
//! Two runs that produce the same fingerprint for a victim are guaranteed
//! to run the exact same floating-point analysis, so the cached verdict is
//! bit-identical to a recomputed one.
//!
//! Element lists are *canonicalized* (sorted) before hashing, so the
//! fingerprint depends only on the electrical content of a cluster, not on
//! the order a parasitic extractor happened to emit resistors, capacitors,
//! or couplings. Re-extracting an unchanged layout therefore keeps the
//! cache warm even when the netlist file shuffles.

use pcv_xtalk::prune::Cluster;
use pcv_xtalk::AnalysisContext;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absorb a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `usize`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` bit-exactly.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string (length-prefixed so concatenations cannot collide).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash the run-global configuration: everything that applies to every
/// cluster alike. Mixed into each cluster fingerprint so caches written
/// under different options never collide.
pub fn config_hash(
    ctx: &AnalysisContext<'_>,
    prune: &pcv_xtalk::PruneConfig,
    opts: &pcv_xtalk::AnalysisOptions,
    warn_frac: f64,
    fail_frac: f64,
    check_receivers: bool,
) -> u64 {
    use pcv_xtalk::drivers::DriverModelKind;
    use pcv_xtalk::EngineKind;
    let mut h = Fnv1a::new();
    // v3: gmin scaling and the MOR solver knobs entered the options and
    // can change a verdict bit-for-bit, so they enter the hash. Bumping
    // the tag invalidates caches written by earlier layouts.
    h.write_str("pcv-engine config v3");
    h.write_f64(prune.cap_ratio);
    h.write_usize(prune.max_aggressors);
    match opts.engine {
        EngineKind::Mor { block_iters } => {
            h.write_u64(1);
            h.write_usize(block_iters);
        }
        EngineKind::Spice => h.write_u64(2),
    }
    h.write_f64(opts.tstop);
    h.write_f64(opts.switch_time);
    h.write_f64(opts.input_slew);
    h.write_f64(opts.vdd);
    h.write_f64(opts.gmin_scale);
    h.write_f64(opts.mor.max_step_fraction);
    h.write_f64(opts.mor.vtol);
    h.write_f64(opts.mor.damping);
    h.write_usize(opts.mor.max_newton);
    h.write_f64(opts.mor.min_step);
    h.write_usize(opts.mor.newton_budget);
    h.write_usize(opts.mor.max_tran_steps);
    h.write_f64(warn_frac);
    h.write_f64(fail_frac);
    h.write_u64(check_receivers as u64);
    match ctx.driver_model {
        DriverModelKind::FixedResistance(ohms) => {
            h.write_u64(10);
            h.write_f64(ohms);
        }
        DriverModelKind::TimingLibrary => h.write_u64(11),
        DriverModelKind::Nonlinear => h.write_u64(12),
        DriverModelKind::TransistorLevel => h.write_u64(13),
    }
    h.finish()
}

/// Fingerprint of the audited chip slice: the victim list (names, in
/// input order). Stamped into run-ledger records so cross-run
/// trajectories of different audits on the same cache never mix.
pub fn chip_slice_fingerprint(ctx: &AnalysisContext<'_>, victims: &[pcv_netlist::PNetId]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("pcv-engine chip slice v1");
    h.write_usize(victims.len());
    for &v in victims {
        h.write_str(ctx.db.net(v).name());
    }
    h.finish()
}

/// Fingerprint one pruned cluster under a given configuration hash.
pub fn cluster_fingerprint(ctx: &AnalysisContext<'_>, cluster: &Cluster, config: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(config);

    // Pruning outcome beyond membership: what was grounded away changes
    // the victim's loading.
    h.write_f64(cluster.decoupled_cap);
    h.write_usize(cluster.aggressors.len());
    for &(_, cc) in &cluster.aggressors {
        h.write_f64(cc);
    }

    for m in cluster.members() {
        let net = ctx.db.net(m);
        h.write_str(net.name());
        h.write_usize(net.num_nodes());
        // Canonical order for every element list: the fingerprint must not
        // depend on the order an extractor emitted the netlist.
        let mut loads: Vec<usize> = net.load_nodes().to_vec();
        loads.sort_unstable();
        for n in loads {
            h.write_usize(n);
        }
        let mut resistors: Vec<(usize, usize, u64)> =
            net.resistors().iter().map(|&(a, b, ohms)| (a, b, ohms.to_bits())).collect();
        resistors.sort_unstable();
        for (a, b, bits) in resistors {
            h.write_usize(a);
            h.write_usize(b);
            h.write_u64(bits);
        }
        let mut gcaps: Vec<(usize, u64)> =
            net.ground_caps().iter().map(|&(n, c)| (n, c.to_bits())).collect();
        gcaps.sort_unstable();
        for (n, bits) in gcaps {
            h.write_usize(n);
            h.write_u64(bits);
        }
        // Every coupling incident to a member shapes the analyzed network:
        // member-to-member caps directly, member-to-outside caps through
        // conservative decoupling (grounded at the member node).
        let mut couplings: Vec<(usize, &str, usize, u64)> = ctx
            .db
            .couplings_of(m)
            .map(|c| {
                let (own, other) = if c.a.net == m { (c.a, c.b) } else { (c.b, c.a) };
                (own.node, ctx.db.net(other.net).name(), other.node, c.farads.to_bits())
            })
            .collect();
        couplings.sort_unstable();
        for (own_node, other_name, other_node, bits) in couplings {
            h.write_usize(own_node);
            h.write_str(other_name);
            h.write_usize(other_node);
            h.write_u64(bits);
        }
        // Design-side inputs: receiver loading, switching window, driver
        // cell, complement partner.
        h.write_f64(ctx.load_cap(m));
        if let Some(design) = ctx.design {
            match design.find_net(net.name()) {
                Some(dnet) => {
                    match design.window(dnet) {
                        Some((a, b)) => {
                            h.write_u64(1);
                            h.write_f64(a);
                            h.write_f64(b);
                        }
                        None => h.write_u64(0),
                    }
                    match design.complement_of(dnet) {
                        Some(other) => h.write_str(design.net_name(other)),
                        None => h.write_u64(0),
                    }
                }
                None => h.write_u64(2),
            }
        }
        match ctx.driver_cell(m) {
            Ok(cell) => h.write_str(&cell.name),
            Err(_) => h.write_u64(3),
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
