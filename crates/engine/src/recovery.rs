//! The per-cluster recovery ladder: escalation policy, deterministic fault
//! injection, and degradation records.
//!
//! The paper's deliverable is chip-level *signoff*: every victim net must
//! end with a verdict. A cluster whose reduction or transient fails must
//! therefore not vanish from the report — it has to be retried with a more
//! robust (if slower or more conservative) strategy, and if everything
//! fails, conservatively flagged. This module defines the ladder the engine
//! walks:
//!
//! 1. [`RecoveryRung::Baseline`] — the configured analysis, unchanged.
//! 2. [`RecoveryRung::GminBoost`] — boost the `gmin` regularization; the
//!    cure for a conductance matrix that Cholesky rejects as not positive
//!    definite (rounding on near-floating nodes).
//! 3. [`RecoveryRung::ReducedOrder`] — halve the block-Lanczos iteration
//!    count; a smaller Krylov space sidesteps breakdown and non-finite
//!    projections at some accuracy cost.
//! 4. [`RecoveryRung::SofterNewton`] — shrink the maximum timestep and swap
//!    nonlinear driver surfaces for the Thevenin (timing-library) model,
//!    whose smooth I–V curve cannot trap Newton in a kink limit cycle.
//! 5. [`RecoveryRung::SpiceFallback`] — bypass MOR entirely and run the
//!    unreduced cluster through the `pcv-spice` MNA engine.
//! 6. [`RecoveryRung::WorstCase`] — give up analyzing and emit a
//!    conservative rail-to-rail verdict (`worst_frac = 1.0`, violation).
//!
//! Escalation is *typed*: each failure class routes to the rung that
//! addresses it (see [`route`]), never below the next rung up, so the walk
//! is strictly monotone and terminates. Everything here is a pure function
//! of the victim and the configuration — no wall-clock, no randomness — so
//! a recovered report is byte-identical across worker counts.

use crate::fingerprint::Fnv1a;
use pcv_mor::MorError;
use pcv_netlist::PNetId;
use pcv_xtalk::XtalkError;
use std::collections::BTreeMap;
use std::time::Duration;

/// One rung of the recovery ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryRung {
    /// The configured analysis, unchanged.
    Baseline,
    /// Re-reduce with boosted `gmin` regularization.
    GminBoost,
    /// Retry with half the block-Lanczos iterations (smaller ROM).
    ReducedOrder,
    /// Shrink the max timestep and swap nonlinear drivers for Thevenin.
    SofterNewton,
    /// Bypass MOR: full MNA transient through `pcv-spice`.
    SpiceFallback,
    /// Conservative rail-to-rail verdict; the cluster counts as degraded
    /// but never silently missing.
    WorstCase,
}

impl RecoveryRung {
    /// All rungs, in escalation order.
    pub const ALL: [RecoveryRung; 6] = [
        RecoveryRung::Baseline,
        RecoveryRung::GminBoost,
        RecoveryRung::ReducedOrder,
        RecoveryRung::SofterNewton,
        RecoveryRung::SpiceFallback,
        RecoveryRung::WorstCase,
    ];

    /// Stable lower-case name used in reports, traces and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryRung::Baseline => "baseline",
            RecoveryRung::GminBoost => "gmin_boost",
            RecoveryRung::ReducedOrder => "reduced_order",
            RecoveryRung::SofterNewton => "softer_newton",
            RecoveryRung::SpiceFallback => "spice_fallback",
            RecoveryRung::WorstCase => "worst_case",
        }
    }

    /// The next rung up, or `None` from [`RecoveryRung::WorstCase`].
    pub fn next(self) -> Option<RecoveryRung> {
        let i = RecoveryRung::ALL.iter().position(|&r| r == self).expect("rung in ALL");
        RecoveryRung::ALL.get(i + 1).copied()
    }
}

/// Route a typed failure to the cheapest rung that addresses it. The
/// caller escalates to `max(route(err), current.next())` so the walk never
/// revisits a rung.
pub fn route(err: &XtalkError) -> RecoveryRung {
    match err {
        XtalkError::Mor(MorError::Numeric(pcv_sparse::Error::NotPositiveDefinite { .. })) => {
            RecoveryRung::GminBoost
        }
        XtalkError::Mor(MorError::NoConvergence { .. }) => RecoveryRung::SofterNewton,
        XtalkError::Mor(MorError::BudgetExhausted { .. } | MorError::Cancelled { .. }) => {
            RecoveryRung::SpiceFallback
        }
        // Reduction breakdowns, non-finite projections/waveforms and other
        // numeric failures: a smaller Krylov space is the cheapest retry.
        XtalkError::Mor(_) => RecoveryRung::ReducedOrder,
        // The SPICE reference already is the last analysis rung; anything
        // else (missing drivers, config inconsistencies, unmeasurable
        // waveforms) cannot be cured by retrying the same analysis.
        _ => RecoveryRung::WorstCase,
    }
}

/// Knobs for the recovery ladder.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Walk the ladder on failure. When `false`, a failed job becomes an
    /// [`EngineError`](crate::EngineError) record with no verdict — the
    /// pre-ladder fail-open behavior.
    pub enabled: bool,
    /// Multiplier applied to `gmin` at [`RecoveryRung::GminBoost`] and up.
    pub gmin_boost: f64,
    /// Multiplier applied to the MOR `max_step_fraction` at
    /// [`RecoveryRung::SofterNewton`].
    pub step_shrink: f64,
    /// Per-attempt Newton-iteration budget (deterministic stall
    /// protection); `usize::MAX` disables.
    pub newton_budget: usize,
    /// Per-attempt accepted-step budget; `usize::MAX` disables.
    pub max_tran_steps: usize,
    /// Optional per-attempt wall-clock soft deadline. **Non-deterministic**:
    /// whether a cluster degrades then depends on machine speed, so leave
    /// `None` (the default) whenever byte-identical reports matter. The
    /// iteration budgets above are the deterministic alternative.
    pub deadline: Option<Duration>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: true,
            gmin_boost: 1e3,
            step_shrink: 0.25,
            newton_budget: 2_000_000,
            max_tran_steps: 200_000,
            deadline: None,
        }
    }
}

/// The failure class a [`FaultPlan`] injects into a cluster job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Synthesize a `NotPositiveDefinite` Cholesky breakdown (routes to
    /// [`RecoveryRung::GminBoost`]).
    NonSpd,
    /// Panic inside the job (exercises per-attempt unwind isolation).
    Panic,
    /// Synthesize a non-finite-value error (routes to
    /// [`RecoveryRung::ReducedOrder`]).
    NaN,
    /// Collapse the Newton budget to 1 so the *real* budget mechanism
    /// trips (routes to [`RecoveryRung::SpiceFallback`]).
    Slow,
}

impl FaultKind {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::NonSpd => "non_spd",
            FaultKind::Panic => "panic",
            FaultKind::NaN => "nan",
            FaultKind::Slow => "slow",
        }
    }
}

/// One victim's injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: FaultKind,
    /// `true` → the fault fires at every rung (the cluster can only end
    /// worst-cased for [`FaultKind::Panic`]); `false` → baseline only, so
    /// the first retry rung sees a healthy cluster.
    pub persistent: bool,
}

/// A deterministic fault-injection plan: which victims fail, how, and at
/// which rungs. Faults are keyed by victim *name* (scheduling- and
/// worker-count-independent), either explicitly or through a seeded
/// per-name probability, so the same plan produces the same faults on
/// every run and machine.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    by_name: BTreeMap<String, FaultSpec>,
    seeded: Option<SeededFaults>,
}

/// Probabilistic portion of a [`FaultPlan`].
#[derive(Debug, Clone, Copy)]
struct SeededFaults {
    seed: u64,
    probability: f64,
    kind: FaultKind,
    persistent: bool,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty() && self.seeded.is_none()
    }

    /// Inject a fault into the named victim's job.
    pub fn inject(&mut self, name: impl Into<String>, spec: FaultSpec) -> &mut Self {
        self.by_name.insert(name.into(), spec);
        self
    }

    /// Inject a baseline-only (transient) fault into the named victim.
    pub fn inject_named(&mut self, name: impl Into<String>, kind: FaultKind) -> &mut Self {
        self.inject(name, FaultSpec { kind, persistent: false })
    }

    /// Additionally fault every victim whose name hashes (under `seed`)
    /// below `probability`. The decision is a pure function of
    /// `(seed, name)` — FNV-1a, no RNG state — so it is identical across
    /// worker counts, runs and machines.
    pub fn seed_probability(
        &mut self,
        seed: u64,
        probability: f64,
        kind: FaultKind,
        persistent: bool,
    ) -> &mut Self {
        self.seeded = Some(SeededFaults { seed, probability, kind, persistent });
        self
    }

    /// The fault (if any) planned for a victim. Explicit by-name entries
    /// shadow the seeded probability.
    pub fn fault_for(&self, name: &str) -> Option<FaultSpec> {
        if let Some(spec) = self.by_name.get(name) {
            return Some(*spec);
        }
        let s = self.seeded?;
        let mut h = Fnv1a::new();
        h.write_u64(s.seed);
        h.write_str(name);
        // FNV avalanches weakly over a trailing digit ("w3" vs "w4"), so
        // finish with a splitmix64 mix before mapping the top 53 bits to
        // a uniform [0, 1) draw.
        let mut x = h.finish();
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let draw = (x >> 11) as f64 / (1u64 << 53) as f64;
        (draw < s.probability).then_some(FaultSpec { kind: s.kind, persistent: s.persistent })
    }
}

/// One failed ladder attempt: which rung, why it failed, and how long the
/// failing analysis ran before giving up.
///
/// `elapsed` is wall-clock and therefore **never** enters the
/// deterministic signoff document (which must be byte-identical across
/// worker counts and machines) — it exists so the run ledger and operator
/// stats can attribute the *cost* of recovery, not just its path.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// The rung the attempt ran at.
    pub rung: RecoveryRung,
    /// Why it failed (error or panic message).
    pub reason: String,
    /// Wall-clock time the failing attempt consumed.
    pub elapsed: Duration,
}

/// How one cluster was degraded: every failed attempt (rung + reason) and
/// the rung whose result finally stood. Joinable with
/// [`EngineError`](crate::EngineError) records through `net`/`name`.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// The victim that needed recovery.
    pub net: PNetId,
    /// Victim net name.
    pub name: String,
    /// Every attempt that failed, in ladder order.
    pub attempts: Vec<Attempt>,
    /// The rung that produced the standing verdict
    /// ([`RecoveryRung::WorstCase`] when every analysis failed).
    pub recovered: RecoveryRung,
}

impl Degradation {
    /// Total wall-clock time spent inside this cluster's failed attempts —
    /// the price the recovery ladder paid before a verdict stood.
    pub fn recovery_time(&self) -> Duration {
        self.attempts.iter().map(|a| a.elapsed).sum()
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: recovered at {} after", self.name, self.recovered.name())?;
        for a in &self.attempts {
            write!(f, " [{}: {}]", a.rung.name(), a.reason)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rungs_escalate_in_order_and_terminate() {
        let mut rung = RecoveryRung::Baseline;
        let mut seen = vec![rung];
        while let Some(next) = rung.next() {
            assert!(next > rung, "{next:?} must escalate past {rung:?}");
            seen.push(next);
            rung = next;
        }
        assert_eq!(seen, RecoveryRung::ALL);
        assert_eq!(rung, RecoveryRung::WorstCase);
        assert!(rung.next().is_none());
    }

    #[test]
    fn routing_matches_failure_classes() {
        let non_spd = XtalkError::Mor(MorError::Numeric(pcv_sparse::Error::NotPositiveDefinite {
            col: 0,
            pivot: -1.0,
        }));
        assert_eq!(route(&non_spd), RecoveryRung::GminBoost);
        let no_conv = XtalkError::Mor(MorError::NoConvergence { t: 1e-9 });
        assert_eq!(route(&no_conv), RecoveryRung::SofterNewton);
        let budget = XtalkError::Mor(MorError::BudgetExhausted { t: 1e-9 });
        assert_eq!(route(&budget), RecoveryRung::SpiceFallback);
        let cancel = XtalkError::Mor(MorError::Cancelled { stage: "block lanczos" });
        assert_eq!(route(&cancel), RecoveryRung::SpiceFallback);
        let nonfinite = XtalkError::Mor(MorError::NonFinite { what: "x" });
        assert_eq!(route(&nonfinite), RecoveryRung::ReducedOrder);
        let config = XtalkError::InvalidConfig { what: "x" };
        assert_eq!(route(&config), RecoveryRung::WorstCase);
    }

    #[test]
    fn by_name_faults_shadow_seeded_ones() {
        let mut plan = FaultPlan::new();
        plan.inject("hot", FaultSpec { kind: FaultKind::Panic, persistent: true });
        plan.seed_probability(42, 1.0, FaultKind::NaN, false);
        let hot = plan.fault_for("hot").unwrap();
        assert_eq!(hot.kind, FaultKind::Panic);
        assert!(hot.persistent);
        let other = plan.fault_for("anything").unwrap();
        assert_eq!(other.kind, FaultKind::NaN);
        assert!(!other.persistent);
    }

    #[test]
    fn seeded_faults_are_deterministic_and_seed_sensitive() {
        let mut a = FaultPlan::new();
        a.seed_probability(7, 0.5, FaultKind::Slow, false);
        let mut b = FaultPlan::new();
        b.seed_probability(7, 0.5, FaultKind::Slow, false);
        let mut c = FaultPlan::new();
        c.seed_probability(8, 0.5, FaultKind::Slow, false);
        let names: Vec<String> = (0..64).map(|i| format!("net_{i}")).collect();
        let pick = |p: &FaultPlan| -> Vec<bool> {
            names.iter().map(|n| p.fault_for(n).is_some()).collect()
        };
        assert_eq!(pick(&a), pick(&b), "same seed, same faults");
        assert_ne!(pick(&a), pick(&c), "different seed, different faults");
        let hits = pick(&a).iter().filter(|&&x| x).count();
        assert!(hits > 8 && hits < 56, "p=0.5 should fault roughly half, got {hits}/64");
    }

    #[test]
    fn probability_extremes() {
        let mut none = FaultPlan::new();
        none.seed_probability(1, 0.0, FaultKind::NaN, false);
        let mut all = FaultPlan::new();
        all.seed_probability(1, 1.0, FaultKind::NaN, false);
        for name in ["a", "b", "c", "longer_net_name_7"] {
            assert!(none.fault_for(name).is_none());
            assert!(all.fault_for(name).is_some());
        }
        assert!(FaultPlan::new().is_empty());
        assert!(!all.is_empty());
    }

    #[test]
    fn degradation_displays_path() {
        let d = Degradation {
            net: PNetId(0),
            name: "bus0_2".into(),
            attempts: vec![Attempt {
                rung: RecoveryRung::Baseline,
                reason: "matrix is not positive definite".into(),
                elapsed: Duration::from_millis(3),
            }],
            recovered: RecoveryRung::GminBoost,
        };
        let s = d.to_string();
        assert!(s.contains("bus0_2"));
        assert!(s.contains("gmin_boost"));
        assert!(s.contains("positive definite"));
        assert_eq!(d.recovery_time(), Duration::from_millis(3));
    }
}
