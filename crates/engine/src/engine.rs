//! The engine proper: shard victims into cluster jobs, run them on the
//! work-stealing scheduler, and merge a deterministic report.

use crate::cache::{CacheEntry, CachedReceiver, ResultCache};
use crate::durable::{
    DurableConfig, Journal, JournalEntry, LockError, ReplayAttempt, ReplayDegradation, RunLock,
};
use crate::fingerprint::{chip_slice_fingerprint, cluster_fingerprint, config_hash};
use crate::recovery::{
    route, Attempt, Degradation, FaultKind, FaultPlan, FaultSpec, RecoveryConfig, RecoveryRung,
};
use crate::report::{ClusterCost, EngineError, EngineReport, EngineStats};
use crate::resident::{ResidentChip, VerdictSnapshot};
use crate::scheduler;
use pcv_cells::library::CellKind;
use pcv_mor::{CancelToken, MorError};
use pcv_netlist::PNetId;
use pcv_obs::{EngineEvent, EventSink, RunRecord};
use pcv_xtalk::drivers::DriverModelKind;
use pcv_xtalk::prune::{
    coupling_component_sizes, prune_victim_with_components, Cluster, PruneConfig, PruningStats,
};
use pcv_xtalk::{
    analyze_glitch, check_receiver_propagation, AnalysisContext, AnalysisOptions, ChipReport,
    EngineKind, GlitchResult, NetVerdict, ReceiverVerdict, Severity, XtalkError,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Pruning parameters (same meaning as the serial flow).
    pub prune: PruneConfig,
    /// Analysis knobs (same meaning as the serial flow).
    pub analysis: AnalysisOptions,
    /// Warning threshold as a fraction of Vdd.
    pub warn_frac: f64,
    /// Violation threshold as a fraction of Vdd.
    pub fail_frac: f64,
    /// Run receiver-propagation checks on flagged victims (the serial
    /// [`pcv_xtalk::audit_receivers`] pass), in-job.
    pub check_receivers: bool,
    /// Incremental result store; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Collect a structured trace of the run ([`pcv_trace`]): spans for
    /// every pipeline stage, solver counters, queue-depth histograms. The
    /// merged trace lands in [`EngineReport::trace`]; with `cache_path`
    /// set, Chrome-trace and profile JSON files are also written next to
    /// the cache. Off by default — instrumentation then costs one relaxed
    /// atomic load per site.
    pub trace: bool,
    /// Recovery-ladder knobs ([`RecoveryConfig`]): how failed cluster jobs
    /// are retried and degraded instead of dropped.
    pub recovery: RecoveryConfig,
    /// Streaming lifecycle-event sink ([`pcv_obs::EventSink`]): run
    /// start/finish, cluster queue/start/finish, cache hits, retries,
    /// degradations, worker idling. Events fire from worker threads as
    /// they happen — they carry wall-clock data and exist strictly outside
    /// the deterministic report path. `None` (the default) costs nothing.
    pub sink: Option<Arc<dyn EventSink>>,
    /// Append one [`pcv_obs::RunRecord`] per run to the JSONL ledger next
    /// to the cache file (`<cache>.ledger.jsonl`). Only takes effect when
    /// `cache_path` is set; best-effort, observational only.
    pub ledger: bool,
    /// Durability knobs ([`DurableConfig`]): checkpoint journal, run lock,
    /// cooperative stop, and the (fault-injectable) filesystem handle all
    /// persisted artifacts go through.
    pub durable: DurableConfig,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("workers", &self.workers)
            .field("prune", &self.prune)
            .field("analysis", &self.analysis)
            .field("warn_frac", &self.warn_frac)
            .field("fail_frac", &self.fail_frac)
            .field("check_receivers", &self.check_receivers)
            .field("cache_path", &self.cache_path)
            .field("trace", &self.trace)
            .field("recovery", &self.recovery)
            .field("sink", &self.sink.as_ref().map(|_| "<EventSink>"))
            .field("ledger", &self.ledger)
            .field("durable", &self.durable)
            .finish()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            prune: PruneConfig::default(),
            analysis: AnalysisOptions::default(),
            warn_frac: 0.1,
            fail_frac: 0.2,
            check_receivers: false,
            cache_path: None,
            trace: false,
            recovery: RecoveryConfig::default(),
            sink: None,
            ledger: true,
            durable: DurableConfig::default(),
        }
    }
}

/// Parallel, fault-isolated, incremental chip-verification engine.
///
/// [`Engine::verify`] produces, when every job succeeds and the cache is
/// cold, the exact same [`ChipReport`] as the serial
/// [`pcv_xtalk::verify_chip`] (+ [`pcv_xtalk::audit_receivers`] when
/// `check_receivers` is set) — verdict for verdict, bit for bit —
/// regardless of worker count or scheduling order.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    /// Configuration used by [`Engine::verify`].
    pub config: EngineConfig,
    plan: FaultPlan,
}

/// Outcome of one successful cluster job.
struct JobOk {
    verdict: NetVerdict,
    cluster: Cluster,
    cached: bool,
    /// The verdict was adopted from the checkpoint journal (resume path).
    replayed: bool,
    entry: Option<CacheEntry>,
    degradation: Option<Degradation>,
    prune: Duration,
    analysis: Duration,
    receiver: Duration,
}

/// Outcome of one ladder attempt (a full analysis at one rung).
struct AttemptOk {
    rise: f64,
    fall: f64,
    receiver: Option<ReceiverVerdict>,
    analysis: Duration,
    receiver_time: Duration,
}

/// Classify peaks against the noise-margin thresholds (serial rule).
fn classify(rise: f64, fall: f64, vdd: f64, warn: f64, fail: f64) -> (f64, Severity) {
    let worst_frac = rise.abs().max(fall.abs()) / vdd;
    let severity = if worst_frac >= fail {
        Severity::Violation
    } else if worst_frac >= warn {
        Severity::Warning
    } else {
        Severity::Clean
    };
    (worst_frac, severity)
}

/// Analysis options for one ladder rung. Adjustments are *cumulative*: each
/// higher rung keeps every lower rung's mitigation, so the walk is a pure
/// function of the rung (not of the failure path that led there).
fn rung_options(cfg: &EngineConfig, rung: RecoveryRung) -> AnalysisOptions {
    let rec = &cfg.recovery;
    let mut opts = cfg.analysis.clone();
    // Stall protection applies at every rung, baseline included. The
    // budget checks are read-only until they trip, so they cannot perturb
    // a healthy run's numbers.
    opts.mor.newton_budget = opts.mor.newton_budget.min(rec.newton_budget);
    opts.mor.max_tran_steps = opts.mor.max_tran_steps.min(rec.max_tran_steps);
    if let Some(budget) = rec.deadline {
        opts.mor.cancel = Some(CancelToken::with_deadline(budget));
    }
    if rung >= RecoveryRung::GminBoost {
        opts.gmin_scale *= rec.gmin_boost;
    }
    if rung >= RecoveryRung::ReducedOrder {
        if let EngineKind::Mor { block_iters } = opts.engine {
            opts.engine = EngineKind::Mor { block_iters: (block_iters / 2).max(1) };
        }
    }
    if rung >= RecoveryRung::SofterNewton {
        opts.mor.max_step_fraction *= rec.step_shrink;
    }
    if rung >= RecoveryRung::SpiceFallback {
        opts.engine = EngineKind::Spice;
    }
    opts
}

/// Context for one ladder rung: from [`RecoveryRung::SofterNewton`] up,
/// nonlinear driver surfaces are swapped for the smooth Thevenin
/// (timing-library) model, which cannot trap Newton in a kink limit cycle.
fn rung_context<'a>(ctx: &AnalysisContext<'a>, rung: RecoveryRung) -> AnalysisContext<'a> {
    let mut adjusted = *ctx;
    if rung >= RecoveryRung::SofterNewton && adjusted.driver_model == DriverModelKind::Nonlinear {
        adjusted.driver_model = DriverModelKind::TimingLibrary;
    }
    adjusted
}

/// Realize one injected fault for one ladder attempt. `Panic` unwinds like
/// a real job bug; `NonSpd` and `NaN` return the exact typed errors the
/// numeric guards produce (so routing is exercised end-to-end without
/// machine-dependent arithmetic); `Slow` collapses the Newton budget so the
/// *real* budget mechanism trips.
fn inject(kind: FaultKind, name: &str, opts: &mut AnalysisOptions) -> Result<(), XtalkError> {
    match kind {
        FaultKind::Panic => panic!("injected fault in cluster job for {name}"),
        FaultKind::NonSpd => {
            Err(XtalkError::Mor(MorError::Numeric(pcv_sparse::Error::NotPositiveDefinite {
                col: 0,
                pivot: -1.0,
            })))
        }
        FaultKind::NaN => Err(XtalkError::Mor(MorError::NonFinite { what: "injected nan fault" })),
        FaultKind::Slow => {
            opts.mor.newton_budget = 1;
            Ok(())
        }
    }
}

impl Engine {
    /// Engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config, plan: FaultPlan::new() }
    }

    /// Chaos hook: make every ladder attempt for the named victim panic
    /// (a persistent [`FaultKind::Panic`]). The fault-isolation drill —
    /// used by tests and operators to confirm one bad cluster cannot take
    /// down a chip audit. Shorthand for [`Engine::set_fault_plan`].
    pub fn inject_fault(&mut self, net_name: impl Into<String>) {
        self.plan.inject(net_name, FaultSpec { kind: FaultKind::Panic, persistent: true });
    }

    /// Install a deterministic fault-injection plan (replacing any previous
    /// one). See [`FaultPlan`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Audit `victims`: prune, analyze and classify each one as a parallel
    /// cluster job, then merge a report identical to the serial flow.
    ///
    /// Jobs that return an error or panic become [`EngineError`] records;
    /// the remaining victims are still fully reported.
    ///
    /// # Errors
    ///
    /// [`XtalkError::InvalidConfig`] for inconsistent thresholds or
    /// receiver checks without design/library data. Per-victim analysis
    /// failures do **not** error — they land in
    /// [`EngineReport::errors`].
    pub fn verify(
        &self,
        ctx: &AnalysisContext<'_>,
        victims: &[PNetId],
    ) -> Result<EngineReport, XtalkError> {
        self.run(ctx, victims, false, None, None)
    }

    /// [`Engine::verify`] over a [`ResidentChip`]: the elaborate-once,
    /// run-many entry point. Reuses the chip's precomputed coupling
    /// component sizes instead of rebuilding the union-find, and — when
    /// `snapshot` is given — publishes every completed verdict into it as
    /// the run progresses, so concurrent readers can serve per-net partial
    /// results mid-run. The report is byte-identical to
    /// [`Engine::verify`] over `chip.ctx()` and `chip.victims()`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::verify`].
    pub fn verify_resident(
        &self,
        chip: &ResidentChip,
        snapshot: Option<&VerdictSnapshot>,
    ) -> Result<EngineReport, XtalkError> {
        self.run(&chip.ctx(), chip.victims(), false, Some(chip.component_sizes()), snapshot)
    }

    /// [`Engine::resume`] over a [`ResidentChip`]: replay the checkpoint
    /// journal, then finish the remaining clusters — the service-side path
    /// for completing a run a shutdown interrupted.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::verify`].
    pub fn resume_resident(
        &self,
        chip: &ResidentChip,
        snapshot: Option<&VerdictSnapshot>,
    ) -> Result<EngineReport, XtalkError> {
        self.run(&chip.ctx(), chip.victims(), true, Some(chip.component_sizes()), snapshot)
    }

    /// [`Engine::verify_resident`] restricted to an explicit victim slice
    /// — the shard-worker path, where each process audits only the
    /// victims its shard owns but elaborates the full chip so cluster
    /// fingerprints match the coordinator's.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::verify`].
    pub fn verify_slice(
        &self,
        chip: &ResidentChip,
        victims: &[PNetId],
        snapshot: Option<&VerdictSnapshot>,
    ) -> Result<EngineReport, XtalkError> {
        self.run(&chip.ctx(), victims, false, Some(chip.component_sizes()), snapshot)
    }

    /// [`Engine::resume_resident`] restricted to an explicit victim slice
    /// — a restarted shard worker replays its own journal and finishes
    /// only its slice's tail.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::verify`].
    pub fn resume_slice(
        &self,
        chip: &ResidentChip,
        victims: &[PNetId],
        snapshot: Option<&VerdictSnapshot>,
    ) -> Result<EngineReport, XtalkError> {
        self.run(&chip.ctx(), victims, true, Some(chip.component_sizes()), snapshot)
    }

    /// [`Engine::verify`], but first replay the checkpoint journal a
    /// previous (interrupted or killed) run left next to the cache:
    /// journaled verdicts whose cluster fingerprint still matches the
    /// current netlist + configuration are adopted bit for bit, and only
    /// the missing or stale clusters are recomputed. The merged report —
    /// and in particular [`EngineReport::signoff_json`] — is
    /// byte-identical to an uninterrupted [`Engine::verify`] run.
    ///
    /// With no journal on disk (or a journal from a different config,
    /// chip slice, or with journaling disabled), this is exactly
    /// [`Engine::verify`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::verify`]. Journal damage is never an
    /// error: corrupt or torn records are skipped and their clusters
    /// recomputed.
    pub fn resume(
        &self,
        ctx: &AnalysisContext<'_>,
        victims: &[PNetId],
    ) -> Result<EngineReport, XtalkError> {
        self.run(ctx, victims, true, None, None)
    }

    fn run(
        &self,
        ctx: &AnalysisContext<'_>,
        victims: &[PNetId],
        resume: bool,
        components: Option<&[usize]>,
        snapshot: Option<&VerdictSnapshot>,
    ) -> Result<EngineReport, XtalkError> {
        let cfg = &self.config;
        if cfg.warn_frac > cfg.fail_frac {
            return Err(XtalkError::InvalidConfig {
                what: "warning threshold must not exceed failure",
            });
        }
        if cfg.check_receivers && (ctx.design.is_none() || ctx.lib.is_none()) {
            return Err(XtalkError::InvalidConfig {
                what: "receiver checks need design and library data",
            });
        }
        // Bridge spans to the allocation counters when the instrumented
        // allocator is installed (idempotent no-op otherwise).
        pcv_obs::mem::install_trace_probe();
        let session = if cfg.trace { Some(pcv_trace::TraceSession::start()) } else { None };
        let start = Instant::now();
        let workers = match cfg.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        // Lifecycle events are strictly observational: they carry
        // wall-clock data and never feed back into the report, so the
        // emit sites below must stay out of anything deterministic.
        let sink = cfg.sink.as_deref();
        let emit = |ev: EngineEvent| {
            if let Some(s) = sink {
                s.event(&ev);
            }
        };
        emit(EngineEvent::RunStarted { victims: victims.len(), workers });

        let chash = config_hash(
            ctx,
            &cfg.prune,
            &cfg.analysis,
            cfg.warn_frac,
            cfg.fail_frac,
            cfg.check_receivers,
        );
        let chip_fp = chip_slice_fingerprint(ctx, victims);
        let fs = cfg.durable.fs.clone();

        // Advisory run lock: two concurrent runs over one cache directory
        // would interleave journal appends and race the cache replace.
        // Held (RAII) until this function returns.
        let _lock = match cfg.cache_path.as_deref() {
            Some(path) if cfg.durable.lock => {
                match RunLock::acquire(&RunLock::path_for(path), chash) {
                    Ok(lock) => Some(lock),
                    Err(LockError::Held { pid }) => {
                        return Err(XtalkError::Busy {
                            path: RunLock::path_for(path).display().to_string(),
                            pid,
                        });
                    }
                    // Advisory locking is best-effort: an unusable lock
                    // file must not block verification.
                    Err(LockError::Io(_)) => None,
                }
            }
            _ => None,
        };

        let cache = {
            let _span = pcv_trace::span("engine", "cache_load");
            match cfg.cache_path.as_deref() {
                Some(path) => ResultCache::load_with(&fs, path).0,
                None => ResultCache::new(),
            }
        };

        // Checkpoint journal: on resume, adopt whatever a previous run of
        // the same config + chip slice checkpointed; otherwise (or when
        // the header is stale) start fresh. All best-effort — a run whose
        // journal cannot be written is still correct, just not resumable.
        let mut replay: HashMap<String, JournalEntry> = HashMap::new();
        let journal_handle: Option<Journal> = match cfg.cache_path.as_deref() {
            Some(path) if cfg.durable.journal => {
                let jpath = Journal::path_for(path);
                let mut resumed = false;
                if resume {
                    let load = Journal::load(&fs, &jpath);
                    if load.header == Some((chash, chip_fp)) {
                        for e in load.entries {
                            replay.insert(e.name.clone(), e);
                        }
                        resumed = true;
                    }
                }
                if resumed {
                    emit(EngineEvent::RunResumed { replayable: replay.len() });
                    Some(Journal::append_to(&fs, &jpath))
                } else {
                    Journal::begin(&fs, &jpath, chash, chip_fp).ok()
                }
            }
            _ => None,
        };
        let journal = journal_handle.as_ref();
        // Serialize checkpoint appends across worker threads so records
        // can never interleave mid-line.
        let journal_mutex = std::sync::Mutex::new(());
        let checkpoint = |ok: &JobOk, fp: u64| {
            let Some(j) = journal else {
                return;
            };
            let entry = JournalEntry {
                name: ok.verdict.name.clone(),
                fingerprint: fp,
                rise_bits: ok.verdict.rise_peak.to_bits(),
                fall_bits: ok.verdict.fall_peak.to_bits(),
                receiver: ok.verdict.receiver.as_ref().map(|r| CachedReceiver {
                    cell: r.cell.clone(),
                    output_peak_bits: r.output_peak.to_bits(),
                    propagates: r.propagates,
                }),
                degraded: ok.degradation.as_ref().map(|d| ReplayDegradation {
                    recovered: d.recovered,
                    attempts: d
                        .attempts
                        .iter()
                        .map(|a| ReplayAttempt { rung: a.rung, reason: a.reason.clone() })
                        .collect(),
                }),
            };
            let _guard = journal_mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            // Best-effort: a failed append costs resume coverage for this
            // cluster, nothing else.
            let _ = j.record(&entry);
        };

        let stop = cfg.durable.stop.as_ref();

        // One union-find for the whole run instead of one per victim —
        // or zero, when a ResidentChip already paid for it at elaboration.
        let computed_components;
        let component_sizes: &[usize] = match components {
            Some(sizes) => sizes,
            None => {
                computed_components = coupling_component_sizes(ctx.db);
                &computed_components
            }
        };

        if sink.is_some() {
            for &vic in victims {
                emit(EngineEvent::ClusterQueued { name: ctx.db.net(vic).name().to_owned() });
            }
        }

        let job = |i: usize| -> Result<Option<JobOk>, XtalkError> {
            let vic = victims[i];
            // Graceful drain: once a stop is requested, queued clusters
            // are skipped (in-flight ones run to completion so their
            // verdicts stay deterministic and get checkpointed).
            if stop.is_some_and(|s| s.is_stopped()) {
                pcv_trace::count("engine.durable.skipped", 1);
                emit(EngineEvent::ClusterSkipped { name: ctx.db.net(vic).name().to_owned() });
                return Ok(None);
            }
            let _job_span = pcv_trace::span_labeled("engine", "cluster_job", || {
                ctx.db.net(vic).name().to_owned()
            });
            let job_start = Instant::now();
            emit(EngineEvent::ClusterStarted { name: ctx.db.net(vic).name().to_owned() });
            let t = Instant::now();
            let cluster = prune_victim_with_components(ctx.db, vic, &cfg.prune, component_sizes);
            let prune = t.elapsed();
            let name = ctx.db.net(vic).name().to_owned();

            let fp = cluster_fingerprint(ctx, &cluster, chash);
            // Resume path: adopt a journaled verdict when its fingerprint
            // still matches the cluster we just pruned — exact f64 bits,
            // exact degradation trail, so the merged report cannot drift.
            if let Some(e) = replay.get(&name).filter(|e| e.fingerprint == fp) {
                pcv_trace::count("engine.journal.replays", 1);
                emit(EngineEvent::ClusterReplayed { name: name.clone() });
                let rise = f64::from_bits(e.rise_bits);
                let fall = f64::from_bits(e.fall_bits);
                let (worst_frac, severity) =
                    classify(rise, fall, cfg.analysis.vdd, cfg.warn_frac, cfg.fail_frac);
                let receiver = e.receiver.as_ref().map(|r| ReceiverVerdict {
                    cell: r.cell.clone(),
                    output_peak: f64::from_bits(r.output_peak_bits),
                    propagates: r.propagates,
                });
                let degradation = e.degraded.as_ref().map(|d| Degradation {
                    net: vic,
                    name: name.clone(),
                    attempts: d
                        .attempts
                        .iter()
                        .map(|a| Attempt {
                            rung: a.rung,
                            reason: a.reason.clone(),
                            elapsed: Duration::ZERO,
                        })
                        .collect(),
                    recovered: d.recovered,
                });
                // Replayed healthy verdicts flow into the cache save at
                // the end of this run (the interrupted run never saved
                // them); degraded ones stay uncached as always.
                let entry = degradation.is_none().then(|| CacheEntry {
                    fingerprint: fp,
                    rise_bits: e.rise_bits,
                    fall_bits: e.fall_bits,
                    receiver: e.receiver.clone(),
                });
                let verdict = NetVerdict {
                    net: vic,
                    name,
                    rise_peak: rise,
                    fall_peak: fall,
                    worst_frac,
                    severity,
                    cluster_size: cluster.size(),
                    neighbors_before: cluster.neighbors_before,
                    receiver,
                };
                emit(EngineEvent::ClusterFinished {
                    name: verdict.name.clone(),
                    cached: false,
                    elapsed: job_start.elapsed(),
                });
                return Ok(Some(JobOk {
                    verdict,
                    cluster,
                    cached: false,
                    replayed: true,
                    entry,
                    degradation,
                    prune,
                    analysis: Duration::ZERO,
                    receiver: Duration::ZERO,
                }));
            }
            if let Some(e) = cache.lookup(&name, fp) {
                pcv_trace::count("engine.cache.hits", 1);
                emit(EngineEvent::CacheHit { name: name.clone() });
                let rise = f64::from_bits(e.rise_bits);
                let fall = f64::from_bits(e.fall_bits);
                let (worst_frac, severity) =
                    classify(rise, fall, cfg.analysis.vdd, cfg.warn_frac, cfg.fail_frac);
                let receiver = e.receiver.as_ref().map(|r| ReceiverVerdict {
                    cell: r.cell.clone(),
                    output_peak: f64::from_bits(r.output_peak_bits),
                    propagates: r.propagates,
                });
                let verdict = NetVerdict {
                    net: vic,
                    name,
                    rise_peak: rise,
                    fall_peak: fall,
                    worst_frac,
                    severity,
                    cluster_size: cluster.size(),
                    neighbors_before: cluster.neighbors_before,
                    receiver,
                };
                emit(EngineEvent::ClusterFinished {
                    name: verdict.name.clone(),
                    cached: true,
                    elapsed: job_start.elapsed(),
                });
                return Ok(Some(JobOk {
                    verdict,
                    cluster,
                    cached: true,
                    replayed: false,
                    entry: None,
                    degradation: None,
                    prune,
                    analysis: Duration::ZERO,
                    receiver: Duration::ZERO,
                }));
            }
            pcv_trace::count("engine.cache.misses", 1);
            emit(EngineEvent::CacheMiss { name: name.clone() });

            let fault = self.plan.fault_for(&name);

            if !cfg.recovery.enabled {
                // Legacy fail-open path: one attempt, errors surface as
                // EngineError records with no verdict.
                let mut opts = rung_options(cfg, RecoveryRung::Baseline);
                if let Some(spec) = fault {
                    inject(spec.kind, &name, &mut opts)?;
                }
                let ok = self.run_attempt(ctx, &cluster, &name, &opts)?;
                let out = self.assemble(vic, cluster, &name, fp, ok, None, prune);
                checkpoint(&out, fp);
                emit(EngineEvent::ClusterFinished {
                    name: name.clone(),
                    cached: false,
                    elapsed: job_start.elapsed(),
                });
                return Ok(Some(out));
            }

            // The recovery ladder: walk rungs until an attempt succeeds;
            // the WorstCase rung always succeeds, so every victim ends
            // with a verdict.
            let mut attempts: Vec<Attempt> = Vec::new();
            let mut rung = RecoveryRung::Baseline;
            let (ok, recovered) = loop {
                if rung == RecoveryRung::WorstCase {
                    pcv_trace::count("engine.recovery.worst_case", 1);
                    let vdd = cfg.analysis.vdd;
                    break (
                        AttemptOk {
                            rise: vdd,
                            fall: -vdd,
                            receiver: None,
                            analysis: Duration::ZERO,
                            receiver_time: Duration::ZERO,
                        },
                        RecoveryRung::WorstCase,
                    );
                }
                if rung > RecoveryRung::Baseline {
                    pcv_trace::count("engine.recovery.retries", 1);
                }
                let mut opts = rung_options(cfg, rung);
                let actx = rung_context(ctx, rung);
                // Non-persistent faults fire at the baseline attempt only,
                // so the first retry rung sees a healthy cluster.
                let inject_here = fault
                    .filter(|spec| spec.persistent || rung == RecoveryRung::Baseline)
                    .map(|spec| spec.kind);
                let attempt_start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(kind) = inject_here {
                        inject(kind, &name, &mut opts)?;
                    }
                    self.run_attempt(&actx, &cluster, &name, &opts)
                }));
                match outcome {
                    Ok(Ok(ok)) => break (ok, rung),
                    Ok(Err(err)) => {
                        if matches!(&err, XtalkError::Mor(MorError::Cancelled { .. })) {
                            pcv_trace::count("engine.recovery.deadline_hits", 1);
                        }
                        if matches!(&err, XtalkError::Mor(MorError::BudgetExhausted { .. })) {
                            pcv_trace::count("engine.recovery.budget_exhausted", 1);
                        }
                        let target = route(&err);
                        let next = rung.next().expect("worst case breaks the loop");
                        attempts.push(Attempt {
                            rung,
                            reason: err.to_string(),
                            elapsed: attempt_start.elapsed(),
                        });
                        rung = next.max(target);
                        emit(EngineEvent::ClusterRetried { name: name.clone(), rung: rung.name() });
                    }
                    Err(payload) => {
                        let message = scheduler::panic_message(payload);
                        attempts.push(Attempt {
                            rung,
                            reason: format!("job panicked: {message}"),
                            elapsed: attempt_start.elapsed(),
                        });
                        // A panic carries no typed routing information;
                        // skip the MOR-tuning rungs entirely.
                        let next = rung.next().expect("worst case breaks the loop");
                        rung = next.max(RecoveryRung::SpiceFallback);
                        emit(EngineEvent::ClusterRetried { name: name.clone(), rung: rung.name() });
                    }
                }
            };
            let degradation = (recovered != RecoveryRung::Baseline).then(|| {
                pcv_trace::count("engine.recovery.degraded", 1);
                if recovered == RecoveryRung::SpiceFallback {
                    pcv_trace::count("engine.recovery.fallback_spice", 1);
                }
                emit(EngineEvent::ClusterDegraded { name: name.clone(), rung: recovered.name() });
                Degradation { net: vic, name: name.clone(), attempts, recovered }
            });
            let out = self.assemble(vic, cluster, &name, fp, ok, degradation, prune);
            checkpoint(&out, fp);
            emit(EngineEvent::ClusterFinished {
                name: name.clone(),
                cached: false,
                elapsed: job_start.elapsed(),
            });
            Ok(Some(out))
        };

        // Mid-run read side: each completed verdict is published into the
        // snapshot the moment its job returns, before the merge — readers
        // polling a resident run see partial results grow monotonically.
        let observed_job = |i: usize| {
            let outcome = job(i);
            if let (Some(snap), Ok(Some(ok))) = (snapshot, &outcome) {
                snap.insert(ok.verdict.clone());
            }
            outcome
        };
        let (results, run_stats) =
            scheduler::run_with_idle(workers, victims.len(), observed_job, |w| {
                emit(EngineEvent::WorkerIdle { worker: w })
            });

        // Deterministic merge: collect in input order, then apply the exact
        // stable sort the serial flow uses. Stability makes ties keep input
        // order, so the merged report is independent of scheduling.
        let merge_span = pcv_trace::span("engine", "merge");
        let mut verdicts = Vec::with_capacity(victims.len());
        let mut clusters = Vec::with_capacity(victims.len());
        let mut costs: Vec<ClusterCost> = Vec::with_capacity(victims.len());
        let mut errors = Vec::new();
        let mut degradations: Vec<Degradation> = Vec::new();
        let mut fresh: Vec<(String, CacheEntry)> = Vec::new();
        let (mut hits, mut misses) = (0usize, 0usize);
        let (mut journal_hits, mut skipped) = (0usize, 0usize);
        let (mut prune_total, mut analysis_total, mut receiver_total) =
            (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        for (i, result) in results.into_iter().enumerate() {
            let flat = match result {
                Ok(Ok(Some(ok))) => Ok(ok),
                Ok(Ok(None)) => {
                    // Skipped after a stop request: no verdict, no error —
                    // the cluster is simply left for the resume run.
                    skipped += 1;
                    continue;
                }
                Ok(Err(e)) => Err(e.to_string()),
                Err(panic) => Err(format!("job panicked: {panic}")),
            };
            match flat {
                Ok(ok) => {
                    if ok.replayed {
                        journal_hits += 1;
                    } else if ok.cached {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                    if let Some(entry) = ok.entry {
                        fresh.push((ok.verdict.name.clone(), entry));
                    }
                    prune_total += ok.prune;
                    analysis_total += ok.analysis;
                    receiver_total += ok.receiver;
                    if let Some(d) = ok.degradation {
                        // A worst-cased cluster also surfaces as a
                        // structured error record: the last attempt names
                        // the stage and reason the analysis gave up on.
                        if d.recovered == RecoveryRung::WorstCase {
                            let (stage, message) = match d.attempts.last() {
                                Some(a) => (a.rung.name().to_owned(), a.reason.clone()),
                                None => ("baseline".to_owned(), "no attempt recorded".to_owned()),
                            };
                            errors.push(EngineError {
                                net: d.net,
                                name: d.name.clone(),
                                stage,
                                message,
                            });
                        }
                        degradations.push(d);
                    }
                    costs.push(ClusterCost {
                        net: ok.verdict.net,
                        name: ok.verdict.name.clone(),
                        cluster_size: ok.verdict.cluster_size,
                        cached: ok.cached,
                        prune: ok.prune,
                        analysis: ok.analysis,
                        receiver: ok.receiver,
                    });
                    verdicts.push(ok.verdict);
                    clusters.push(ok.cluster);
                }
                Err(message) => errors.push(EngineError {
                    net: victims[i],
                    name: ctx.db.net(victims[i]).name().to_owned(),
                    stage: "baseline".to_owned(),
                    message,
                }),
            }
        }
        verdicts.sort_by(|a, b| b.worst_frac.partial_cmp(&a.worst_frac).expect("finite fractions"));
        // Most expensive first; the stable sort keeps ties in input order.
        costs.sort_by_key(|c| std::cmp::Reverse(c.total()));
        drop(merge_span);

        let interrupted = stop.is_some_and(|s| s.is_stopped());
        if interrupted {
            emit(EngineEvent::RunStopped { completed: victims.len() - skipped, skipped });
        }

        let mut cache_saved = false;
        if let Some(path) = cfg.cache_path.as_deref() {
            let _span = pcv_trace::span("engine", "cache_save");
            let mut updated = cache;
            for (name, entry) in fresh {
                updated.insert(name, entry);
            }
            // Best-effort: a failed save only costs future cache hits.
            cache_saved = updated.save_with(&fs, path).is_ok();
        }
        // The journal has served its purpose only once every checkpointed
        // verdict is durably in the cache *and* the run completed; an
        // interrupted or save-failed run keeps it for the next resume.
        if cache_saved && !interrupted {
            if let Some(j) = journal {
                let _ = j.discard();
            }
        }

        let recovery_total: Duration = degradations.iter().map(Degradation::recovery_time).sum();
        let mem = pcv_obs::mem::snapshot().unwrap_or_default();
        let mut stats = EngineStats {
            workers,
            victims: victims.len(),
            cache_hits: hits,
            cache_misses: misses,
            journal_hits,
            skipped,
            degraded: degradations.len(),
            prune_time: prune_total,
            analysis_time: analysis_total,
            receiver_time: receiver_total,
            recovery_time: recovery_total,
            wall_time: start.elapsed(),
            worker_busy: run_stats.worker_busy,
            steals: run_stats.steals,
            peak_alloc_bytes: mem.peak_bytes,
            allocs: mem.allocs,
            events_dropped: 0,
        };
        emit(EngineEvent::RunFinished {
            victims: victims.len(),
            wall: stats.wall_time,
            cache_hits: hits,
            degraded: degradations.len(),
        });
        // Read the sink's shed counter only after the final event fired,
        // so a drop of RunFinished itself is still accounted for.
        stats.events_dropped = sink.map(|s| s.dropped()).unwrap_or(0);
        if cfg.ledger {
            if let Some(path) = cfg.cache_path.as_deref() {
                let record = RunRecord {
                    config_fingerprint: chash,
                    chip_fingerprint: chip_fp,
                    outcome: if interrupted { "stopped".to_owned() } else { "complete".to_owned() },
                    journal_hits,
                    skipped,
                    victims: victims.len(),
                    workers,
                    host_parallelism: std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    cache_hits: hits,
                    cache_misses: misses,
                    degraded: degradations.len(),
                    errors: errors.len(),
                    steals: stats.steals,
                    wall_ms: stats.wall_time.as_secs_f64() * 1e3,
                    prune_ms: prune_total.as_secs_f64() * 1e3,
                    analysis_ms: analysis_total.as_secs_f64() * 1e3,
                    receiver_ms: receiver_total.as_secs_f64() * 1e3,
                    recovery_ms: recovery_total.as_secs_f64() * 1e3,
                    peak_alloc_bytes: mem.peak_bytes,
                    allocs: mem.allocs,
                };
                let mut os = path.as_os_str().to_owned();
                os.push(".ledger.jsonl");
                // Best-effort, like the cache save: a failed append only
                // costs trajectory history. Durable (fsync'd) so the
                // "stopped, resumable" marker survives the kill that
                // usually follows it.
                let line = format!("{}\n", record.to_json());
                let _ = fs.append_durable(std::path::Path::new(&os), line.as_bytes());
            }
        }
        let trace = session.map(|s| s.finish());
        let report = EngineReport {
            chip: ChipReport {
                verdicts,
                pruning: PruningStats::compute(&clusters),
                warn_frac: cfg.warn_frac,
                fail_frac: cfg.fail_frac,
            },
            errors,
            degradations,
            stats,
            clusters: costs,
            trace,
            interrupted,
        };
        // Traced runs with a cache location drop their artifacts next to
        // the cache file (best-effort, like the cache save itself).
        if report.trace.is_some() {
            if let Some(path) = cfg.cache_path.as_deref() {
                let _ = report.write_profile_with(&fs, path);
            }
        }
        Ok(report)
    }

    /// One full analysis at one ladder rung: both glitch polarities, then
    /// the receiver check when the verdict is severe enough. `opts` carries
    /// the rung's (possibly adjusted) analysis options.
    fn run_attempt(
        &self,
        ctx: &AnalysisContext<'_>,
        cluster: &Cluster,
        name: &str,
        opts: &AnalysisOptions,
    ) -> Result<AttemptOk, XtalkError> {
        let cfg = &self.config;
        let t = Instant::now();
        let (rise, fall, worse) = if cluster.aggressors.is_empty() {
            (0.0, 0.0, None)
        } else {
            let up = analyze_glitch(ctx, cluster, true, opts)?;
            let down = analyze_glitch(ctx, cluster, false, opts)?;
            let (rise, fall) = (up.peak, down.peak);
            let worse = if rise.abs() >= fall.abs() { up } else { down };
            (rise, fall, Some(worse))
        };
        let analysis = t.elapsed();
        let (_, severity) = classify(rise, fall, cfg.analysis.vdd, cfg.warn_frac, cfg.fail_frac);
        let mut receiver_time = Duration::ZERO;
        let receiver = if cfg.check_receivers && severity >= Severity::Warning {
            let t = Instant::now();
            let r = self.receiver_check(ctx, cluster, name, rise, fall, worse, opts)?;
            receiver_time = t.elapsed();
            Some(r)
        } else {
            None
        };
        Ok(AttemptOk { rise, fall, receiver, analysis, receiver_time })
    }

    /// Turn a standing attempt into the job outcome: classify, build the
    /// verdict, and decide cacheability. Degraded results are **not**
    /// cached — a recovered verdict must be recomputed next run, otherwise
    /// cold and warm reports would diverge.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        vic: PNetId,
        cluster: Cluster,
        name: &str,
        fp: u64,
        ok: AttemptOk,
        degradation: Option<Degradation>,
        prune: Duration,
    ) -> JobOk {
        let cfg = &self.config;
        let (worst_frac, severity) =
            classify(ok.rise, ok.fall, cfg.analysis.vdd, cfg.warn_frac, cfg.fail_frac);
        let entry = degradation.is_none().then(|| CacheEntry {
            fingerprint: fp,
            rise_bits: ok.rise.to_bits(),
            fall_bits: ok.fall.to_bits(),
            receiver: ok.receiver.as_ref().map(|r| CachedReceiver {
                cell: r.cell.clone(),
                output_peak_bits: r.output_peak.to_bits(),
                propagates: r.propagates,
            }),
        });
        let verdict = NetVerdict {
            net: vic,
            name: name.to_owned(),
            rise_peak: ok.rise,
            fall_peak: ok.fall,
            worst_frac,
            severity,
            cluster_size: cluster.size(),
            neighbors_before: cluster.neighbors_before,
            receiver: ok.receiver,
        };
        JobOk {
            verdict,
            cluster,
            cached: false,
            replayed: false,
            entry,
            degradation,
            prune,
            analysis: ok.analysis,
            receiver: ok.receiver_time,
        }
    }

    /// In-job receiver check: the serial [`pcv_xtalk::audit_receivers`]
    /// rule, reusing the worse-polarity waveform already computed instead
    /// of re-running the analysis (deterministic, so the result is
    /// identical).
    #[allow(clippy::too_many_arguments)]
    fn receiver_check(
        &self,
        ctx: &AnalysisContext<'_>,
        cluster: &Cluster,
        name: &str,
        rise: f64,
        fall: f64,
        worse: Option<GlitchResult>,
        opts: &AnalysisOptions,
    ) -> Result<ReceiverVerdict, XtalkError> {
        let (Some(design), Some(lib)) = (ctx.design, ctx.lib) else {
            return Err(XtalkError::InvalidConfig {
                what: "receiver checks need design and library data",
            });
        };
        let dnet =
            design.find_net(name).ok_or_else(|| XtalkError::NoDriver { net: name.to_owned() })?;
        // Same receiver pick as the serial audit: first non-latch load,
        // else the latch input-stage-equivalent inverter.
        let receiver_cell = design
            .loads_of(dnet)
            .iter()
            .filter_map(|&(inst, _)| lib.cell(&design.instance(inst).cell))
            .find(|c| c.kind != CellKind::Latch)
            .or_else(|| lib.cell("INVX1"))
            .ok_or(XtalkError::InvalidConfig { what: "no receiver cell available" })?;
        let rising = rise.abs() >= fall.abs();
        let glitch = match worse {
            Some(g) => g,
            // Only reachable for an aggressor-less victim flagged by a
            // zero warning threshold.
            None => analyze_glitch(ctx, cluster, rising, opts)?,
        };
        let quiet = if rising { 0.0 } else { self.config.analysis.vdd };
        let check = check_receiver_propagation(
            receiver_cell,
            &glitch.waveform,
            quiet,
            self.config.analysis.vdd,
            self.config.fail_frac,
        )?;
        Ok(ReceiverVerdict {
            cell: receiver_cell.name.clone(),
            output_peak: check.output_peak,
            propagates: check.propagates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb};

    /// The same two-victim fixture as the serial chip tests.
    fn db() -> (ParasiticDb, PNetId, PNetId) {
        let mut db = ParasiticDb::new();
        let mk = |name: &str, cg: f64| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 200.0);
            n.add_ground_cap(n1, cg);
            n.mark_load(n1);
            n
        };
        let hot = db.add_net(mk("hot", 5e-15));
        let cold = db.add_net(mk("cold", 50e-15));
        let agg = db.add_net(mk("agg", 5e-15));
        db.add_coupling(NetNodeRef { net: hot, node: 1 }, NetNodeRef { net: agg, node: 1 }, 60e-15);
        db.add_coupling(
            NetNodeRef { net: cold, node: 1 },
            NetNodeRef { net: agg, node: 1 },
            0.4e-15,
        );
        (db, hot, cold)
    }

    fn config(workers: usize) -> EngineConfig {
        EngineConfig { workers, ..Default::default() }
    }

    #[test]
    fn matches_serial_verify_chip() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let victims = [cold, hot];
        let serial = pcv_xtalk::verify_chip(
            &ctx,
            &victims,
            &PruneConfig::default(),
            &AnalysisOptions::default(),
            0.1,
            0.2,
        )
        .unwrap();
        for workers in [1, 2, 4] {
            let report = Engine::new(config(workers)).verify(&ctx, &victims).unwrap();
            assert_eq!(report.chip, serial);
            assert!(report.errors.is_empty());
            assert_eq!(report.stats.cache_misses, 2);
            assert_eq!(report.stats.workers, workers);
        }
    }

    #[test]
    fn injected_fault_is_isolated_and_worst_cased() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let mut engine = Engine::new(config(2));
        engine.inject_fault("hot");
        let report = engine.verify(&ctx, &[cold, hot]).unwrap();
        // A persistent panic defeats every analysis rung, so the victim is
        // worst-cased: a conservative verdict plus a structured error.
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].name, "hot");
        assert_eq!(report.errors[0].stage, "spice_fallback");
        assert!(report.errors[0].message.contains("injected fault"));
        assert_eq!(report.chip.verdicts.len(), 2);
        let worst = report.chip.verdicts.iter().find(|v| v.name == "hot").unwrap();
        assert_eq!(worst.worst_frac, 1.0);
        assert_eq!(worst.severity, Severity::Violation);
        assert_eq!(report.degradations.len(), 1);
        let d = &report.degradations[0];
        assert_eq!(d.name, "hot");
        assert_eq!(d.recovered, RecoveryRung::WorstCase);
        // Panics skip the MOR-tuning rungs: baseline, then SPICE, then out.
        let rungs: Vec<RecoveryRung> = d.attempts.iter().map(|a| a.rung).collect();
        assert_eq!(rungs, [RecoveryRung::Baseline, RecoveryRung::SpiceFallback]);
        assert_eq!(report.stats.degraded, 1);
        // The other victim is still fully audited, untouched by recovery.
        let cold_v = report.chip.verdicts.iter().find(|v| v.name == "cold").unwrap();
        assert!(cold_v.worst_frac < 1.0);
    }

    #[test]
    fn disabled_ladder_keeps_fail_open_behavior() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let mut cfg = config(2);
        cfg.recovery.enabled = false;
        let mut engine = Engine::new(cfg);
        engine.inject_fault("hot");
        let report = engine.verify(&ctx, &[cold, hot]).unwrap();
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].name, "hot");
        assert_eq!(report.errors[0].stage, "baseline");
        assert!(report.errors[0].message.contains("injected fault"));
        // Fail-open: the faulted victim has no verdict at all.
        assert_eq!(report.chip.verdicts.len(), 1);
        assert_eq!(report.chip.verdicts[0].name, "cold");
        assert!(report.degradations.is_empty());
    }

    #[test]
    fn transient_fault_recovers_on_first_retry() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let victims = [cold, hot];
        let clean = Engine::new(config(1)).verify(&ctx, &victims).unwrap();

        let mut engine = Engine::new(config(2));
        let mut plan = FaultPlan::new();
        plan.inject_named("hot", FaultKind::NonSpd);
        engine.set_fault_plan(plan);
        let report = engine.verify(&ctx, &victims).unwrap();
        // The non-SPD fault routes to GminBoost; the retry sees a healthy
        // cluster and succeeds there.
        assert!(report.errors.is_empty());
        assert_eq!(report.degradations.len(), 1);
        let d = &report.degradations[0];
        assert_eq!(d.recovered, RecoveryRung::GminBoost);
        assert_eq!(d.attempts.len(), 1);
        assert!(d.attempts[0].reason.contains("positive definite"));
        // Every victim has a verdict; the unfaulted one is bit-identical
        // to the clean run.
        assert_eq!(report.chip.verdicts.len(), 2);
        let cold_clean = clean.chip.verdicts.iter().find(|v| v.name == "cold").unwrap();
        let cold_faulted = report.chip.verdicts.iter().find(|v| v.name == "cold").unwrap();
        assert_eq!(cold_clean, cold_faulted);
    }

    #[test]
    fn slow_fault_trips_budget_and_falls_back_to_spice() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let mut engine = Engine::new(config(2));
        let mut plan = FaultPlan::new();
        plan.inject("hot", FaultSpec { kind: FaultKind::Slow, persistent: true });
        engine.set_fault_plan(plan);
        let report = engine.verify(&ctx, &[cold, hot]).unwrap();
        // The collapsed Newton budget defeats every MOR rung; the SPICE
        // fallback does not consult the MOR budget and succeeds.
        assert!(report.errors.is_empty());
        assert_eq!(report.degradations.len(), 1);
        let d = &report.degradations[0];
        assert_eq!(d.recovered, RecoveryRung::SpiceFallback);
        assert!(d.attempts.iter().all(|a| a.reason.contains("budget exhausted")));
        let hot_v = report.chip.verdicts.iter().find(|v| v.name == "hot").unwrap();
        assert!(hot_v.worst_frac < 1.0, "a real analysis stood, not the worst case");
    }

    #[test]
    fn degraded_results_are_not_cached() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let dir = std::env::temp_dir().join("pcv-engine-degraded-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store");
        std::fs::remove_file(&path).ok();

        let mut cfg = config(1);
        cfg.cache_path = Some(path.clone());
        let mut engine = Engine::new(cfg.clone());
        let mut plan = FaultPlan::new();
        plan.inject_named("hot", FaultKind::NaN);
        engine.set_fault_plan(plan);
        let faulted = engine.verify(&ctx, &[cold, hot]).unwrap();
        assert_eq!(faulted.degradations.len(), 1);

        // A clean re-run must re-analyze the degraded victim (cache miss)
        // and produce the baseline verdict.
        let clean = Engine::new(cfg).verify(&ctx, &[cold, hot]).unwrap();
        assert_eq!(clean.stats.cache_hits, 1, "only the healthy victim was cached");
        assert_eq!(clean.stats.cache_misses, 1);
        assert!(clean.degradations.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_thresholds_are_rejected() {
        let (db, hot, _) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let engine = Engine::new(EngineConfig { warn_frac: 0.5, fail_frac: 0.2, ..config(1) });
        assert!(matches!(engine.verify(&ctx, &[hot]), Err(XtalkError::InvalidConfig { .. })));
    }

    #[test]
    fn receiver_checks_without_design_are_rejected() {
        let (db, hot, _) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let engine = Engine::new(EngineConfig { check_receivers: true, ..config(1) });
        assert!(matches!(engine.verify(&ctx, &[hot]), Err(XtalkError::InvalidConfig { .. })));
    }

    #[test]
    fn empty_victim_list_yields_empty_report() {
        let (db, _, _) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let report = Engine::new(config(2)).verify(&ctx, &[]).unwrap();
        assert!(report.chip.verdicts.is_empty());
        assert_eq!(report.stats.victims, 0);
        assert_eq!(report.stats.hit_rate(), 0.0);
    }
}
