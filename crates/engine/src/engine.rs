//! The engine proper: shard victims into cluster jobs, run them on the
//! work-stealing scheduler, and merge a deterministic report.

use crate::cache::{CacheEntry, CachedReceiver, ResultCache};
use crate::fingerprint::{cluster_fingerprint, config_hash};
use crate::report::{ClusterCost, EngineError, EngineReport, EngineStats};
use crate::scheduler;
use pcv_cells::library::CellKind;
use pcv_netlist::PNetId;
use pcv_xtalk::prune::{
    coupling_component_sizes, prune_victim_with_components, Cluster, PruneConfig, PruningStats,
};
use pcv_xtalk::{
    analyze_glitch, check_receiver_propagation, AnalysisContext, AnalysisOptions, ChipReport,
    GlitchResult, NetVerdict, ReceiverVerdict, Severity, XtalkError,
};
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Pruning parameters (same meaning as the serial flow).
    pub prune: PruneConfig,
    /// Analysis knobs (same meaning as the serial flow).
    pub analysis: AnalysisOptions,
    /// Warning threshold as a fraction of Vdd.
    pub warn_frac: f64,
    /// Violation threshold as a fraction of Vdd.
    pub fail_frac: f64,
    /// Run receiver-propagation checks on flagged victims (the serial
    /// [`pcv_xtalk::audit_receivers`] pass), in-job.
    pub check_receivers: bool,
    /// Incremental result store; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Collect a structured trace of the run ([`pcv_trace`]): spans for
    /// every pipeline stage, solver counters, queue-depth histograms. The
    /// merged trace lands in [`EngineReport::trace`]; with `cache_path`
    /// set, Chrome-trace and profile JSON files are also written next to
    /// the cache. Off by default — instrumentation then costs one relaxed
    /// atomic load per site.
    pub trace: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            prune: PruneConfig::default(),
            analysis: AnalysisOptions::default(),
            warn_frac: 0.1,
            fail_frac: 0.2,
            check_receivers: false,
            cache_path: None,
            trace: false,
        }
    }
}

/// Parallel, fault-isolated, incremental chip-verification engine.
///
/// [`Engine::verify`] produces, when every job succeeds and the cache is
/// cold, the exact same [`ChipReport`] as the serial
/// [`pcv_xtalk::verify_chip`] (+ [`pcv_xtalk::audit_receivers`] when
/// `check_receivers` is set) — verdict for verdict, bit for bit —
/// regardless of worker count or scheduling order.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    /// Configuration used by [`Engine::verify`].
    pub config: EngineConfig,
    faults: HashSet<String>,
}

/// Outcome of one successful cluster job.
struct JobOk {
    verdict: NetVerdict,
    cluster: Cluster,
    cached: bool,
    entry: Option<CacheEntry>,
    prune: Duration,
    analysis: Duration,
    receiver: Duration,
}

/// Classify peaks against the noise-margin thresholds (serial rule).
fn classify(rise: f64, fall: f64, vdd: f64, warn: f64, fail: f64) -> (f64, Severity) {
    let worst_frac = rise.abs().max(fall.abs()) / vdd;
    let severity = if worst_frac >= fail {
        Severity::Violation
    } else if worst_frac >= warn {
        Severity::Warning
    } else {
        Severity::Clean
    };
    (worst_frac, severity)
}

impl Engine {
    /// Engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config, faults: HashSet::new() }
    }

    /// Chaos hook: make the cluster job for the named victim panic. The
    /// fault-isolation drill — used by tests and operators to confirm one
    /// bad cluster cannot take down a chip audit.
    pub fn inject_fault(&mut self, net_name: impl Into<String>) {
        self.faults.insert(net_name.into());
    }

    /// Audit `victims`: prune, analyze and classify each one as a parallel
    /// cluster job, then merge a report identical to the serial flow.
    ///
    /// Jobs that return an error or panic become [`EngineError`] records;
    /// the remaining victims are still fully reported.
    ///
    /// # Errors
    ///
    /// [`XtalkError::InvalidConfig`] for inconsistent thresholds or
    /// receiver checks without design/library data. Per-victim analysis
    /// failures do **not** error — they land in
    /// [`EngineReport::errors`].
    pub fn verify(
        &self,
        ctx: &AnalysisContext<'_>,
        victims: &[PNetId],
    ) -> Result<EngineReport, XtalkError> {
        let cfg = &self.config;
        if cfg.warn_frac > cfg.fail_frac {
            return Err(XtalkError::InvalidConfig {
                what: "warning threshold must not exceed failure",
            });
        }
        if cfg.check_receivers && (ctx.design.is_none() || ctx.lib.is_none()) {
            return Err(XtalkError::InvalidConfig {
                what: "receiver checks need design and library data",
            });
        }
        let session = if cfg.trace { Some(pcv_trace::TraceSession::start()) } else { None };
        let start = Instant::now();
        let workers = match cfg.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };

        let cache = {
            let _span = pcv_trace::span("engine", "cache_load");
            match cfg.cache_path.as_deref() {
                Some(path) => ResultCache::load(path),
                None => ResultCache::new(),
            }
        };
        // One union-find for the whole run instead of one per victim.
        let component_sizes = coupling_component_sizes(ctx.db);
        let chash = config_hash(
            ctx,
            &cfg.prune,
            &cfg.analysis,
            cfg.warn_frac,
            cfg.fail_frac,
            cfg.check_receivers,
        );

        let job = |i: usize| -> Result<JobOk, XtalkError> {
            let vic = victims[i];
            let _job_span = pcv_trace::span_labeled("engine", "cluster_job", || {
                ctx.db.net(vic).name().to_owned()
            });
            let t = Instant::now();
            let cluster = prune_victim_with_components(ctx.db, vic, &cfg.prune, &component_sizes);
            let prune = t.elapsed();
            let name = ctx.db.net(vic).name().to_owned();
            assert!(!self.faults.contains(&name), "injected fault in cluster job for {name}");

            let fp = cluster_fingerprint(ctx, &cluster, chash);
            if let Some(e) = cache.lookup(&name, fp) {
                pcv_trace::count("engine.cache.hits", 1);
                let rise = f64::from_bits(e.rise_bits);
                let fall = f64::from_bits(e.fall_bits);
                let (worst_frac, severity) =
                    classify(rise, fall, cfg.analysis.vdd, cfg.warn_frac, cfg.fail_frac);
                let receiver = e.receiver.as_ref().map(|r| ReceiverVerdict {
                    cell: r.cell.clone(),
                    output_peak: f64::from_bits(r.output_peak_bits),
                    propagates: r.propagates,
                });
                let verdict = NetVerdict {
                    net: vic,
                    name,
                    rise_peak: rise,
                    fall_peak: fall,
                    worst_frac,
                    severity,
                    cluster_size: cluster.size(),
                    neighbors_before: cluster.neighbors_before,
                    receiver,
                };
                return Ok(JobOk {
                    verdict,
                    cluster,
                    cached: true,
                    entry: None,
                    prune,
                    analysis: Duration::ZERO,
                    receiver: Duration::ZERO,
                });
            }
            pcv_trace::count("engine.cache.misses", 1);

            let t = Instant::now();
            let (rise, fall, worse) = if cluster.aggressors.is_empty() {
                (0.0, 0.0, None)
            } else {
                let up = analyze_glitch(ctx, &cluster, true, &cfg.analysis)?;
                let down = analyze_glitch(ctx, &cluster, false, &cfg.analysis)?;
                let (rise, fall) = (up.peak, down.peak);
                let worse = if rise.abs() >= fall.abs() { up } else { down };
                (rise, fall, Some(worse))
            };
            let analysis = t.elapsed();
            let (worst_frac, severity) =
                classify(rise, fall, cfg.analysis.vdd, cfg.warn_frac, cfg.fail_frac);
            let mut receiver_time = Duration::ZERO;
            let receiver = if cfg.check_receivers && severity >= Severity::Warning {
                let t = Instant::now();
                let r = self.receiver_check(ctx, &cluster, &name, rise, fall, worse)?;
                receiver_time = t.elapsed();
                Some(r)
            } else {
                None
            };
            let entry = CacheEntry {
                fingerprint: fp,
                rise_bits: rise.to_bits(),
                fall_bits: fall.to_bits(),
                receiver: receiver.as_ref().map(|r| CachedReceiver {
                    cell: r.cell.clone(),
                    output_peak_bits: r.output_peak.to_bits(),
                    propagates: r.propagates,
                }),
            };
            let verdict = NetVerdict {
                net: vic,
                name,
                rise_peak: rise,
                fall_peak: fall,
                worst_frac,
                severity,
                cluster_size: cluster.size(),
                neighbors_before: cluster.neighbors_before,
                receiver,
            };
            Ok(JobOk {
                verdict,
                cluster,
                cached: false,
                entry: Some(entry),
                prune,
                analysis,
                receiver: receiver_time,
            })
        };

        let (results, run_stats) = scheduler::run(workers, victims.len(), job);

        // Deterministic merge: collect in input order, then apply the exact
        // stable sort the serial flow uses. Stability makes ties keep input
        // order, so the merged report is independent of scheduling.
        let merge_span = pcv_trace::span("engine", "merge");
        let mut verdicts = Vec::with_capacity(victims.len());
        let mut clusters = Vec::with_capacity(victims.len());
        let mut costs: Vec<ClusterCost> = Vec::with_capacity(victims.len());
        let mut errors = Vec::new();
        let mut fresh: Vec<(String, CacheEntry)> = Vec::new();
        let (mut hits, mut misses) = (0usize, 0usize);
        let (mut prune_total, mut analysis_total, mut receiver_total) =
            (Duration::ZERO, Duration::ZERO, Duration::ZERO);
        for (i, result) in results.into_iter().enumerate() {
            let flat = match result {
                Ok(Ok(ok)) => Ok(ok),
                Ok(Err(e)) => Err(e.to_string()),
                Err(panic) => Err(format!("job panicked: {panic}")),
            };
            match flat {
                Ok(ok) => {
                    if ok.cached {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                    if let Some(entry) = ok.entry {
                        fresh.push((ok.verdict.name.clone(), entry));
                    }
                    prune_total += ok.prune;
                    analysis_total += ok.analysis;
                    receiver_total += ok.receiver;
                    costs.push(ClusterCost {
                        net: ok.verdict.net,
                        name: ok.verdict.name.clone(),
                        cluster_size: ok.verdict.cluster_size,
                        cached: ok.cached,
                        prune: ok.prune,
                        analysis: ok.analysis,
                        receiver: ok.receiver,
                    });
                    verdicts.push(ok.verdict);
                    clusters.push(ok.cluster);
                }
                Err(message) => errors.push(EngineError {
                    net: victims[i],
                    name: ctx.db.net(victims[i]).name().to_owned(),
                    message,
                }),
            }
        }
        verdicts.sort_by(|a, b| b.worst_frac.partial_cmp(&a.worst_frac).expect("finite fractions"));
        // Most expensive first; the stable sort keeps ties in input order.
        costs.sort_by_key(|c| std::cmp::Reverse(c.total()));
        drop(merge_span);

        if let Some(path) = cfg.cache_path.as_deref() {
            let _span = pcv_trace::span("engine", "cache_save");
            let mut updated = cache;
            for (name, entry) in fresh {
                updated.insert(name, entry);
            }
            // Best-effort: a failed save only costs future cache hits.
            let _ = updated.save(path);
        }

        let stats = EngineStats {
            workers,
            victims: victims.len(),
            cache_hits: hits,
            cache_misses: misses,
            prune_time: prune_total,
            analysis_time: analysis_total,
            receiver_time: receiver_total,
            wall_time: start.elapsed(),
            worker_busy: run_stats.worker_busy,
            steals: run_stats.steals,
        };
        let trace = session.map(|s| s.finish());
        let report = EngineReport {
            chip: ChipReport {
                verdicts,
                pruning: PruningStats::compute(&clusters),
                warn_frac: cfg.warn_frac,
                fail_frac: cfg.fail_frac,
            },
            errors,
            stats,
            clusters: costs,
            trace,
        };
        // Traced runs with a cache location drop their artifacts next to
        // the cache file (best-effort, like the cache save itself).
        if report.trace.is_some() {
            if let Some(path) = cfg.cache_path.as_deref() {
                let _ = report.write_profile(path);
            }
        }
        Ok(report)
    }

    /// In-job receiver check: the serial [`pcv_xtalk::audit_receivers`]
    /// rule, reusing the worse-polarity waveform already computed instead
    /// of re-running the analysis (deterministic, so the result is
    /// identical).
    fn receiver_check(
        &self,
        ctx: &AnalysisContext<'_>,
        cluster: &Cluster,
        name: &str,
        rise: f64,
        fall: f64,
        worse: Option<GlitchResult>,
    ) -> Result<ReceiverVerdict, XtalkError> {
        let (Some(design), Some(lib)) = (ctx.design, ctx.lib) else {
            return Err(XtalkError::InvalidConfig {
                what: "receiver checks need design and library data",
            });
        };
        let dnet =
            design.find_net(name).ok_or_else(|| XtalkError::NoDriver { net: name.to_owned() })?;
        // Same receiver pick as the serial audit: first non-latch load,
        // else the latch input-stage-equivalent inverter.
        let receiver_cell = design
            .loads_of(dnet)
            .iter()
            .filter_map(|&(inst, _)| lib.cell(&design.instance(inst).cell))
            .find(|c| c.kind != CellKind::Latch)
            .or_else(|| lib.cell("INVX1"))
            .ok_or(XtalkError::InvalidConfig { what: "no receiver cell available" })?;
        let rising = rise.abs() >= fall.abs();
        let glitch = match worse {
            Some(g) => g,
            // Only reachable for an aggressor-less victim flagged by a
            // zero warning threshold.
            None => analyze_glitch(ctx, cluster, rising, &self.config.analysis)?,
        };
        let quiet = if rising { 0.0 } else { self.config.analysis.vdd };
        let check = check_receiver_propagation(
            receiver_cell,
            &glitch.waveform,
            quiet,
            self.config.analysis.vdd,
            self.config.fail_frac,
        )?;
        Ok(ReceiverVerdict {
            cell: receiver_cell.name.clone(),
            output_peak: check.output_peak,
            propagates: check.propagates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb};

    /// The same two-victim fixture as the serial chip tests.
    fn db() -> (ParasiticDb, PNetId, PNetId) {
        let mut db = ParasiticDb::new();
        let mk = |name: &str, cg: f64| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 200.0);
            n.add_ground_cap(n1, cg);
            n.mark_load(n1);
            n
        };
        let hot = db.add_net(mk("hot", 5e-15));
        let cold = db.add_net(mk("cold", 50e-15));
        let agg = db.add_net(mk("agg", 5e-15));
        db.add_coupling(NetNodeRef { net: hot, node: 1 }, NetNodeRef { net: agg, node: 1 }, 60e-15);
        db.add_coupling(
            NetNodeRef { net: cold, node: 1 },
            NetNodeRef { net: agg, node: 1 },
            0.4e-15,
        );
        (db, hot, cold)
    }

    fn config(workers: usize) -> EngineConfig {
        EngineConfig { workers, ..Default::default() }
    }

    #[test]
    fn matches_serial_verify_chip() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let victims = [cold, hot];
        let serial = pcv_xtalk::verify_chip(
            &ctx,
            &victims,
            &PruneConfig::default(),
            &AnalysisOptions::default(),
            0.1,
            0.2,
        )
        .unwrap();
        for workers in [1, 2, 4] {
            let report = Engine::new(config(workers)).verify(&ctx, &victims).unwrap();
            assert_eq!(report.chip, serial);
            assert!(report.errors.is_empty());
            assert_eq!(report.stats.cache_misses, 2);
            assert_eq!(report.stats.workers, workers);
        }
    }

    #[test]
    fn injected_fault_is_isolated() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let mut engine = Engine::new(config(2));
        engine.inject_fault("hot");
        let report = engine.verify(&ctx, &[cold, hot]).unwrap();
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].name, "hot");
        assert!(report.errors[0].message.contains("injected fault"));
        // The other victim is still fully audited.
        assert_eq!(report.chip.verdicts.len(), 1);
        assert_eq!(report.chip.verdicts[0].name, "cold");
    }

    #[test]
    fn bad_thresholds_are_rejected() {
        let (db, hot, _) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let engine = Engine::new(EngineConfig { warn_frac: 0.5, fail_frac: 0.2, ..config(1) });
        assert!(matches!(engine.verify(&ctx, &[hot]), Err(XtalkError::InvalidConfig { .. })));
    }

    #[test]
    fn receiver_checks_without_design_are_rejected() {
        let (db, hot, _) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let engine = Engine::new(EngineConfig { check_receivers: true, ..config(1) });
        assert!(matches!(engine.verify(&ctx, &[hot]), Err(XtalkError::InvalidConfig { .. })));
    }

    #[test]
    fn empty_victim_list_yields_empty_report() {
        let (db, _, _) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let report = Engine::new(config(2)).verify(&ctx, &[]).unwrap();
        assert!(report.chip.verdicts.is_empty());
        assert_eq!(report.stats.victims, 0);
        assert_eq!(report.stats.hit_rate(), 0.0);
    }
}
