//! Chip-scale orchestration for the crosstalk verification flow: a
//! parallel, fault-isolated, incremental engine over
//! [`pcv_xtalk`]'s victim-cluster analysis.
//!
//! The serial flow ([`pcv_xtalk::verify_chip`] +
//! [`pcv_xtalk::audit_receivers`]) audits victims one at a time and dies
//! with the first failure. At chip scale — thousands of latch-input
//! victims — that is neither fast enough nor robust enough. This crate
//! keeps the serial flow as the reference semantics and adds the
//! engineering around it:
//!
//! - **Parallelism** ([`scheduler`]) — victims are sharded into
//!   independent cluster jobs (prune → reduce → analyze → receiver check)
//!   on a std-only work-stealing thread pool. No external dependencies:
//!   threads, channels and atomics.
//! - **Determinism** — results are merged by input index and sorted with
//!   the serial flow's exact stable comparator, so an N-worker run is
//!   byte-identical to the serial report regardless of scheduling.
//! - **Fault isolation** — each job runs under `catch_unwind`; a
//!   panicking or erroring cluster becomes an [`EngineError`] record while
//!   every other victim is still fully audited.
//! - **Graceful degradation** ([`recovery`]) — failed cluster jobs walk a
//!   typed recovery ladder (boosted `gmin`, smaller Krylov space, softer
//!   Newton, SPICE fallback, conservative worst-case) so every victim ends
//!   with a verdict; the trail lands in [`EngineReport::degradations`].
//!   Deterministic fault injection ([`recovery::FaultPlan`]) drills the
//!   ladder in tests and chaos runs.
//! - **Incrementality** ([`cache`], [`fingerprint`]) — each cluster's
//!   verdict is stored under a fingerprint of its topology, couplings,
//!   drivers and analysis options. Re-runs skip unchanged clusters;
//!   touching one coupling capacitor invalidates exactly the clusters it
//!   feeds.
//! - **Observability** ([`report`]) — per-stage wall-times, cache
//!   hit-rate, worker utilization and steal counts in every
//!   [`EngineReport`].
//! - **Durability** ([`durable`], [`fs`]) — every persisted artifact is
//!   written atomically (write-temp + fsync + rename) with CRC-32
//!   integrity framing; completed verdicts are checkpointed to a
//!   write-ahead journal so a killed run resumes with
//!   [`Engine::resume`] to a byte-identical sign-off; an advisory run
//!   lock serializes writers; [`fs::DiskFaultPlan`] injects
//!   deterministic disk faults (torn writes, ENOSPC, bit flips) for
//!   chaos drills.
//!
//! # Example
//!
//! ```
//! # use pcv_engine::{Engine, EngineConfig};
//! # use pcv_xtalk::AnalysisContext;
//! # use pcv_netlist::{NetParasitics, NetNodeRef, ParasiticDb};
//! # fn main() -> Result<(), pcv_xtalk::XtalkError> {
//! let mut db = ParasiticDb::new();
//! let mut v = NetParasitics::new("v");
//! let v1 = v.add_node();
//! v.add_resistor(0, v1, 200.0);
//! v.add_ground_cap(v1, 10e-15);
//! v.mark_load(v1);
//! let vid = db.add_net(v);
//! let mut a = NetParasitics::new("a");
//! let a1 = a.add_node();
//! a.add_resistor(0, a1, 200.0);
//! a.add_ground_cap(a1, 10e-15);
//! let aid = db.add_net(a);
//! db.add_coupling(NetNodeRef { net: vid, node: v1 },
//!                 NetNodeRef { net: aid, node: a1 }, 30e-15);
//! let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
//! let engine = Engine::new(EngineConfig { workers: 2, ..Default::default() });
//! let report = engine.verify(&ctx, &[vid])?;
//! assert_eq!(report.chip.verdicts.len(), 1);
//! assert!(report.errors.is_empty());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod durable;
pub mod eco;
pub mod engine;
pub mod fingerprint;
pub mod fs;
pub mod recovery;
pub mod report;
pub mod resident;
pub mod scheduler;
pub mod shard;

pub use cache::{CacheEntry, CacheLoadStats, CachedReceiver, ResultCache};
pub use durable::{
    DurableConfig, Journal, JournalEntry, JournalLoad, LockError, ReplayAttempt, ReplayDegradation,
    RunLock, StopAfter, StopFlag,
};
pub use eco::{EcoOutcome, EcoPlan};
pub use engine::{Engine, EngineConfig};
pub use fingerprint::{chip_slice_fingerprint, cluster_fingerprint, config_hash, Fnv1a};
pub use fs::{crc32, DiskFaultPlan, Fs, FsFaultKind};
pub use recovery::{
    Attempt, Degradation, FaultKind, FaultPlan, FaultSpec, RecoveryConfig, RecoveryRung,
};
pub use report::{ClusterCost, EngineError, EngineReport, EngineStats};
pub use resident::{ResidentChip, VerdictSnapshot};
pub use shard::{
    harvest_shard, partition, shard_of, worst_case_entries, write_merged_journal,
    PlannedShardFault, ShardContribution, ShardFault, ShardFaultPlan,
};
