//! Crash-safe file I/O for every artifact the engine persists, with
//! deterministic disk-fault injection for chaos drills.
//!
//! Three primitives cover all on-disk traffic:
//!
//! - [`Fs::write_atomic`] — write-temp + fsync + rename, so a reader never
//!   observes a half-written file: it sees the old bytes or the new bytes,
//!   nothing in between. Used for the result cache, profile/signoff
//!   exports, and benchmark baselines.
//! - [`Fs::append_durable`] — append + fsync, for the checkpoint journal
//!   and the run ledger. A crash can tear at most the *trailing* record,
//!   which CRC framing lets readers detect and skip.
//! - [`Fs::read`] — plain read, with an optional injected bit-flip so the
//!   corruption-detection paths (CRC mismatches) are drilled end to end.
//!
//! Fault injection mirrors the recovery ladder's [`FaultPlan`]
//! (`crate::recovery::FaultPlan`) philosophy: a [`DiskFaultPlan`] is a pure
//! data structure (no RNG state, no wall clock), so the same plan produces
//! the same faults on every run and machine. Faults target paths by
//! substring and either fire forever or a fixed number of times.

use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xedb8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding every persisted record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// The disk failure class a [`DiskFaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsFaultKind {
    /// Write only the first half of the payload, then report success —
    /// the torn write a power loss between write and fsync leaves behind.
    ShortWrite,
    /// Fail the write with [`io::ErrorKind::StorageFull`] (ENOSPC).
    NoSpace,
    /// Fail the fsync — the "fsync lied" class of disk firmware bugs.
    FsyncFail,
    /// Fail the atomic rename, leaving the destination untouched.
    RenameFail,
    /// Flip one bit in the bytes a read returns (silent media corruption);
    /// the flipped position is a pure function of the content length.
    BitFlip,
}

impl FsFaultKind {
    /// Stable lower-case name (chaos-drill reports).
    pub fn name(self) -> &'static str {
        match self {
            FsFaultKind::ShortWrite => "short_write",
            FsFaultKind::NoSpace => "no_space",
            FsFaultKind::FsyncFail => "fsync_fail",
            FsFaultKind::RenameFail => "rename_fail",
            FsFaultKind::BitFlip => "bit_flip",
        }
    }
}

/// One planned disk fault: which paths it hits, what it does, and how many
/// times it fires.
#[derive(Debug, Clone)]
struct FsFault {
    /// Applies to any path whose string form contains this fragment.
    path_contains: String,
    kind: FsFaultKind,
    /// Firings left; `u32::MAX` means persistent.
    remaining: u32,
}

/// A deterministic plan of disk faults, keyed by path substring. Mirrors
/// the numeric ladder's `FaultPlan`: pure data, no randomness, so chaos
/// drills replay identically everywhere.
#[derive(Debug, Clone, Default)]
pub struct DiskFaultPlan {
    faults: Vec<FsFault>,
}

impl DiskFaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Fault every matching operation, forever.
    pub fn fail(&mut self, path_contains: impl Into<String>, kind: FsFaultKind) -> &mut Self {
        self.fail_times(path_contains, kind, u32::MAX)
    }

    /// Fault the first `times` matching operations, then behave normally.
    pub fn fail_times(
        &mut self,
        path_contains: impl Into<String>,
        kind: FsFaultKind,
        times: u32,
    ) -> &mut Self {
        self.faults.push(FsFault { path_contains: path_contains.into(), kind, remaining: times });
        self
    }
}

/// The I/O handle every persistence site goes through: real std I/O by
/// default, with an optional [`DiskFaultPlan`] consulted on each
/// operation. Cloning shares the plan (and its remaining-fire counters).
#[derive(Debug, Clone, Default)]
pub struct Fs {
    faults: Option<Arc<Mutex<DiskFaultPlan>>>,
}

impl Fs {
    /// Plain, fault-free filesystem access.
    pub fn real() -> Self {
        Self::default()
    }

    /// Filesystem access with `plan`'s faults injected.
    pub fn with_faults(plan: DiskFaultPlan) -> Self {
        Fs { faults: Some(Arc::new(Mutex::new(plan))) }
    }

    /// Consume one firing of the first live fault of `kind` matching
    /// `path`, if any.
    fn take_fault(&self, path: &Path, kind: FsFaultKind) -> bool {
        let Some(plan) = &self.faults else {
            return false;
        };
        let mut plan = plan.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let text = path.to_string_lossy();
        for fault in &mut plan.faults {
            if fault.kind == kind && fault.remaining > 0 && text.contains(&fault.path_contains) {
                if fault.remaining != u32::MAX {
                    fault.remaining -= 1;
                }
                return true;
            }
        }
        false
    }

    /// Read a file's bytes, applying any planned [`FsFaultKind::BitFlip`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (a missing file is the caller's `NotFound`).
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = std::fs::read(path)?;
        if self.take_fault(path, FsFaultKind::BitFlip) && !bytes.is_empty() {
            // Deterministic target: the middle byte's bit 3. Content of a
            // given length always corrupts the same way.
            let at = bytes.len() / 2;
            bytes[at] ^= 0b1000;
        }
        Ok(bytes)
    }

    /// [`Fs::read`] as UTF-8 text (lossy — persisted artifacts are ASCII,
    /// and a bit-flipped byte must still reach the CRC check, not abort
    /// the load).
    pub fn read_to_string(&self, path: &Path) -> io::Result<String> {
        Ok(String::from_utf8_lossy(&self.read(path)?).into_owned())
    }

    /// Atomically replace `path` with `bytes`: write `<path>.tmp`, fsync,
    /// rename over the destination, fsync the directory. A crash (or an
    /// injected fault) can leave a stale or torn *temp* file, but the
    /// destination only ever holds the complete old or complete new bytes
    /// — except under an injected [`FsFaultKind::ShortWrite`], which
    /// deliberately publishes a torn file to drill readers.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the destination is untouched when the
    /// temp-file stage fails.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = {
            let mut os = path.as_os_str().to_owned();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        let torn = self.take_fault(path, FsFaultKind::ShortWrite);
        let written = if torn { &bytes[..bytes.len() / 2] } else { bytes };
        let result = (|| -> io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            if self.take_fault(path, FsFaultKind::NoSpace) {
                return Err(io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC"));
            }
            f.write_all(written)?;
            // A torn write models power loss before fsync completed, so the
            // fsync is skipped along with the payload tail.
            if !torn {
                if self.take_fault(path, FsFaultKind::FsyncFail) {
                    return Err(io::Error::other("injected fsync failure"));
                }
                f.sync_all()?;
            }
            if self.take_fault(path, FsFaultKind::RenameFail) {
                return Err(io::Error::other("injected rename failure"));
            }
            std::fs::rename(&tmp, path)?;
            // Make the rename itself durable (best-effort: not every
            // filesystem lets you open a directory for sync).
            if let Some(dir) = path.parent() {
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Append `bytes` to `path` (creating it if needed) and fsync, so a
    /// completed append survives power loss. A crash — or an injected
    /// [`FsFaultKind::ShortWrite`] — can tear the *last* record only;
    /// CRC-framed readers detect and skip it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append_durable(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.take_fault(path, FsFaultKind::NoSpace) {
            return Err(io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC"));
        }
        let torn = self.take_fault(path, FsFaultKind::ShortWrite);
        let written = if torn { &bytes[..bytes.len() / 2] } else { bytes };
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(written)?;
        if !torn {
            if self.take_fault(path, FsFaultKind::FsyncFail) {
                return Err(io::Error::other("injected fsync failure"));
            }
            f.sync_all()?;
        }
        Ok(())
    }

    /// Remove a file; a missing file is success (idempotent cleanup).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than `NotFound`.
    pub fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pcv-fs-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Published CRC-32 (IEEE) check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let d = dir("atomic");
        let path = d.join("file");
        let fs = Fs::real();
        fs.write_atomic(&path, b"first").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"first");
        fs.write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"second, longer payload");
        assert!(!d.join("file.tmp").exists(), "temp file must not linger");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn failed_atomic_write_leaves_old_bytes() {
        let d = dir("atomic-fail");
        let path = d.join("file");
        let fs = Fs::real();
        fs.write_atomic(&path, b"stable").unwrap();
        for kind in [FsFaultKind::NoSpace, FsFaultKind::FsyncFail, FsFaultKind::RenameFail] {
            let mut plan = DiskFaultPlan::new();
            plan.fail("file", kind);
            let faulty = Fs::with_faults(plan);
            let err = faulty.write_atomic(&path, b"overwrite").unwrap_err();
            if kind == FsFaultKind::NoSpace {
                assert_eq!(err.kind(), io::ErrorKind::StorageFull);
            }
            assert_eq!(Fs::real().read(&path).unwrap(), b"stable", "{} damaged it", kind.name());
            assert!(!d.join("file.tmp").exists(), "{} leaked a temp file", kind.name());
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn short_write_publishes_a_torn_file() {
        let d = dir("torn");
        let path = d.join("file");
        let mut plan = DiskFaultPlan::new();
        plan.fail_times("file", FsFaultKind::ShortWrite, 1);
        let fs = Fs::with_faults(plan);
        fs.write_atomic(&path, b"0123456789").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"01234", "only half landed");
        // The fault was one-shot: the next write is whole again.
        fs.write_atomic(&path, b"0123456789").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"0123456789");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn append_accumulates_and_short_append_tears_the_tail() {
        let d = dir("append");
        let path = d.join("log");
        let mut plan = DiskFaultPlan::new();
        plan.fail_times("log", FsFaultKind::ShortWrite, 1);
        let fs = Fs::with_faults(plan);
        fs.append_durable(&path, b"torn-record\n").unwrap(); // one-shot fault fires here
        fs.append_durable(&path, b"whole-1\n").unwrap();
        fs.append_durable(&path, b"whole-2\n").unwrap();
        let text = String::from_utf8(fs.read(&path).unwrap()).unwrap();
        assert!(text.starts_with("torn-"), "got {text:?}");
        assert!(text.contains("whole-1\n"));
        assert!(text.contains("whole-2\n"));
        assert!(!text.contains("torn-record"), "the torn append must be incomplete");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bit_flip_corrupts_reads_deterministically() {
        let d = dir("flip");
        let path = d.join("file");
        Fs::real().write_atomic(&path, b"abcdefgh").unwrap();
        let flipped = |fs: &Fs| fs.read(&path).unwrap();
        let mut plan = DiskFaultPlan::new();
        plan.fail("file", FsFaultKind::BitFlip);
        let a = flipped(&Fs::with_faults(plan.clone()));
        let b = flipped(&Fs::with_faults(plan));
        assert_eq!(a, b, "the flip is a pure function of the content");
        assert_ne!(a, b"abcdefgh");
        assert_eq!(a.iter().zip(b"abcdefgh").filter(|(x, y)| x != y).count(), 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn faults_only_hit_matching_paths() {
        let d = dir("match");
        let mut plan = DiskFaultPlan::new();
        plan.fail("cache", FsFaultKind::NoSpace);
        assert!(!plan.is_empty());
        let fs = Fs::with_faults(plan);
        fs.write_atomic(&d.join("journal"), b"ok").unwrap();
        assert!(fs.write_atomic(&d.join("signoff.cache"), b"no").is_err());
        let _ = std::fs::remove_dir_all(&d);
    }
}
