//! Deterministic sharding of a chip's victim set across worker processes.
//!
//! A shard is a *stable* slice of the victim list: assignment hashes each
//! victim's **name** (never its `PNetId`, which depends on parse order)
//! through FNV-1a plus a splitmix64 finalizer, so a re-run, a replacement
//! worker, or a differently-threaded coordinator all derive the identical
//! work slice. Within a shard, victims keep their chip-order relative
//! positions, which keeps per-shard journals and caches replayable.
//!
//! The module also carries the coordinator's merge primitives: a shard
//! that finished delivers verdicts through its result cache; a shard that
//! died mid-run leaves a journal remnant; a shard that exhausted its
//! restart budget contributes synthesized conservative
//! [`RecoveryRung::WorstCase`] entries (never a hole in the report). The
//! coordinator folds all three into one merged journal under its own
//! header and replays it through the ordinary resume path — byte-identity
//! with a single-process run is inherited from the resume proof, not
//! re-argued here.
//!
//! [`ShardFaultPlan`] is the chaos layer: deterministic worker-side
//! drills (panic, stall) and coordinator-side drills (SIGKILL at a
//! fraction, torn journal, duplicate journal entry) so every failure mode
//! the supervisor claims to survive is a repeatable test, not an anecdote.

use crate::cache::ResultCache;
use crate::durable::{Journal, JournalEntry, ReplayAttempt, ReplayDegradation};
use crate::fingerprint::{cluster_fingerprint, Fnv1a};
use crate::fs::Fs;
use crate::recovery::RecoveryRung;
use crate::resident::ResidentChip;
use pcv_netlist::PNetId;
use pcv_xtalk::prune::prune_victim_with_components;
use pcv_xtalk::PruneConfig;
use std::collections::HashSet;
use std::io;
use std::path::Path;

/// splitmix64 finalizer: decorrelates the FNV stream from the modulus so
/// bucket balance does not depend on name suffix patterns (bus bit
/// indices, for instance, differ only in their last bytes).
fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The shard (in `0..shards`) that owns the victim named `name`.
///
/// Pure function of the name and the shard count — independent of net
/// ids, victim order, worker count, and platform.
#[must_use]
pub fn shard_of(name: &str, shards: usize) -> usize {
    let shards = shards.max(1);
    let mut h = Fnv1a::new();
    h.write_str("pcv-shard v1");
    h.write_str(name);
    (splitmix64(h.finish()) % shards as u64) as usize
}

/// Partition `victims` into `shards` stable slices by [`shard_of`],
/// preserving chip order within each slice.
///
/// Every victim lands in exactly one slice; empty slices are possible
/// (and fine) for tiny victim sets.
#[must_use]
pub fn partition(chip: &ResidentChip, victims: &[PNetId], shards: usize) -> Vec<Vec<PNetId>> {
    let shards = shards.max(1);
    let mut slices = vec![Vec::new(); shards];
    for &v in victims {
        slices[shard_of(chip.db().net(v).name(), shards)].push(v);
    }
    slices
}

/// One deterministic failure drill, aimed at a single shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardFault {
    /// Worker aborts (as a panic/crash would) after emitting this many
    /// verdicts. Executed worker-side.
    PanicAfter(usize),
    /// Worker stops emitting output — verdicts, beats, the `done` line —
    /// after this many verdicts, forever. Executed worker-side; the
    /// coordinator's heartbeat deadline is what catches it.
    StallAfter(usize),
    /// Coordinator SIGKILLs the worker once it has streamed at least
    /// `frac` of its slice (e.g. `0.25`, `0.5`, `0.75`).
    SigkillAtFrac(f64),
    /// After killing the worker, tear the final line of its shard journal
    /// (truncate mid-frame) before the restart — the replay must drop
    /// exactly that line and recompute it.
    TornJournal,
    /// After killing the worker, append a duplicate of the journal's last
    /// intact cluster record — replay must dedupe by victim name.
    DuplicateEntry,
}

/// One planned fault: which shard, what fault, and whether it re-arms
/// after a restart (`persistent`) or fires once (the default — drills
/// that should let the restarted worker finish cleanly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedShardFault {
    /// Target shard index.
    pub shard: usize,
    /// The drill.
    pub fault: ShardFault,
    /// `true` re-arms after every restart (how the restart budget gets
    /// exhausted on purpose); `false` fires on the first incarnation only.
    pub persistent: bool,
}

/// A deterministic chaos schedule for a sharded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardFaultPlan {
    faults: Vec<PlannedShardFault>,
}

impl ShardFaultPlan {
    /// An empty plan (no drills).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a one-shot fault against `shard`: it fires on the shard's
    /// first incarnation and is disarmed for restarts.
    #[must_use]
    pub fn with_fault(mut self, shard: usize, fault: ShardFault) -> Self {
        self.faults.push(PlannedShardFault { shard, fault, persistent: false });
        self
    }

    /// Arm a persistent fault against `shard`: every incarnation —
    /// including restarts — re-runs the drill, which is how a restart
    /// budget gets exhausted deterministically.
    #[must_use]
    pub fn with_persistent_fault(mut self, shard: usize, fault: ShardFault) -> Self {
        self.faults.push(PlannedShardFault { shard, fault, persistent: true });
        self
    }

    /// Faults aimed at `shard`, filtered for the given incarnation:
    /// `incarnation` 0 is the first launch, 1+ are restarts (which see
    /// only persistent faults).
    pub fn faults_for(
        &self,
        shard: usize,
        incarnation: u32,
    ) -> impl Iterator<Item = &PlannedShardFault> {
        self.faults.iter().filter(move |f| f.shard == shard && (incarnation == 0 || f.persistent))
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Synthesize conservative [`RecoveryRung::WorstCase`] journal entries
/// for victims a dead shard never finished: rail-to-rail peaks
/// (`rise = vdd`, `fall = -vdd`), no receiver check, and a recorded
/// degradation trail explaining *why* (the supervision verdict in
/// `reason`). The cluster fingerprint is computed coordinator-side
/// exactly as the engine would, so replay adopts these entries verbatim
/// instead of silently recomputing a real verdict.
#[must_use]
pub fn worst_case_entries(
    chip: &ResidentChip,
    prune: &PruneConfig,
    config_fp: u64,
    vdd: f64,
    missing: &[PNetId],
    reason: &str,
) -> Vec<JournalEntry> {
    let ctx = chip.ctx();
    missing
        .iter()
        .map(|&v| {
            let cluster = prune_victim_with_components(ctx.db, v, prune, chip.component_sizes());
            JournalEntry {
                name: ctx.db.net(v).name().to_owned(),
                fingerprint: cluster_fingerprint(&ctx, &cluster, config_fp),
                rise_bits: vdd.to_bits(),
                fall_bits: (-vdd).to_bits(),
                receiver: None,
                degraded: Some(ReplayDegradation {
                    recovered: RecoveryRung::WorstCase,
                    attempts: vec![ReplayAttempt {
                        rung: RecoveryRung::Baseline,
                        reason: reason.to_owned(),
                    }],
                }),
            }
        })
        .collect()
}

/// What one shard contributed at merge time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardContribution {
    /// Entries harvested from the shard's result cache (the shard
    /// finished its slice).
    pub from_cache: usize,
    /// Entries harvested from the shard's journal remnant (the shard
    /// died mid-run with checkpoints on disk).
    pub from_journal: usize,
    /// Conservative worst-case entries synthesized for victims the shard
    /// never delivered.
    pub worst_case: usize,
    /// Torn/corrupt journal lines skipped while harvesting.
    pub torn_lines: usize,
}

/// Harvest everything shard `slice` produced — cache first, then journal
/// remnant — and fill the remainder with [`worst_case_entries`] when
/// `reason` is `Some` (a shard that exhausted its restart budget).
///
/// Entries are emitted in slice order. Cache entries are only adopted
/// when their stored fingerprint matches the current cluster fingerprint,
/// and journal entries only when the journal header matches
/// `(config_fp, shard chip fingerprint)` — stale artifacts degrade to
/// recomputation (or worst-case), never to a wrong verdict.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn harvest_shard(
    chip: &ResidentChip,
    prune: &PruneConfig,
    config_fp: u64,
    vdd: f64,
    slice: &[PNetId],
    cache_path: &Path,
    fs: &Fs,
    exhausted_reason: Option<&str>,
) -> (Vec<JournalEntry>, ShardContribution) {
    let ctx = chip.ctx();
    let mut out = Vec::new();
    let mut stat = ShardContribution::default();

    let (cache, cache_stats) = ResultCache::load_with(fs, cache_path);
    stat.torn_lines += usize::from(cache_stats.torn);

    let shard_fp = crate::fingerprint::chip_slice_fingerprint(&ctx, slice);
    let load = Journal::load(fs, &Journal::path_for(cache_path));
    stat.torn_lines += load.skipped;
    let journal_ok = load.header == Some((config_fp, shard_fp));
    let mut journaled: std::collections::HashMap<&str, &JournalEntry> =
        std::collections::HashMap::new();
    if journal_ok {
        for e in &load.entries {
            journaled.insert(e.name.as_str(), e); // last write wins; dupes collapse
        }
    }

    let mut missing = Vec::new();
    let mut seen: HashSet<&str> = HashSet::new();
    for &v in slice {
        let name = ctx.db.net(v).name();
        if !seen.insert(name) {
            continue;
        }
        let cluster = prune_victim_with_components(ctx.db, v, prune, chip.component_sizes());
        let fp = cluster_fingerprint(&ctx, &cluster, config_fp);
        if let Some(entry) = cache.get(name).filter(|e| e.fingerprint == fp) {
            out.push(JournalEntry {
                name: name.to_owned(),
                fingerprint: entry.fingerprint,
                rise_bits: entry.rise_bits,
                fall_bits: entry.fall_bits,
                receiver: entry.receiver.clone(),
                degraded: None,
            });
            stat.from_cache += 1;
        } else if let Some(&entry) = journaled.get(name).filter(|e| e.fingerprint == fp) {
            out.push(entry.clone());
            stat.from_journal += 1;
        } else if exhausted_reason.is_some() {
            missing.push(v);
        }
    }
    if let Some(reason) = exhausted_reason {
        let wc = worst_case_entries(chip, prune, config_fp, vdd, &missing, reason);
        stat.worst_case = wc.len();
        out.extend(wc);
    }
    (out, stat)
}

/// Write the coordinator's merged journal: a fresh header over the
/// **full** victim list, followed by every harvested entry in one
/// durable batch. [`crate::Engine::resume_resident`] over the merged
/// cache path then adopts matching entries bit-for-bit and recomputes
/// any stragglers — producing a sign-off byte-identical to a
/// single-process run.
///
/// # Errors
///
/// Propagates I/O failures from the header write or the batch append.
pub fn write_merged_journal(
    fs: &Fs,
    merged_cache: &Path,
    config_fp: u64,
    chip_fp: u64,
    entries: &[JournalEntry],
) -> io::Result<()> {
    let path = Journal::path_for(merged_cache);
    let journal = Journal::begin(fs, &path, config_fp, chip_fp)?;
    journal.record_all(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            for name in ["bus0.3", "net_17", "clk", "rnd42"] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards), "assignment must be pure");
            }
        }
    }

    #[test]
    fn shard_of_spreads_bus_bits() {
        // Names differing only in a trailing index must not all collapse
        // into one bucket.
        let mut seen = HashSet::new();
        for bit in 0..32 {
            seen.insert(shard_of(&format!("bus0.{bit}"), 4));
        }
        assert!(seen.len() >= 3, "splitmix finalizer should spread suffix-only names");
    }

    #[test]
    fn fault_plan_one_shot_vs_persistent() {
        let plan = ShardFaultPlan::new()
            .with_fault(1, ShardFault::SigkillAtFrac(0.5))
            .with_persistent_fault(2, ShardFault::PanicAfter(0));
        assert_eq!(plan.faults_for(1, 0).count(), 1);
        assert_eq!(plan.faults_for(1, 1).count(), 0, "one-shot disarms on restart");
        assert_eq!(plan.faults_for(2, 3).count(), 1, "persistent survives restarts");
        assert_eq!(plan.faults_for(0, 0).count(), 0);
    }
}
