//! The durability layer: write-ahead checkpoint journal, advisory run
//! lock, and cooperative stop flag — everything that makes a sign-off run
//! killable and resumable.
//!
//! # Journal
//!
//! While a run executes, every *freshly computed* cluster verdict is
//! appended to `<cache>.journal` as one CRC-framed JSON line (cache hits
//! are not journaled — the cache file already holds them durably). A
//! `SIGKILL` or power loss therefore loses at most the clusters that were
//! in flight. [`Engine::resume`](crate::Engine::resume) replays the
//! journal: entries whose cluster fingerprint still matches the current
//! netlist + configuration are adopted verbatim (exact `f64` bits, exact
//! degradation trail), everything else is recomputed, and the merged
//! report is byte-identical to an uninterrupted run.
//!
//! Record framing is `\<crc32 as 8 hex\> \<space\> \<json payload\>` per
//! line; the CRC covers the payload bytes. The first record is a header
//! carrying the config and chip-slice fingerprints; a resume against a
//! journal whose header no longer matches silently discards it and runs
//! fresh — a stale journal can cost recomputation, never correctness.
//!
//! # Lock
//!
//! [`RunLock`] is an advisory `<cache>.lock` file created with
//! `O_CREAT|O_EXCL`, holding the owner's pid. A second run against the
//! same cache directory gets a typed contention error instead of the two
//! runs corrupting each other's journal and cache. Locks left behind by a
//! dead process (pid no longer alive) are detected and broken.
//!
//! # Stop
//!
//! [`StopFlag`] is the graceful half of kill-and-resume: raising it makes
//! the engine drain — in-flight clusters complete (so their verdicts stay
//! deterministic and journaled), queued clusters are skipped — and the run
//! returns early with a valid checkpoint on disk and the ledger marked
//! resumable. The flag wraps the same [`CancelToken`] type the numeric
//! stack uses, so a caller's Ctrl-C handler can share one token between
//! the engine and its own long computations.

use crate::cache::CachedReceiver;
use crate::fs::{crc32, Fs};
use crate::recovery::RecoveryRung;
use pcv_mor::CancelToken;
use pcv_obs::{EngineEvent, EventSink};
use pcv_trace::json::str_lit;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Durability knobs for an engine run (all of them only take effect when
/// [`EngineConfig::cache_path`](crate::EngineConfig::cache_path) names a
/// location to persist next to).
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Maintain the write-ahead checkpoint journal (`<cache>.journal`) so
    /// a killed run can [`resume`](crate::Engine::resume). On by default.
    pub journal: bool,
    /// Take the advisory run lock (`<cache>.lock`) so two concurrent runs
    /// cannot corrupt the shared cache directory. On by default.
    pub lock: bool,
    /// Cooperative stop flag: when raised mid-run, the engine drains
    /// (in-flight clusters finish and are checkpointed, queued ones are
    /// skipped) and returns an interrupted, resumable report. `None`
    /// (the default) makes the run uninterruptible.
    pub stop: Option<StopFlag>,
    /// The I/O handle every persisted artifact goes through — swap in
    /// [`Fs::with_faults`] to chaos-drill the storage layer.
    pub fs: Fs,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig { journal: true, lock: true, stop: None, fs: Fs::real() }
    }
}

/// Cooperative stop request for a running engine. Clones share the flag.
///
/// Raising the flag ([`StopFlag::stop`]) asks the engine to drain: no new
/// cluster jobs start, in-flight ones finish and are checkpointed, and the
/// run returns an [interrupted](crate::EngineReport::interrupted) report.
/// The flag is a [`CancelToken`] underneath, so the same handle a Ctrl-C
/// hook raises can also cancel caller-side numeric work.
#[derive(Debug, Clone, Default)]
pub struct StopFlag {
    token: CancelToken,
}

impl StopFlag {
    /// A flag that never fires until [`StopFlag::stop`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a graceful stop. All clones observe it.
    pub fn stop(&self) {
        self.token.cancel();
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        self.token.is_cancelled()
    }

    /// The underlying [`CancelToken`], for callers that want to thread the
    /// same stop signal into their own `pcv_mor` computations.
    pub fn cancel_token(&self) -> CancelToken {
        self.token.clone()
    }
}

/// An [`EventSink`] that raises a [`StopFlag`] after a fixed number of
/// cluster completions — the deterministic "kill switch" the crash drills
/// use to interrupt a run at a chosen progress point.
#[derive(Debug)]
pub struct StopAfter {
    flag: StopFlag,
    remaining: AtomicUsize,
}

impl StopAfter {
    /// Stop `flag` once `after` clusters have finished.
    pub fn new(flag: StopFlag, after: usize) -> Self {
        StopAfter { flag, remaining: AtomicUsize::new(after) }
    }
}

impl EventSink for StopAfter {
    fn event(&self, ev: &EngineEvent) {
        if matches!(ev, EngineEvent::ClusterFinished { .. }) {
            let before = self
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .unwrap_or(0);
            if before <= 1 {
                self.flag.stop();
            }
        }
    }
}

/// One failed attempt in a replayed degradation trail (the durable subset
/// of [`crate::recovery::Attempt`]: wall-clock durations are not
/// persisted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayAttempt {
    /// Rung the attempt ran at.
    pub rung: RecoveryRung,
    /// Why it failed.
    pub reason: String,
}

/// A replayed degradation: the rung that stood and the attempt trail, as
/// journaled. Carries everything `signoff_json` serializes, so a replayed
/// degraded verdict renders byte-identically to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayDegradation {
    /// The rung whose verdict stood.
    pub recovered: RecoveryRung,
    /// Failed attempts, in ladder order.
    pub attempts: Vec<ReplayAttempt>,
}

/// One journaled cluster verdict — the exact bits needed to reconstruct
/// the cluster's [`pcv_xtalk::NetVerdict`] and degradation record without
/// re-running the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Victim net name.
    pub name: String,
    /// Cluster fingerprint at the time the verdict was computed; replay
    /// requires it to match the current one.
    pub fingerprint: u64,
    /// Worst rising peak, as `f64` bits.
    pub rise_bits: u64,
    /// Worst falling peak, as `f64` bits.
    pub fall_bits: u64,
    /// Receiver check outcome, when one ran.
    pub receiver: Option<CachedReceiver>,
    /// Degradation trail, when the verdict came from a rung above
    /// baseline.
    pub degraded: Option<ReplayDegradation>,
}

/// Result of loading a journal for replay.
#[derive(Debug, Clone, Default)]
pub struct JournalLoad {
    /// `(config_fingerprint, chip_fingerprint)` from the header record,
    /// when one was readable.
    pub header: Option<(u64, u64)>,
    /// Every intact cluster record, in append order.
    pub entries: Vec<JournalEntry>,
    /// Lines dropped for framing, CRC, or schema reasons (a torn tail
    /// append shows up here, not as a wrong verdict).
    pub skipped: usize,
}

/// The write-ahead checkpoint journal: an append handle over
/// `<cache>.journal`. See the [module docs](self) for the format.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
    fs: Fs,
}

/// Frame one payload as a journal line: CRC over the payload bytes.
fn frame(payload: &str) -> String {
    format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
}

/// Unframe one journal line: verify the CRC, return the payload.
fn unframe(line: &str) -> Option<&str> {
    let (crc_hex, payload) = line.split_at_checked(9)?;
    let crc = u32::from_str_radix(&crc_hex[..8], 16).ok()?;
    if crc_hex.as_bytes()[8] != b' ' || crc32(payload.as_bytes()) != crc {
        return None;
    }
    Some(payload)
}

/// Look a rung up by its stable name.
fn rung_from_name(name: &str) -> Option<RecoveryRung> {
    RecoveryRung::ALL.iter().copied().find(|r| r.name() == name)
}

impl JournalEntry {
    /// Render as the journal's JSON payload (one line, unframed).
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"cluster\",\"name\":{},\"fp\":\"{:016x}\",\
             \"rise\":\"{:016x}\",\"fall\":\"{:016x}\",\"receiver\":",
            str_lit(&self.name),
            self.fingerprint,
            self.rise_bits,
            self.fall_bits
        );
        match &self.receiver {
            Some(r) => out.push_str(&format!(
                "{{\"cell\":{},\"peak\":\"{:016x}\",\"propagates\":{}}}",
                str_lit(&r.cell),
                r.output_peak_bits,
                r.propagates
            )),
            None => out.push_str("null"),
        }
        out.push_str(",\"degraded\":");
        match &self.degraded {
            Some(d) => {
                out.push_str(&format!(
                    "{{\"recovered\":{},\"attempts\":[",
                    str_lit(d.recovered.name())
                ));
                for (i, a) in d.attempts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"rung\":{},\"reason\":{}}}",
                        str_lit(a.rung.name()),
                        str_lit(&a.reason)
                    ));
                }
                out.push_str("]}");
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Parse a cluster payload; `None` for anything malformed (the caller
    /// counts it as skipped).
    fn from_value(v: &pcv_obs::json::Value) -> Option<JournalEntry> {
        let hex = |v: &pcv_obs::json::Value| u64::from_str_radix(v.as_str()?, 16).ok();
        let rise_bits = hex(v.get("rise")?)?;
        let fall_bits = hex(v.get("fall")?)?;
        // The engine never journals non-finite peaks; a bit pattern that
        // decodes to NaN/∞ is corruption that slipped past the CRC.
        if !f64::from_bits(rise_bits).is_finite() || !f64::from_bits(fall_bits).is_finite() {
            return None;
        }
        let receiver = match v.get("receiver")? {
            pcv_obs::json::Value::Null => None,
            r => {
                let output_peak_bits = hex(r.get("peak")?)?;
                if !f64::from_bits(output_peak_bits).is_finite() {
                    return None;
                }
                Some(CachedReceiver {
                    cell: r.get("cell")?.as_str()?.to_owned(),
                    output_peak_bits,
                    propagates: match r.get("propagates")? {
                        pcv_obs::json::Value::Bool(b) => *b,
                        _ => return None,
                    },
                })
            }
        };
        let degraded = match v.get("degraded")? {
            pcv_obs::json::Value::Null => None,
            d => {
                let mut attempts = Vec::new();
                for a in d.get("attempts")?.as_arr()? {
                    attempts.push(ReplayAttempt {
                        rung: rung_from_name(a.get("rung")?.as_str()?)?,
                        reason: a.get("reason")?.as_str()?.to_owned(),
                    });
                }
                Some(ReplayDegradation {
                    recovered: rung_from_name(d.get("recovered")?.as_str()?)?,
                    attempts,
                })
            }
        };
        Some(JournalEntry {
            name: v.get("name")?.as_str()?.to_owned(),
            fingerprint: hex(v.get("fp")?)?,
            rise_bits,
            fall_bits,
            receiver,
            degraded,
        })
    }
}

impl Journal {
    /// The journal path for a cache at `cache`: `<cache>.journal`.
    pub fn path_for(cache: &Path) -> PathBuf {
        let mut os = cache.as_os_str().to_owned();
        os.push(".journal");
        PathBuf::from(os)
    }

    /// Start a fresh journal at `path`, truncating any previous one: the
    /// header record (config + chip fingerprints) is written atomically,
    /// so a crash right here leaves either the old journal or a valid new
    /// header — never a torn header.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers treat the journal as best-effort
    /// (a run without a journal is still correct, just not resumable).
    pub fn begin(fs: &Fs, path: &Path, config_fp: u64, chip_fp: u64) -> io::Result<Journal> {
        let header = format!(
            "{{\"kind\":\"run\",\"config\":\"{config_fp:016x}\",\"chip\":\"{chip_fp:016x}\"}}"
        );
        fs.write_atomic(path, frame(&header).as_bytes())?;
        Ok(Journal { path: path.to_owned(), fs: fs.clone() })
    }

    /// Continue appending to an existing journal (the resume path — the
    /// replayed records stay in place, new verdicts append after them).
    pub fn append_to(fs: &Fs, path: &Path) -> Journal {
        Journal { path: path.to_owned(), fs: fs.clone() }
    }

    /// Append one checkpoint record, durably (fsync'd).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a failed append costs resume coverage for
    /// this one cluster, nothing else.
    pub fn record(&self, entry: &JournalEntry) -> io::Result<()> {
        self.fs.append_durable(&self.path, frame(&entry.to_json()).as_bytes())
    }

    /// Append a batch of checkpoint records in one durable write — the
    /// coordinator's journal-merge path, where per-entry fsync would turn
    /// a thousand-cluster merge into a thousand disk round-trips.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the append is all-or-torn-tail, and a torn
    /// tail is exactly what [`Journal::load`] tolerates.
    pub fn record_all(&self, entries: &[JournalEntry]) -> io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut buf = String::new();
        for entry in entries {
            buf.push_str(&frame(&entry.to_json()));
        }
        self.fs.append_durable(&self.path, buf.as_bytes())
    }

    /// Load a journal for replay. Never errors: a missing file is an empty
    /// load, and corrupt lines — torn tail appends, bit flips — are
    /// counted in [`JournalLoad::skipped`] and dropped.
    pub fn load(fs: &Fs, path: &Path) -> JournalLoad {
        let mut load = JournalLoad::default();
        let Ok(text) = fs.read_to_string(path) else {
            return load;
        };
        for (i, line) in text.lines().enumerate() {
            let parsed = unframe(line).and_then(|payload| pcv_obs::json::parse(payload).ok());
            let Some(v) = parsed else {
                load.skipped += 1;
                continue;
            };
            match v.get("kind").and_then(pcv_obs::json::Value::as_str) {
                Some("run") if i == 0 => {
                    let hex = |key: &str| u64::from_str_radix(v.get(key)?.as_str()?, 16).ok();
                    match (hex("config"), hex("chip")) {
                        (Some(c), Some(ch)) => load.header = Some((c, ch)),
                        _ => load.skipped += 1,
                    }
                }
                Some("cluster") => match JournalEntry::from_value(&v) {
                    Some(entry) => load.entries.push(entry),
                    None => load.skipped += 1,
                },
                _ => load.skipped += 1,
            }
        }
        load
    }

    /// Delete the journal (after its contents made it into the cache).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the file already being gone.
    pub fn discard(&self) -> io::Result<()> {
        self.fs.remove(&self.path)
    }
}

/// Why [`RunLock::acquire`] failed.
#[derive(Debug)]
pub enum LockError {
    /// A live process holds the lock.
    Held {
        /// Pid recorded in the lock file.
        pid: u32,
    },
    /// The lock file could not be created or inspected. Advisory locking
    /// is best-effort; callers may proceed unlocked on this branch.
    Io(io::Error),
}

/// An advisory per-cache-directory run lock. Holding the value holds the
/// lock; dropping it releases (deletes) the lock file.
#[derive(Debug)]
pub struct RunLock {
    path: PathBuf,
}

/// Whether `pid` names a live process. On Linux this checks `/proc`;
/// elsewhere it conservatively answers `true` (never break a lock we
/// cannot prove stale).
fn process_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new("/proc").join(pid.to_string()).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

impl RunLock {
    /// The lock path for a cache at `cache`: `<cache>.lock`.
    pub fn path_for(cache: &Path) -> PathBuf {
        let mut os = cache.as_os_str().to_owned();
        os.push(".lock");
        PathBuf::from(os)
    }

    /// Take the lock at `path`, recording our pid and `config_fp`. A lock
    /// held by a dead process (or unreadable) is broken and retaken; a
    /// lock held by a live process is [`LockError::Held`].
    ///
    /// Breaking a stale lock is a single atomic rename onto a
    /// contender-unique claim path: two waiters deciding "stale" at the
    /// same moment cannot both break it, because only one rename of the
    /// same inode succeeds — the loser re-enters the create race and loses
    /// it. Lock files are also *created* atomically with their content
    /// (write a private temp file, then `hard_link` it into place), so a
    /// contender can never observe a half-written lock and misjudge it as
    /// garbage.
    ///
    /// # Errors
    ///
    /// [`LockError::Held`] on contention, [`LockError::Io`] when the file
    /// cannot be created at all.
    pub fn acquire(path: &Path, config_fp: u64) -> Result<RunLock, LockError> {
        let body = format!("pid {}\nconfig {config_fp:016x}\n", std::process::id());
        // Each iteration either returns or observes another contender make
        // progress; a handful of retries outlasts any realistic pile-up.
        for _ in 0..8 {
            match Self::try_create(path, &body) {
                Ok(true) => return Ok(RunLock { path: path.to_owned() }),
                Ok(false) => {}
                Err(e) => return Err(LockError::Io(e)),
            }
            let holder = std::fs::read_to_string(path).ok().and_then(|text| Self::parse_pid(&text));
            if let Some(pid) = holder {
                if process_alive(pid) {
                    return Err(LockError::Held { pid });
                }
            } else if !path.exists() {
                // The file vanished between the failed create and the read:
                // another contender broke it. Re-enter the create race.
                continue;
            }
            // Suspected stale (dead holder, or garbage content). Claim it
            // with one atomic rename; of N simultaneous breakers exactly
            // one wins this rename, the rest fall through and retry.
            let claim = Self::scratch_path(path, "break");
            if std::fs::rename(path, &claim).is_ok() {
                // Re-read what we actually claimed: a live holder may have
                // released and re-taken the lock between our staleness read
                // and the rename. If so, put it back — via `hard_link`, so
                // a newer lock that appeared meanwhile is never clobbered.
                let claimed =
                    std::fs::read_to_string(&claim).ok().and_then(|text| Self::parse_pid(&text));
                if let Some(pid) = claimed.filter(|&p| process_alive(p)) {
                    let _ = std::fs::hard_link(&claim, path);
                    let _ = std::fs::remove_file(&claim);
                    return Err(LockError::Held { pid });
                }
                let _ = std::fs::remove_file(&claim);
            }
        }
        let pid =
            std::fs::read_to_string(path).ok().and_then(|text| Self::parse_pid(&text)).unwrap_or(0);
        Err(LockError::Held { pid })
    }

    /// Atomically materialize the lock file *with its content*: write a
    /// contender-private temp file, then `hard_link` it to `path` (link
    /// fails if `path` exists — the atomic part). Returns `Ok(false)` on
    /// contention.
    fn try_create(path: &Path, body: &str) -> io::Result<bool> {
        let tmp = Self::scratch_path(path, "tmp");
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().write(true).create_new(true).open(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        let linked = std::fs::hard_link(&tmp, path);
        let _ = std::fs::remove_file(&tmp);
        match linked {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// A sibling path unique to this contender — pid alone is not enough,
    /// two threads of one process can contend for the same lock.
    fn scratch_path(path: &Path, tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut os = path.as_os_str().to_owned();
        os.push(format!(".{tag}.{}.{n}", std::process::id()));
        PathBuf::from(os)
    }

    fn parse_pid(text: &str) -> Option<u32> {
        text.lines().find_map(|l| l.strip_prefix("pid "))?.trim().parse().ok()
    }
}

impl Drop for RunLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{DiskFaultPlan, FsFaultKind};

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pcv-durable-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(name: &str, fp: u64) -> JournalEntry {
        JournalEntry {
            name: name.to_owned(),
            fingerprint: fp,
            rise_bits: 0.31_f64.to_bits(),
            fall_bits: (-0.07_f64).to_bits(),
            receiver: Some(CachedReceiver {
                cell: "INVX4".into(),
                output_peak_bits: (-1.2_f64).to_bits(),
                propagates: true,
            }),
            degraded: Some(ReplayDegradation {
                recovered: RecoveryRung::GminBoost,
                attempts: vec![ReplayAttempt {
                    rung: RecoveryRung::Baseline,
                    reason: "numeric \"failure\"".into(),
                }],
            }),
        }
    }

    #[test]
    fn journal_round_trips_header_and_entries() {
        let d = dir("rt");
        let path = d.join("cache.journal");
        let fs = Fs::real();
        let j = Journal::begin(&fs, &path, 0xabc, 0xdef).unwrap();
        j.record(&entry("bus0_1", 7)).unwrap();
        j.record(&JournalEntry { degraded: None, receiver: None, ..entry("acc_q3", 8) }).unwrap();
        let load = Journal::load(&fs, &path);
        assert_eq!(load.header, Some((0xabc, 0xdef)));
        assert_eq!(load.skipped, 0);
        assert_eq!(load.entries.len(), 2);
        assert_eq!(load.entries[0], entry("bus0_1", 7));
        assert_eq!(load.entries[1].name, "acc_q3");
        assert!(load.entries[1].degraded.is_none());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_tail_record_is_skipped_not_misread() {
        let d = dir("torn");
        let path = d.join("cache.journal");
        let fs = Fs::real();
        let j = Journal::begin(&fs, &path, 1, 2).unwrap();
        j.record(&entry("whole", 7)).unwrap();
        // Simulate a crash mid-append: half a framed record at the tail.
        let line = frame(&entry("torn", 9).to_json());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&line.as_bytes()[..line.len() / 2]);
        std::fs::write(&path, bytes).unwrap();
        let load = Journal::load(&fs, &path);
        assert_eq!(load.header, Some((1, 2)));
        assert_eq!(load.entries.len(), 1);
        assert_eq!(load.entries[0].name, "whole");
        assert_eq!(load.skipped, 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn bit_flip_on_read_fails_the_crc() {
        let d = dir("flip");
        let path = d.join("cache.journal");
        let j = Journal::begin(&Fs::real(), &path, 1, 2).unwrap();
        j.record(&entry("a", 7)).unwrap();
        let mut plan = DiskFaultPlan::new();
        plan.fail("journal", FsFaultKind::BitFlip);
        let load = Journal::load(&Fs::with_faults(plan), &path);
        // The flip lands somewhere: whichever record it hits is dropped,
        // and nothing mis-parses into a wrong verdict.
        assert_eq!(load.entries.len() + load.skipped + usize::from(load.header.is_some()), 2);
        assert_eq!(load.skipped, 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_journal_is_an_empty_load() {
        let load = Journal::load(&Fs::real(), Path::new("/nonexistent/pcv.journal"));
        assert_eq!(load.header, None);
        assert!(load.entries.is_empty());
        assert_eq!(load.skipped, 0);
    }

    #[test]
    fn begin_truncates_a_previous_journal() {
        let d = dir("trunc");
        let path = d.join("cache.journal");
        let fs = Fs::real();
        let j = Journal::begin(&fs, &path, 1, 2).unwrap();
        j.record(&entry("old", 7)).unwrap();
        let j = Journal::begin(&fs, &path, 3, 4).unwrap();
        j.record(&entry("new", 8)).unwrap();
        let load = Journal::load(&fs, &path);
        assert_eq!(load.header, Some((3, 4)));
        assert_eq!(load.entries.len(), 1);
        assert_eq!(load.entries[0].name, "new");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn lock_contends_against_a_live_holder_and_breaks_stale_ones() {
        let d = dir("lock");
        let path = d.join("cache.lock");
        let lock = RunLock::acquire(&path, 0xfeed).unwrap();
        match RunLock::acquire(&path, 0xfeed) {
            Err(LockError::Held { pid }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected contention, got {other:?}"),
        }
        drop(lock);
        assert!(!path.exists(), "drop releases the lock file");
        // A lock from a pid that no longer exists is stale and broken.
        std::fs::write(&path, "pid 999999999\nconfig 0\n").unwrap();
        let lock = RunLock::acquire(&path, 0xfeed).unwrap();
        drop(lock);
        // Garbage lock files are stale too.
        std::fs::write(&path, "what even is this").unwrap();
        let _lock = RunLock::acquire(&path, 0xfeed).unwrap();
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn concurrent_stale_break_has_exactly_one_winner() {
        // Two waiters race to break the same stale lock. The break is one
        // atomic rename, so exactly one of them may win; the loser must
        // see a typed Held error, never a second "acquired" lock.
        for round in 0..16 {
            let d = dir(&format!("lock-race-{round}"));
            let path = d.join("cache.lock");
            std::fs::write(&path, "pid 999999999\nconfig 0\n").unwrap();
            let barrier = std::sync::Barrier::new(2);
            let outcomes: Vec<Result<RunLock, LockError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let (path, barrier) = (&path, &barrier);
                        scope.spawn(move || {
                            barrier.wait();
                            RunLock::acquire(path, 0xfeed)
                        })
                    })
                    .collect();
                // Collect both results before any RunLock drops, so a
                // winner finishing early cannot free the lock and let the
                // loser legitimately take it.
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let winners = outcomes.iter().filter(|o| o.is_ok()).count();
            assert_eq!(winners, 1, "round {round}: exactly one breaker may win: {outcomes:?}");
            assert!(
                outcomes.iter().all(|o| matches!(o, Ok(_) | Err(LockError::Held { .. }))),
                "round {round}: the loser sees typed contention: {outcomes:?}"
            );
            drop(outcomes);
            assert!(!path.exists(), "round {round}: winner's drop released the lock");
            let _ = std::fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn stop_after_fires_at_the_threshold() {
        let flag = StopFlag::new();
        let sink = StopAfter::new(flag.clone(), 2);
        let finished = |name: &str| EngineEvent::ClusterFinished {
            name: name.into(),
            cached: false,
            elapsed: std::time::Duration::ZERO,
        };
        assert!(!flag.is_stopped());
        sink.event(&finished("a"));
        assert!(!flag.is_stopped());
        sink.event(&EngineEvent::CacheHit { name: "x".into() });
        assert!(!flag.is_stopped(), "only completions count");
        sink.event(&finished("b"));
        assert!(flag.is_stopped());
        // Further events must not underflow or panic.
        sink.event(&finished("c"));
        assert!(flag.is_stopped());
    }

    #[test]
    fn stop_flag_shares_a_cancel_token() {
        let flag = StopFlag::new();
        let token = flag.cancel_token();
        assert!(!token.is_cancelled());
        flag.stop();
        assert!(token.is_cancelled(), "the token and the flag are one signal");
    }
}
