//! Engine run reports: the serial [`ChipReport`] plus fault records and
//! execution statistics.

use crate::recovery::Degradation;
use pcv_netlist::PNetId;
use pcv_trace::json::{f64_lit, str_lit};
use pcv_trace::Trace;
use pcv_xtalk::ChipReport;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A cluster job that failed — by returning an analysis error or by
/// panicking — without taking the rest of the audit down. Joinable with
/// [`Degradation`] records through `net`/`name`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineError {
    /// The victim whose job failed.
    pub net: PNetId,
    /// Victim net name.
    pub name: String,
    /// Recovery-ladder rung (stable lower-case name, e.g.
    /// `"spice_fallback"`) at which the failure stood — `"baseline"` when
    /// the ladder is disabled.
    pub stage: String,
    /// Error or panic message.
    pub message: String,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.name, self.stage, self.message)
    }
}

/// Where one cluster job's time went — the per-victim cost breakdown of
/// an engine run.
#[derive(Debug, Clone)]
pub struct ClusterCost {
    /// The audited victim.
    pub net: PNetId,
    /// Victim net name.
    pub name: String,
    /// Cluster size after pruning (victim + kept aggressors).
    pub cluster_size: usize,
    /// Whether the verdict came from the incremental cache.
    pub cached: bool,
    /// Time pruning this victim.
    pub prune: Duration,
    /// Time in glitch analysis (both polarities).
    pub analysis: Duration,
    /// Time in the receiver-propagation check, if it ran.
    pub receiver: Duration,
}

impl ClusterCost {
    /// Total accounted time for this job.
    pub fn total(&self) -> Duration {
        self.prune + self.analysis + self.receiver
    }
}

/// Execution statistics for one engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Worker threads used.
    pub workers: usize,
    /// Victims submitted.
    pub victims: usize,
    /// Jobs answered from the incremental cache.
    pub cache_hits: usize,
    /// Jobs that ran the full analysis.
    pub cache_misses: usize,
    /// Jobs whose verdict was adopted from the checkpoint journal of an
    /// interrupted run ([`Engine::resume`](crate::Engine::resume)).
    pub journal_hits: usize,
    /// Jobs skipped because a graceful stop was requested mid-run.
    pub skipped: usize,
    /// Jobs whose verdict came from a recovery rung above baseline.
    pub degraded: usize,
    /// Summed time in pruning across all workers.
    pub prune_time: Duration,
    /// Summed time in glitch analysis across all workers.
    pub analysis_time: Duration,
    /// Summed time in receiver checks across all workers.
    pub receiver_time: Duration,
    /// Summed time inside *failed* recovery-ladder attempts across all
    /// workers — what the ladder cost before a verdict stood.
    pub recovery_time: Duration,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
    /// Per-worker busy time (time spent inside jobs).
    pub worker_busy: Vec<Duration>,
    /// Jobs a worker stole from another worker's queue.
    pub steals: u64,
    /// Peak live heap bytes observed by the instrumented allocator
    /// ([`pcv_obs::TrackingAlloc`]); 0 when tracking is not installed.
    pub peak_alloc_bytes: u64,
    /// Allocations observed by the instrumented allocator; 0 when
    /// tracking is not installed.
    pub allocs: u64,
    /// Lifecycle events the configured [`pcv_obs::EventSink`] shed instead
    /// of delivering (a full [`pcv_obs::EventChannel`] ring or
    /// [`pcv_obs::EventHub`] archive); 0 with no sink or an unbounded one.
    /// Observability never backpressures verification — this counter is
    /// how the loss stays visible.
    pub events_dropped: u64,
}

impl EngineStats {
    /// Fraction of jobs answered from the cache (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean worker busy-fraction over the wall-clock span (0 when
    /// wall time is zero).
    pub fn utilization(&self) -> f64 {
        if self.worker_busy.is_empty() || self.wall_time.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        busy / (self.wall_time.as_secs_f64() * self.worker_busy.len() as f64)
    }

    /// Victims audited per wall-clock second (0 when wall time is zero).
    pub fn throughput(&self) -> f64 {
        if self.wall_time.is_zero() {
            0.0
        } else {
            self.victims as f64 / self.wall_time.as_secs_f64()
        }
    }
}

/// The result of one [`Engine::verify`](crate::Engine::verify) run: the
/// same [`ChipReport`] the serial flow produces, plus per-job fault
/// records and execution statistics.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Verdicts for every victim whose job completed, worst first —
    /// byte-identical to the serial [`pcv_xtalk::verify_chip`] report when
    /// no job failed.
    pub chip: ChipReport,
    /// Victims whose jobs failed (error or panic), in input order. With the
    /// recovery ladder enabled these are exactly the worst-cased victims —
    /// every one of them still has a (conservative) verdict in `chip`.
    pub errors: Vec<EngineError>,
    /// Victims whose verdict came from a recovery rung above baseline, in
    /// input order: the full attempt trail and the rung that stood.
    pub degradations: Vec<Degradation>,
    /// Execution statistics.
    pub stats: EngineStats,
    /// Per-cluster cost breakdown, most expensive first.
    pub clusters: Vec<ClusterCost>,
    /// Merged trace of the run when [`EngineConfig::trace`]
    /// (`crate::EngineConfig::trace`) was set.
    pub trace: Option<Trace>,
    /// `true` when a cooperative stop interrupted the run: the report is
    /// partial ([`EngineStats::skipped`] clusters have no verdict) and the
    /// checkpoint journal on disk makes the run resumable.
    pub interrupted: bool,
}

impl EngineReport {
    /// Render the audit plus an engine summary as plain text.
    pub fn to_text(&self) -> String {
        let mut out = self.chip.to_text();
        if !self.errors.is_empty() {
            out.push_str(&format!("{} failed cluster job(s):\n", self.errors.len()));
            for e in &self.errors {
                out.push_str(&format!("  {e}\n"));
            }
        }
        if !self.degradations.is_empty() {
            out.push_str(&format!("{} degraded cluster(s):\n", self.degradations.len()));
            for d in &self.degradations {
                out.push_str(&format!("  {d}\n"));
            }
        }
        let s = &self.stats;
        out.push_str(&format!(
            "engine: {} workers, {} victims in {:.1} ms ({:.0} victims/s)\n",
            s.workers,
            s.victims,
            s.wall_time.as_secs_f64() * 1e3,
            s.throughput()
        ));
        out.push_str(&format!(
            "engine: cache {}/{} hits ({:.0}%), {} steals, {:.0}% utilization\n",
            s.cache_hits,
            s.cache_hits + s.cache_misses,
            100.0 * s.hit_rate(),
            s.steals,
            100.0 * s.utilization()
        ));
        if s.events_dropped > 0 {
            out.push_str(&format!(
                "engine: event sink shed {} event(s) (bounded buffer overflow)\n",
                s.events_dropped
            ));
        }
        if s.journal_hits > 0 {
            out.push_str(&format!(
                "engine: resumed — {} verdict(s) replayed from the checkpoint journal\n",
                s.journal_hits
            ));
        }
        if self.interrupted {
            out.push_str(&format!(
                "engine: run stopped early, {} cluster(s) left unaudited (resumable)\n",
                s.skipped
            ));
        }
        if !s.recovery_time.is_zero() {
            out.push_str(&format!(
                "engine: recovery ladder spent {:.2} ms in failed attempts\n",
                s.recovery_time.as_secs_f64() * 1e3
            ));
        }
        if s.peak_alloc_bytes > 0 {
            out.push_str(&format!(
                "engine: peak heap {:.2} MiB over {} allocations\n",
                s.peak_alloc_bytes as f64 / (1024.0 * 1024.0),
                s.allocs
            ));
        }
        for c in self.clusters.iter().take(3) {
            out.push_str(&format!(
                "engine: top cost {} ({} nets{}): {:.2} ms analysis, {:.2} ms total\n",
                c.name,
                c.cluster_size,
                if c.cached { ", cached" } else { "" },
                c.analysis.as_secs_f64() * 1e3,
                c.total().as_secs_f64() * 1e3
            ));
        }
        out
    }

    /// The run profile — engine statistics plus the per-cluster cost
    /// breakdown — as a JSON document for downstream tooling.
    pub fn profile_json(&self) -> String {
        let s = &self.stats;
        let mut out = String::from("{\"engine\":{");
        out.push_str(&format!(
            "\"workers\":{},\"victims\":{},\"cache_hits\":{},\"cache_misses\":{},\
             \"journal_hits\":{},\"skipped\":{},\"interrupted\":{},",
            s.workers,
            s.victims,
            s.cache_hits,
            s.cache_misses,
            s.journal_hits,
            s.skipped,
            self.interrupted
        ));
        out.push_str(&format!(
            "\"wall_ms\":{},\"prune_ms\":{},\"analysis_ms\":{},\"receiver_ms\":{},\
             \"recovery_ms\":{},",
            f64_lit(s.wall_time.as_secs_f64() * 1e3),
            f64_lit(s.prune_time.as_secs_f64() * 1e3),
            f64_lit(s.analysis_time.as_secs_f64() * 1e3),
            f64_lit(s.receiver_time.as_secs_f64() * 1e3),
            f64_lit(s.recovery_time.as_secs_f64() * 1e3)
        ));
        out.push_str(&format!(
            "\"steals\":{},\"events_dropped\":{},\"utilization\":{},\"throughput\":{},\
             \"errors\":{},\"degraded\":{}}}",
            s.steals,
            s.events_dropped,
            f64_lit(s.utilization()),
            f64_lit(s.throughput()),
            self.errors.len(),
            s.degraded
        ));
        out.push_str(&format!(
            ",\"memory\":{{\"peak_alloc_bytes\":{},\"allocs\":{}}}",
            s.peak_alloc_bytes, s.allocs
        ));
        out.push_str(",\"clusters\":[");
        for (i, c) in self.clusters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cluster_size\":{},\"cached\":{},\"prune_ms\":{},\
                 \"analysis_ms\":{},\"receiver_ms\":{},\"total_ms\":{}}}",
                str_lit(&c.name),
                c.cluster_size,
                c.cached,
                f64_lit(c.prune.as_secs_f64() * 1e3),
                f64_lit(c.analysis.as_secs_f64() * 1e3),
                f64_lit(c.receiver.as_secs_f64() * 1e3),
                f64_lit(c.total().as_secs_f64() * 1e3)
            ));
        }
        out.push_str("]}");
        out
    }

    /// The signoff document: the serial-identical chip report plus the
    /// degradation trail, as one JSON object. The `"chip"` value is the
    /// unmodified [`ChipReport::to_json`] output (so golden chip-report
    /// bytes are embedded verbatim); `"degradations"` lists every recovered
    /// victim with its rung and attempt trail. Byte-identical across worker
    /// counts for a fixed input and fault plan.
    pub fn signoff_json(&self) -> String {
        let mut out = String::from("{\"chip\":");
        out.push_str(&self.chip.to_json());
        out.push_str(",\"degradations\":[");
        for (i, d) in self.degradations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"net\":{},\"name\":{},\"recovered\":{},\"attempts\":[",
                d.net.0,
                str_lit(&d.name),
                str_lit(d.recovered.name())
            ));
            // Attempt durations are wall-clock and deliberately omitted:
            // this document must stay byte-identical across worker counts
            // and machines. They live in the run ledger instead.
            for (j, a) in d.attempts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"rung\":{},\"reason\":{}}}",
                    str_lit(a.rung.name()),
                    str_lit(&a.reason)
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Write the run's artifacts next to `stem`: `<stem>.profile.json`
    /// (always) and `<stem>.trace.json` (Chrome trace format, when the run
    /// was traced). Returns the paths written.
    /// [`EngineReport::write_profile_with`] on the real filesystem.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_profile(&self, stem: &Path) -> std::io::Result<Vec<PathBuf>> {
        self.write_profile_with(&crate::fs::Fs::real(), stem)
    }

    /// [`EngineReport::write_profile`] through an explicit [`Fs`]
    /// (`crate::fs::Fs`) handle: both artifacts are written atomically
    /// (write-temp + fsync + rename), so a crash mid-export can never
    /// leave a torn JSON document behind.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_profile_with(
        &self,
        fs: &crate::fs::Fs,
        stem: &Path,
    ) -> std::io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        let with_ext = |ext: &str| {
            let mut os = stem.as_os_str().to_owned();
            os.push(ext);
            PathBuf::from(os)
        };
        let profile = with_ext(".profile.json");
        fs.write_atomic(&profile, self.profile_json().as_bytes())?;
        written.push(profile);
        if let Some(trace) = &self.trace {
            let path = with_ext(".trace.json");
            // Render in memory, then publish atomically.
            fs.write_atomic(&path, trace.to_chrome_trace().as_bytes())?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_throughput_handle_empty_runs() {
        let s = EngineStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn hit_rate_counts_hits_over_total() {
        let s = EngineStats { cache_hits: 3, cache_misses: 1, ..Default::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_busy_over_wall_per_worker() {
        let s = EngineStats {
            wall_time: Duration::from_secs(2),
            worker_busy: vec![Duration::from_secs(1), Duration::from_secs(1)],
            ..Default::default()
        };
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn engine_error_displays_name_stage_and_message() {
        let e = EngineError {
            net: PNetId(3),
            name: "bus0_2".into(),
            stage: "spice_fallback".into(),
            message: "injected fault".into(),
        };
        assert_eq!(e.to_string(), "bus0_2 [spice_fallback]: injected fault");
    }

    #[test]
    fn signoff_json_embeds_chip_and_degradations() {
        use crate::recovery::RecoveryRung;
        let report = EngineReport {
            chip: ChipReport {
                verdicts: Vec::new(),
                pruning: pcv_xtalk::prune::PruningStats::compute(&[]),
                warn_frac: 0.1,
                fail_frac: 0.2,
            },
            errors: Vec::new(),
            degradations: vec![Degradation {
                net: PNetId(7),
                name: "bus0_2".into(),
                attempts: vec![crate::recovery::Attempt {
                    rung: RecoveryRung::Baseline,
                    reason: "numeric \"failure\"".into(),
                    elapsed: Duration::from_millis(2),
                }],
                recovered: RecoveryRung::GminBoost,
            }],
            stats: EngineStats::default(),
            clusters: Vec::new(),
            trace: None,
            interrupted: false,
        };
        let json = report.signoff_json();
        assert!(json.starts_with("{\"chip\":{"));
        assert!(json.contains(&format!("{{\"chip\":{}", report.chip.to_json())));
        assert!(json.contains("\"recovered\":\"gmin_boost\""));
        assert!(json.contains("\"rung\":\"baseline\""));
        assert!(json.contains("numeric \\\"failure\\\""), "reasons must be escaped: {json}");
        // Wall-clock attempt durations must never leak into the signoff
        // document — it is byte-compared across worker counts.
        assert!(!json.contains("elapsed"), "signoff must not carry timings: {json}");
    }
}
