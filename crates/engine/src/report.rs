//! Engine run reports: the serial [`ChipReport`] plus fault records and
//! execution statistics.

use pcv_netlist::PNetId;
use pcv_xtalk::ChipReport;
use std::fmt;
use std::time::Duration;

/// A cluster job that failed — by returning an analysis error or by
/// panicking — without taking the rest of the audit down.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineError {
    /// The victim whose job failed.
    pub net: PNetId,
    /// Victim net name.
    pub name: String,
    /// Error or panic message.
    pub message: String,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.message)
    }
}

/// Execution statistics for one engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Worker threads used.
    pub workers: usize,
    /// Victims submitted.
    pub victims: usize,
    /// Jobs answered from the incremental cache.
    pub cache_hits: usize,
    /// Jobs that ran the full analysis.
    pub cache_misses: usize,
    /// Summed time in pruning across all workers.
    pub prune_time: Duration,
    /// Summed time in glitch analysis across all workers.
    pub analysis_time: Duration,
    /// Summed time in receiver checks across all workers.
    pub receiver_time: Duration,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
    /// Per-worker busy time (time spent inside jobs).
    pub worker_busy: Vec<Duration>,
    /// Jobs a worker stole from another worker's queue.
    pub steals: u64,
}

impl EngineStats {
    /// Fraction of jobs answered from the cache (0 when nothing ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean worker busy-fraction over the wall-clock span (0 when
    /// wall time is zero).
    pub fn utilization(&self) -> f64 {
        if self.worker_busy.is_empty() || self.wall_time.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        busy / (self.wall_time.as_secs_f64() * self.worker_busy.len() as f64)
    }

    /// Victims audited per wall-clock second (0 when wall time is zero).
    pub fn throughput(&self) -> f64 {
        if self.wall_time.is_zero() {
            0.0
        } else {
            self.victims as f64 / self.wall_time.as_secs_f64()
        }
    }
}

/// The result of one [`Engine::verify`](crate::Engine::verify) run: the
/// same [`ChipReport`] the serial flow produces, plus per-job fault
/// records and execution statistics.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Verdicts for every victim whose job completed, worst first —
    /// byte-identical to the serial [`pcv_xtalk::verify_chip`] report when
    /// no job failed.
    pub chip: ChipReport,
    /// Victims whose jobs failed (error or panic), in input order.
    pub errors: Vec<EngineError>,
    /// Execution statistics.
    pub stats: EngineStats,
}

impl EngineReport {
    /// Render the audit plus an engine summary as plain text.
    pub fn to_text(&self) -> String {
        let mut out = self.chip.to_text();
        if !self.errors.is_empty() {
            out.push_str(&format!("{} failed cluster job(s):\n", self.errors.len()));
            for e in &self.errors {
                out.push_str(&format!("  {e}\n"));
            }
        }
        let s = &self.stats;
        out.push_str(&format!(
            "engine: {} workers, {} victims in {:.1} ms ({:.0} victims/s)\n",
            s.workers,
            s.victims,
            s.wall_time.as_secs_f64() * 1e3,
            s.throughput()
        ));
        out.push_str(&format!(
            "engine: cache {}/{} hits ({:.0}%), {} steals, {:.0}% utilization\n",
            s.cache_hits,
            s.cache_hits + s.cache_misses,
            100.0 * s.hit_rate(),
            s.steals,
            100.0 * s.utilization()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_throughput_handle_empty_runs() {
        let s = EngineStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn hit_rate_counts_hits_over_total() {
        let s = EngineStats { cache_hits: 3, cache_misses: 1, ..Default::default() };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_busy_over_wall_per_worker() {
        let s = EngineStats {
            wall_time: Duration::from_secs(2),
            worker_busy: vec![Duration::from_secs(1), Duration::from_secs(1)],
            ..Default::default()
        };
        assert!((s.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn engine_error_displays_name_and_message() {
        let e =
            EngineError { net: PNetId(3), name: "bus0_2".into(), message: "injected fault".into() };
        assert_eq!(e.to_string(), "bus0_2: injected fault");
    }
}
