//! The [`Collector`] abstraction: where span and metric events go.
//!
//! Instrumentation sites throughout the workspace call the free functions
//! in the crate root ([`crate::span`], [`crate::count`], [`crate::value`]);
//! those dispatch to whichever collector is installed. With no collector —
//! the default — every site reduces to one relaxed atomic load and an
//! early return, which is what keeps always-compiled instrumentation
//! essentially free in production runs.

use std::time::Instant;

/// One completed span, as handed to a [`Collector`].
///
/// Times are absolute [`Instant`]s; the collector anchors them to its own
/// epoch, so records are meaningful regardless of when the collector was
/// installed.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Category (crate or subsystem, e.g. `"xtalk"`).
    pub cat: &'static str,
    /// Span name (operation, e.g. `"prune"`).
    pub name: &'static str,
    /// Optional per-instance label (e.g. a victim net name). Only built
    /// when a collector is installed.
    pub label: Option<String>,
    /// When the span opened.
    pub start: Instant,
    /// When the span guard dropped.
    pub end: Instant,
    /// Bytes allocated on the recording thread while the span was open
    /// (0 unless a [`crate::mem`] probe is registered).
    pub alloc_bytes: u64,
    /// Allocations made on the recording thread while the span was open
    /// (0 unless a [`crate::mem`] probe is registered).
    pub alloc_count: u64,
}

/// A sink for structured trace events.
///
/// Implementations must be thread-safe: the engine records from every
/// worker thread concurrently. The crate ships two implementations —
/// [`NullCollector`] (discard everything) and
/// [`crate::session::BufferCollector`] (per-thread buffers drained into a
/// deterministic merged [`crate::Trace`]).
pub trait Collector: Send + Sync {
    /// Record one completed span.
    fn record_span(&self, rec: SpanRecord);

    /// Add `delta` to the named monotonic counter.
    fn count(&self, name: &'static str, delta: u64);

    /// Record one sample of the named distribution (histogram).
    fn value(&self, name: &'static str, value: u64);
}

/// A collector that discards every event — the explicit form of "tracing
/// disabled". Installing it is equivalent to installing nothing, but it
/// lets code that *requires* a collector object hold one unconditionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn record_span(&self, _rec: SpanRecord) {}
    fn count(&self, _name: &'static str, _delta: u64) {}
    fn value(&self, _name: &'static str, _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_collector_accepts_everything() {
        let c = NullCollector;
        let now = Instant::now();
        c.record_span(SpanRecord {
            cat: "t",
            name: "x",
            label: None,
            start: now,
            end: now,
            alloc_bytes: 0,
            alloc_count: 0,
        });
        c.count("n", 3);
        c.value("v", 17);
    }
}
