//! Minimal JSON writing helpers — enough to emit valid trace and report
//! documents without an external serializer.

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON string literal for `s`.
pub fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(&mut out, s);
    out
}

/// A JSON number for a finite `f64`, or the exact bit pattern is lost —
/// use [`f64_bits`] alongside when exactness matters. Non-finite values
/// are encoded as strings (plain JSON has no NaN/Infinity).
pub fn f64_lit(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        str_lit(&format!("{v}"))
    }
}

/// The exact bit pattern of an `f64` as a hex string literal — the
/// round-trippable form used by golden reports.
pub fn f64_bits(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        assert_eq!(str_lit("plain"), "\"plain\"");
        assert_eq!(str_lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(str_lit("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(str_lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_stay_numbers() {
        assert_eq!(f64_lit(0.25), "0.25");
        assert_eq!(f64_lit(3.0), "3.0");
        assert_eq!(f64_lit(1e-15), "0.000000000000001");
        assert_eq!(f64_lit(f64::INFINITY), "\"inf\"");
        assert_eq!(f64_bits(1.0), "\"3ff0000000000000\"");
    }
}
