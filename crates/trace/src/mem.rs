//! The span↔allocator bridge: a pluggable memory probe sampled at span
//! open and close, so every span carries the allocation delta of its
//! scope.
//!
//! `pcv-trace` stays dependency-free: it does not know where the numbers
//! come from. An instrumented allocator (see `pcv-obs`) registers a probe
//! returning this thread's cumulative `(bytes_allocated, allocations)`;
//! spans difference the two samples. With no probe registered — the
//! default — span creation pays one lock-free [`std::sync::OnceLock`]
//! read and records zeros.

use std::sync::OnceLock;

/// A memory probe: this thread's cumulative, monotonically increasing
/// `(bytes_allocated, allocation_count)`. Must be cheap and infallible —
/// it runs inside every span when registered.
pub type MemProbe = fn() -> (u64, u64);

static PROBE: OnceLock<MemProbe> = OnceLock::new();

/// Register the process-wide memory probe. First registration wins;
/// later calls are ignored (the probe is sampled from every thread, so
/// swapping it mid-run would make deltas meaningless).
pub fn set_probe(probe: MemProbe) {
    let _ = PROBE.set(probe);
}

/// Sample the registered probe, or `(0, 0)` when none is registered.
#[inline]
pub fn sample() -> (u64, u64) {
    match PROBE.get() {
        Some(probe) => probe(),
        None => (0, 0),
    }
}

/// `true` when a probe is registered.
pub fn probed() -> bool {
    PROBE.get().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_probe_samples_zero_or_first_registration_wins() {
        // Tests share the process-wide OnceLock, so exercise both halves
        // in one test: before any registration the sample is zero; after
        // the first `set_probe`, later registrations cannot replace it.
        if !probed() {
            assert_eq!(sample(), (0, 0));
        }
        set_probe(|| (7, 3));
        let first = sample();
        set_probe(|| (1_000_000, 1_000_000));
        assert_eq!(sample(), first, "second registration must be ignored");
    }
}
