//! Zero-dependency structured tracing and metrics for the PCV pipeline.
//!
//! The verification flow is a multi-stage pipeline (prune → cluster build →
//! SyMPVL reduction → nonlinear integration → receiver audit) whose
//! chip-level cost is dominated by per-cluster work. This crate gives every
//! stage an always-compiled instrumentation point that is effectively free
//! when tracing is off, and produces a deterministic merged profile when it
//! is on:
//!
//! - **Spans** ([`span`], [`span_labeled`]) — RAII guards timing a scope,
//!   with a category, a name, and an optional per-instance label (e.g. the
//!   victim net). Nesting falls out naturally from scope nesting.
//! - **Counters** ([`count`]) — monotonic event counts (cache hits, solver
//!   calls, steals), summed across threads.
//! - **Histograms** ([`value`]) — sample distributions (reduced-model
//!   order, queue depth) in power-of-two buckets.
//! - **Collector** ([`Collector`]) — the pluggable sink. With none
//!   installed (the default) every site costs one relaxed atomic load; the
//!   provided [`BufferCollector`] keeps per-thread buffers so recording
//!   threads never contend.
//! - **Sessions** ([`TraceSession`]) — install, run, [`TraceSession::finish`]
//!   into a [`Trace`]: spans sorted deterministically, metrics aggregated.
//! - **Exports** — [`Trace::to_chrome_trace`] (loadable in
//!   `chrome://tracing` / Perfetto) and [`Trace::to_summary_json`].
//!
//! # Example
//!
//! ```
//! let session = pcv_trace::TraceSession::start();
//! {
//!     let _outer = pcv_trace::span("demo", "outer");
//!     for i in 0..3u64 {
//!         let _inner = pcv_trace::span_labeled("demo", "step", || format!("step{i}"));
//!         pcv_trace::count("demo.steps", 1);
//!         pcv_trace::value("demo.size", 10 * (i + 1));
//!     }
//! }
//! let trace = session.finish();
//! assert_eq!(trace.spans.len(), 4);
//! assert_eq!(trace.counters["demo.steps"], 3);
//! assert_eq!(trace.histograms["demo.size"].max, 30);
//! let chrome = trace.to_chrome_trace();
//! assert!(chrome.contains("\"ph\":\"X\""));
//! ```

#![deny(missing_docs)]

pub mod collector;
pub mod export;
pub mod json;
pub mod mem;
pub mod session;
pub mod trace;

pub use collector::{Collector, NullCollector, SpanRecord};
pub use session::{enabled, install, uninstall, BufferCollector, TraceSession};
pub use trace::{Histogram, Span, SpanTotal, Trace};

use std::sync::Arc;
use std::time::Instant;

/// An open span: records itself to the installed collector when dropped.
///
/// When tracing is disabled this is an empty shell — no clock is read and
/// drop does nothing.
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    collector: Arc<dyn Collector>,
    cat: &'static str,
    name: &'static str,
    label: Option<String>,
    start: Instant,
    /// This thread's cumulative `(bytes, allocs)` at span open, from the
    /// registered [`mem`] probe (zeros when none is registered).
    mem0: (u64, u64),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let (bytes, allocs) = mem::sample();
            active.collector.record_span(SpanRecord {
                cat: active.cat,
                name: active.name,
                label: active.label,
                start: active.start,
                end: Instant::now(),
                alloc_bytes: bytes.saturating_sub(active.mem0.0),
                alloc_count: allocs.saturating_sub(active.mem0.1),
            });
        }
    }
}

/// Open a span. The guard records the elapsed time when dropped.
///
/// `cat` groups related spans (by crate or subsystem); `name` is the
/// operation. Both must be static so the disabled path stays allocation-free.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    open_span(cat, name, || None)
}

/// Open a span with a per-instance label (e.g. a net name). The label
/// closure only runs when a collector is installed, so the disabled path
/// never allocates.
#[inline]
pub fn span_labeled(
    cat: &'static str,
    name: &'static str,
    label: impl FnOnce() -> String,
) -> SpanGuard {
    open_span(cat, name, || Some(label()))
}

fn open_span(
    cat: &'static str,
    name: &'static str,
    label: impl FnOnce() -> Option<String>,
) -> SpanGuard {
    SpanGuard(session::with_collector(|c| (Arc::clone(c), label())).map(|(collector, label)| {
        ActiveSpan { collector, cat, name, label, start: Instant::now(), mem0: mem::sample() }
    }))
}

/// Add `delta` to a monotonic counter. No-op (one atomic load) when
/// tracing is off.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    session::with_collector(|c| c.count(name, delta));
}

/// Record one sample of a distribution. No-op (one atomic load) when
/// tracing is off.
#[inline]
pub fn value(name: &'static str, value: u64) {
    session::with_collector(|c| c.value(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_are_inert() {
        let _gate = session::exclusive_gate();
        assert!(!enabled());
        let g = span("t", "nothing");
        drop(g);
        count("t.count", 1);
        value("t.value", 9);
        // Nothing to observe — the point is that none of this panics or
        // requires a collector.
    }

    #[test]
    fn labels_are_lazy() {
        let _gate = session::exclusive_gate();
        assert!(!enabled());
        let _g = span_labeled("t", "lazy", || panic!("label built while disabled"));
    }

    #[test]
    fn nested_spans_both_record() {
        let session = TraceSession::start();
        {
            let _outer = span("t", "outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span_labeled("t", "inner", || "x".into());
            }
        }
        let trace = session.finish();
        assert_eq!(trace.spans.len(), 2);
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert_eq!(inner.label.as_deref(), Some("x"));
    }
}
