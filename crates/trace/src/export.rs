//! Trace exports: Chrome `trace_event` JSON (loadable in `chrome://tracing`
//! or [Perfetto](https://ui.perfetto.dev)) and a compact machine-readable
//! summary.

use crate::json;
use crate::trace::Trace;
use std::path::Path;

/// Microseconds (Chrome's native unit) from nanoseconds, with sub-µs
/// resolution preserved.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

impl Trace {
    /// Render the trace in Chrome `trace_event` JSON object format:
    /// complete (`"ph":"X"`) events for spans, one counter (`"ph":"C"`)
    /// sample per counter, and thread-name metadata. Load the result in
    /// `chrome://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(128 * (self.spans.len() + 16));
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&ev);
        };
        let threads: std::collections::BTreeSet<u32> = self.spans.iter().map(|s| s.tid).collect();
        for tid in threads {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"name\":\"worker-{tid}\"}}}}"
                ),
            );
        }
        for s in &self.spans {
            let mut fields = Vec::new();
            if let Some(label) = &s.label {
                fields.push(format!("\"label\":{}", json::str_lit(label)));
            }
            if s.alloc_bytes > 0 || s.alloc_count > 0 {
                fields.push(format!("\"alloc_bytes\":{}", s.alloc_bytes));
                fields.push(format!("\"allocs\":{}", s.alloc_count));
            }
            let args = if fields.is_empty() {
                String::new()
            } else {
                format!(",\"args\":{{{}}}", fields.join(","))
            };
            push(
                &mut out,
                format!(
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{}{args}}}",
                    json::str_lit(s.name),
                    json::str_lit(s.cat),
                    us(s.start_ns),
                    us(s.dur_ns),
                    s.tid
                ),
            );
        }
        let end = us(self.end_ns());
        for (name, total) in &self.counters {
            push(
                &mut out,
                format!(
                    "{{\"name\":{n},\"ph\":\"C\",\"ts\":0,\"pid\":1,\
                     \"args\":{{\"value\":0}}}}",
                    n = json::str_lit(name)
                ),
            );
            push(
                &mut out,
                format!(
                    "{{\"name\":{n},\"ph\":\"C\",\"ts\":{end},\"pid\":1,\
                     \"args\":{{\"value\":{total}}}}}",
                    n = json::str_lit(name)
                ),
            );
        }
        out.push_str("]}");
        out
    }

    /// Render a compact summary: counters, histogram statistics, and
    /// summed cost per span kind. Keys are ordered, so the document is
    /// deterministic up to timing values.
    pub fn to_summary_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json::str_lit(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                json::str_lit(name),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                json::f64_lit(h.mean())
            ));
        }
        out.push_str("},\"span_totals\":{");
        for (i, ((cat, name), t)) in self.span_totals().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"total_ns\":{},\"alloc_bytes\":{},\"allocs\":{}}}",
                json::str_lit(&format!("{cat}/{name}")),
                t.count,
                t.total_ns,
                t.alloc_bytes,
                t.alloc_count
            ));
        }
        out.push_str("}}");
        out
    }

    /// Write the Chrome trace next to `path` (exact path, not a sibling).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_trace())
    }

    /// Write the summary JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_summary(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_summary_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Histogram, Span};

    fn sample() -> Trace {
        let mut t = Trace::default();
        t.spans.push(Span {
            cat: "xtalk",
            name: "prune",
            label: Some("bus0_1".into()),
            tid: 0,
            start_ns: 1500,
            dur_ns: 2500,
            alloc_bytes: 4096,
            alloc_count: 12,
        });
        t.spans.push(Span {
            cat: "mor",
            name: "reduce",
            label: None,
            tid: 1,
            start_ns: 4000,
            dur_ns: 1000,
            alloc_bytes: 0,
            alloc_count: 0,
        });
        t.counters.insert("engine.cache.hit".into(), 7);
        let mut h = Histogram::default();
        h.record(3);
        h.record(5);
        t.histograms.insert("mor.order".into(), h);
        t
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let doc = sample().to_chrome_trace();
        assert!(doc.starts_with("{\"displayTimeUnit\""));
        assert!(doc.ends_with("]}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"dur\":2.500"));
        assert!(doc.contains("\"label\":\"bus0_1\",\"alloc_bytes\":4096,\"allocs\":12"));
        // Balanced braces/brackets — a cheap well-formedness check.
        let braces = doc.matches('{').count();
        assert_eq!(braces, doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn summary_has_all_three_sections() {
        let doc = sample().to_summary_json();
        assert!(doc.contains("\"counters\":{\"engine.cache.hit\":7}"));
        assert!(
            doc.contains("\"mor.order\":{\"count\":2,\"sum\":8,\"min\":3,\"max\":5,\"mean\":4.0}")
        );
        assert!(doc.contains(
            "\"xtalk/prune\":{\"count\":1,\"total_ns\":2500,\"alloc_bytes\":4096,\"allocs\":12}"
        ));
        assert!(doc.contains(
            "\"mor/reduce\":{\"count\":1,\"total_ns\":1000,\"alloc_bytes\":0,\"allocs\":0}"
        ));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = Trace::default();
        assert_eq!(t.to_chrome_trace(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
        assert_eq!(t.to_summary_json(), "{\"counters\":{},\"histograms\":{},\"span_totals\":{}}");
    }
}
