//! The merged output of a tracing session: spans, counters, histograms.

use std::collections::BTreeMap;

/// One completed span in the merged trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Category (crate or subsystem).
    pub cat: &'static str,
    /// Operation name.
    pub name: &'static str,
    /// Optional per-instance label (e.g. a net name).
    pub label: Option<String>,
    /// Recording thread (dense index in registration order).
    pub tid: u32,
    /// Start, nanoseconds since the session epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Bytes allocated on the recording thread while this span was open
    /// (0 unless an allocator probe is registered; see `pcv_trace::mem`).
    pub alloc_bytes: u64,
    /// Allocations made on the recording thread while this span was open.
    pub alloc_count: u64,
}

/// A power-of-two histogram of `u64` samples.
///
/// Bucket `i` counts samples whose bit length is `i` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, …),
/// so the full `u64` range fits in 65 fixed buckets with ~2x resolution —
/// plenty for latency and size distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Power-of-two buckets, by sample bit length.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 65] }
    }
}

impl Histogram {
    /// Bucket index for a sample: its bit length.
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample that lands in bucket `i` — the inclusive upper edge
    /// a cumulative exposition (e.g. a Prometheus `le` bound) needs.
    /// Bucket 0 holds only the value 0; bucket `i` (i ≥ 1) tops out at
    /// `2^i - 1`; bucket 64 tops out at `u64::MAX`.
    pub fn bucket_ceiling(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            u64::MAX >> (64 - i.min(64))
        }
    }

    /// Fold `other` into `self` bucket-by-bucket (saturating sum). The
    /// merge of two histograms records exactly the union of their samples.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// Aggregate cost of one `(category, name)` span kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanTotal {
    /// Number of spans.
    pub count: u64,
    /// Summed duration across all of them (nanoseconds).
    pub total_ns: u64,
    /// Summed bytes allocated inside them (0 without an allocator probe).
    pub alloc_bytes: u64,
    /// Summed allocation count inside them.
    pub alloc_count: u64,
}

/// The deterministic merged output of a tracing session.
///
/// Spans are ordered by `(start, thread, category, name, duration)`;
/// counters and histograms live in ordered maps — so two sessions that
/// record the same events (whatever the thread interleaving) produce
/// traces that serialize identically modulo timing values.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans, deterministically ordered.
    pub spans: Vec<Span>,
    /// Monotonic counters, summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// Sample distributions, merged across threads.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Trace {
    /// Summed span cost per `(category, name)` pair, ordered by key.
    pub fn span_totals(&self) -> BTreeMap<(&'static str, &'static str), SpanTotal> {
        let mut totals: BTreeMap<(&'static str, &'static str), SpanTotal> = BTreeMap::new();
        for s in &self.spans {
            let t = totals.entry((s.cat, s.name)).or_default();
            t.count += 1;
            t.total_ns += s.dur_ns;
            t.alloc_bytes += s.alloc_bytes;
            t.alloc_count += s.alloc_count;
        }
        totals
    }

    /// Total duration of the trace: the latest span end (ns since epoch).
    pub fn end_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.start_ns + s.dur_ns).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_stats() {
        let mut h = Histogram::default();
        for v in [5u64, 10, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 116);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!((h.mean() - 29.0).abs() < 1e-12);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn bucket_ceilings_bound_their_buckets() {
        assert_eq!(Histogram::bucket_ceiling(0), 0);
        assert_eq!(Histogram::bucket_ceiling(1), 1);
        assert_eq!(Histogram::bucket_ceiling(2), 3);
        assert_eq!(Histogram::bucket_ceiling(3), 7);
        assert_eq!(Histogram::bucket_ceiling(64), u64::MAX);
        // Every sample lands in the bucket whose ceiling bounds it.
        for v in [0u64, 1, 2, 3, 4, 100, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_of(v);
            assert!(v <= Histogram::bucket_ceiling(i), "{v} exceeds bucket {i} ceiling");
            if i > 0 {
                assert!(v > Histogram::bucket_ceiling(i - 1), "{v} fits bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn merge_is_the_union_of_samples() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [1u64, 9, 100] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 7, 5000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Merging an empty histogram is the identity.
        both.merge(&Histogram::default());
        assert_eq!(a, both);
    }

    #[test]
    fn span_totals_aggregate_by_kind() {
        let mk = |name: &'static str, dur: u64, bytes: u64| Span {
            cat: "t",
            name,
            label: None,
            tid: 0,
            start_ns: 0,
            dur_ns: dur,
            alloc_bytes: bytes,
            alloc_count: bytes / 8,
        };
        let trace = Trace {
            spans: vec![mk("a", 10, 64), mk("b", 5, 16), mk("a", 7, 32)],
            ..Default::default()
        };
        let totals = trace.span_totals();
        assert_eq!(
            totals[&("t", "a")],
            SpanTotal { count: 2, total_ns: 17, alloc_bytes: 96, alloc_count: 12 }
        );
        assert_eq!(
            totals[&("t", "b")],
            SpanTotal { count: 1, total_ns: 5, alloc_bytes: 16, alloc_count: 2 }
        );
        assert_eq!(trace.end_ns(), 10);
    }
}
