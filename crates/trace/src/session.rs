//! Trace sessions: install a collector, run instrumented code, drain a
//! deterministic merged [`Trace`].
//!
//! # Fast path
//!
//! The global dispatch is built so that *disabled* tracing — the default —
//! costs one relaxed atomic load per instrumentation site. When a session
//! is active, each thread caches an `Arc` to the live collector keyed by a
//! session generation counter, so the per-event cost is one atomic load,
//! one thread-local access, and the collector call itself.
//!
//! # Buffering
//!
//! [`BufferCollector`] gives each recording thread its own buffer
//! (registered on first use, appended under an uncontended mutex), so
//! workers never contend on a shared event log. Draining locks every
//! buffer, merges, and sorts spans by `(start, thread, name)` — a
//! deterministic order for any fixed set of events.
//!
//! Sessions are serialized process-wide by a gate mutex: two tests (or two
//! engine runs) that both want tracing take turns instead of corrupting
//! each other's event streams.

use crate::collector::{Collector, SpanRecord};
use crate::trace::{Histogram, Span, Trace};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Is any collector installed? One relaxed load; the only cost paid by
/// instrumentation when tracing is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Generation counter: bumped on every install/uninstall so per-thread
/// collector caches know when to refresh.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The installed collector (None when tracing is off).
static CURRENT: Mutex<Option<Arc<dyn Collector>>> = Mutex::new(None);

/// Serializes sessions process-wide.
static GATE: Mutex<()> = Mutex::new(());

thread_local! {
    /// Per-thread cache of (generation, collector).
    static CACHED: RefCell<(u64, Option<Arc<dyn Collector>>)> = const { RefCell::new((0, None)) };
}

/// Lock a mutex, shrugging off poisoning (a panicked recording thread must
/// not take tracing down with it).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `true` when a collector is installed. Instrumentation sites use this to
/// skip building labels or reading clocks when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Take the session gate *without* installing a collector: while the guard
/// lives, no [`TraceSession`] can start. Used by tests and benchmarks that
/// must observe disabled-mode behavior without racing a concurrent session.
pub fn exclusive_gate() -> MutexGuard<'static, ()> {
    lock(&GATE)
}

/// Run `f` with the installed collector, if any. The disabled path is a
/// single relaxed load.
#[inline]
pub(crate) fn with_collector<R>(f: impl FnOnce(&Arc<dyn Collector>) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let generation = GENERATION.load(Ordering::Acquire);
    CACHED.with(|c| {
        let mut cached = c.borrow_mut();
        if cached.0 != generation {
            *cached = (generation, lock(&CURRENT).clone());
        }
        cached.1.as_ref().map(f)
    })
}

/// Install `collector` as the process-wide event sink (used by
/// [`TraceSession`]; exposed for custom sinks). Returns the previous one.
pub fn install(collector: Arc<dyn Collector>) -> Option<Arc<dyn Collector>> {
    let mut cur = lock(&CURRENT);
    let prev = cur.replace(collector);
    GENERATION.fetch_add(1, Ordering::Release);
    ENABLED.store(true, Ordering::Relaxed);
    prev
}

/// Remove the installed collector, disabling tracing.
pub fn uninstall() -> Option<Arc<dyn Collector>> {
    let mut cur = lock(&CURRENT);
    ENABLED.store(false, Ordering::Relaxed);
    let prev = cur.take();
    GENERATION.fetch_add(1, Ordering::Release);
    prev
}

/// Buffer of one recording thread.
struct ThreadBuf {
    /// Dense thread index in registration order (stable within a session).
    tid: u32,
    events: Mutex<Vec<Event>>,
}

/// One buffered event.
enum Event {
    Span {
        cat: &'static str,
        name: &'static str,
        label: Option<String>,
        start_ns: u64,
        dur_ns: u64,
        alloc_bytes: u64,
        alloc_count: u64,
    },
    Count {
        name: &'static str,
        delta: u64,
    },
    Value {
        name: &'static str,
        value: u64,
    },
}

/// Next unique [`BufferCollector`] instance id (thread buffers are cached
/// per instance, so ids must never repeat within a process).
static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's buffer in the collector it last recorded into.
    static THREAD_BUF: RefCell<Option<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(None) };
}

/// The collector behind [`TraceSession`]: per-thread append-only buffers,
/// merged deterministically at drain time.
pub struct BufferCollector {
    id: u64,
    epoch: Instant,
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
}

impl Default for BufferCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferCollector {
    /// Fresh collector; its epoch (span time zero) is now.
    pub fn new() -> Self {
        BufferCollector {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            buffers: Mutex::new(Vec::new()),
        }
    }

    /// Run `f` on the calling thread's buffer, registering one on first
    /// use.
    fn with_buf(&self, f: impl FnOnce(&mut Vec<Event>)) {
        THREAD_BUF.with(|cell| {
            let mut cached = cell.borrow_mut();
            let stale = cached.as_ref().is_none_or(|(id, _)| *id != self.id);
            if stale {
                let mut bufs = lock(&self.buffers);
                let buf =
                    Arc::new(ThreadBuf { tid: bufs.len() as u32, events: Mutex::new(Vec::new()) });
                bufs.push(Arc::clone(&buf));
                *cached = Some((self.id, buf));
            }
            let (_, buf) = cached.as_ref().expect("buffer registered above");
            f(&mut lock(&buf.events));
        });
    }

    /// Nanoseconds since this collector's epoch.
    fn ns_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Merge every thread's buffer into one deterministic [`Trace`].
    ///
    /// Spans are sorted by `(start, thread, name, duration)`; counters and
    /// histograms are aggregated into ordered maps. Buffers are left empty.
    pub fn drain(&self) -> Trace {
        let buffers = lock(&self.buffers);
        let mut spans: Vec<Span> = Vec::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        for buf in buffers.iter() {
            for ev in lock(&buf.events).drain(..) {
                match ev {
                    Event::Span {
                        cat,
                        name,
                        label,
                        start_ns,
                        dur_ns,
                        alloc_bytes,
                        alloc_count,
                    } => spans.push(Span {
                        cat,
                        name,
                        label,
                        tid: buf.tid,
                        start_ns,
                        dur_ns,
                        alloc_bytes,
                        alloc_count,
                    }),
                    Event::Count { name, delta } => {
                        *counters.entry(name.to_owned()).or_insert(0) += delta;
                    }
                    Event::Value { name, value } => {
                        histograms.entry(name.to_owned()).or_default().record(value);
                    }
                }
            }
        }
        spans.sort_by(|a, b| {
            (a.start_ns, a.tid, a.cat, a.name, a.dur_ns)
                .cmp(&(b.start_ns, b.tid, b.cat, b.name, b.dur_ns))
        });
        Trace { spans, counters, histograms }
    }
}

impl Collector for BufferCollector {
    fn record_span(&self, rec: SpanRecord) {
        let start_ns = self.ns_since_epoch(rec.start);
        let dur_ns = rec.end.saturating_duration_since(rec.start).as_nanos() as u64;
        self.with_buf(|buf| {
            buf.push(Event::Span {
                cat: rec.cat,
                name: rec.name,
                label: rec.label,
                start_ns,
                dur_ns,
                alloc_bytes: rec.alloc_bytes,
                alloc_count: rec.alloc_count,
            })
        });
    }

    fn count(&self, name: &'static str, delta: u64) {
        self.with_buf(|buf| buf.push(Event::Count { name, delta }));
    }

    fn value(&self, name: &'static str, value: u64) {
        self.with_buf(|buf| buf.push(Event::Value { name, value }));
    }
}

/// An active tracing session: created by [`TraceSession::start`], which
/// installs a [`BufferCollector`] process-wide; finished by
/// [`TraceSession::finish`], which uninstalls it and returns the merged
/// [`Trace`].
///
/// Sessions serialize on a process-wide gate, so concurrent would-be
/// tracers (parallel tests, overlapping engine runs) take turns rather
/// than interleaving events. Dropping a session without calling `finish`
/// uninstalls the collector and discards its events.
pub struct TraceSession {
    collector: Arc<BufferCollector>,
    _gate: MutexGuard<'static, ()>,
}

impl TraceSession {
    /// Start a session: waits for any other session to finish, then
    /// installs a fresh [`BufferCollector`].
    pub fn start() -> TraceSession {
        let gate = lock(&GATE);
        let collector = Arc::new(BufferCollector::new());
        install(Arc::clone(&collector) as Arc<dyn Collector>);
        TraceSession { collector, _gate: gate }
    }

    /// Stop collecting and return the merged trace.
    pub fn finish(self) -> Trace {
        uninstall();
        self.collector.drain()
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // `finish` consumed self via ManuallyDrop-free move; on a plain
        // drop the collector may still be installed — remove it so events
        // stop flowing into a dead session.
        if enabled() {
            uninstall();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggles_with_sessions() {
        let s = TraceSession::start();
        assert!(enabled());
        let trace = s.finish();
        assert!(trace.spans.is_empty());
        // Re-take the gate so no sibling test's session can flip the flag
        // back on between finish and the assertion.
        let _gate = exclusive_gate();
        assert!(!enabled());
    }

    #[test]
    fn events_from_many_threads_merge_deterministically() {
        let session = TraceSession::start();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for i in 0..10 {
                        crate::count("test.events", 1);
                        crate::value("test.dist", (t * 10 + i) as u64);
                        let _g = crate::span("test", "work");
                    }
                });
            }
        });
        let trace = session.finish();
        assert_eq!(trace.counters["test.events"], 40);
        assert_eq!(trace.histograms["test.dist"].count, 40);
        assert_eq!(trace.spans.len(), 40);
        // Sorted by start time.
        for w in trace.spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn drop_without_finish_uninstalls() {
        {
            let _s = TraceSession::start();
            assert!(enabled());
        }
        let _gate = exclusive_gate();
        assert!(!enabled());
    }
}
