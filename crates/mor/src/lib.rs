//! SyMPVL model-order reduction for coupled RC interconnect — the core
//! contribution of the DATE 1999 paper this workspace reproduces.
//!
//! The flow mirrors Section 3 of the paper:
//!
//! 1. An extracted RC cluster (victim net, aggressor nets, their couplings)
//!    is assembled into MNA form `G v + C v̇ = B i` with `G`, `C` symmetric
//!    positive (semi)definite ([`RcCluster`]).
//! 2. A sparse Cholesky factorization `G = FᵀF` collapses the pencil into a
//!    single symmetric matrix `A = F⁻ᵀ C F⁻¹`, and a block Lanczos iteration
//!    projects it onto the block-Krylov subspace, yielding the reduced model
//!    `T v̇_r + v_r = ρ u`, `y = ρᵀ v_r` — a matrix-Padé approximant of the
//!    cluster's port transfer function ([`sympvl::reduce`]).
//! 3. The reduced model is diagonalized (`T = QᵀDQ`) and integrated in time
//!    with the nonlinear driver models attached; each Newton step solves a
//!    Jacobian that is a *low-rank modification of a diagonal matrix*
//!    (Sherman–Morrison / Woodbury), which is what makes chip-level
//!    crosstalk analysis practical ([`sim::simulate`]).
//!
//! Stability and passivity of the reduced model are verified (and tiny
//! negative eigenvalues clipped) per the paper's reference \[4\].
//!
//! # Example
//!
//! Reduce a two-net coupled cluster and check its transfer function against
//! the exact dense computation:
//!
//! ```
//! # use pcv_mor::{RcCluster, sympvl};
//! # fn main() -> Result<(), pcv_mor::MorError> {
//! let mut cl = RcCluster::new();
//! let a = cl.add_node();
//! let b = cl.add_node();
//! cl.add_resistor_to_ground(a, 1000.0)?;
//! cl.add_resistor(a, b, 500.0)?;
//! cl.add_ground_cap(b, 1e-12)?;
//! cl.add_port(a);
//! let rom = sympvl::reduce(&cl, 4)?;
//! let s = 1e9;
//! let exact = cl.exact_transfer(s)?[(0, 0)];
//! let reduced = rom.transfer(s)?[(0, 0)];
//! assert!((exact - reduced).abs() < 1e-6 * exact.abs());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod arnoldi;
pub mod cancel;
pub mod error;
pub mod model;
pub mod rc;
pub mod sim;
pub mod sympvl;

pub use arnoldi::reduce_arnoldi;
pub use cancel::CancelToken;
pub use error::MorError;
pub use model::{DiagonalModel, ReducedModel};
pub use rc::RcCluster;
pub use sim::{simulate, MorOptions, MorTranResult};
