//! The SyMPVL reduction: Cholesky symmetrization plus block Lanczos
//! projection (Section 3 of the paper).
//!
//! Starting from `G v + C v̇ = B i`, a Cholesky factorization `G = FᵀF`
//! and the change of variables `x = F v` give `x + A ẋ = L i` with
//! `A = F⁻ᵀ C F⁻¹` and `L = F⁻ᵀ B`. The block Lanczos iteration builds an
//! orthonormal basis `V` of the block-Krylov subspace
//! `span{L, AL, A²L, …}`; the projections `T = VᵀAV` and `ρ = VᵀL` define
//! the reduced model
//!
//! ```text
//! T v̇_r + v_r = ρ u,      y = ρᵀ v_r
//! ```
//!
//! whose transfer function is a matrix-Padé approximant of the original
//! port impedance `H(s) = Bᵀ (G + sC)⁻¹ B`. Because `T` is a congruence
//! projection of the symmetric positive semidefinite `A`, the reduced model
//! is automatically stable and passive (up to rounding, which
//! [`crate::model::ReducedModel::diagonalize`] cleans up).
//!
//! Full reorthogonalization is used: clusters are small after pruning
//! (2–5 nets, per the paper), so the extra dot products are cheap and buy
//! robustness against the loss of orthogonality classic Lanczos suffers.

use crate::cancel::CancelToken;
use crate::error::MorError;
use crate::model::ReducedModel;
use crate::rc::RcCluster;
use pcv_sparse::vecops::{axpy, dot, norm2};
use pcv_sparse::{Dense, SparseCholesky};

/// Deflation tolerance: a candidate basis vector whose norm after
/// orthogonalization falls below this fraction of its pre-orthogonalization
/// norm is considered linearly dependent and dropped.
const DEFLATION_TOL: f64 = 1e-10;

/// Reduce an RC cluster to a `ReducedModel` using at most `block_iters`
/// block Lanczos steps (so at most `block_iters * num_ports` states, fewer
/// when the Krylov space deflates or the cluster is smaller).
///
/// `block_iters` controls the Padé order: each additional block matches two
/// more block moments of the port transfer function. 3–6 is ample for RC
/// crosstalk clusters.
///
/// # Errors
///
/// * [`MorError::NoPorts`] when the cluster has no ports.
/// * [`MorError::InvalidValue`] when `block_iters == 0`.
/// * [`MorError::Numeric`] if the regularized conductance matrix is not
///   positive definite.
pub fn reduce(cl: &RcCluster, block_iters: usize) -> Result<ReducedModel, MorError> {
    reduce_with(cl, block_iters, None)
}

/// [`reduce`] with an optional cooperative cancellation token, polled once
/// per Lanczos candidate vector so a pathological cluster can be abandoned
/// mid-reduction instead of stalling a worker.
///
/// # Errors
///
/// Everything [`reduce`] returns, plus:
///
/// * [`MorError::Cancelled`] when `cancel` fires mid-iteration.
/// * [`MorError::NonFinite`] if the projected `T`/`ρ` matrices contain NaN
///   or infinite entries (e.g. from a near-singular Cholesky factor).
pub fn reduce_with(
    cl: &RcCluster,
    block_iters: usize,
    cancel: Option<&CancelToken>,
) -> Result<ReducedModel, MorError> {
    let p = cl.num_ports();
    if p == 0 {
        return Err(MorError::NoPorts);
    }
    if block_iters == 0 {
        return Err(MorError::InvalidValue { what: "block_iters" });
    }
    let _span = pcv_trace::span("mor", "sympvl_reduce");
    let n = cl.num_nodes();
    let g = cl.conductance_matrix();
    let c = cl.capacitance_matrix();
    let chol = {
        let _chol_span = pcv_trace::span("mor", "cholesky");
        SparseCholesky::factor(&g)?
    };

    // L = F⁻ᵀ B: column j is L⁻¹ e_{port_j} (forward solve with the Cholesky
    // factor, since F = Lᵀ).
    let mut l_cols: Vec<Vec<f64>> = Vec::with_capacity(p);
    for &port in cl.ports() {
        let mut e = vec![0.0; n];
        e[port] = 1.0;
        chol.solve_lower_in_place(&mut e);
        l_cols.push(e);
    }

    // A v = F⁻ᵀ C F⁻¹ v, applied through two triangular solves and a SpMV.
    let apply_a = |v: &[f64]| -> Vec<f64> {
        let mut u = v.to_vec();
        chol.solve_lower_t_in_place(&mut u); // u = F⁻¹ v
        let mut w = c.matvec(&u); // w = C u
        chol.solve_lower_in_place(&mut w); // w = F⁻ᵀ w
        w
    };

    // Band/block Lanczos with full reorthogonalization. `basis` collects the
    // orthonormal vectors; `av` caches A·v for each basis vector so T can be
    // formed without extra applications.
    let _lanczos_span = pcv_trace::span("mor", "block_lanczos");
    let max_states = (block_iters * p).min(n);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(max_states);
    let mut av: Vec<Vec<f64>> = Vec::with_capacity(max_states);

    // Starting block: orthonormalize the columns of L.
    let mut current: Vec<usize> = Vec::new();
    for col in &l_cols {
        if basis.len() >= max_states {
            break;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(MorError::Cancelled { stage: "block lanczos" });
        }
        if let Some(v) = orthonormalize(col, &basis) {
            av.push(apply_a(&v));
            basis.push(v);
            current.push(basis.len() - 1);
        }
    }

    // Subsequent blocks: A times the previous block, reorthogonalized.
    while !current.is_empty() && basis.len() < max_states {
        let mut next: Vec<usize> = Vec::new();
        for &idx in &current {
            if basis.len() >= max_states {
                break;
            }
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(MorError::Cancelled { stage: "block lanczos" });
            }
            let w = av[idx].clone();
            if let Some(v) = orthonormalize(&w, &basis) {
                av.push(apply_a(&v));
                basis.push(v);
                next.push(basis.len() - 1);
            }
        }
        current = next;
    }

    let q = basis.len();
    pcv_trace::value("mor.reduced_order", q as u64);
    // T = Vᵀ A V from the cached products, symmetrized against rounding.
    let mut t = Dense::zeros(q, q);
    for i in 0..q {
        for j in 0..q {
            t[(i, j)] = dot(&basis[i], &av[j]);
        }
    }
    t.symmetrize();
    // ρ = Vᵀ L.
    let mut rho = Dense::zeros(q, p);
    for (j, col) in l_cols.iter().enumerate() {
        for i in 0..q {
            rho[(i, j)] = dot(&basis[i], col);
        }
    }
    // Guard the projection outputs: a near-singular Cholesky factor can push
    // NaN/Inf through the triangular solves without tripping any earlier
    // typed error, and a non-finite T poisons every verdict downstream.
    if !all_finite(&t) || !all_finite(&rho) {
        return Err(MorError::NonFinite { what: "reduced model projection" });
    }
    Ok(ReducedModel::new(t, rho))
}

/// Every entry of a dense matrix is finite.
fn all_finite(m: &Dense) -> bool {
    (0..m.nrows()).all(|r| m.row(r).iter().all(|v| v.is_finite()))
}

/// Orthogonalize `w` against `basis` (two Gram–Schmidt passes) and
/// normalize; `None` if the vector deflates.
fn orthonormalize(w: &[f64], basis: &[Vec<f64>]) -> Option<Vec<f64>> {
    let mut v = w.to_vec();
    let orig = norm2(&v);
    if orig == 0.0 {
        return None;
    }
    for _ in 0..2 {
        for b in basis {
            let proj = dot(b, &v);
            axpy(-proj, b, &mut v);
        }
    }
    let nrm = norm2(&v);
    if nrm <= DEFLATION_TOL * orig {
        return None;
    }
    let inv = 1.0 / nrm;
    for x in v.iter_mut() {
        *x *= inv;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two coupled RC lines, each driven at node 0, like a pruned
    /// victim/aggressor cluster.
    fn coupled_pair(segments: usize) -> RcCluster {
        let mut cl = RcCluster::new();
        let line = |cl: &mut RcCluster| -> Vec<usize> {
            let nodes: Vec<usize> = (0..segments).map(|_| cl.add_node()).collect();
            for w in nodes.windows(2) {
                cl.add_resistor(w[0], w[1], 40.0).unwrap();
            }
            for &nd in &nodes {
                cl.add_ground_cap(nd, 2e-15).unwrap();
            }
            nodes
        };
        let a = line(&mut cl);
        let b = line(&mut cl);
        for (&x, &y) in a.iter().zip(&b) {
            cl.add_capacitor(x, y, 3e-15).unwrap();
        }
        cl.add_port(a[0]);
        cl.add_port(b[0]);
        cl.add_port(a[segments - 1]); // victim far end (observation)
        cl
    }

    #[test]
    fn transfer_function_converges_with_order() {
        let cl = coupled_pair(12);
        let s = 2e9; // ~ the band of interest for ns edges
        let exact = cl.exact_transfer(s).unwrap();
        let mut prev_err = f64::INFINITY;
        for iters in [1usize, 2, 4, 6] {
            let rom = reduce(&cl, iters).unwrap();
            let h = rom.transfer(s).unwrap();
            let mut err = 0.0f64;
            for i in 0..3 {
                for j in 0..3 {
                    let denom = exact[(i, j)].abs().max(1e-6 * exact[(0, 0)].abs());
                    err = err.max((h[(i, j)] - exact[(i, j)]).abs() / denom);
                }
            }
            assert!(err < prev_err * 1.5 + 1e-12, "error should not grow: {err} vs {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-6, "order-6 model should be near-exact, err = {prev_err}");
    }

    #[test]
    fn reduced_model_is_much_smaller() {
        let cl = coupled_pair(40);
        assert_eq!(cl.num_nodes(), 80);
        let rom = reduce(&cl, 4).unwrap();
        assert!(rom.order() <= 12);
        assert_eq!(rom.num_ports(), 3);
    }

    #[test]
    fn t_is_positive_semidefinite() {
        let cl = coupled_pair(10);
        let rom = reduce(&cl, 5).unwrap();
        let eig = pcv_sparse::eig::jacobi_eigen(rom.t()).unwrap();
        for &w in &eig.values {
            assert!(w >= -1e-12 * eig.values.last().unwrap().abs(), "eigenvalue {w}");
        }
    }

    #[test]
    fn dc_moment_matches_exactly() {
        // Padé at s = 0: the DC transfer (resistance matrix) must match to
        // rounding even at order 1.
        let cl = coupled_pair(8);
        let rom = reduce(&cl, 1).unwrap();
        let exact = cl.exact_transfer(0.0).unwrap();
        let h0 = rom.transfer(0.0).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let denom = exact[(i, j)].abs().max(1e-9 * exact[(0, 0)].abs());
                let rel = (h0[(i, j)] - exact[(i, j)]).abs() / denom;
                assert!(rel < 1e-7, "dc moment mismatch at ({i},{j}): {rel}");
            }
        }
    }

    #[test]
    fn deflation_caps_order_at_matrix_size() {
        let mut cl = RcCluster::new();
        let a = cl.add_node();
        let b = cl.add_node();
        cl.add_resistor(a, b, 100.0).unwrap();
        cl.add_resistor_to_ground(a, 100.0).unwrap();
        cl.add_ground_cap(b, 1e-15).unwrap();
        cl.add_port(a);
        let rom = reduce(&cl, 50).unwrap();
        assert!(rom.order() <= 2, "order {} exceeds node count", rom.order());
    }

    #[test]
    fn duplicate_ports_deflate() {
        let mut cl = RcCluster::new();
        let a = cl.add_node();
        cl.add_resistor_to_ground(a, 10.0).unwrap();
        cl.add_ground_cap(a, 1e-15).unwrap();
        cl.add_port(a);
        cl.add_port(a); // same node twice
        let rom = reduce(&cl, 3).unwrap();
        assert_eq!(rom.num_ports(), 2);
        // The starting block has rank 1, so the basis stays rank-limited.
        assert!(rom.order() <= 1 + 2);
        // Both ports still observe identical transfer.
        let h = rom.transfer(1e9).unwrap();
        assert!((h[(0, 0)] - h[(1, 1)]).abs() < 1e-12 * h[(0, 0)].abs());
    }

    #[test]
    fn rejects_degenerate_requests() {
        let cl = coupled_pair(3);
        assert!(matches!(reduce(&cl, 0), Err(MorError::InvalidValue { .. })));
        let mut no_ports = RcCluster::new();
        let a = no_ports.add_node();
        no_ports.add_ground_cap(a, 1e-15).unwrap();
        assert!(matches!(reduce(&no_ports, 2), Err(MorError::NoPorts)));
    }

    #[test]
    fn cancelled_token_aborts_reduction() {
        use crate::cancel::CancelToken;
        let cl = coupled_pair(12);
        let token = CancelToken::new();
        token.cancel();
        let err = reduce_with(&cl, 4, Some(&token)).unwrap_err();
        assert!(matches!(err, MorError::Cancelled { stage: "block lanczos" }), "got {err}");
        // A live token changes nothing about the reduction.
        let live = CancelToken::new();
        let a = reduce_with(&cl, 4, Some(&live)).unwrap();
        let b = reduce(&cl, 4).unwrap();
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn basis_is_orthonormal() {
        // Indirect check: T's symmetry and ρᵀρ ≈ Bᵀ G⁻¹ B (the zeroth
        // moment, which equals the DC transfer).
        let cl = coupled_pair(6);
        let rom = reduce(&cl, 4).unwrap();
        let rho = rom.rho();
        let mut rtr = Dense::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..rom.order() {
                    s += rho[(k, i)] * rho[(k, j)];
                }
                rtr[(i, j)] = s;
            }
        }
        let exact = cl.exact_transfer(0.0).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let denom = exact[(i, j)].abs().max(1e-9 * exact[(0, 0)].abs());
                let rel = (rtr[(i, j)] - exact[(i, j)]).abs() / denom;
                assert!(rel < 1e-7, "zeroth moment mismatch: {rel}");
            }
        }
    }
}
