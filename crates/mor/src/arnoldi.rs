//! PRIMA-style block Arnoldi reduction — the baseline alternative to
//! SyMPVL.
//!
//! Where SyMPVL collapses the pencil through a Cholesky change of variables
//! and runs a *symmetric* Lanczos iteration, the PRIMA family iterates on
//! `A = G⁻¹C` with block Arnoldi and projects the pencil by congruence:
//! `Ĝ = VᵀGV`, `Ĉ = VᵀCV`, `B̂ = VᵀB`. Passivity is again preserved
//! (congruence of SPD matrices), but each Arnoldi step matches only *one*
//! block moment versus Lanczos's two — the ablation bench
//! (`pcv-bench/benches/reduction.rs`) quantifies the trade.
//!
//! The projected pencil is converted to the same [`ReducedModel`] shape
//! SyMPVL produces (`T = F̂⁻ᵀ Ĉ F̂⁻¹`, `ρ = F̂⁻ᵀ B̂` with `Ĝ = F̂ᵀF̂`), so
//! both reductions feed the identical transient machinery.

use crate::error::MorError;
use crate::model::ReducedModel;
use crate::rc::RcCluster;
use pcv_sparse::dense::DenseCholesky;
use pcv_sparse::vecops::{axpy, dot, norm2};
use pcv_sparse::{Dense, SparseCholesky};

const DEFLATION_TOL: f64 = 1e-10;

/// Reduce an RC cluster with block Arnoldi (PRIMA-style), producing at most
/// `block_iters * num_ports` states.
///
/// # Errors
///
/// * [`MorError::NoPorts`] when the cluster has no ports.
/// * [`MorError::InvalidValue`] when `block_iters == 0`.
/// * [`MorError::Numeric`] on factorization failure.
pub fn reduce_arnoldi(cl: &RcCluster, block_iters: usize) -> Result<ReducedModel, MorError> {
    let p = cl.num_ports();
    if p == 0 {
        return Err(MorError::NoPorts);
    }
    if block_iters == 0 {
        return Err(MorError::InvalidValue { what: "block_iters" });
    }
    let n = cl.num_nodes();
    let g = cl.conductance_matrix();
    let c = cl.capacitance_matrix();
    let gchol = SparseCholesky::factor(&g)?;

    // Starting block: X0 = G⁻¹ B.
    let mut start: Vec<Vec<f64>> = Vec::with_capacity(p);
    for &port in cl.ports() {
        let mut e = vec![0.0; n];
        e[port] = 1.0;
        start.push(gchol.solve(&e));
    }
    // A v = G⁻¹ C v.
    let apply_a = |v: &[f64]| -> Vec<f64> { gchol.solve(&c.matvec(v)) };

    // Block Arnoldi with full Gram–Schmidt orthogonalization.
    let max_states = (block_iters * p).min(n);
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(max_states);
    let mut current: Vec<usize> = Vec::new();
    for col in &start {
        if basis.len() >= max_states {
            break;
        }
        if let Some(v) = orthonormalize(col, &basis) {
            basis.push(v);
            current.push(basis.len() - 1);
        }
    }
    while !current.is_empty() && basis.len() < max_states {
        let mut next = Vec::new();
        for &idx in &current {
            if basis.len() >= max_states {
                break;
            }
            let w = apply_a(&basis[idx]);
            if let Some(v) = orthonormalize(&w, &basis) {
                basis.push(v);
                next.push(basis.len() - 1);
            }
        }
        current = next;
    }
    let q = basis.len();

    // Congruence projection of the pencil.
    let mut g_hat = Dense::zeros(q, q);
    let mut c_hat = Dense::zeros(q, q);
    for j in 0..q {
        let gv = g.matvec(&basis[j]);
        let cv = c.matvec(&basis[j]);
        for i in 0..q {
            g_hat[(i, j)] = dot(&basis[i], &gv);
            c_hat[(i, j)] = dot(&basis[i], &cv);
        }
    }
    g_hat.symmetrize();
    c_hat.symmetrize();
    let mut b_hat = Dense::zeros(q, p);
    for (j, &port) in cl.ports().iter().enumerate() {
        for i in 0..q {
            b_hat[(i, j)] = basis[i][port];
        }
    }

    // Convert to (T, ρ): Ĝ = F̂ᵀF̂, T = F̂⁻ᵀ Ĉ F̂⁻¹, ρ = F̂⁻ᵀ B̂.
    let fchol = DenseCholesky::factor(&g_hat)?;
    let mut t = Dense::zeros(q, q);
    for j in 0..q {
        // Column j of F̂⁻ᵀ Ĉ F̂⁻¹: solve Lᵀ u = e_j, w = Ĉ u, solve L t_j = w.
        let mut u = vec![0.0; q];
        u[j] = 1.0;
        fchol.solve_lower_t_in_place(&mut u);
        let mut w = c_hat.matvec(&u);
        fchol.solve_lower_in_place(&mut w);
        t.set_col(j, &w);
    }
    t.symmetrize();
    let mut rho = Dense::zeros(q, p);
    for j in 0..p {
        let mut col = b_hat.col(j);
        fchol.solve_lower_in_place(&mut col);
        rho.set_col(j, &col);
    }
    Ok(ReducedModel::new(t, rho))
}

fn orthonormalize(w: &[f64], basis: &[Vec<f64>]) -> Option<Vec<f64>> {
    let mut v = w.to_vec();
    let orig = norm2(&v);
    if orig == 0.0 {
        return None;
    }
    for _ in 0..2 {
        for b in basis {
            let proj = dot(b, &v);
            axpy(-proj, b, &mut v);
        }
    }
    let nrm = norm2(&v);
    if nrm <= DEFLATION_TOL * orig {
        return None;
    }
    let inv = 1.0 / nrm;
    for x in v.iter_mut() {
        *x *= inv;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sympvl;

    fn coupled_pair(segments: usize) -> RcCluster {
        let mut cl = RcCluster::new();
        let line = |cl: &mut RcCluster| -> Vec<usize> {
            let nodes: Vec<usize> = (0..segments).map(|_| cl.add_node()).collect();
            for w in nodes.windows(2) {
                cl.add_resistor(w[0], w[1], 40.0).unwrap();
            }
            for &nd in &nodes {
                cl.add_ground_cap(nd, 2e-15).unwrap();
            }
            nodes
        };
        let a = line(&mut cl);
        let b = line(&mut cl);
        for (&x, &y) in a.iter().zip(&b) {
            cl.add_capacitor(x, y, 3e-15).unwrap();
        }
        cl.add_port(a[0]);
        cl.add_port(b[0]);
        cl
    }

    #[test]
    fn arnoldi_matches_exact_transfer_at_high_order() {
        let cl = coupled_pair(10);
        let rom = reduce_arnoldi(&cl, 8).unwrap();
        let s = 2e9;
        let exact = cl.exact_transfer(s).unwrap();
        let h = rom.transfer(s).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let denom = exact[(i, j)].abs().max(1e-6 * exact[(0, 0)].abs());
                let rel = (h[(i, j)] - exact[(i, j)]).abs() / denom;
                assert!(rel < 1e-5, "({i},{j}): {rel}");
            }
        }
    }

    #[test]
    fn arnoldi_dc_moment_matches() {
        let cl = coupled_pair(6);
        let rom = reduce_arnoldi(&cl, 1).unwrap();
        let exact = cl.exact_transfer(0.0).unwrap();
        let h0 = rom.transfer(0.0).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let denom = exact[(i, j)].abs().max(1e-9 * exact[(0, 0)].abs());
                let rel = (h0[(i, j)] - exact[(i, j)]).abs() / denom;
                assert!(rel < 1e-7, "dc mismatch ({i},{j}): {rel}");
            }
        }
    }

    #[test]
    fn arnoldi_model_is_passive() {
        let cl = coupled_pair(8);
        let rom = reduce_arnoldi(&cl, 4).unwrap();
        assert!(rom.is_passive(1e-12).unwrap());
        let d = rom.diagonalize().unwrap();
        assert!(d.d().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn sympvl_converges_faster_per_state() {
        // At equal (small) order, the Lanczos-based SyMPVL matches more
        // moments and should be at least as accurate as Arnoldi.
        let cl = coupled_pair(14);
        let s = 3e9;
        let exact = cl.exact_transfer(s).unwrap();
        let err = |rom: &ReducedModel| -> f64 {
            let h = rom.transfer(s).unwrap();
            let mut e = 0.0f64;
            for i in 0..2 {
                for j in 0..2 {
                    let denom = exact[(i, j)].abs().max(1e-6 * exact[(0, 0)].abs());
                    e = e.max((h[(i, j)] - exact[(i, j)]).abs() / denom);
                }
            }
            e
        };
        let lanczos = sympvl::reduce(&cl, 2).unwrap();
        let arnoldi = reduce_arnoldi(&cl, 2).unwrap();
        assert!(lanczos.order() <= arnoldi.order() + 1);
        assert!(
            err(&lanczos) <= err(&arnoldi) * 1.5 + 1e-12,
            "lanczos {} vs arnoldi {}",
            err(&lanczos),
            err(&arnoldi)
        );
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let cl = coupled_pair(3);
        assert!(matches!(reduce_arnoldi(&cl, 0), Err(MorError::InvalidValue { .. })));
        let empty = RcCluster::new();
        assert!(matches!(reduce_arnoldi(&empty, 2), Err(MorError::NoPorts)));
    }
}
