//! Reduced-order models: the projected pencil `(T, ρ)` and its diagonalized
//! form `(D, η)` used for fast transient integration.

use crate::error::MorError;
use pcv_sparse::dense::{Dense, DenseLu};
use pcv_sparse::eig::jacobi_eigen;

/// The SyMPVL reduced model `T v̇_r + v_r = ρ u`, `y = ρᵀ v_r`.
///
/// Produced by [`crate::sympvl::reduce`]; `T` is symmetric positive
/// semidefinite by construction (a congruence projection of
/// `A = F⁻ᵀ C F⁻¹`), which makes the model provably stable and passive.
#[derive(Debug, Clone)]
pub struct ReducedModel {
    t: Dense,
    rho: Dense,
}

impl ReducedModel {
    /// Build from the projected matrices.
    ///
    /// # Panics
    ///
    /// Panics if `T` is not square or `ρ` row count differs from `T`.
    pub fn new(t: Dense, rho: Dense) -> Self {
        assert_eq!(t.nrows(), t.ncols(), "T must be square");
        assert_eq!(rho.nrows(), t.nrows(), "rho rows must match T");
        ReducedModel { t, rho }
    }

    /// Number of reduced states.
    pub fn order(&self) -> usize {
        self.t.nrows()
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.rho.ncols()
    }

    /// The projected `T` matrix.
    pub fn t(&self) -> &Dense {
        &self.t
    }

    /// The projected input map `ρ`.
    pub fn rho(&self) -> &Dense {
        &self.rho
    }

    /// Reduced transfer-function matrix `H(s) = ρᵀ (I + sT)⁻¹ ρ` at a real
    /// frequency point.
    ///
    /// # Errors
    ///
    /// Returns a numeric error if `I + sT` is singular (cannot happen for
    /// `s ≥ 0` on a passive model).
    pub fn transfer(&self, s: f64) -> Result<Dense, MorError> {
        let q = self.order();
        let p = self.num_ports();
        let mut m = Dense::identity(q);
        for r in 0..q {
            for c in 0..q {
                m[(r, c)] += s * self.t[(r, c)];
            }
        }
        let lu = DenseLu::factor(m)?;
        let mut h = Dense::zeros(p, p);
        for j in 0..p {
            let x = lu.solve(&self.rho.col(j));
            for i in 0..p {
                let mut sum = 0.0;
                for (k, &xk) in x.iter().enumerate().take(q) {
                    sum += self.rho[(k, i)] * xk;
                }
                h[(i, j)] = sum;
            }
        }
        Ok(h)
    }

    /// The `k`-th block moment `ρᵀ (-T)ᵏ ρ` of the reduced transfer function
    /// (its Taylor coefficients at `s = 0`).
    pub fn moment(&self, k: usize) -> Dense {
        let q = self.order();
        let p = self.num_ports();
        // x_j = (-T)^k rho_j
        let mut cols: Vec<Vec<f64>> = (0..p).map(|j| self.rho.col(j)).collect();
        for _ in 0..k {
            for col in cols.iter_mut() {
                let y = self.t.matvec(col);
                for (c, yv) in col.iter_mut().zip(&y) {
                    *c = -yv;
                }
            }
        }
        let mut m = Dense::zeros(p, p);
        for (j, col) in cols.iter().enumerate() {
            for i in 0..p {
                let mut sum = 0.0;
                for (kk, &ck) in col.iter().enumerate().take(q) {
                    sum += self.rho[(kk, i)] * ck;
                }
                m[(i, j)] = sum;
            }
        }
        m
    }

    /// `true` if every eigenvalue of `T` is at least `-tol` — the passivity
    /// test of the paper's reference \[4\].
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failure (does not occur for finite models).
    pub fn is_passive(&self, tol: f64) -> Result<bool, MorError> {
        let eig = jacobi_eigen(&self.t)?;
        Ok(eig.values.iter().all(|&w| w >= -tol))
    }

    /// Diagonalize: `T = QᵀDQ`, `η = Qρ`, clipping any (tiny, rounding-born)
    /// negative eigenvalues to zero so the model is passive *in practice*.
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failure (does not occur for finite models).
    pub fn diagonalize(&self) -> Result<DiagonalModel, MorError> {
        let eig = jacobi_eigen(&self.t)?;
        let q = self.order();
        let p = self.num_ports();
        let mut clipped = 0usize;
        let d: Vec<f64> = eig
            .values
            .iter()
            .map(|&w| {
                if w < 0.0 {
                    clipped += 1;
                    0.0
                } else {
                    w
                }
            })
            .collect();
        // Q = Vᵀ (columns of V are eigenvectors), so η = Qρ = Vᵀρ.
        let mut eta = Dense::zeros(q, p);
        for i in 0..q {
            for j in 0..p {
                let mut sum = 0.0;
                for k in 0..q {
                    sum += eig.vectors[(k, i)] * self.rho[(k, j)];
                }
                eta[(i, j)] = sum;
            }
        }
        Ok(DiagonalModel { d, eta, clipped })
    }
}

/// The diagonalized reduced model `D ẋ + x = η u`, `y = ηᵀ x`
/// (equation (5) of the paper).
///
/// Time constants are simply the entries of `D`; a zero entry is an
/// algebraic (instantaneous) state.
#[derive(Debug, Clone)]
pub struct DiagonalModel {
    d: Vec<f64>,
    eta: Dense,
    clipped: usize,
}

impl DiagonalModel {
    /// The diagonal of `D` (reduced time constants, seconds).
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// The rotated input/output map `η`.
    pub fn eta(&self) -> &Dense {
        &self.eta
    }

    /// Number of reduced states.
    pub fn order(&self) -> usize {
        self.d.len()
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.eta.ncols()
    }

    /// How many eigenvalues were clipped to zero to enforce passivity.
    pub fn clipped_eigenvalues(&self) -> usize {
        self.clipped
    }

    /// Port voltages `y = ηᵀ x` for a state vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the model order.
    pub fn outputs(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.order(), "state length mismatch");
        self.eta.matvec_t(x)
    }

    /// Transfer function of the diagonal form,
    /// `H(s) = Σ_k η_kᵀ η_k / (1 + s d_k)` — used to cross-check the
    /// diagonalization.
    pub fn transfer(&self, s: f64) -> Dense {
        let p = self.num_ports();
        let mut h = Dense::zeros(p, p);
        for (k, &dk) in self.d.iter().enumerate() {
            let denom = 1.0 + s * dk;
            for i in 0..p {
                for j in 0..p {
                    h[(i, j)] += self.eta[(k, i)] * self.eta[(k, j)] / denom;
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> ReducedModel {
        // T diag-ish SPD, 3 states, 2 ports.
        let t = Dense::from_rows(&[&[2e-9, 1e-10, 0.0], &[1e-10, 1e-9, 0.0], &[0.0, 0.0, 5e-10]]);
        let rho = Dense::from_rows(&[&[1.0, 0.2], &[0.0, 0.8], &[0.3, 0.1]]);
        ReducedModel::new(t, rho)
    }

    #[test]
    fn transfer_at_dc_is_rho_t_rho() {
        let m = toy_model();
        let h0 = m.transfer(0.0).unwrap();
        let m0 = m.moment(0);
        for i in 0..2 {
            for j in 0..2 {
                assert!((h0[(i, j)] - m0[(i, j)]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn moments_are_taylor_coefficients() {
        let m = toy_model();
        // H(s) ≈ m0 + s m1 + s² m2 for small s.
        let s = 1e3; // s * ||T|| ~ 1e-6, safely inside convergence
        let h = m.transfer(s).unwrap();
        let approx = |i: usize, j: usize| {
            m.moment(0)[(i, j)] + s * m.moment(1)[(i, j)] + s * s * m.moment(2)[(i, j)]
        };
        for i in 0..2 {
            for j in 0..2 {
                let rel = (h[(i, j)] - approx(i, j)).abs() / h[(i, j)].abs().max(1e-300);
                assert!(rel < 1e-9, "taylor mismatch {rel}");
            }
        }
    }

    #[test]
    fn diagonal_model_reproduces_transfer() {
        let m = toy_model();
        let d = m.diagonalize().unwrap();
        for &s in &[0.0, 1e8, 1e9, 1e10] {
            let h1 = m.transfer(s).unwrap();
            let h2 = d.transfer(s);
            for i in 0..2 {
                for j in 0..2 {
                    let rel = (h1[(i, j)] - h2[(i, j)]).abs() / h1[(i, j)].abs().max(1e-300);
                    assert!(rel < 1e-9, "s={s}: {rel}");
                }
            }
        }
    }

    #[test]
    fn passivity_check_and_clipping() {
        let m = toy_model();
        assert!(m.is_passive(1e-15).unwrap());
        let d = m.diagonalize().unwrap();
        assert_eq!(d.clipped_eigenvalues(), 0);
        assert!(d.d().iter().all(|&w| w >= 0.0));

        // A slightly indefinite T gets clipped.
        let t = Dense::from_rows(&[&[1e-9, 0.0], &[0.0, -1e-15]]);
        let rho = Dense::from_rows(&[&[1.0], &[0.1]]);
        let m2 = ReducedModel::new(t, rho);
        assert!(!m2.is_passive(1e-18).unwrap());
        let d2 = m2.diagonalize().unwrap();
        assert_eq!(d2.clipped_eigenvalues(), 1);
        assert!(d2.d().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn outputs_are_eta_transpose_x() {
        let m = toy_model().diagonalize().unwrap();
        let x = vec![1.0, -1.0, 0.5];
        let y = m.outputs(&x);
        assert_eq!(y.len(), 2);
        let manual0: f64 = (0..3).map(|k| m.eta()[(k, 0)] * x[k]).sum();
        assert!((y[0] - manual0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "T must be square")]
    fn rejects_rectangular_t() {
        ReducedModel::new(Dense::zeros(2, 3), Dense::zeros(2, 1));
    }

    #[test]
    #[should_panic(expected = "rho rows")]
    fn rejects_mismatched_rho() {
        ReducedModel::new(Dense::zeros(2, 2), Dense::zeros(3, 1));
    }
}
