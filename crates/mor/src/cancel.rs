//! Cooperative cancellation for long-running reductions and transients.
//!
//! A [`CancelToken`] is a cheap, clonable handle polled inside the block
//! Lanczos and Newton loops so a pathological cluster degrades (via the
//! engine's recovery ladder) instead of stalling a worker forever. Two
//! trigger mechanisms exist:
//!
//! * an explicit flag ([`CancelToken::cancel`]) — deterministic, settable
//!   from another thread;
//! * an optional wall-clock soft deadline ([`CancelToken::with_deadline`]) —
//!   **non-deterministic** by nature, so report-determinism-sensitive callers
//!   (the chaos suite, golden fixtures) must not use it. The engine's
//!   deterministic budgets (`newton_budget` / `max_tran_steps` in
//!   [`crate::MorOptions`]) are the default stall protection.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle shared between a worker loop and its
/// supervisor. Cloning shares the underlying flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires until [`cancel`](Self::cancel) is called.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally fires once `budget` of wall-clock time has
    /// elapsed. Wall-clock deadlines are non-deterministic; prefer the
    /// iteration budgets in [`crate::MorOptions`] when byte-identical
    /// reports matter.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Raise the cancellation flag. All clones observe it.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag is raised or the soft deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_fires_across_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        assert!(!t2.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        assert!(t2.is_cancelled());
    }

    #[test]
    fn elapsed_deadline_fires() {
        let t = CancelToken::with_deadline(Duration::from_secs(0));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn token_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CancelToken>();
    }
}
