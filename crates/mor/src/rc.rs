//! Assembly of coupled RC clusters into the symmetric MNA pencil
//! `G v + C v̇ = B i` that SyMPVL reduces.
//!
//! Extraction produces nets that may have no DC path to ground, which makes
//! the conductance Laplacian only *semi*-definite. A per-node leakage
//! conductance (`gmin`, default 1 nS) restores strict positive definiteness;
//! at kΩ driver impedances and fF capacitances this perturbs results at the
//! 1e-4 % level while guaranteeing the Cholesky factorization exists.

use crate::error::MorError;
use pcv_netlist::{Circuit, Element, NodeId};
use pcv_sparse::dense::{Dense, DenseLu};
use pcv_sparse::{Csc, Triplets};

/// Default per-node leakage conductance (siemens).
pub const DEFAULT_GMIN: f64 = 1e-9;

/// A coupled RC cluster with designated ports.
///
/// Nodes are dense indices `0..num_nodes`; ground is implicit. Ports are the
/// nodes at which external devices (drivers, observed receivers) connect.
///
/// # Example
///
/// ```
/// # use pcv_mor::RcCluster;
/// # fn main() -> Result<(), pcv_mor::MorError> {
/// let mut cl = RcCluster::new();
/// let a = cl.add_node();
/// cl.add_resistor_to_ground(a, 1e3)?;
/// cl.add_ground_cap(a, 1e-15)?;
/// cl.add_port(a);
/// assert_eq!(cl.num_ports(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RcCluster {
    n: usize,
    /// `(a, b, ohms)`; `usize::MAX` encodes ground.
    resistors: Vec<(usize, usize, f64)>,
    /// `(a, b, farads)`; `usize::MAX` encodes ground.
    capacitors: Vec<(usize, usize, f64)>,
    ports: Vec<usize>,
    gmin: f64,
}

const GND: usize = usize::MAX;

impl Default for RcCluster {
    fn default() -> Self {
        RcCluster::new()
    }
}

impl RcCluster {
    /// Create an empty cluster with the default `gmin`.
    pub fn new() -> Self {
        RcCluster {
            n: 0,
            resistors: Vec::new(),
            capacitors: Vec::new(),
            ports: Vec::new(),
            gmin: DEFAULT_GMIN,
        }
    }

    /// Override the leakage conductance used for regularization.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite values.
    pub fn set_gmin(&mut self, gmin: f64) -> Result<(), MorError> {
        if gmin <= 0.0 || !gmin.is_finite() {
            return Err(MorError::InvalidValue { what: "gmin" });
        }
        self.gmin = gmin;
        Ok(())
    }

    /// The leakage conductance currently used for regularization.
    #[must_use]
    pub fn gmin(&self) -> f64 {
        self.gmin
    }

    /// Add a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.n += 1;
        self.n - 1
    }

    /// Number of nodes (excluding ground).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Add a resistor between two nodes.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range nodes and non-positive resistance.
    pub fn add_resistor(&mut self, a: usize, b: usize, ohms: f64) -> Result<(), MorError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if ohms <= 0.0 || !ohms.is_finite() {
            return Err(MorError::InvalidValue { what: "resistance" });
        }
        self.resistors.push((a, b, ohms));
        Ok(())
    }

    /// Add a resistor from a node to ground.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range nodes and non-positive resistance.
    pub fn add_resistor_to_ground(&mut self, a: usize, ohms: f64) -> Result<(), MorError> {
        self.check_node(a)?;
        if ohms <= 0.0 || !ohms.is_finite() {
            return Err(MorError::InvalidValue { what: "resistance" });
        }
        self.resistors.push((a, GND, ohms));
        Ok(())
    }

    /// Add a capacitor between two nodes (a *coupling* capacitor when the
    /// nodes belong to different nets).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range nodes and negative capacitance.
    pub fn add_capacitor(&mut self, a: usize, b: usize, farads: f64) -> Result<(), MorError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if farads < 0.0 || !farads.is_finite() {
            return Err(MorError::InvalidValue { what: "capacitance" });
        }
        self.capacitors.push((a, b, farads));
        Ok(())
    }

    /// Add a grounded capacitor.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range nodes and negative capacitance.
    pub fn add_ground_cap(&mut self, a: usize, farads: f64) -> Result<(), MorError> {
        self.check_node(a)?;
        if farads < 0.0 || !farads.is_finite() {
            return Err(MorError::InvalidValue { what: "capacitance" });
        }
        self.capacitors.push((a, GND, farads));
        Ok(())
    }

    /// Designate a node as a port. Ports may repeat nodes; the order defines
    /// the port index used by reduction and simulation.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node (ports are programmer-controlled).
    pub fn add_port(&mut self, node: usize) -> usize {
        assert!(node < self.n, "port node out of range");
        self.ports.push(node);
        self.ports.len() - 1
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Port node indices in port order.
    pub fn ports(&self) -> &[usize] {
        &self.ports
    }

    /// Sentinel value used for the ground terminal in
    /// [`RcCluster::resistors`] and [`RcCluster::capacitors`].
    pub const GROUND: usize = GND;

    /// Raw resistor list as `(a, b, ohms)` with [`RcCluster::GROUND`] for
    /// ground terminals — lets other engines (e.g. a SPICE netlist builder)
    /// consume the same cluster.
    pub fn resistors(&self) -> &[(usize, usize, f64)] {
        &self.resistors
    }

    /// Raw capacitor list as `(a, b, farads)` with [`RcCluster::GROUND`]
    /// for ground terminals.
    pub fn capacitors(&self) -> &[(usize, usize, f64)] {
        &self.capacitors
    }

    fn check_node(&self, a: usize) -> Result<(), MorError> {
        if a >= self.n {
            return Err(MorError::InvalidIndex { what: "node", index: a, bound: self.n });
        }
        Ok(())
    }

    /// Build a cluster from a [`Circuit`] containing only resistors and
    /// capacitors, with the given circuit nodes as ports.
    ///
    /// # Errors
    ///
    /// Returns [`MorError::NotLinear`] if the circuit contains sources or
    /// MOSFETs, and [`MorError::InvalidIndex`] if a port node is ground.
    pub fn from_circuit(ckt: &Circuit, ports: &[NodeId]) -> Result<Self, MorError> {
        let mut cl = RcCluster::new();
        for _ in 0..ckt.num_nodes() {
            cl.add_node();
        }
        let idx = |id: NodeId| -> usize {
            match id.index_opt() {
                Some(i) => i,
                None => GND,
            }
        };
        for e in ckt.elements() {
            match e {
                Element::Resistor { a, b, ohms } => {
                    let (ia, ib) = (idx(*a), idx(*b));
                    if ia == GND && ib == GND {
                        continue;
                    }
                    if ia == GND {
                        cl.add_resistor_to_ground(ib, *ohms)?;
                    } else if ib == GND {
                        cl.add_resistor_to_ground(ia, *ohms)?;
                    } else {
                        cl.add_resistor(ia, ib, *ohms)?;
                    }
                }
                Element::Capacitor { a, b, farads } => {
                    let (ia, ib) = (idx(*a), idx(*b));
                    if ia == GND && ib == GND {
                        continue;
                    }
                    if ia == GND {
                        cl.add_ground_cap(ib, *farads)?;
                    } else if ib == GND {
                        cl.add_ground_cap(ia, *farads)?;
                    } else {
                        cl.add_capacitor(ia, ib, *farads)?;
                    }
                }
                _ => return Err(MorError::NotLinear),
            }
        }
        for &p in ports {
            let i = p.index_opt().ok_or(MorError::InvalidIndex {
                what: "port",
                index: usize::MAX,
                bound: cl.n,
            })?;
            cl.check_node(i)?;
            cl.ports.push(i);
        }
        Ok(cl)
    }

    /// Assemble the conductance matrix `G` (SPD after `gmin`).
    pub fn conductance_matrix(&self) -> Csc {
        let mut t = Triplets::new(self.n, self.n);
        for i in 0..self.n {
            t.push(i, i, self.gmin);
        }
        for &(a, b, ohms) in &self.resistors {
            let g = 1.0 / ohms;
            stamp_sym(&mut t, a, b, g);
        }
        t.to_csc()
    }

    /// Assemble the capacitance matrix `C` (symmetric positive
    /// semidefinite).
    pub fn capacitance_matrix(&self) -> Csc {
        let mut t = Triplets::new(self.n, self.n);
        // Pin the full diagonal pattern so `C` always has stored zeros where
        // the Lanczos matvec expects them.
        for i in 0..self.n {
            t.push(i, i, 0.0);
        }
        for &(a, b, c) in &self.capacitors {
            stamp_sym(&mut t, a, b, c);
        }
        t.to_csc()
    }

    /// Exact (unreduced) transfer-function matrix
    /// `H(s) = Bᵀ (G + sC)⁻¹ B` at a real frequency point `s`, computed
    /// densely — the reference the reduced model is validated against.
    ///
    /// # Errors
    ///
    /// Returns [`MorError::NoPorts`] for a port-less cluster or a numeric
    /// error if `G + sC` is singular.
    pub fn exact_transfer(&self, s: f64) -> Result<Dense, MorError> {
        if self.ports.is_empty() {
            return Err(MorError::NoPorts);
        }
        let g = self.conductance_matrix().to_dense();
        let c = self.capacitance_matrix().to_dense();
        let p = self.ports.len();
        let mut a = Dense::zeros(self.n, self.n);
        for r in 0..self.n {
            for cc in 0..self.n {
                a[(r, cc)] = g[(r, cc)] + s * c[(r, cc)];
            }
        }
        let lu = DenseLu::factor(a)?;
        let mut h = Dense::zeros(p, p);
        for (j, &pj) in self.ports.iter().enumerate() {
            let mut e = vec![0.0; self.n];
            e[pj] = 1.0;
            let x = lu.solve(&e);
            for (i, &pi) in self.ports.iter().enumerate() {
                h[(i, j)] = x[pi];
            }
        }
        Ok(h)
    }

    /// Total grounded capacitance (diagnostic).
    pub fn total_ground_cap(&self) -> f64 {
        self.capacitors.iter().filter(|&&(_, b, _)| b == GND).map(|&(_, _, c)| c).sum()
    }
}

fn stamp_sym(t: &mut Triplets, a: usize, b: usize, g: f64) {
    if a != GND {
        t.push(a, a, g);
        if b != GND {
            t.push(a, b, -g);
        }
    }
    if b != GND {
        t.push(b, b, g);
        if a != GND {
            t.push(b, a, -g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::SourceWave;

    fn ladder(n: usize) -> RcCluster {
        let mut cl = RcCluster::new();
        let nodes: Vec<usize> = (0..n).map(|_| cl.add_node()).collect();
        cl.add_resistor_to_ground(nodes[0], 100.0).unwrap();
        for w in nodes.windows(2) {
            cl.add_resistor(w[0], w[1], 50.0).unwrap();
        }
        for &nd in &nodes {
            cl.add_ground_cap(nd, 1e-15).unwrap();
        }
        cl.add_port(nodes[0]);
        cl
    }

    #[test]
    fn matrices_are_symmetric_and_spd() {
        let cl = ladder(5);
        let g = cl.conductance_matrix();
        let c = cl.capacitance_matrix();
        assert!(g.is_symmetric(0.0));
        assert!(c.is_symmetric(0.0));
        assert!(pcv_sparse::SparseCholesky::factor(&g).is_ok());
    }

    #[test]
    fn gmin_regularizes_floating_nodes() {
        let mut cl = RcCluster::new();
        let a = cl.add_node();
        let b = cl.add_node();
        // Only a capacitor: without gmin, G would be all zero.
        cl.add_capacitor(a, b, 1e-15).unwrap();
        let g = cl.conductance_matrix();
        assert!(pcv_sparse::SparseCholesky::factor(&g).is_ok());
    }

    #[test]
    fn dc_transfer_matches_resistive_divider() {
        // Port at the end of two 50 Ω segments grounded through 100 Ω:
        // H(0) = resistance to ground seen at the port = 100 + nothing in
        // series (port is node 0, directly grounded through 100).
        let cl = ladder(3);
        let h = cl.exact_transfer(0.0).unwrap();
        assert!((h[(0, 0)] - 100.0).abs() / 100.0 < 1e-4, "{}", h[(0, 0)]);
    }

    #[test]
    fn high_frequency_transfer_drops() {
        let cl = ladder(4);
        let h0 = cl.exact_transfer(0.0).unwrap()[(0, 0)];
        let hf = cl.exact_transfer(1e13).unwrap()[(0, 0)];
        assert!(hf < h0, "impedance falls with frequency: {hf} vs {h0}");
    }

    #[test]
    fn from_circuit_round_trip() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor(a, b, 50.0);
        ckt.add_resistor(b, Circuit::GROUND, 100.0);
        ckt.add_capacitor(a, Circuit::GROUND, 1e-15);
        ckt.add_capacitor(a, b, 2e-15);
        let cl = RcCluster::from_circuit(&ckt, &[a]).unwrap();
        assert_eq!(cl.num_nodes(), 2);
        assert_eq!(cl.num_ports(), 1);
        let h = cl.exact_transfer(0.0).unwrap();
        assert!((h[(0, 0)] - 150.0).abs() / 150.0 < 1e-4);
    }

    #[test]
    fn from_circuit_rejects_nonlinear() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsrc(a, Circuit::GROUND, SourceWave::Dc(1.0));
        assert!(matches!(RcCluster::from_circuit(&ckt, &[a]), Err(MorError::NotLinear)));
    }

    #[test]
    fn from_circuit_rejects_ground_port() {
        let ckt = Circuit::new();
        assert!(RcCluster::from_circuit(&ckt, &[Circuit::GROUND]).is_err());
    }

    #[test]
    fn validation_errors() {
        let mut cl = RcCluster::new();
        let a = cl.add_node();
        assert!(cl.add_resistor(a, 7, 1.0).is_err());
        assert!(cl.add_resistor_to_ground(a, -1.0).is_err());
        assert!(cl.add_ground_cap(a, -1e-15).is_err());
        assert!(cl.set_gmin(0.0).is_err());
        assert!(cl.set_gmin(1e-10).is_ok());
        assert!(cl.exact_transfer(0.0).is_err()); // no ports
    }

    #[test]
    fn total_ground_cap_sums() {
        let cl = ladder(3);
        assert!((cl.total_ground_cap() - 3e-15).abs() < 1e-28);
    }
}
