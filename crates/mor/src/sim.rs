//! Transient integration of the diagonalized reduced model with nonlinear
//! terminations — the fast analysis engine of the paper (Section 3,
//! equations (5)–(7)).
//!
//! The system `D ẋ + x = η u`, `y = ηᵀ x` is integrated with a linear
//! multistep discretization `ẋ ≈ α x_k + β(history)`. Each Newton step then
//! solves
//!
//! ```text
//! (αD + I + Σⱼ ηⱼ gⱼ ηⱼᵀ) Δ = -F(x)
//! ```
//!
//! whose matrix is a diagonal plus a rank-`k` correction (`k` = number of
//! nonlinear terminations). The Sherman–Morrison–Woodbury identity makes
//! each solve `O(q·k + k³)` instead of `O(q³)`, which is the efficiency
//! claim at the heart of the paper.

use crate::cancel::CancelToken;
use crate::error::MorError;
use crate::model::DiagonalModel;
use pcv_netlist::termination::Termination;
use pcv_netlist::Waveform;
use pcv_sparse::dense::{Dense, DenseLu};

/// Options for the reduced transient.
#[derive(Debug, Clone)]
pub struct MorOptions {
    /// Maximum timestep as a fraction of the simulation span.
    pub max_step_fraction: f64,
    /// Newton convergence tolerance on port voltages (volts).
    pub vtol: f64,
    /// Largest port-voltage change accepted per Newton iteration (volts);
    /// damps limit cycles across the kinks of tabulated driver models.
    pub damping: f64,
    /// Newton iteration budget per step.
    pub max_newton: usize,
    /// Smallest allowed timestep (seconds).
    pub min_step: f64,
    /// Total Newton-iteration budget for the whole transient (DC solve
    /// included). Deterministic stall protection: a pathological cluster
    /// surfaces [`MorError::BudgetExhausted`] instead of running without
    /// bound. `usize::MAX` disables the check.
    pub newton_budget: usize,
    /// Budget of accepted transient steps; [`MorError::BudgetExhausted`]
    /// when exceeded. `usize::MAX` disables the check.
    pub max_tran_steps: usize,
    /// Optional cooperative cancellation handle, polled once per transient
    /// step and once per Newton iteration. Wall-clock deadlines on the token
    /// are non-deterministic; see [`CancelToken`].
    pub cancel: Option<CancelToken>,
}

impl Default for MorOptions {
    fn default() -> Self {
        MorOptions {
            max_step_fraction: 1.0 / 1000.0,
            vtol: 1e-6,
            damping: 0.5,
            max_newton: 80,
            min_step: 1e-18,
            newton_budget: usize::MAX,
            max_tran_steps: usize::MAX,
            cancel: None,
        }
    }
}

/// Whether the options' cancellation token (if any) has fired.
fn cancelled(opts: &MorOptions) -> bool {
    opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
}

/// Result of a reduced-model transient: one waveform per port.
#[derive(Debug, Clone)]
pub struct MorTranResult {
    times: Vec<f64>,
    /// `data[p][k]` = port `p` voltage at `times[k]`.
    data: Vec<Vec<f64>>,
    /// Accepted steps.
    pub steps: usize,
    /// Total Newton iterations (CPU-cost proxy comparable to the SPICE
    /// engine's counter).
    pub newton_iters: usize,
}

impl MorTranResult {
    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Waveform of a port.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range port index.
    pub fn waveform(&self, port: usize) -> Waveform {
        Waveform::from_samples(self.times.clone(), self.data[port].clone())
    }

    /// Number of ports recorded.
    pub fn num_ports(&self) -> usize {
        self.data.len()
    }
}

/// Integrate the reduced model from its DC state to `tstop`.
///
/// `terminations[j]` is the device attached to port `j` (`None` for
/// observe-only ports, which carry no current). Termination capacitance is
/// honored by augmenting the Jacobian and residual with the companion model
/// of a grounded capacitor at the port.
///
/// # Errors
///
/// * [`MorError::InvalidIndex`] if the termination list length differs from
///   the port count.
/// * [`MorError::NoConvergence`] if Newton fails even at the minimum step.
pub fn simulate(
    model: &DiagonalModel,
    terminations: &[Option<&dyn Termination>],
    tstop: f64,
    opts: &MorOptions,
) -> Result<MorTranResult, MorError> {
    let p = model.num_ports();
    if terminations.len() != p {
        return Err(MorError::InvalidIndex {
            what: "termination list",
            index: terminations.len(),
            bound: p + 1,
        });
    }
    if tstop.is_nan() || tstop <= 0.0 {
        return Err(MorError::InvalidValue { what: "tstop" });
    }
    let _span = pcv_trace::span("mor", "rom_eval");
    let q = model.order();

    // Active (current-carrying) ports.
    let active: Vec<usize> = (0..p).filter(|&j| terminations[j].is_some()).collect();

    // Port capacitances (companion-modeled at the ports).
    let caps: Vec<f64> = (0..p).map(|j| terminations[j].map_or(0.0, |t| t.capacitance())).collect();
    let has_cap: Vec<usize> = (0..p).filter(|&j| caps[j] > 0.0).collect();

    // Breakpoints from termination stimuli.
    let mut bps: Vec<f64> = Vec::new();
    for t in terminations.iter().flatten() {
        bps.extend(t.breakpoints());
    }
    bps.retain(|&b| b > 0.0 && b < tstop);
    bps.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    bps.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
    let mut bp_idx = 0usize;

    // --- DC initialization: solve x = η u(0, ηᵀx). ---
    // Tabulated driver surfaces have derivative kinks that can trap the
    // damped Newton in a limit cycle; retry with progressively smaller
    // steps (and a larger budget) before giving up.
    let mut x = vec![0.0; q];
    let mut iters = 0usize;
    let mut dc_ok = false;
    for damp_scale in [1.0, 0.2, 0.04] {
        let mut dc_opts = opts.clone();
        dc_opts.damping = opts.damping * damp_scale;
        dc_opts.max_newton = opts.max_newton * 4;
        x.iter_mut().for_each(|v| *v = 0.0);
        if let Ok(it) = newton_solve(
            model,
            terminations,
            &active,
            &caps,
            &has_cap,
            &mut x,
            /* alpha */ 0.0,
            /* beta */ &vec![0.0; q],
            /* t */ 0.0,
            /* cap history */ None,
            &dc_opts,
        ) {
            iters = it;
            dc_ok = true;
            break;
        }
    }
    if !dc_ok {
        if cancelled(opts) {
            return Err(MorError::Cancelled { stage: "reduced transient dc" });
        }
        return Err(MorError::NoConvergence { t: 0.0 });
    }
    let mut total_newton = iters;

    let mut y = model.outputs(&x);
    if y.iter().any(|v| !v.is_finite()) {
        return Err(MorError::NonFinite { what: "reduced transient dc solution" });
    }
    let hmax = tstop * opts.max_step_fraction;
    let h_init = hmax / 10.0;
    let mut h = h_init;
    let mut t = 0.0;
    let tiny = tstop * 1e-12;

    let mut times = vec![0.0];
    let mut data: Vec<Vec<f64>> = (0..p).map(|j| vec![y[j]]).collect();
    let mut steps = 0usize;

    // Multistep history: xdot for trapezoidal, port-voltage/current history
    // for the capacitor companions.
    let mut xdot = vec![0.0; q];
    let mut cap_v_prev = y.clone();
    let mut cap_i_prev = vec![0.0; p];
    let mut use_be = true;

    while t < tstop - tiny {
        if cancelled(opts) {
            return Err(MorError::Cancelled { stage: "reduced transient" });
        }
        if total_newton > opts.newton_budget || steps >= opts.max_tran_steps {
            return Err(MorError::BudgetExhausted { t });
        }
        let next_bp = bps.get(bp_idx).copied();
        let mut h_eff = h.min(hmax).min(tstop - t);
        if let Some(bp) = next_bp {
            if bp > t + tiny {
                h_eff = h_eff.min(bp - t);
            }
        }
        // Multistep coefficients: ẋ = α x + β.
        let (alpha, beta): (f64, Vec<f64>) = if use_be {
            (1.0 / h_eff, x.iter().map(|&xi| -xi / h_eff).collect())
        } else {
            (2.0 / h_eff, x.iter().zip(&xdot).map(|(&xi, &xd)| -2.0 * xi / h_eff - xd).collect())
        };
        let mut x_new = x.clone();
        let cap_hist = Some((h_eff, use_be, &cap_v_prev[..], &cap_i_prev[..]));
        match newton_solve(
            model,
            terminations,
            &active,
            &caps,
            &has_cap,
            &mut x_new,
            alpha,
            &beta,
            t + h_eff,
            cap_hist,
            opts,
        ) {
            Ok(it) => {
                iters = it;
                total_newton += it;
                // Accept.
                let y_new = model.outputs(&x_new);
                if y_new.iter().any(|v| !v.is_finite()) {
                    return Err(MorError::NonFinite { what: "reduced transient waveform" });
                }
                for &j in &has_cap {
                    let i_new = if use_be {
                        caps[j] / h_eff * (y_new[j] - cap_v_prev[j])
                    } else {
                        2.0 * caps[j] / h_eff * (y_new[j] - cap_v_prev[j]) - cap_i_prev[j]
                    };
                    cap_i_prev[j] = i_new;
                }
                cap_v_prev[..p].copy_from_slice(&y_new[..p]);
                for k in 0..q {
                    xdot[k] = alpha * x_new[k] + beta[k];
                }
                x = x_new;
                y = y_new;
                t += h_eff;
                times.push(t);
                for (j, dj) in data.iter_mut().enumerate() {
                    dj.push(y[j]);
                }
                steps += 1;
                use_be = false;
                if let Some(bp) = next_bp {
                    if (t - bp).abs() <= tiny {
                        bp_idx += 1;
                        h = h_init;
                        use_be = true;
                        continue;
                    }
                }
                if iters <= 3 {
                    h = (h * 1.5).min(hmax);
                } else if iters >= 8 {
                    h *= 0.5;
                }
            }
            Err(()) => {
                h /= 4.0;
                use_be = true;
                if h < opts.min_step {
                    return Err(MorError::NoConvergence { t });
                }
            }
        }
    }
    pcv_trace::count("mor.newton_iters", total_newton as u64);
    pcv_trace::value("mor.tran_steps", steps as u64);
    Ok(MorTranResult { times, data, steps, newton_iters: total_newton })
}

/// Newton solve of `F(x) = αD x + D β + x - η u = 0` where
/// `u_j = -(i_term_j + i_cap_j)` on active ports. The Jacobian is
/// `M + Σ η_j w_j η_jᵀ` with `M = αD + I` diagonal and
/// `w_j = g_j + geq_j ≥ 0`, solved with the Woodbury identity.
///
/// Returns the iteration count, or `Err(())` on non-convergence (the caller
/// retries with a smaller step).
#[allow(clippy::too_many_arguments)]
fn newton_solve(
    model: &DiagonalModel,
    terminations: &[Option<&dyn Termination>],
    active: &[usize],
    caps: &[f64],
    has_cap: &[usize],
    x: &mut [f64],
    alpha: f64,
    beta: &[f64],
    t: f64,
    cap_hist: Option<(f64, bool, &[f64], &[f64])>,
    opts: &MorOptions,
) -> Result<usize, ()> {
    let q = model.order();
    let d = model.d();
    let eta = model.eta();
    let k = active.len();

    // M = αD + I (diagonal, strictly positive since D ≥ 0).
    let m_diag: Vec<f64> = d.iter().map(|&dk| alpha * dk + 1.0).collect();

    for iter in 0..opts.max_newton {
        if cancelled(opts) {
            return Err(());
        }
        let y = model.outputs(x);
        // Port currents and conductances.
        let mut w = vec![0.0; k]; // effective conductance per active port
        let mut i_port = vec![0.0; k]; // current drawn from port
        for (a, &j) in active.iter().enumerate() {
            let term = terminations[j].expect("active port has termination");
            let (i_t, g_t) = term.eval(t, y[j]);
            let (mut i_c, mut g_c) = (0.0, 0.0);
            if caps[j] > 0.0 {
                if let Some((h, be, v_prev, i_prev)) = cap_hist {
                    let geq = if be { caps[j] / h } else { 2.0 * caps[j] / h };
                    let ieq = if be { geq * v_prev[j] } else { geq * v_prev[j] + i_prev[j] };
                    i_c = geq * y[j] - ieq;
                    g_c = geq;
                }
                // In DC (cap_hist None) capacitors carry no current.
            }
            i_port[a] = i_t + i_c;
            w[a] = (g_t + g_c).max(0.0);
        }
        let _ = has_cap;

        // Residual F(x) = αD x + D β + x + Σ η_j i_port_j  (u = -i_port).
        let mut f = vec![0.0; q];
        for kk in 0..q {
            f[kk] = alpha * d[kk] * x[kk] + d[kk] * beta[kk] + x[kk];
        }
        for (a, &j) in active.iter().enumerate() {
            for kk in 0..q {
                f[kk] += eta[(kk, j)] * i_port[a];
            }
        }

        // Solve (M + U Wdiag Uᵀ') Δ = -F via Woodbury, where U columns are
        // η_j and the correction is Σ η_j w_j η_jᵀ.
        // Δ = -M⁻¹F + M⁻¹U (I + W Vᵀ M⁻¹ U)⁻¹ W Vᵀ M⁻¹ F   (V = U here)
        let minv_f: Vec<f64> = (0..q).map(|kk| f[kk] / m_diag[kk]).collect();
        let delta: Vec<f64> = if k == 0 {
            minv_f.iter().map(|&v| -v).collect()
        } else {
            // S = I_k + W Uᵀ M⁻¹ U  (k×k), rhs_k = W Uᵀ M⁻¹ F.
            let mut s = Dense::identity(k);
            let mut rhs_k = vec![0.0; k];
            for (a, &ja) in active.iter().enumerate() {
                let mut dot_f = 0.0;
                for kk in 0..q {
                    dot_f += eta[(kk, ja)] * minv_f[kk];
                }
                rhs_k[a] = w[a] * dot_f;
                for (b, &jb) in active.iter().enumerate() {
                    let mut dot_u = 0.0;
                    for kk in 0..q {
                        dot_u += eta[(kk, ja)] * eta[(kk, jb)] / m_diag[kk];
                    }
                    s[(a, b)] += w[a] * dot_u;
                }
            }
            let z = match DenseLu::factor(s) {
                Ok(lu) => lu.solve(&rhs_k),
                Err(_) => return Err(()),
            };
            // Δ = -M⁻¹F + M⁻¹ U z.
            let mut delta: Vec<f64> = minv_f.iter().map(|&v| -v).collect();
            for (a, &ja) in active.iter().enumerate() {
                for kk in 0..q {
                    delta[kk] += eta[(kk, ja)] * z[a] / m_diag[kk];
                }
            }
            delta
        };

        let mut max_dy = 0.0f64;
        for (a, &j) in active.iter().enumerate() {
            let mut dy = 0.0;
            for kk in 0..q {
                dy += eta[(kk, j)] * delta[kk];
            }
            max_dy = max_dy.max(dy.abs());
            let _ = a;
        }
        // Damp large steps: tabulated driver models have derivative kinks
        // that full Newton steps can cycle across.
        let scale = if max_dy > opts.damping { opts.damping / max_dy } else { 1.0 };
        // Also watch the raw state update so observe-only models converge.
        let max_dx = delta.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for kk in 0..q {
            x[kk] += scale * delta[kk];
        }
        if max_dy < opts.vtol && max_dx < opts.vtol * 100.0 {
            return Ok(iter + 1);
        }
    }
    Err(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rc::RcCluster;
    use crate::sympvl::reduce;
    use pcv_netlist::termination::{
        CapacitiveTermination, ResistiveTermination, TheveninTermination,
    };
    use pcv_netlist::SourceWave;

    /// Single RC line: driver port at node 0, far-end port observed.
    fn rc_line(segments: usize, r_per_seg: f64, c_per_seg: f64) -> RcCluster {
        let mut cl = RcCluster::new();
        let nodes: Vec<usize> = (0..segments).map(|_| cl.add_node()).collect();
        for w in nodes.windows(2) {
            cl.add_resistor(w[0], w[1], r_per_seg).unwrap();
        }
        for &nd in &nodes {
            cl.add_ground_cap(nd, c_per_seg).unwrap();
        }
        cl.add_port(nodes[0]);
        cl.add_port(nodes[segments - 1]);
        cl
    }

    #[test]
    fn thevenin_step_charges_line() {
        // 10-segment line, total R = 500, total C = 10 fF; Thevenin driver
        // 1 kΩ stepping 0 → 2.5 V.
        let cl = rc_line(10, 50.0, 1e-15);
        let rom = reduce(&cl, 4).unwrap().diagonalize().unwrap();
        let drv = TheveninTermination::new(1000.0, SourceWave::step(0.0, 2.5, 1e-10, 1e-11));
        let res = simulate(&rom, &[Some(&drv), None], 20e-9, &MorOptions::default()).unwrap();
        let far = res.waveform(1);
        // Fully charged at the end.
        assert!((far.value_at(20e-9) - 2.5).abs() < 5e-3, "{}", far.value_at(20e-9));
        // Starts at 0.
        assert!(far.value_at(0.0).abs() < 1e-6);
        // Monotone-ish rise: midpoint between 0 and 2.5.
        let mid = far.value_at(0.15e-9);
        assert!(mid > 0.1 && mid < 2.49, "mid-rise sample, got {mid}");
    }

    #[test]
    fn reduced_transient_matches_analytic_rc() {
        // Lumped RC: driver 1 kΩ into a single 1 pF node → tau = 1 ns.
        let mut cl = RcCluster::new();
        let a = cl.add_node();
        cl.add_ground_cap(a, 1e-12).unwrap();
        cl.add_port(a);
        let rom = reduce(&cl, 2).unwrap().diagonalize().unwrap();
        let drv = TheveninTermination::new(1000.0, SourceWave::step(0.0, 1.0, 0.0, 1e-13));
        let res = simulate(&rom, &[Some(&drv)], 8e-9, &MorOptions::default()).unwrap();
        let w = res.waveform(0);
        for &tt in &[1e-9, 2e-9, 4e-9] {
            let analytic = 1.0 - (-tt / 1e-9_f64).exp();
            assert!(
                (w.value_at(tt) - analytic).abs() < 5e-3,
                "t={tt}: {} vs {analytic}",
                w.value_at(tt)
            );
        }
    }

    #[test]
    fn coupled_glitch_appears_on_victim() {
        // Aggressor and victim lines with coupling; victim held by a weak
        // resistive driver.
        let mut cl = RcCluster::new();
        let agg: Vec<usize> = (0..8).map(|_| cl.add_node()).collect();
        let vic: Vec<usize> = (0..8).map(|_| cl.add_node()).collect();
        for w in agg.windows(2) {
            cl.add_resistor(w[0], w[1], 60.0).unwrap();
        }
        for w in vic.windows(2) {
            cl.add_resistor(w[0], w[1], 60.0).unwrap();
        }
        for i in 0..8 {
            cl.add_ground_cap(agg[i], 2e-15).unwrap();
            cl.add_ground_cap(vic[i], 2e-15).unwrap();
            cl.add_capacitor(agg[i], vic[i], 4e-15).unwrap();
        }
        let pa = cl.add_port(agg[0]);
        let pv = cl.add_port(vic[0]);
        let pfar = cl.add_port(vic[7]);
        let rom = reduce(&cl, 4).unwrap().diagonalize().unwrap();
        let agg_drv = TheveninTermination::new(300.0, SourceWave::step(0.0, 2.5, 0.5e-9, 0.2e-9));
        let vic_drv = ResistiveTermination::new(2000.0);
        let res =
            simulate(&rom, &[Some(&agg_drv), Some(&vic_drv), None], 6e-9, &MorOptions::default())
                .unwrap();
        let vw = res.waveform(pfar);
        let (_, peak) = vw.peak_deviation(0.0);
        assert!(peak > 0.05, "visible glitch expected, got {peak}");
        assert!(peak < 2.5, "glitch bounded by vdd");
        // Glitch decays back to ~0 through the holding driver.
        assert!(vw.value_at(6e-9).abs() < 0.02);
        let _ = (pa, pv);
    }

    #[test]
    fn capacitive_termination_slows_charging() {
        let cl = rc_line(5, 100.0, 1e-15);
        let rom = reduce(&cl, 4).unwrap().diagonalize().unwrap();
        let drv = TheveninTermination::new(1000.0, SourceWave::step(0.0, 1.0, 0.0, 1e-12));
        let fast = simulate(&rom, &[Some(&drv), None], 5e-9, &MorOptions::default()).unwrap();
        let big_load = CapacitiveTermination::new(200e-15);
        let slow =
            simulate(&rom, &[Some(&drv), Some(&big_load)], 5e-9, &MorOptions::default()).unwrap();
        let t_fast = fast.waveform(1).crossing(0.5, true, 0.0).unwrap();
        let t_slow = slow.waveform(1).crossing(0.5, true, 0.0).unwrap();
        assert!(t_slow > 2.0 * t_fast, "load cap must slow the far end: {t_slow} vs {t_fast}");
    }

    #[test]
    fn rejects_wrong_termination_count() {
        let cl = rc_line(3, 100.0, 1e-15);
        let rom = reduce(&cl, 2).unwrap().diagonalize().unwrap();
        let err = simulate(&rom, &[None], 1e-9, &MorOptions::default());
        assert!(matches!(err, Err(MorError::InvalidIndex { .. })));
        let err = simulate(&rom, &[None, None], -1.0, &MorOptions::default());
        assert!(matches!(err, Err(MorError::InvalidValue { .. })));
    }

    #[test]
    fn zero_newton_budget_fails_to_converge() {
        // With no Newton iterations allowed, even the DC solve cannot
        // converge: the typed NoConvergence path is exercised end to end.
        let cl = rc_line(4, 100.0, 1e-15);
        let rom = reduce(&cl, 3).unwrap().diagonalize().unwrap();
        let drv = TheveninTermination::new(500.0, SourceWave::step(0.0, 1.0, 0.1e-9, 0.1e-9));
        let opts = MorOptions { max_newton: 0, ..MorOptions::default() };
        let err = simulate(&rom, &[Some(&drv), None], 2e-9, &opts).unwrap_err();
        match err {
            MorError::NoConvergence { t } => assert_eq!(t, 0.0),
            other => panic!("expected NoConvergence, got {other}"),
        }
    }

    #[test]
    fn tiny_work_budget_is_exhausted() {
        let cl = rc_line(4, 100.0, 1e-15);
        let rom = reduce(&cl, 3).unwrap().diagonalize().unwrap();
        let drv = TheveninTermination::new(500.0, SourceWave::step(0.0, 1.0, 0.1e-9, 0.1e-9));
        let opts = MorOptions { newton_budget: 1, ..MorOptions::default() };
        let err = simulate(&rom, &[Some(&drv), None], 2e-9, &opts).unwrap_err();
        assert!(matches!(err, MorError::BudgetExhausted { .. }), "got {err}");
        let opts = MorOptions { max_tran_steps: 3, ..MorOptions::default() };
        let err = simulate(&rom, &[Some(&drv), None], 2e-9, &opts).unwrap_err();
        assert!(matches!(err, MorError::BudgetExhausted { t } if t > 0.0), "got {err}");
    }

    #[test]
    fn pre_cancelled_token_stops_the_transient() {
        use crate::cancel::CancelToken;
        let cl = rc_line(4, 100.0, 1e-15);
        let rom = reduce(&cl, 3).unwrap().diagonalize().unwrap();
        let drv = TheveninTermination::new(500.0, SourceWave::step(0.0, 1.0, 0.1e-9, 0.1e-9));
        let token = CancelToken::new();
        token.cancel();
        let opts = MorOptions { cancel: Some(token), ..MorOptions::default() };
        let err = simulate(&rom, &[Some(&drv), None], 2e-9, &opts).unwrap_err();
        assert!(matches!(err, MorError::Cancelled { .. }), "got {err}");
    }

    #[test]
    fn newton_counter_accumulates() {
        let cl = rc_line(4, 100.0, 1e-15);
        let rom = reduce(&cl, 3).unwrap().diagonalize().unwrap();
        let drv = TheveninTermination::new(500.0, SourceWave::step(0.0, 1.0, 0.1e-9, 0.1e-9));
        let res = simulate(&rom, &[Some(&drv), None], 2e-9, &MorOptions::default()).unwrap();
        assert!(res.steps > 10);
        assert!(res.newton_iters >= res.steps);
        assert_eq!(res.num_ports(), 2);
        assert_eq!(res.times().len(), res.steps + 1);
    }
}
