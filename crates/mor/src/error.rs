//! Error type for model-order reduction.

use std::fmt;

/// Errors produced while assembling, reducing or simulating RC clusters.
#[derive(Debug)]
pub enum MorError {
    /// The underlying linear algebra failed (e.g. `G` not positive
    /// definite after `gmin` regularization).
    Numeric(pcv_sparse::Error),
    /// A node or port index was out of range.
    InvalidIndex {
        /// What kind of index.
        what: &'static str,
        /// The offending value.
        index: usize,
        /// Exclusive upper bound.
        bound: usize,
    },
    /// A parameter value was rejected.
    InvalidValue {
        /// Description of the parameter.
        what: &'static str,
    },
    /// The cluster has no ports.
    NoPorts,
    /// Newton iteration in the reduced transient failed to converge.
    NoConvergence {
        /// Simulation time of the failure.
        t: f64,
    },
    /// An element was found that the linear reduction cannot absorb.
    NotLinear,
    /// A computed waveform or reduced-model matrix contained NaN or
    /// infinite entries; surfaced as a typed error so non-finite values
    /// fail fast instead of poisoning downstream verdicts.
    NonFinite {
        /// What was non-finite, e.g. `"reduced transient waveform"`.
        what: &'static str,
    },
    /// The per-cluster work budget (Newton iterations or transient steps)
    /// was exhausted before reaching `tstop`.
    BudgetExhausted {
        /// Simulation time at which the budget ran out.
        t: f64,
    },
    /// A cooperative cancellation flag or soft deadline fired.
    Cancelled {
        /// The stage that observed the cancellation, e.g. `"block lanczos"`.
        stage: &'static str,
    },
}

impl fmt::Display for MorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorError::Numeric(e) => write!(f, "numeric failure: {e}"),
            MorError::InvalidIndex { what, index, bound } => {
                write!(f, "{what} index {index} out of range (< {bound})")
            }
            MorError::InvalidValue { what } => write!(f, "invalid value for {what}"),
            MorError::NoPorts => write!(f, "cluster has no ports"),
            MorError::NoConvergence { t } => {
                write!(f, "reduced-model newton failed to converge at t = {t:e}")
            }
            MorError::NotLinear => {
                write!(f, "circuit contains elements the linear reduction cannot absorb")
            }
            MorError::NonFinite { what } => {
                write!(f, "{what} produced a non-finite (NaN or infinite) value")
            }
            MorError::BudgetExhausted { t } => {
                write!(f, "per-cluster work budget exhausted at t = {t:e}")
            }
            MorError::Cancelled { stage } => {
                write!(f, "cancelled during {stage} (soft deadline or cancellation flag)")
            }
        }
    }
}

impl std::error::Error for MorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MorError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pcv_sparse::Error> for MorError {
    fn from(e: pcv_sparse::Error) -> Self {
        MorError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MorError::NoPorts.to_string().contains("ports"));
        assert!(MorError::NotLinear.to_string().contains("linear"));
        assert!(MorError::NoConvergence { t: 1.0 }.to_string().contains("newton"));
        let e = MorError::InvalidIndex { what: "port", index: 5, bound: 3 };
        assert!(e.to_string().contains('5'));
        let e = MorError::Numeric(pcv_sparse::Error::Singular { col: 1 });
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_recovery_variants() {
        let e = MorError::NonFinite { what: "reduced transient waveform" };
        assert!(e.to_string().contains("reduced transient waveform"));
        assert!(e.to_string().contains("non-finite"));
        let e = MorError::BudgetExhausted { t: 2e-9 };
        assert!(e.to_string().contains("budget"));
        assert!(e.to_string().contains("2e-9"));
        let e = MorError::Cancelled { stage: "block lanczos" };
        assert!(e.to_string().contains("block lanczos"));
    }

    #[test]
    fn source_chain_reaches_sparse_error() {
        use std::error::Error as _;
        let e = MorError::Numeric(pcv_sparse::Error::NotPositiveDefinite { col: 2, pivot: -0.5 });
        let src = e.source().expect("numeric errors carry a source");
        assert!(src.to_string().contains("positive definite"));
        assert!(src.source().is_none(), "sparse errors are leaves");
        // Non-numeric variants are leaves themselves.
        assert!(MorError::NoPorts.source().is_none());
        assert!(MorError::BudgetExhausted { t: 0.0 }.source().is_none());
        assert!(MorError::Cancelled { stage: "x" }.source().is_none());
        assert!(MorError::NonFinite { what: "x" }.source().is_none());
    }
}
