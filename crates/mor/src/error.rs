//! Error type for model-order reduction.

use std::fmt;

/// Errors produced while assembling, reducing or simulating RC clusters.
#[derive(Debug)]
pub enum MorError {
    /// The underlying linear algebra failed (e.g. `G` not positive
    /// definite after `gmin` regularization).
    Numeric(pcv_sparse::Error),
    /// A node or port index was out of range.
    InvalidIndex {
        /// What kind of index.
        what: &'static str,
        /// The offending value.
        index: usize,
        /// Exclusive upper bound.
        bound: usize,
    },
    /// A parameter value was rejected.
    InvalidValue {
        /// Description of the parameter.
        what: &'static str,
    },
    /// The cluster has no ports.
    NoPorts,
    /// Newton iteration in the reduced transient failed to converge.
    NoConvergence {
        /// Simulation time of the failure.
        t: f64,
    },
    /// An element was found that the linear reduction cannot absorb.
    NotLinear,
}

impl fmt::Display for MorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorError::Numeric(e) => write!(f, "numeric failure: {e}"),
            MorError::InvalidIndex { what, index, bound } => {
                write!(f, "{what} index {index} out of range (< {bound})")
            }
            MorError::InvalidValue { what } => write!(f, "invalid value for {what}"),
            MorError::NoPorts => write!(f, "cluster has no ports"),
            MorError::NoConvergence { t } => {
                write!(f, "reduced-model newton failed to converge at t = {t:e}")
            }
            MorError::NotLinear => {
                write!(f, "circuit contains elements the linear reduction cannot absorb")
            }
        }
    }
}

impl std::error::Error for MorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MorError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pcv_sparse::Error> for MorError {
    fn from(e: pcv_sparse::Error) -> Self {
        MorError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MorError::NoPorts.to_string().contains("ports"));
        assert!(MorError::NotLinear.to_string().contains("linear"));
        assert!(MorError::NoConvergence { t: 1.0 }.to_string().contains("newton"));
        let e = MorError::InvalidIndex { what: "port", index: 5, bound: 3 };
        assert!(e.to_string().contains('5'));
        let e = MorError::Numeric(pcv_sparse::Error::Singular { col: 1 });
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
