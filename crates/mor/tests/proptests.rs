//! Randomized-property tests for the reduction: over random RC clusters,
//! the reduced model must match the exact DC transfer, stay passive, and
//! its diagonalized form must reproduce the projected transfer function.
//! Driven by the seeded internal PRNG so the workspace builds offline.

use pcv_mor::{reduce_arnoldi, sympvl, RcCluster};
use pcv_rng::Rng;

/// A random connected RC cluster: a random tree of resistors with grounded
/// caps everywhere and a few extra coupling caps, 1–3 ports.
fn arbitrary_cluster(rng: &mut Rng) -> RcCluster {
    let n = rng.range_usize(2, 18);
    let res: Vec<f64> = (0..20).map(|_| rng.range_f64(10.0, 5e3)).collect();
    let caps: Vec<f64> = (0..40).map(|_| rng.range_f64(1e-16, 5e-14)).collect();
    let n_couples = rng.range_usize(0, 6);
    let couples: Vec<(usize, usize)> =
        (0..n_couples).map(|_| (rng.range_usize(0, 18), rng.range_usize(0, 18))).collect();
    let nports = rng.range_usize(1, 4);

    let mut cl = RcCluster::new();
    let nodes: Vec<usize> = (0..n).map(|_| cl.add_node()).collect();
    // Random tree: node k attaches to a previous node.
    for k in 1..n {
        let parent = (res[k % res.len()] as usize) % k;
        cl.add_resistor(nodes[parent], nodes[k], res[(k * 3) % res.len()]).unwrap();
    }
    for (k, &nd) in nodes.iter().enumerate() {
        cl.add_ground_cap(nd, caps[k % caps.len()]).unwrap();
    }
    for (i, (a, b)) in couples.into_iter().enumerate() {
        let (a, b) = (a % n, b % n);
        if a != b {
            cl.add_capacitor(nodes[a], nodes[b], caps[(i * 7) % caps.len()]).unwrap();
        }
    }
    for p in 0..nports.min(n) {
        cl.add_port(nodes[(p * 5) % n]);
    }
    cl
}

#[test]
fn sympvl_matches_dc_exactly() {
    let mut rng = Rng::new(0x40A1);
    for _ in 0..48 {
        let cl = arbitrary_cluster(&mut rng);
        let rom = sympvl::reduce(&cl, 2).unwrap();
        let exact = cl.exact_transfer(0.0).unwrap();
        let h = rom.transfer(0.0).unwrap();
        let scale = exact[(0, 0)].abs();
        for i in 0..cl.num_ports() {
            for j in 0..cl.num_ports() {
                let denom = exact[(i, j)].abs().max(1e-9 * scale);
                assert!(
                    (h[(i, j)] - exact[(i, j)]).abs() / denom < 1e-6,
                    "dc mismatch at ({i}, {j})"
                );
            }
        }
    }
}

#[test]
fn sympvl_models_are_passive_and_stable() {
    let mut rng = Rng::new(0x40A2);
    for _ in 0..48 {
        let cl = arbitrary_cluster(&mut rng);
        let rom = sympvl::reduce(&cl, 4).unwrap();
        assert!(rom.is_passive(1e-9).unwrap());
        let d = rom.diagonalize().unwrap();
        // All reduced time constants non-negative → all poles in the left
        // half plane (or at infinity).
        assert!(d.d().iter().all(|&w| w >= 0.0));
    }
}

#[test]
fn diagonalization_preserves_transfer() {
    let mut rng = Rng::new(0x40A3);
    for _ in 0..48 {
        let cl = arbitrary_cluster(&mut rng);
        let rom = sympvl::reduce(&cl, 3).unwrap();
        let diag = rom.diagonalize().unwrap();
        for &s in &[0.0, 1e8, 1e10] {
            let h1 = rom.transfer(s).unwrap();
            let h2 = diag.transfer(s);
            let scale = h1[(0, 0)].abs().max(1e-300);
            for i in 0..cl.num_ports() {
                for j in 0..cl.num_ports() {
                    assert!(
                        (h1[(i, j)] - h2[(i, j)]).abs() <= 1e-7 * scale,
                        "transfer mismatch at s = {s}"
                    );
                }
            }
        }
    }
}

#[test]
fn transfer_magnitude_decreases_with_frequency() {
    let mut rng = Rng::new(0x40A4);
    for _ in 0..48 {
        // Driving-point impedance of a passive RC one-port falls with s.
        let cl = arbitrary_cluster(&mut rng);
        let rom = sympvl::reduce(&cl, 4).unwrap();
        let mut prev = f64::INFINITY;
        for &s in &[0.0, 1e8, 1e9, 1e10, 1e11] {
            let h = rom.transfer(s).unwrap()[(0, 0)];
            assert!(h >= -1e-12, "driving-point impedance stays non-negative");
            assert!(h <= prev * (1.0 + 1e-9), "monotone decay: {prev} then {h}");
            prev = h;
        }
    }
}

#[test]
fn arnoldi_and_sympvl_agree_at_dc() {
    let mut rng = Rng::new(0x40A5);
    for _ in 0..48 {
        let cl = arbitrary_cluster(&mut rng);
        let a = reduce_arnoldi(&cl, 2).unwrap();
        let l = sympvl::reduce(&cl, 2).unwrap();
        let ha = a.transfer(0.0).unwrap();
        let hl = l.transfer(0.0).unwrap();
        let scale = hl[(0, 0)].abs();
        for i in 0..cl.num_ports() {
            for j in 0..cl.num_ports() {
                let denom = hl[(i, j)].abs().max(1e-9 * scale);
                assert!((ha[(i, j)] - hl[(i, j)]).abs() / denom < 1e-6);
            }
        }
    }
}
