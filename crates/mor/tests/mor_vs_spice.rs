//! Cross-validation of the SyMPVL engine against the SPICE substrate on
//! identical coupled clusters — the miniature version of the paper's
//! Figure 3 experiment (MPVL vs SPICE crosstalk peaks).

use pcv_mor::{simulate, sympvl, MorOptions, RcCluster};
use pcv_netlist::termination::{ResistiveTermination, TheveninTermination};
use pcv_netlist::{Circuit, NodeId, SourceWave};
use pcv_spice::{SimOptions, Simulator};

const VDD: f64 = 2.5;

/// Build the same coupled two-line cluster in both representations.
/// Returns (circuit, agg_drive_node, vic_drive_node, vic_far_node, cluster).
fn build_pair(
    segs: usize,
    r_seg: f64,
    cg: f64,
    cc: f64,
) -> (Circuit, NodeId, NodeId, NodeId, RcCluster) {
    let mut ckt = Circuit::new();
    let agg: Vec<NodeId> = (0..segs).map(|i| ckt.node(&format!("a{i}"))).collect();
    let vic: Vec<NodeId> = (0..segs).map(|i| ckt.node(&format!("v{i}"))).collect();
    for w in agg.windows(2) {
        ckt.add_resistor(w[0], w[1], r_seg);
    }
    for w in vic.windows(2) {
        ckt.add_resistor(w[0], w[1], r_seg);
    }
    for i in 0..segs {
        ckt.add_capacitor(agg[i], Circuit::GROUND, cg);
        ckt.add_capacitor(vic[i], Circuit::GROUND, cg);
        ckt.add_capacitor(agg[i], vic[i], cc);
    }

    let mut cl = RcCluster::new();
    let ca: Vec<usize> = (0..segs).map(|_| cl.add_node()).collect();
    let cv: Vec<usize> = (0..segs).map(|_| cl.add_node()).collect();
    for w in ca.windows(2) {
        cl.add_resistor(w[0], w[1], r_seg).unwrap();
    }
    for w in cv.windows(2) {
        cl.add_resistor(w[0], w[1], r_seg).unwrap();
    }
    for i in 0..segs {
        cl.add_ground_cap(ca[i], cg).unwrap();
        cl.add_ground_cap(cv[i], cg).unwrap();
        cl.add_capacitor(ca[i], cv[i], cc).unwrap();
    }
    cl.add_port(ca[0]);
    cl.add_port(cv[0]);
    cl.add_port(cv[segs - 1]);
    (ckt, agg[0], vic[0], vic[segs - 1], cl)
}

#[test]
fn crosstalk_peak_matches_spice_with_linear_drivers() {
    // The Figure 3 setup: linear 1 kΩ drive resistance everywhere.
    let (ckt, agg0, vic0, vic_far, cl) = build_pair(10, 60.0, 3e-15, 5e-15);
    let r_drive = 1000.0;
    let tstop = 8e-9;
    let agg_wave = SourceWave::step(0.0, VDD, 1e-9, 0.3e-9);

    // SPICE reference: Thevenin drivers as R + V source.
    let mut ckt = ckt;
    let agg_src = ckt.node("agg_src");
    ckt.add_vsrc(agg_src, Circuit::GROUND, agg_wave.clone());
    ckt.add_resistor(agg_src, agg0, r_drive);
    ckt.add_resistor(vic0, Circuit::GROUND, r_drive); // victim held low
    let spice =
        Simulator::new(&ckt).transient_probed(tstop, &SimOptions::default(), &[vic_far]).unwrap();
    let (_, spice_peak) = spice.waveform(vic_far).peak_deviation(0.0);

    // SyMPVL: same drivers as terminations on the reduced model.
    let rom = sympvl::reduce(&cl, 4).unwrap().diagonalize().unwrap();
    let agg_drv = TheveninTermination::new(r_drive, agg_wave);
    let vic_drv = ResistiveTermination::new(r_drive);
    let mor =
        simulate(&rom, &[Some(&agg_drv), Some(&vic_drv), None], tstop, &MorOptions::default())
            .unwrap();
    let (_, mor_peak) = mor.waveform(2).peak_deviation(0.0);

    assert!(spice_peak > 0.05, "test needs a visible glitch, got {spice_peak}");
    let rel = (mor_peak - spice_peak).abs() / spice_peak.abs();
    assert!(rel < 0.02, "MPVL peak {mor_peak} vs SPICE peak {spice_peak}: rel err {rel}");
}

#[test]
fn full_waveform_agrees_not_just_peak() {
    // Figure 4/5 in miniature: overlay the two waveforms.
    let (ckt, agg0, vic0, vic_far, cl) = build_pair(8, 80.0, 2e-15, 6e-15);
    let tstop = 6e-9;
    let agg_wave = SourceWave::step(0.0, VDD, 0.8e-9, 0.2e-9);

    let mut ckt = ckt;
    let agg_src = ckt.node("agg_src");
    ckt.add_vsrc(agg_src, Circuit::GROUND, agg_wave.clone());
    ckt.add_resistor(agg_src, agg0, 500.0);
    ckt.add_resistor(vic0, Circuit::GROUND, 1500.0);
    let spice =
        Simulator::new(&ckt).transient_probed(tstop, &SimOptions::default(), &[vic_far]).unwrap();
    let sw = spice.waveform(vic_far);

    let rom = sympvl::reduce(&cl, 5).unwrap().diagonalize().unwrap();
    let agg_drv = TheveninTermination::new(500.0, agg_wave);
    let vic_drv = ResistiveTermination::new(1500.0);
    let mor =
        simulate(&rom, &[Some(&agg_drv), Some(&vic_drv), None], tstop, &MorOptions::default())
            .unwrap();
    let mw = mor.waveform(2);

    // Compare on a uniform grid; error normalized to the glitch peak.
    let (_, peak) = sw.peak_deviation(0.0);
    let mut worst = 0.0f64;
    for k in 1..120 {
        let t = tstop * k as f64 / 120.0;
        worst = worst.max((sw.value_at(t) - mw.value_at(t)).abs());
    }
    assert!(worst < 0.03 * peak.abs().max(0.05), "waveforms diverge: worst {worst}, peak {peak}");
}

#[test]
fn delay_with_coupling_matches_spice() {
    // Table 2 in miniature: victim driven through the coupled interconnect
    // while the aggressor switches opposite; measure the victim 50 % delay.
    let (ckt, agg0, vic0, vic_far, cl) = build_pair(10, 70.0, 2.5e-15, 5e-15);
    let tstop = 10e-9;
    let vic_wave = SourceWave::step(0.0, VDD, 1e-9, 0.3e-9);
    let agg_wave = SourceWave::step(VDD, 0.0, 1e-9, 0.3e-9); // opposite

    let mut ckt = ckt;
    let vs = ckt.node("vic_src");
    let asrc = ckt.node("agg_src");
    ckt.add_vsrc(vs, Circuit::GROUND, vic_wave.clone());
    ckt.add_resistor(vs, vic0, 800.0);
    ckt.add_vsrc(asrc, Circuit::GROUND, agg_wave.clone());
    ckt.add_resistor(asrc, agg0, 400.0);
    let spice =
        Simulator::new(&ckt).transient_probed(tstop, &SimOptions::default(), &[vic_far]).unwrap();
    let t_spice = spice.waveform(vic_far).crossing(0.5 * VDD, true, 0.0).expect("victim rises");

    let rom = sympvl::reduce(&cl, 5).unwrap().diagonalize().unwrap();
    let agg_drv = TheveninTermination::new(400.0, agg_wave);
    let vic_drv = TheveninTermination::new(800.0, vic_wave);
    let mor =
        simulate(&rom, &[Some(&agg_drv), Some(&vic_drv), None], tstop, &MorOptions::default())
            .unwrap();
    let t_mor = mor.waveform(2).crossing(0.5 * VDD, true, 0.0).expect("victim rises");

    let rel = (t_mor - t_spice).abs() / t_spice;
    assert!(rel < 0.01, "50% crossing: MPVL {t_mor} vs SPICE {t_spice} ({rel})");
}

#[test]
fn mor_uses_fewer_newton_iterations_than_spice() {
    // The efficiency claim: on a biggish cluster the reduced model costs a
    // tiny fraction of the full matrix solves (proxy: Newton iteration count
    // times system size).
    let (ckt, agg0, vic0, vic_far, cl) = build_pair(60, 30.0, 1.5e-15, 3e-15);
    let tstop = 6e-9;
    let agg_wave = SourceWave::step(0.0, VDD, 1e-9, 0.3e-9);

    let mut ckt = ckt;
    let agg_src = ckt.node("agg_src");
    ckt.add_vsrc(agg_src, Circuit::GROUND, agg_wave.clone());
    ckt.add_resistor(agg_src, agg0, 1000.0);
    ckt.add_resistor(vic0, Circuit::GROUND, 1000.0);
    let spice =
        Simulator::new(&ckt).transient_probed(tstop, &SimOptions::default(), &[vic_far]).unwrap();

    let rom = sympvl::reduce(&cl, 4).unwrap().diagonalize().unwrap();
    let agg_drv = TheveninTermination::new(1000.0, agg_wave);
    let vic_drv = ResistiveTermination::new(1000.0);
    let mor =
        simulate(&rom, &[Some(&agg_drv), Some(&vic_drv), None], tstop, &MorOptions::default())
            .unwrap();

    // Reduced model: order ≤ 12 vs 121 MNA unknowns, so per-iteration work
    // differs by orders of magnitude; iteration counts stay comparable.
    assert!(rom.order() <= 12);
    assert!(mor.newton_iters < 3 * spice.newton_iters.max(1));
    // And the answers still agree.
    let (_, sp) = spice.waveform(vic_far).peak_deviation(0.0);
    let (_, mp) = mor.waveform(2).peak_deviation(0.0);
    assert!((sp - mp).abs() / sp.abs() < 0.03, "{sp} vs {mp}");
}
