//! Pruning: capacitance-ratio filtering and cluster formation (Section 3 of
//! the paper).
//!
//! Extraction hands the flow millions of coupling capacitors; most are
//! electrically irrelevant to any given victim. Pruning keeps, per victim,
//! only the aggressors whose summed coupling exceeds a fraction of the
//! victim's total capacitance; everything else is *decoupled* — its
//! coupling capacitance is grounded, conservatively preserving the victim's
//! loading. In the paper this reduces average cluster size from ~105 nets
//! to 2–5.

use pcv_netlist::{PNetId, ParasiticDb};

/// Sizes of the *coupling-connected components* of the database: nets
/// transitively linked through coupling capacitors. This is the paper's
/// "cluster before pruning" — without decoupling, analyzing one victim
/// drags in its whole component (~105 nets on the paper's DSP).
///
/// Returns, for each net, the size of its component.
pub fn coupling_component_sizes(db: &ParasiticDb) -> Vec<usize> {
    let n = db.num_nets();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for c in db.couplings() {
        let (a, b) = (find(&mut parent, c.a.net.0), find(&mut parent, c.b.net.0));
        if a != b {
            parent[a] = b;
        }
    }
    let mut size = vec![0usize; n];
    for i in 0..n {
        let r = find(&mut parent, i);
        size[r] += 1;
    }
    (0..n).map(|i| size[find(&mut parent, i)]).collect()
}

/// Pruning parameters.
#[derive(Debug, Clone)]
pub struct PruneConfig {
    /// Keep an aggressor when `C_couple(victim, agg) / C_total(victim)`
    /// is at least this ratio.
    pub cap_ratio: f64,
    /// Hard cap on aggressors per cluster (strongest kept).
    pub max_aggressors: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig { cap_ratio: 0.02, max_aggressors: 12 }
    }
}

/// A pruned victim cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The victim net.
    pub victim: PNetId,
    /// Kept aggressors with their summed coupling (farads), strongest
    /// first.
    pub aggressors: Vec<(PNetId, f64)>,
    /// Total coupling capacitance that was decoupled (grounded).
    pub decoupled_cap: f64,
    /// Number of coupled neighbors before pruning (cluster size − 1
    /// pre-prune).
    pub neighbors_before: usize,
    /// Size of the victim's coupling-connected component (the paper's
    /// cluster size *before* pruning: everything one would have to analyze
    /// together without decoupling).
    pub component_size: usize,
}

impl Cluster {
    /// Cluster size (victim + kept aggressors).
    pub fn size(&self) -> usize {
        1 + self.aggressors.len()
    }

    /// Net ids of all members, victim first.
    pub fn members(&self) -> Vec<PNetId> {
        let mut v = vec![self.victim];
        v.extend(self.aggressors.iter().map(|&(a, _)| a));
        v
    }
}

/// Prune one victim.
pub fn prune_victim(db: &ParasiticDb, victim: PNetId, cfg: &PruneConfig) -> Cluster {
    let sizes = coupling_component_sizes(db);
    prune_victim_with_components(db, victim, cfg, &sizes)
}

/// Prune one victim using precomputed component sizes (avoids recomputing
/// the union-find per victim in chip-level sweeps).
pub fn prune_victim_with_components(
    db: &ParasiticDb,
    victim: PNetId,
    cfg: &PruneConfig,
    component_sizes: &[usize],
) -> Cluster {
    let _span = pcv_trace::span("xtalk", "prune");
    let total = db.total_cap(victim).max(1e-30);
    let neighbors = db.neighbors(victim);
    let neighbors_before = neighbors.len();
    let mut kept = Vec::new();
    let mut decoupled = 0.0;
    for (agg, cc) in neighbors {
        if cc / total >= cfg.cap_ratio && kept.len() < cfg.max_aggressors {
            kept.push((agg, cc));
        } else {
            decoupled += cc;
        }
    }
    Cluster {
        victim,
        aggressors: kept,
        decoupled_cap: decoupled,
        neighbors_before,
        component_size: component_sizes[victim.0],
    }
}

/// Prune one victim with *context weighting* (the paper's enhancement of
/// plain capacitance-ratio pruning with "cell and context information"):
/// each aggressor's coupling is scaled by `strength(net)` before the ratio
/// test, so a strongly driven aggressor survives a threshold a weak one
/// would not. `strength` should return a value around 1.0 for a typical
/// driver (e.g. normalized drive strength); the victim's own entry is not
/// consulted.
pub fn prune_victim_weighted(
    db: &ParasiticDb,
    victim: PNetId,
    cfg: &PruneConfig,
    strength: &dyn Fn(PNetId) -> f64,
) -> Cluster {
    let sizes = coupling_component_sizes(db);
    let total = db.total_cap(victim).max(1e-30);
    let mut neighbors = db.neighbors(victim);
    // Sort by *weighted* coupling so the strongest effective aggressors
    // are kept under the max_aggressors cap.
    neighbors.sort_by(|a, b| {
        (b.1 * strength(b.0)).partial_cmp(&(a.1 * strength(a.0))).expect("finite weights")
    });
    let neighbors_before = neighbors.len();
    let mut kept = Vec::new();
    let mut decoupled = 0.0;
    for (agg, cc) in neighbors {
        let weighted = cc * strength(agg);
        if weighted / total >= cfg.cap_ratio && kept.len() < cfg.max_aggressors {
            kept.push((agg, cc));
        } else {
            decoupled += cc;
        }
    }
    Cluster {
        victim,
        aggressors: kept,
        decoupled_cap: decoupled,
        neighbors_before,
        component_size: sizes[victim.0],
    }
}

/// Prune every net of the database as a victim.
pub fn prune_all(db: &ParasiticDb, cfg: &PruneConfig) -> Vec<Cluster> {
    let sizes = coupling_component_sizes(db);
    (0..db.num_nets()).map(|k| prune_victim_with_components(db, PNetId(k), cfg, &sizes)).collect()
}

/// Aggregate statistics over a set of clusters — the paper's §3 pruning
/// effectiveness numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct PruningStats {
    /// Mean cluster size before pruning (victim + all coupled neighbors).
    pub mean_before: f64,
    /// Mean coupling-connected component size (the paper's pre-pruning
    /// cluster measure).
    pub mean_component: f64,
    /// Mean cluster size after pruning.
    pub mean_after: f64,
    /// Largest post-prune cluster.
    pub max_after: usize,
    /// Number of clusters with at least one kept aggressor (the
    /// "potentially problematic nets").
    pub active_clusters: usize,
}

impl PruningStats {
    /// Compute statistics for a cluster set.
    pub fn compute(clusters: &[Cluster]) -> PruningStats {
        if clusters.is_empty() {
            return PruningStats {
                mean_before: 0.0,
                mean_component: 0.0,
                mean_after: 0.0,
                max_after: 0,
                active_clusters: 0,
            };
        }
        let n = clusters.len() as f64;
        PruningStats {
            mean_before: clusters.iter().map(|c| 1 + c.neighbors_before).sum::<usize>() as f64 / n,
            mean_component: clusters.iter().map(|c| c.component_size).sum::<usize>() as f64 / n,
            mean_after: clusters.iter().map(|c| c.size()).sum::<usize>() as f64 / n,
            max_after: clusters.iter().map(|c| c.size()).max().unwrap_or(0),
            active_clusters: clusters.iter().filter(|c| !c.aggressors.is_empty()).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::{NetNodeRef, NetParasitics};

    /// A victim coupled to one strong and several weak aggressors.
    fn star_db(n_weak: usize) -> (ParasiticDb, PNetId) {
        let mut db = ParasiticDb::new();
        let mut v = NetParasitics::new("v");
        let v1 = v.add_node();
        v.add_resistor(0, v1, 100.0);
        v.add_ground_cap(v1, 50e-15);
        let vid = db.add_net(v);
        let strong = db.add_net(NetParasitics::new("strong"));
        db.add_coupling(
            NetNodeRef { net: vid, node: 1 },
            NetNodeRef { net: strong, node: 0 },
            40e-15,
        );
        for k in 0..n_weak {
            let w = db.add_net(NetParasitics::new(format!("weak{k}")));
            db.add_coupling(
                NetNodeRef { net: vid, node: 0 },
                NetNodeRef { net: w, node: 0 },
                0.2e-15,
            );
        }
        (db, vid)
    }

    #[test]
    fn weak_couplings_are_decoupled() {
        let (db, vid) = star_db(50);
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        assert_eq!(cluster.aggressors.len(), 1);
        assert_eq!(db.net(cluster.aggressors[0].0).name(), "strong");
        assert_eq!(cluster.neighbors_before, 51);
        assert!((cluster.decoupled_cap - 50.0 * 0.2e-15).abs() < 1e-28);
        // The whole star is one coupling component: 52 nets.
        assert_eq!(cluster.component_size, 52);
        assert_eq!(cluster.size(), 2);
        assert_eq!(cluster.members().len(), 2);
    }

    #[test]
    fn threshold_zero_keeps_everything_up_to_cap() {
        let (db, vid) = star_db(5);
        let cfg = PruneConfig { cap_ratio: 0.0, max_aggressors: 100 };
        let cluster = prune_victim(&db, vid, &cfg);
        assert_eq!(cluster.aggressors.len(), 6);
        assert_eq!(cluster.decoupled_cap, 0.0);
    }

    #[test]
    fn max_aggressors_caps_cluster_keeping_strongest() {
        let (db, vid) = star_db(5);
        let cfg = PruneConfig { cap_ratio: 0.0, max_aggressors: 2 };
        let cluster = prune_victim(&db, vid, &cfg);
        assert_eq!(cluster.aggressors.len(), 2);
        // Strongest (40 fF) is kept first.
        assert!((cluster.aggressors[0].1 - 40e-15).abs() < 1e-28);
    }

    #[test]
    fn stats_reflect_reduction() {
        let (db, _) = star_db(100);
        let clusters = prune_all(&db, &PruneConfig::default());
        let stats = PruningStats::compute(&clusters);
        // The victim's cluster shrinks from 102 to 2; weak nets have tiny
        // clusters throughout.
        assert!(stats.mean_before > stats.mean_after);
        assert!(stats.max_after <= 2 + 1);
        assert!(stats.active_clusters >= 1);
    }

    #[test]
    fn weighted_pruning_keeps_strong_aggressors() {
        // Two aggressors with equal coupling; strength weighting must keep
        // the strongly driven one when the threshold cuts midway.
        let mut db = ParasiticDb::new();
        let mut v = NetParasitics::new("v");
        let v1 = v.add_node();
        v.add_ground_cap(v1, 100e-15);
        let vid = db.add_net(v);
        let strong = db.add_net(NetParasitics::new("strong"));
        let weak = db.add_net(NetParasitics::new("weak"));
        for agg in [strong, weak] {
            db.add_coupling(
                NetNodeRef { net: vid, node: 1 },
                NetNodeRef { net: agg, node: 0 },
                3e-15,
            );
        }
        // Unweighted ratio = 3/106 ≈ 0.028 for both.
        let cfg = PruneConfig { cap_ratio: 0.04, max_aggressors: 12 };
        let strength = |n: PNetId| if n == strong { 2.0 } else { 0.5 };
        let cluster = prune_victim_weighted(&db, vid, &cfg, &strength);
        assert_eq!(cluster.aggressors.len(), 1);
        assert_eq!(cluster.aggressors[0].0, strong);
        // Plain pruning at the same threshold drops both.
        let plain = prune_victim(&db, vid, &cfg);
        assert!(plain.aggressors.is_empty());
    }

    #[test]
    fn weighted_pruning_orders_by_effective_coupling() {
        let mut db = ParasiticDb::new();
        let mut v = NetParasitics::new("v");
        let v1 = v.add_node();
        v.add_ground_cap(v1, 10e-15);
        let vid = db.add_net(v);
        let a = db.add_net(NetParasitics::new("a"));
        let b = db.add_net(NetParasitics::new("b"));
        db.add_coupling(NetNodeRef { net: vid, node: 1 }, NetNodeRef { net: a, node: 0 }, 5e-15);
        db.add_coupling(NetNodeRef { net: vid, node: 1 }, NetNodeRef { net: b, node: 0 }, 4e-15);
        // b is driven 3x stronger: effective coupling 12 vs 5.
        let strength = |n: PNetId| if n == b { 3.0 } else { 1.0 };
        let cfg = PruneConfig { cap_ratio: 0.0, max_aggressors: 1 };
        let cluster = prune_victim_weighted(&db, vid, &cfg, &strength);
        assert_eq!(cluster.aggressors[0].0, b);
    }

    #[test]
    fn empty_stats() {
        let s = PruningStats::compute(&[]);
        assert_eq!(s.max_after, 0);
        assert_eq!(s.active_clusters, 0);
    }
}
