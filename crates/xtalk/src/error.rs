//! Error type for the crosstalk verification flow.

use std::fmt;

/// Errors produced during crosstalk analysis.
#[derive(Debug)]
pub enum XtalkError {
    /// Model-order reduction or reduced simulation failed.
    Mor(pcv_mor::MorError),
    /// The SPICE reference engine failed.
    Spice(pcv_spice::SimError),
    /// A referenced cell was not found in the (characterized) library.
    Cells(pcv_cells::CellError),
    /// The victim waveform never produced the requested measurement.
    Measurement {
        /// What was being measured.
        what: &'static str,
    },
    /// A net needed a driver but the design declares none.
    NoDriver {
        /// Name of the driverless net.
        net: String,
    },
    /// The requested configuration is inconsistent (e.g. transistor-level
    /// drivers with the reduced-order engine).
    InvalidConfig {
        /// What is inconsistent.
        what: &'static str,
    },
    /// Another live process holds the advisory run lock for the same
    /// cache directory — running anyway would corrupt the shared cache,
    /// journal and ledger.
    Busy {
        /// Path of the contended lock file.
        path: String,
        /// Pid recorded by the holder.
        pid: u32,
    },
    /// A request from outside the library (a service call, a CLI flag, a
    /// wire payload) was malformed or referenced something that does not
    /// exist. Unlike [`XtalkError::InvalidConfig`], which covers
    /// statically-known inconsistencies, the offending input is dynamic —
    /// so the description is owned.
    BadRequest {
        /// What was wrong with the request.
        what: String,
    },
}

impl fmt::Display for XtalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XtalkError::Mor(e) => write!(f, "reduced-order engine failed: {e}"),
            XtalkError::Spice(e) => write!(f, "spice engine failed: {e}"),
            XtalkError::Cells(e) => write!(f, "cell model failure: {e}"),
            XtalkError::Measurement { what } => write!(f, "could not measure {what}"),
            XtalkError::NoDriver { net } => write!(f, "net {net:?} has no driver"),
            XtalkError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            XtalkError::Busy { path, pid } => {
                write!(f, "run lock {path:?} is held by live pid {pid}")
            }
            XtalkError::BadRequest { what } => write!(f, "bad request: {what}"),
        }
    }
}

impl std::error::Error for XtalkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XtalkError::Mor(e) => Some(e),
            XtalkError::Spice(e) => Some(e),
            XtalkError::Cells(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pcv_mor::MorError> for XtalkError {
    fn from(e: pcv_mor::MorError) -> Self {
        XtalkError::Mor(e)
    }
}

impl From<pcv_spice::SimError> for XtalkError {
    fn from(e: pcv_spice::SimError) -> Self {
        XtalkError::Spice(e)
    }
}

impl From<pcv_cells::CellError> for XtalkError {
    fn from(e: pcv_cells::CellError) -> Self {
        XtalkError::Cells(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = XtalkError::NoDriver { net: "x".into() };
        assert!(e.to_string().contains("x"));
        assert!(std::error::Error::source(&e).is_none());
        let e = XtalkError::Mor(pcv_mor::MorError::NoPorts);
        assert!(std::error::Error::source(&e).is_some());
        let e = XtalkError::Measurement { what: "crossing" };
        assert!(e.to_string().contains("crossing"));
        let e = XtalkError::InvalidConfig { what: "mix" };
        assert!(e.to_string().contains("mix"));
        let e = XtalkError::Busy { path: "/tmp/c.lock".into(), pid: 4242 };
        assert!(e.to_string().contains("4242"));
        assert!(std::error::Error::source(&e).is_none());
        let e = XtalkError::BadRequest { what: "no such net \"bus9_9\"".into() };
        assert!(e.to_string().contains("bus9_9"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
