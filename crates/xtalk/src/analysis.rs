//! Glitch and coupled-delay analysis of pruned clusters, through either the
//! SyMPVL reduced engine (the paper's fast path) or the SPICE substrate
//! (its validation reference).
//!
//! Both engines consume exactly the same [`ClusterModel`] and driver
//! abstractions, so accuracy comparisons (Figures 3–7 of the paper) measure
//! modeling error, not setup differences.

use crate::build::{build_cluster, ClusterModel};
use crate::drivers::{make_termination, DriverModelKind, SwitchRole};
use crate::error::XtalkError;
use crate::prune::Cluster;
use pcv_cells::charlib::{CharCell, CharLibrary};
use pcv_cells::library::{Cell, CellLibrary};
use pcv_mor::{simulate, sympvl, MorOptions, RcCluster};
use pcv_netlist::termination::Termination;
use pcv_netlist::{Circuit, Design, PNetId, ParasiticDb, SourceWave, Waveform};
use pcv_spice::{SimOptions, Simulator};
use std::time::{Duration, Instant};

/// Which engine analyzes the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// SyMPVL reduction + diagonalized nonlinear integration (fast path).
    Mor {
        /// Block Lanczos iterations (Padé order); 3–6 is typical.
        block_iters: usize,
    },
    /// Full MNA transient on the unreduced cluster (reference path).
    Spice,
}

/// Analysis knobs shared by glitch and delay runs.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Engine selection.
    pub engine: EngineKind,
    /// Simulated span (seconds).
    pub tstop: f64,
    /// Default aggressor/victim transition start (seconds).
    pub switch_time: f64,
    /// Input slew handed to the driver models (seconds, 10–90 %).
    pub input_slew: f64,
    /// Supply voltage (volts).
    pub vdd: f64,
    /// Multiplier applied to the cluster's `gmin` regularization before
    /// reduction (1.0 = leave as extracted). The recovery ladder boosts
    /// this when Cholesky reports a non-SPD conductance matrix.
    pub gmin_scale: f64,
    /// Reduced-transient integration knobs (step limits, Newton budgets,
    /// cancellation), forwarded to [`pcv_mor::simulate`].
    pub mor: MorOptions,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            engine: EngineKind::Mor { block_iters: 4 },
            tstop: 10e-9,
            switch_time: 1e-9,
            input_slew: 0.2e-9,
            vdd: 2.5,
            gmin_scale: 1.0,
            mor: MorOptions::default(),
        }
    }
}

/// Everything an analysis needs to resolve nets to drivers and loads.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisContext<'a> {
    /// Extracted parasitics.
    pub db: &'a ParasiticDb,
    /// Gate-level design (drivers, loads, windows, correlations), when
    /// available.
    pub design: Option<&'a Design>,
    /// Cell library (pin caps, netlists), when available.
    pub lib: Option<&'a CellLibrary>,
    /// Characterized library (driver models), when available.
    pub charlib: Option<&'a CharLibrary>,
    /// Driver abstraction to use.
    pub driver_model: DriverModelKind,
}

impl<'a> AnalysisContext<'a> {
    /// A design-less context with uniform fixed-resistance drivers — the
    /// Figure 3 configuration.
    pub fn fixed_resistance(db: &'a ParasiticDb, ohms: f64) -> Self {
        AnalysisContext {
            db,
            design: None,
            lib: None,
            charlib: None,
            driver_model: DriverModelKind::FixedResistance(ohms),
        }
    }

    /// A full context with design and library information.
    pub fn with_design(
        db: &'a ParasiticDb,
        design: &'a Design,
        lib: &'a CellLibrary,
        charlib: &'a CharLibrary,
        driver_model: DriverModelKind,
    ) -> Self {
        AnalysisContext {
            db,
            design: Some(design),
            lib: Some(lib),
            charlib: Some(charlib),
            driver_model,
        }
    }

    /// Total receiver pin capacitance on a net (0 without design data).
    pub fn load_cap(&self, net: PNetId) -> f64 {
        let (Some(design), Some(lib)) = (self.design, self.lib) else {
            return 0.0;
        };
        let Some(dnet) = design.find_net(self.db.net(net).name()) else {
            return 0.0;
        };
        design
            .loads_of(dnet)
            .iter()
            .filter_map(|&(inst, _)| lib.cell(&design.instance(inst).cell))
            .map(|c| c.input_cap())
            .sum()
    }

    /// The driver cell of a net. For tri-state buses this applies the
    /// paper's conservative rule: *the strongest of all bus drivers is
    /// assumed switching*.
    ///
    /// # Errors
    ///
    /// [`XtalkError::NoDriver`] when the design declares no driver, or
    /// [`XtalkError::InvalidConfig`] without design data.
    pub fn driver_cell(&self, net: PNetId) -> Result<&'a Cell, XtalkError> {
        let (Some(design), Some(lib)) = (self.design, self.lib) else {
            return Err(XtalkError::InvalidConfig {
                what: "cell-based driver models need design and library data",
            });
        };
        let name = self.db.net(net).name();
        let dnet =
            design.find_net(name).ok_or_else(|| XtalkError::NoDriver { net: name.to_owned() })?;
        let mut best: Option<&Cell> = None;
        for &inst in design.drivers_of(dnet) {
            if let Some(cell) = lib.cell(&design.instance(inst).cell) {
                let better = best.is_none_or(|b| cell.strength > b.strength);
                if better {
                    best = Some(cell);
                }
            }
        }
        best.ok_or_else(|| XtalkError::NoDriver { net: name.to_owned() })
    }

    /// Characterized data for a net's driver cell.
    ///
    /// # Errors
    ///
    /// Propagates missing drivers or missing characterization.
    pub fn char_cell(&self, net: PNetId) -> Result<&'a CharCell, XtalkError> {
        let cell = self.driver_cell(net)?;
        let ch = self
            .charlib
            .ok_or(XtalkError::InvalidConfig { what: "characterized library missing" })?;
        Ok(ch.require(&cell.name)?)
    }
}

/// One aggressor's planned activity for a glitch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggressorPlan {
    /// The aggressor net.
    pub net: PNetId,
    /// Whether it switches (quiet aggressors just hold).
    pub switching: bool,
    /// Transition start time (seconds).
    pub t0: f64,
}

/// Plan aggressor activity using switching windows and logic correlation —
/// the pessimism-reduction step of Section 2.
///
/// Without design annotations, every aggressor switches at
/// `opts.switch_time` (the fully conservative audit). With windows, the
/// alignment time that maximizes the *summed coupling of simultaneously
/// eligible aggressors* is chosen; aggressors whose windows exclude it stay
/// quiet. Complementary (e.g. flip-flop Q/QB) aggressor pairs never switch
/// in the same direction together — the weaker-coupled one is silenced.
pub fn plan_aggressors(
    ctx: &AnalysisContext<'_>,
    cluster: &Cluster,
    opts: &AnalysisOptions,
) -> Vec<AggressorPlan> {
    let mut plans: Vec<AggressorPlan> = cluster
        .aggressors
        .iter()
        .map(|&(net, _)| AggressorPlan { net, switching: true, t0: opts.switch_time })
        .collect();

    if let Some(design) = ctx.design {
        // Gather windows; nets without a window are always eligible.
        let window_of = |net: PNetId| -> Option<(f64, f64)> {
            design.find_net(ctx.db.net(net).name()).and_then(|d| design.window(d))
        };
        // Candidate alignment instants: window endpoints.
        let mut candidates: Vec<f64> = vec![opts.switch_time];
        for &(net, _) in &cluster.aggressors {
            if let Some((a, b)) = window_of(net) {
                candidates.push(a);
                candidates.push(b);
            }
        }
        let contains = |w: Option<(f64, f64)>, t: f64| match w {
            None => true,
            Some((a, b)) => t >= a - 1e-18 && t <= b + 1e-18,
        };
        let score = |t: f64| -> f64 {
            cluster
                .aggressors
                .iter()
                .filter(|&&(net, _)| contains(window_of(net), t))
                .map(|&(_, cc)| cc)
                .sum()
        };
        let t_star = candidates
            .iter()
            .copied()
            .max_by(|a, b| score(*a).partial_cmp(&score(*b)).expect("finite scores"))
            .unwrap_or(opts.switch_time);
        for (plan, &(net, _)) in plans.iter_mut().zip(&cluster.aggressors) {
            if contains(window_of(net), t_star) {
                plan.t0 = t_star;
            } else {
                plan.switching = false;
            }
        }
        // Logic correlation: complementary pairs cannot switch the same
        // direction simultaneously — keep the stronger-coupled one.
        for i in 0..cluster.aggressors.len() {
            for j in (i + 1)..cluster.aggressors.len() {
                let (ni, ci) = cluster.aggressors[i];
                let (nj, cj) = cluster.aggressors[j];
                let di = design.find_net(ctx.db.net(ni).name());
                let dj = design.find_net(ctx.db.net(nj).name());
                if let (Some(di), Some(dj)) = (di, dj) {
                    if design.complement_of(di) == Some(dj)
                        && plans[i].switching
                        && plans[j].switching
                    {
                        if ci >= cj {
                            plans[j].switching = false;
                        } else {
                            plans[i].switching = false;
                        }
                    }
                }
            }
        }
    }
    plans
}

/// Result of a glitch analysis.
#[derive(Debug, Clone)]
pub struct GlitchResult {
    /// Signed peak deviation from the victim's quiet level (volts;
    /// positive for a rising glitch).
    pub peak: f64,
    /// When the peak occurs (seconds).
    pub t_peak: f64,
    /// Victim receiver waveform.
    pub waveform: Waveform,
    /// Newton iterations spent (CPU-cost proxy).
    pub newton_iters: usize,
    /// Reduced-model order (None for the SPICE engine).
    pub reduced_order: Option<usize>,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

/// Result of a delay analysis.
#[derive(Debug, Clone)]
pub struct DelayResult {
    /// Interconnect delay: victim receiver 50 % crossing minus driver-pin
    /// 50 % crossing (seconds).
    pub delay: f64,
    /// Absolute receiver crossing time.
    pub far_crossing: f64,
    /// Absolute driver-pin crossing time.
    pub driver_crossing: f64,
    /// Victim receiver waveform.
    pub waveform: Waveform,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

/// Delay-analysis coupling treatment (the Table 2 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayMode {
    /// Coupling kept; aggressors switch simultaneously with the victim —
    /// opposite direction for the worst case, same direction for the
    /// optimistic bound.
    Coupled {
        /// `true` → aggressors oppose the victim (worst case).
        aggressors_opposite: bool,
    },
    /// Coupling capacitance grounded (the naive decoupled estimate).
    Decoupled,
}

/// Analyze the worst-case glitch on a quiet victim.
///
/// `rising` selects a rising glitch (victim held low, aggressors rising);
/// otherwise the falling dual.
///
/// # Errors
///
/// Propagates engine and model-construction failures.
pub fn analyze_glitch(
    ctx: &AnalysisContext<'_>,
    cluster: &Cluster,
    rising: bool,
    opts: &AnalysisOptions,
) -> Result<GlitchResult, XtalkError> {
    let _span = if rising {
        pcv_trace::span("xtalk", "glitch_rise")
    } else {
        pcv_trace::span("xtalk", "glitch_fall")
    };
    let model = build_cluster(ctx.db, cluster, &|n| ctx.load_cap(n), false);
    let plans = plan_aggressors(ctx, cluster, opts);
    let mut roles = Vec::with_capacity(model.members.len());
    roles.push(if rising { SwitchRole::HoldLow } else { SwitchRole::HoldHigh });
    for plan in &plans {
        let role = if !plan.switching {
            // Quiet aggressors rest at the victim's level so only switching
            // activity produces coupling current.
            if rising {
                SwitchRole::HoldLow
            } else {
                SwitchRole::HoldHigh
            }
        } else if rising {
            SwitchRole::Rise { t0: plan.t0 }
        } else {
            SwitchRole::Fall { t0: plan.t0 }
        };
        roles.push(role);
    }

    let started = Instant::now();
    let run = run_engine(ctx, &model, &roles, opts)?;
    let baseline = if rising { 0.0 } else { opts.vdd };
    let (t_peak, peak) = run.observe.peak_deviation(baseline);
    if !peak.is_finite() || !t_peak.is_finite() {
        return Err(XtalkError::Measurement { what: "finite glitch peak" });
    }
    Ok(GlitchResult {
        peak,
        t_peak,
        waveform: run.observe,
        newton_iters: run.newton_iters,
        reduced_order: run.reduced_order,
        elapsed: started.elapsed(),
    })
}

/// Analyze the victim's interconnect delay while aggressors act per `mode`.
///
/// # Errors
///
/// Propagates engine failures; [`XtalkError::Measurement`] if the victim
/// never crosses 50 %.
pub fn analyze_delay(
    ctx: &AnalysisContext<'_>,
    cluster: &Cluster,
    victim_rising: bool,
    mode: DelayMode,
    opts: &AnalysisOptions,
) -> Result<DelayResult, XtalkError> {
    let _span = pcv_trace::span("xtalk", "delay");
    let decouple = mode == DelayMode::Decoupled;
    let model = build_cluster(ctx.db, cluster, &|n| ctx.load_cap(n), decouple);
    let mut roles = Vec::with_capacity(model.members.len());
    let t0 = opts.switch_time;
    roles.push(if victim_rising { SwitchRole::Rise { t0 } } else { SwitchRole::Fall { t0 } });
    for _ in &cluster.aggressors {
        let role = match mode {
            DelayMode::Decoupled => {
                // Aggressors are electrically irrelevant once decoupled.
                if victim_rising {
                    SwitchRole::HoldLow
                } else {
                    SwitchRole::HoldHigh
                }
            }
            DelayMode::Coupled { aggressors_opposite } => {
                let agg_rising = victim_rising ^ aggressors_opposite;
                if agg_rising {
                    SwitchRole::Rise { t0 }
                } else {
                    SwitchRole::Fall { t0 }
                }
            }
        };
        roles.push(role);
    }

    let started = Instant::now();
    let run = run_engine(ctx, &model, &roles, opts)?;
    let half = 0.5 * opts.vdd;
    let far = run
        .observe
        .crossing(half, victim_rising, 0.0)
        .ok_or(XtalkError::Measurement { what: "victim receiver 50% crossing" })?;
    let near = run
        .victim_driver
        .crossing(half, victim_rising, 0.0)
        .ok_or(XtalkError::Measurement { what: "victim driver 50% crossing" })?;
    Ok(DelayResult {
        delay: far - near,
        far_crossing: far,
        driver_crossing: near,
        waveform: run.observe,
        elapsed: started.elapsed(),
    })
}

/// Internal engine-run output.
struct EngineRun {
    observe: Waveform,
    victim_driver: Waveform,
    newton_iters: usize,
    reduced_order: Option<usize>,
}

/// Dispatch a cluster with per-member roles to the selected engine.
fn run_engine(
    ctx: &AnalysisContext<'_>,
    model: &ClusterModel,
    roles: &[SwitchRole],
    opts: &AnalysisOptions,
) -> Result<EngineRun, XtalkError> {
    match opts.engine {
        EngineKind::Mor { block_iters } => {
            if ctx.driver_model == DriverModelKind::TransistorLevel {
                return Err(XtalkError::InvalidConfig {
                    what: "transistor-level drivers require the SPICE engine",
                });
            }
            let rom = if opts.gmin_scale == 1.0 {
                sympvl::reduce_with(&model.rc, block_iters, opts.mor.cancel.as_ref())?
            } else {
                let mut rc = model.rc.clone();
                rc.set_gmin(rc.gmin() * opts.gmin_scale)?;
                sympvl::reduce_with(&rc, block_iters, opts.mor.cancel.as_ref())?
            }
            .diagonalize()?;
            let mut boxes: Vec<Box<dyn Termination>> = Vec::with_capacity(roles.len());
            for (k, &role) in roles.iter().enumerate() {
                let ch = match ctx.driver_model {
                    DriverModelKind::FixedResistance(_) => None,
                    _ => Some(ctx.char_cell(model.members[k])?),
                };
                boxes.push(make_termination(
                    ctx.driver_model,
                    role,
                    ch,
                    opts.input_slew,
                    opts.vdd,
                )?);
            }
            let mut terms: Vec<Option<&dyn Termination>> = vec![None; model.rc.num_ports()];
            for (k, b) in boxes.iter().enumerate() {
                terms[model.driver_ports[k]] = Some(b.as_ref());
            }
            let res = simulate(&rom, &terms, opts.tstop, &opts.mor)?;
            Ok(EngineRun {
                observe: res.waveform(model.observe_port),
                victim_driver: res.waveform(model.victim_port()),
                newton_iters: res.newton_iters,
                reduced_order: Some(rom.order()),
            })
        }
        EngineKind::Spice => run_spice(ctx, model, roles, opts),
    }
}

/// SPICE path: rebuild the cluster as a circuit, attach terminations or
/// transistor-level drivers, and run the full MNA transient.
fn run_spice(
    ctx: &AnalysisContext<'_>,
    model: &ClusterModel,
    roles: &[SwitchRole],
    opts: &AnalysisOptions,
) -> Result<EngineRun, XtalkError> {
    let mut ckt = Circuit::new();
    let node_ids: Vec<pcv_netlist::NodeId> =
        (0..model.rc.num_nodes()).map(|i| ckt.node(&format!("n{i}"))).collect();
    let map = |i: usize| {
        if i == RcCluster::GROUND {
            Circuit::GROUND
        } else {
            node_ids[i]
        }
    };
    for &(a, b, ohms) in model.rc.resistors() {
        ckt.add_resistor(map(a), map(b), ohms);
    }
    for &(a, b, farads) in model.rc.capacitors() {
        if farads > 0.0 {
            ckt.add_capacitor(map(a), map(b), farads);
        }
    }

    let transistor = ctx.driver_model == DriverModelKind::TransistorLevel;
    let mut boxes: Vec<Box<dyn Termination>> = Vec::new();
    let mut term_nodes: Vec<pcv_netlist::NodeId> = Vec::new();
    if transistor {
        let vdd_node = ckt.node("vdd");
        ckt.add_vsrc(vdd_node, Circuit::GROUND, SourceWave::Dc(opts.vdd));
        for (k, &role) in roles.iter().enumerate() {
            let cell = ctx.driver_cell(model.members[k])?;
            let out = node_ids[model.rc.ports()[model.driver_ports[k]]];
            let inp = ckt.fresh_node("drv_in");
            let wave = transistor_input_wave(cell, role, opts);
            ckt.add_vsrc(inp, Circuit::GROUND, wave);
            let inputs = vec![inp; cell.kind.num_inputs()];
            cell.build(&mut ckt, &inputs, out, vdd_node);
        }
    } else {
        for (k, &role) in roles.iter().enumerate() {
            let ch = match ctx.driver_model {
                DriverModelKind::FixedResistance(_) => None,
                _ => Some(ctx.char_cell(model.members[k])?),
            };
            boxes.push(make_termination(ctx.driver_model, role, ch, opts.input_slew, opts.vdd)?);
            term_nodes.push(node_ids[model.rc.ports()[model.driver_ports[k]]]);
        }
    }
    let mut sim = Simulator::new(&ckt);
    for (node, b) in term_nodes.iter().zip(&boxes) {
        sim.add_termination(*node, b.as_ref());
    }
    let observe_node = node_ids[model.rc.ports()[model.observe_port]];
    let victim_node = node_ids[model.rc.ports()[model.victim_port()]];
    let res =
        sim.transient_probed(opts.tstop, &SimOptions::default(), &[observe_node, victim_node])?;
    Ok(EngineRun {
        observe: res.waveform(observe_node),
        victim_driver: res.waveform(victim_node),
        newton_iters: res.newton_iters,
        reduced_order: None,
    })
}

/// Input stimulus for a transistor-level driver so its *output* performs
/// the requested role.
fn transistor_input_wave(cell: &Cell, role: SwitchRole, opts: &AnalysisOptions) -> SourceWave {
    let inv = cell.kind.inverting();
    let vdd = opts.vdd;
    let ramp = opts.input_slew / 0.8;
    match role {
        SwitchRole::HoldLow => SourceWave::Dc(if inv { vdd } else { 0.0 }),
        SwitchRole::HoldHigh => SourceWave::Dc(if inv { 0.0 } else { vdd }),
        SwitchRole::Rise { t0 } => {
            if inv {
                SourceWave::step(vdd, 0.0, t0, ramp)
            } else {
                SourceWave::step(0.0, vdd, t0, ramp)
            }
        }
        SwitchRole::Fall { t0 } => {
            if inv {
                SourceWave::step(0.0, vdd, t0, ramp)
            } else {
                SourceWave::step(vdd, 0.0, t0, ramp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::{prune_victim, PruneConfig};
    use pcv_netlist::{NetNodeRef, NetParasitics};

    /// Victim + two aggressors, RC lines with mid-point couplings.
    fn three_net_db() -> (ParasiticDb, PNetId) {
        let mut db = ParasiticDb::new();
        let mk = |name: &str| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            let n2 = n.add_node();
            n.add_resistor(0, n1, 150.0);
            n.add_resistor(n1, n2, 150.0);
            n.add_ground_cap(n1, 8e-15);
            n.add_ground_cap(n2, 8e-15);
            n.mark_load(n2);
            n
        };
        let vid = db.add_net(mk("v"));
        let a1 = db.add_net(mk("a1"));
        let a2 = db.add_net(mk("a2"));
        for agg in [a1, a2] {
            for node in [1usize, 2] {
                db.add_coupling(
                    NetNodeRef { net: vid, node },
                    NetNodeRef { net: agg, node },
                    12e-15,
                );
            }
        }
        (db, vid)
    }

    fn cluster(db: &ParasiticDb, vid: PNetId) -> Cluster {
        prune_victim(db, vid, &PruneConfig::default())
    }

    #[test]
    fn rising_glitch_is_positive_and_bounded() {
        let (db, vid) = three_net_db();
        let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
        let cl = cluster(&db, vid);
        let res = analyze_glitch(&ctx, &cl, true, &AnalysisOptions::default()).unwrap();
        assert!(res.peak > 0.05, "visible glitch, got {}", res.peak);
        assert!(res.peak < 2.5, "bounded by vdd");
        assert!(res.t_peak > 1e-9, "peak after the aggressor edge");
        assert!(res.reduced_order.is_some());
        assert!(res.newton_iters > 0);
    }

    #[test]
    fn falling_glitch_mirrors_rising() {
        let (db, vid) = three_net_db();
        let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
        let cl = cluster(&db, vid);
        let opts = AnalysisOptions::default();
        let up = analyze_glitch(&ctx, &cl, true, &opts).unwrap();
        let down = analyze_glitch(&ctx, &cl, false, &opts).unwrap();
        assert!(down.peak < 0.0, "falling glitch is negative");
        // Symmetric linear drivers → symmetric magnitudes.
        assert!((up.peak + down.peak).abs() < 0.02 * up.peak.abs());
    }

    #[test]
    fn spice_engine_agrees_with_mor() {
        let (db, vid) = three_net_db();
        let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
        let cl = cluster(&db, vid);
        let mut opts = AnalysisOptions::default();
        let mor = analyze_glitch(&ctx, &cl, true, &opts).unwrap();
        opts.engine = EngineKind::Spice;
        let spice = analyze_glitch(&ctx, &cl, true, &opts).unwrap();
        let rel = (mor.peak - spice.peak).abs() / spice.peak.abs();
        assert!(rel < 0.02, "mor {} vs spice {} ({rel})", mor.peak, spice.peak);
        assert!(spice.reduced_order.is_none());
    }

    #[test]
    fn coupled_delay_exceeds_decoupled_for_opposing_aggressors() {
        let (db, vid) = three_net_db();
        let ctx = AnalysisContext::fixed_resistance(&db, 800.0);
        let cl = cluster(&db, vid);
        let opts = AnalysisOptions::default();
        let worst =
            analyze_delay(&ctx, &cl, true, DelayMode::Coupled { aggressors_opposite: true }, &opts)
                .unwrap();
        let base = analyze_delay(&ctx, &cl, true, DelayMode::Decoupled, &opts).unwrap();
        let best = analyze_delay(
            &ctx,
            &cl,
            true,
            DelayMode::Coupled { aggressors_opposite: false },
            &opts,
        )
        .unwrap();
        assert!(
            worst.delay > base.delay,
            "opposing aggressors slow the victim: {} vs {}",
            worst.delay,
            base.delay
        );
        assert!(
            best.delay < base.delay,
            "helping aggressors speed the victim: {} vs {}",
            best.delay,
            base.delay
        );
    }

    #[test]
    fn planning_without_design_switches_everything() {
        let (db, vid) = three_net_db();
        let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
        let cl = cluster(&db, vid);
        let plans = plan_aggressors(&ctx, &cl, &AnalysisOptions::default());
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|p| p.switching));
    }

    #[test]
    fn windows_silence_nonoverlapping_aggressors() {
        let (db, vid) = three_net_db();
        let mut design = Design::new("t");
        let dv = design.add_net("v");
        let d1 = design.add_net("a1");
        let d2 = design.add_net("a2");
        // a1 can switch early, a2 late — never together.
        design.set_window(d1, 0.0, 2e-9);
        design.set_window(d2, 6e-9, 8e-9);
        let lib = CellLibrary::standard_025();
        let ctx = AnalysisContext {
            db: &db,
            design: Some(&design),
            lib: Some(&lib),
            charlib: None,
            driver_model: DriverModelKind::FixedResistance(1000.0),
        };
        let cl = cluster(&db, vid);
        let plans = plan_aggressors(&ctx, &cl, &AnalysisOptions::default());
        let active = plans.iter().filter(|p| p.switching).count();
        assert_eq!(active, 1, "only one window group can switch together");
        let _ = dv;
    }

    #[test]
    fn complementary_aggressors_do_not_both_switch() {
        let (db, vid) = three_net_db();
        let mut design = Design::new("t");
        let _dv = design.add_net("v");
        let d1 = design.add_net("a1");
        let d2 = design.add_net("a2");
        design.set_complementary(d1, d2);
        let lib = CellLibrary::standard_025();
        let ctx = AnalysisContext {
            db: &db,
            design: Some(&design),
            lib: Some(&lib),
            charlib: None,
            driver_model: DriverModelKind::FixedResistance(1000.0),
        };
        let cl = cluster(&db, vid);
        let plans = plan_aggressors(&ctx, &cl, &AnalysisOptions::default());
        let active = plans.iter().filter(|p| p.switching).count();
        assert_eq!(active, 1);
    }

    #[test]
    fn transistor_level_requires_spice() {
        let (db, vid) = three_net_db();
        let mut ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
        ctx.driver_model = DriverModelKind::TransistorLevel;
        let cl = cluster(&db, vid);
        let err = analyze_glitch(&ctx, &cl, true, &AnalysisOptions::default());
        assert!(matches!(err, Err(XtalkError::InvalidConfig { .. })));
    }

    #[test]
    fn driver_cell_uses_strongest_bus_driver() {
        let (db, vid) = three_net_db();
        let mut design = Design::new("t");
        let dv = design.add_net("v");
        design.add_net("a1");
        design.add_net("a2");
        let i0 = design.add_net("i0");
        design.add_instance("t0", "TBUFX4", vec![i0], Some(dv), true);
        design.add_instance("t1", "TBUFX16", vec![i0], Some(dv), true);
        let lib = CellLibrary::standard_025();
        let ctx = AnalysisContext {
            db: &db,
            design: Some(&design),
            lib: Some(&lib),
            charlib: None,
            driver_model: DriverModelKind::FixedResistance(1000.0),
        };
        let cell = ctx.driver_cell(vid).unwrap();
        assert_eq!(cell.name, "TBUFX16");
    }

    #[test]
    fn missing_driver_is_reported() {
        let (db, vid) = three_net_db();
        let mut design = Design::new("t");
        design.add_net("v");
        design.add_net("a1");
        design.add_net("a2");
        let lib = CellLibrary::standard_025();
        let ctx = AnalysisContext {
            db: &db,
            design: Some(&design),
            lib: Some(&lib),
            charlib: None,
            driver_model: DriverModelKind::TimingLibrary,
        };
        assert!(matches!(ctx.driver_cell(vid), Err(XtalkError::NoDriver { .. })));
    }
}
