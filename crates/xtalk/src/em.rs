//! Electromigration screening of cluster wires during switching events.
//!
//! The paper's introduction names "voltage levels that are unacceptable for
//! electromigration safety" among the coupling hazards. This module
//! quantifies the wire-current side: it replays a victim switching event
//! (worst-case opposing aggressors) through the SPICE engine with *every*
//! cluster node probed, computes average/RMS/peak current per wire segment,
//! and flags segments exceeding a current limit.

use crate::analysis::{AnalysisContext, AnalysisOptions};
use crate::build::build_cluster;
use crate::drivers::{make_termination, DriverModelKind, SwitchRole};
use crate::error::XtalkError;
use crate::prune::Cluster;
use pcv_mor::RcCluster;
use pcv_netlist::termination::Termination;
use pcv_netlist::{Circuit, PNetId};
use pcv_spice::{SimOptions, Simulator};

/// Current statistics for one wire segment.
#[derive(Debug, Clone)]
pub struct SegmentCurrent {
    /// The net the segment belongs to.
    pub net: PNetId,
    /// Segment terminals (node indices within the net).
    pub a: usize,
    /// Second terminal.
    pub b: usize,
    /// RMS current over the event (amperes).
    pub rms: f64,
    /// Mean absolute current (amperes).
    pub avg: f64,
    /// Peak absolute current (amperes).
    pub peak: f64,
}

/// Screening result.
#[derive(Debug, Clone)]
pub struct EmScreenResult {
    /// Every wire segment's current statistics, worst RMS first.
    pub segments: Vec<SegmentCurrent>,
    /// RMS limit used (amperes).
    pub rms_limit: f64,
}

impl EmScreenResult {
    /// Segments whose RMS current exceeds the limit.
    pub fn violations(&self) -> impl Iterator<Item = &SegmentCurrent> {
        self.segments.iter().filter(move |s| s.rms > self.rms_limit)
    }
}

/// Screen a cluster's wire segments during a worst-case victim switching
/// event (victim rising, aggressors opposing).
///
/// `rms_limit` is the per-segment RMS current limit in amperes — for
/// 0.25 µm aluminum at minimum width, on the order of 1 mA.
///
/// # Errors
///
/// Propagates engine failures; [`XtalkError::InvalidConfig`] when the
/// context's driver model cannot provide terminations.
pub fn screen_cluster(
    ctx: &AnalysisContext<'_>,
    cluster: &Cluster,
    opts: &AnalysisOptions,
    rms_limit: f64,
) -> Result<EmScreenResult, XtalkError> {
    let model = build_cluster(ctx.db, cluster, &|n| ctx.load_cap(n), false);
    // Roles: victim rising, aggressors falling simultaneously (worst-case
    // opposing traffic maximizes coupling current).
    let mut roles = vec![SwitchRole::Rise { t0: opts.switch_time }];
    for _ in &cluster.aggressors {
        roles.push(SwitchRole::Fall { t0: opts.switch_time });
    }

    // Rebuild the cluster as a circuit with every node named and probed.
    let mut ckt = Circuit::new();
    let node_ids: Vec<pcv_netlist::NodeId> =
        (0..model.rc.num_nodes()).map(|i| ckt.node(&format!("n{i}"))).collect();
    let map = |i: usize| {
        if i == RcCluster::GROUND {
            Circuit::GROUND
        } else {
            node_ids[i]
        }
    };
    for &(a, b, ohms) in model.rc.resistors() {
        ckt.add_resistor(map(a), map(b), ohms);
    }
    for &(a, b, farads) in model.rc.capacitors() {
        if farads > 0.0 {
            ckt.add_capacitor(map(a), map(b), farads);
        }
    }
    let mut boxes: Vec<Box<dyn Termination>> = Vec::new();
    for (k, &role) in roles.iter().enumerate() {
        let ch = match ctx.driver_model {
            DriverModelKind::FixedResistance(_) => None,
            DriverModelKind::TransistorLevel => {
                return Err(XtalkError::InvalidConfig {
                    what: "em screening uses termination-style drivers",
                })
            }
            _ => Some(ctx.char_cell(model.members[k])?),
        };
        boxes.push(make_termination(ctx.driver_model, role, ch, opts.input_slew, opts.vdd)?);
    }
    let mut sim = Simulator::new(&ckt);
    for (k, b) in boxes.iter().enumerate() {
        sim.add_termination(node_ids[model.rc.ports()[model.driver_ports[k]]], b.as_ref());
    }
    let res = sim.transient_probed(opts.tstop, &SimOptions::default(), &node_ids)?;

    // Per-segment current statistics from the node waveforms. Segments are
    // mapped back to (net, local nodes) through the member offsets.
    let mut segments = Vec::new();
    for (m, &member) in model.members.iter().enumerate() {
        let offset = model.offsets[m];
        for &(a, b, ohms) in ctx.db.net(member).resistors() {
            let wa = res.waveform(node_ids[offset + a]);
            let wb = res.waveform(node_ids[offset + b]);
            let times = wa.times();
            let mut sum_sq = 0.0;
            let mut sum_abs = 0.0;
            let mut peak = 0.0f64;
            let mut total_t = 0.0;
            for k in 1..times.len() {
                let dt = times[k] - times[k - 1];
                let i = (wa.values()[k] - wb.values()[k]) / ohms;
                sum_sq += i * i * dt;
                sum_abs += i.abs() * dt;
                peak = peak.max(i.abs());
                total_t += dt;
            }
            let total_t = total_t.max(1e-30);
            segments.push(SegmentCurrent {
                net: member,
                a,
                b,
                rms: (sum_sq / total_t).sqrt(),
                avg: sum_abs / total_t,
                peak,
            });
        }
    }
    segments.sort_by(|x, y| y.rms.partial_cmp(&x.rms).expect("finite currents"));
    Ok(EmScreenResult { segments, rms_limit })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::{prune_victim, PruneConfig};
    use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb};

    fn pair_db() -> (ParasiticDb, PNetId) {
        let mut db = ParasiticDb::new();
        let mk = |name: &str| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            let n2 = n.add_node();
            n.add_resistor(0, n1, 150.0);
            n.add_resistor(n1, n2, 150.0);
            n.add_ground_cap(n1, 10e-15);
            n.add_ground_cap(n2, 10e-15);
            n.mark_load(n2);
            n
        };
        let vid = db.add_net(mk("v"));
        let aid = db.add_net(mk("a"));
        db.add_coupling(NetNodeRef { net: vid, node: 1 }, NetNodeRef { net: aid, node: 1 }, 15e-15);
        (db, vid)
    }

    #[test]
    fn screening_reports_every_segment_sorted() {
        let (db, vid) = pair_db();
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        let ctx = AnalysisContext::fixed_resistance(&db, 500.0);
        let res = screen_cluster(&ctx, &cluster, &AnalysisOptions::default(), 1e-3).unwrap();
        // 2 nets x 2 segments.
        assert_eq!(res.segments.len(), 4);
        for w in res.segments.windows(2) {
            assert!(w[0].rms >= w[1].rms, "sorted by rms");
        }
        // Driver-side segments carry the charging current: nonzero stats.
        assert!(res.segments[0].rms > 1e-7);
        assert!(res.segments[0].peak >= res.segments[0].rms);
        assert!(res.segments[0].avg <= res.segments[0].peak);
    }

    #[test]
    fn tight_limit_flags_violations_loose_limit_passes() {
        let (db, vid) = pair_db();
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        let ctx = AnalysisContext::fixed_resistance(&db, 500.0);
        let opts = AnalysisOptions::default();
        let tight = screen_cluster(&ctx, &cluster, &opts, 1e-9).unwrap();
        assert!(tight.violations().count() > 0, "nano-amp limit must flag");
        let loose = screen_cluster(&ctx, &cluster, &opts, 1.0).unwrap();
        assert_eq!(loose.violations().count(), 0, "1 A limit passes everything");
    }

    #[test]
    fn transistor_driver_model_is_rejected() {
        let (db, vid) = pair_db();
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        let mut ctx = AnalysisContext::fixed_resistance(&db, 500.0);
        ctx.driver_model = DriverModelKind::TransistorLevel;
        let err = screen_cluster(&ctx, &cluster, &AnalysisOptions::default(), 1e-3);
        assert!(matches!(err, Err(XtalkError::InvalidConfig { .. })));
    }
}
