//! Receiver glitch-propagation analysis — the paper's stated *future work*
//! ("extending it to transistor-level crosstalk analysis for higher
//! accuracy"), implemented for the receiver side.
//!
//! A glitch at a latch input is only dangerous if the receiving gate
//! actually passes it on with enough amplitude to flip state. This module
//! takes the victim-receiver waveform computed by the cluster analysis,
//! replays it into the *transistor-level* receiving cell, and measures how
//! much of the glitch survives at the cell output — a noise-immunity check
//! that separates loud-but-harmless victims from real functional hazards.

use crate::error::XtalkError;
use pcv_cells::library::Cell;
use pcv_netlist::{Circuit, SourceWave, Waveform};
use pcv_spice::{SimOptions, Simulator};

/// Result of replaying a glitch into a transistor-level receiver.
#[derive(Debug, Clone)]
pub struct ReceiverCheck {
    /// Peak input deviation from the quiet level (volts, signed).
    pub input_peak: f64,
    /// Peak output deviation from the receiver's quiet output (volts,
    /// signed).
    pub output_peak: f64,
    /// `|output_peak| / |input_peak|` — above 1 the receiver *amplifies*
    /// the glitch (the dangerous regime near its switching threshold).
    pub amplification: f64,
    /// `true` when the output deviation exceeds the failure threshold.
    pub propagates: bool,
    /// Output waveform for inspection.
    pub output: Waveform,
}

/// Replay a victim waveform into a receiver cell and measure propagation.
///
/// * `glitch` — the victim-receiver waveform from
///   [`crate::analysis::GlitchResult`].
/// * `quiet_level` — the victim's quiet voltage (0 for a rising glitch,
///   `vdd` for a falling one).
/// * `threshold_frac` — output deviation (as a fraction of `vdd`) above
///   which the glitch is declared to propagate.
///
/// # Errors
///
/// Propagates simulation failures and rejects empty waveforms.
pub fn check_receiver_propagation(
    cell: &Cell,
    glitch: &Waveform,
    quiet_level: f64,
    vdd: f64,
    threshold_frac: f64,
) -> Result<ReceiverCheck, XtalkError> {
    let _span = pcv_trace::span("xtalk", "receiver_check");
    if glitch.is_empty() {
        return Err(XtalkError::Measurement { what: "empty victim waveform" });
    }
    let t_end = *glitch.times().last().expect("non-empty waveform");
    // Use the waveform's own samples when small; decimate onto a uniform
    // grid only for long recordings (keeps the MNA breakpoint list
    // manageable without flattening the glitch apex).
    let pwl: Vec<(f64, f64)> = if glitch.len() <= 400 {
        glitch.times().iter().copied().zip(glitch.values().iter().copied()).collect()
    } else {
        let points = 400;
        (0..points)
            .map(|k| {
                let t = t_end * k as f64 / (points - 1) as f64;
                (t, glitch.value_at(t))
            })
            .collect()
    };

    let mut ckt = Circuit::new();
    let vdd_node = ckt.node("vdd");
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add_vsrc(vdd_node, Circuit::GROUND, SourceWave::Dc(vdd));
    ckt.add_vsrc(inp, Circuit::GROUND, SourceWave::Pwl(pwl));
    let inputs = vec![inp; cell.kind.num_inputs()];
    cell.build(&mut ckt, &inputs, out, vdd_node);
    // Fanout-of-one-ish load.
    ckt.add_capacitor(out, Circuit::GROUND, cell.input_cap().max(1e-15));

    let res = Simulator::new(&ckt).transient_probed(t_end, &SimOptions::default(), &[out])?;
    let output = res.waveform(out);

    // The receiver's quiet output level given the quiet input level.
    let inverting = cell.kind.inverting();
    let input_high = quiet_level > 0.5 * vdd;
    let out_quiet = if inverting == input_high { 0.0 } else { vdd };
    let (_, input_peak) = glitch.peak_deviation(quiet_level);
    let (_, output_peak) = output.peak_deviation(out_quiet);
    let amplification = output_peak.abs() / input_peak.abs().max(1e-12);
    Ok(ReceiverCheck {
        input_peak,
        output_peak,
        amplification,
        propagates: output_peak.abs() >= threshold_frac * vdd,
        output,
    })
}

/// One point of a noise-immunity curve: the smallest glitch amplitude that
/// propagates through the receiver at a given pulse width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImmunityPoint {
    /// Glitch full width at half maximum (seconds).
    pub width: f64,
    /// Critical amplitude (volts): glitches below this are absorbed.
    pub critical_amplitude: f64,
}

/// Compute a receiver's noise-immunity curve: for each pulse width, bisect
/// on triangular-glitch amplitude for the threshold at which the output
/// deviation reaches `threshold_frac * vdd`.
///
/// The classic result — and the reason the paper's timing windows matter —
/// is that narrow glitches need far more amplitude to propagate than wide
/// ones, converging to the DC switching threshold as the width grows.
///
/// # Errors
///
/// Propagates simulation failures.
///
/// # Panics
///
/// Panics on an empty width list or non-positive widths.
pub fn noise_immunity_curve(
    cell: &Cell,
    widths: &[f64],
    quiet_level: f64,
    vdd: f64,
    threshold_frac: f64,
) -> Result<Vec<ImmunityPoint>, XtalkError> {
    assert!(!widths.is_empty(), "need at least one width");
    let mut curve = Vec::with_capacity(widths.len());
    for &width in widths {
        assert!(width > 0.0, "widths must be positive");
        // Triangular glitch centered in a window 4x its width.
        let make = |amp: f64| -> Waveform {
            let t0 = width;
            let sign = if quiet_level > 0.5 * vdd { -1.0 } else { 1.0 };
            Waveform::from_samples(
                vec![0.0, t0, t0 + width, t0 + 2.0 * width, t0 + 3.0 * width],
                vec![quiet_level, quiet_level, quiet_level + sign * amp, quiet_level, quiet_level],
            )
        };
        // Bisection on amplitude.
        let (mut lo, mut hi) = (0.0f64, vdd);
        let propagates = |amp: f64| -> Result<bool, XtalkError> {
            let check =
                check_receiver_propagation(cell, &make(amp), quiet_level, vdd, threshold_frac)?;
            Ok(check.propagates)
        };
        if !propagates(vdd)? {
            // Even a rail glitch of this width is absorbed.
            curve.push(ImmunityPoint { width, critical_amplitude: f64::INFINITY });
            continue;
        }
        for _ in 0..10 {
            let mid = 0.5 * (lo + hi);
            if propagates(mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        curve.push(ImmunityPoint { width, critical_amplitude: 0.5 * (lo + hi) });
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_cells::library::CellLibrary;

    const VDD: f64 = 2.5;

    /// A triangular glitch waveform rising from 0 to `peak` and back.
    fn glitch(peak: f64) -> Waveform {
        Waveform::from_samples(vec![0.0, 1e-9, 1.5e-9, 2e-9, 5e-9], vec![0.0, 0.0, peak, 0.0, 0.0])
    }

    #[test]
    fn small_glitch_is_absorbed() {
        let lib = CellLibrary::standard_025();
        let inv = lib.cell("INVX4").unwrap();
        let check = check_receiver_propagation(inv, &glitch(0.3), 0.0, VDD, 0.2).unwrap();
        assert!(!check.propagates, "0.3 V into a 2.5 V inverter is absorbed");
        assert!(check.output_peak.abs() < 0.5, "{}", check.output_peak);
        assert!((check.input_peak - 0.3).abs() < 1e-9);
    }

    #[test]
    fn rail_to_rail_glitch_propagates() {
        let lib = CellLibrary::standard_025();
        let inv = lib.cell("INVX4").unwrap();
        let check = check_receiver_propagation(inv, &glitch(2.4), 0.0, VDD, 0.2).unwrap();
        assert!(check.propagates, "a near-rail glitch must flip the output");
        // Inverter output starts high (input quiet low) and collapses.
        assert!(check.output_peak < -1.0, "{}", check.output_peak);
        assert!(check.amplification > 0.5);
    }

    #[test]
    fn threshold_region_amplifies() {
        // A glitch reaching past the inverter threshold is amplified.
        let lib = CellLibrary::standard_025();
        let inv = lib.cell("INVX8").unwrap();
        let near = check_receiver_propagation(inv, &glitch(1.6), 0.0, VDD, 0.5).unwrap();
        let far = check_receiver_propagation(inv, &glitch(0.4), 0.0, VDD, 0.5).unwrap();
        assert!(
            near.amplification > 2.0 * far.amplification,
            "near-threshold {} vs sub-threshold {}",
            near.amplification,
            far.amplification
        );
    }

    #[test]
    fn falling_glitch_on_high_victim() {
        let lib = CellLibrary::standard_025();
        let inv = lib.cell("INVX4").unwrap();
        // Victim quiet high, glitch dips toward ground.
        let w = Waveform::from_samples(
            vec![0.0, 1e-9, 1.5e-9, 2e-9, 5e-9],
            vec![VDD, VDD, VDD - 2.2, VDD, VDD],
        );
        let check = check_receiver_propagation(inv, &w, VDD, VDD, 0.2).unwrap();
        // Inverter output quiet low; the dip drives it up.
        assert!(check.output_peak > 0.5, "{}", check.output_peak);
        assert!(check.propagates);
    }

    #[test]
    fn buffer_polarity_is_handled() {
        let lib = CellLibrary::standard_025();
        let buf = lib.cell("BUFX4").unwrap();
        let check = check_receiver_propagation(buf, &glitch(2.3), 0.0, VDD, 0.2).unwrap();
        // Non-inverting: quiet output low, glitch pushes it up.
        assert!(check.output_peak > 0.5, "{}", check.output_peak);
    }

    #[test]
    fn immunity_curve_is_monotone_in_width() {
        // Wider glitches propagate at lower amplitude; the curve decreases
        // toward the DC threshold.
        let lib = CellLibrary::standard_025();
        let inv = lib.cell("INVX4").unwrap();
        let widths = [0.05e-9, 0.2e-9, 1.0e-9];
        let curve = noise_immunity_curve(inv, &widths, 0.0, VDD, 0.4).unwrap();
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(
                w[1].critical_amplitude <= w[0].critical_amplitude + 0.05,
                "wider needs no more amplitude: {curve:?}"
            );
        }
        // Wide-glitch limit approaches the DC switching threshold (mid-rail
        // ballpark for a balanced inverter).
        let wide = curve.last().unwrap().critical_amplitude;
        assert!(wide > 0.6 && wide < 1.9, "plausible dc threshold: {wide}");
        // Narrow glitches need substantially more.
        assert!(curve[0].critical_amplitude > wide + 0.2, "{curve:?}");
    }

    #[test]
    fn empty_waveform_rejected() {
        let lib = CellLibrary::standard_025();
        let inv = lib.cell("INVX1").unwrap();
        let err = check_receiver_propagation(inv, &Waveform::new(), 0.0, VDD, 0.2);
        assert!(matches!(err, Err(XtalkError::Measurement { .. })));
    }
}
