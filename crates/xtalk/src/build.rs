//! Cluster assembly: from a pruned [`Cluster`] to the [`RcCluster`] the
//! engines analyze.
//!
//! Member nets contribute their wire RC; couplings between members stay as
//! coupling capacitors; couplings to non-members are grounded at the member
//! node (conservative decoupling); receiver pin capacitance is lumped at
//! each net's load nodes. Ports are the driver pin of every member (victim
//! first) plus one observation port at the victim's receiver.

use crate::prune::Cluster;
use pcv_mor::RcCluster;
use pcv_netlist::{PNetId, ParasiticDb};

/// A cluster ready for analysis: the RC network plus the port roles.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    /// The assembled RC network.
    pub rc: RcCluster,
    /// Member nets, victim first (parallel to `driver_ports`).
    pub members: Vec<PNetId>,
    /// Port index of each member's driver pin.
    pub driver_ports: Vec<usize>,
    /// Port index observing the victim's receiver pin.
    pub observe_port: usize,
    /// Node offset of each member inside the flat RC node space.
    pub offsets: Vec<usize>,
}

impl ClusterModel {
    /// Port index of the victim driver.
    pub fn victim_port(&self) -> usize {
        self.driver_ports[0]
    }

    /// Port indices of the aggressor drivers.
    pub fn aggressor_ports(&self) -> &[usize] {
        &self.driver_ports[1..]
    }
}

/// Assemble a cluster.
///
/// `load_cap` returns the total receiver pin capacitance to lump at each
/// member net's load nodes (e.g. summed input caps of the cells the net
/// fans out to); return `0.0` when unknown.
///
/// When `ground_couplings` is set, even member-to-member couplings are
/// grounded — the *decoupled* analysis mode of Table 2.
///
/// # Panics
///
/// Panics if the database and cluster are inconsistent (programmer error).
pub fn build_cluster(
    db: &ParasiticDb,
    cluster: &Cluster,
    load_cap: &dyn Fn(PNetId) -> f64,
    ground_couplings: bool,
) -> ClusterModel {
    let _span = pcv_trace::span("xtalk", "build_cluster");
    pcv_trace::value("xtalk.cluster_nets", cluster.size() as u64);
    let members = cluster.members();
    let mut rc = RcCluster::new();
    let mut offsets = Vec::with_capacity(members.len());

    // Wire RC of each member.
    for &m in &members {
        let net = db.net(m);
        let offset = rc.num_nodes();
        offsets.push(offset);
        for _ in 0..net.num_nodes() {
            rc.add_node();
        }
        for &(a, b, ohms) in net.resistors() {
            rc.add_resistor(offset + a, offset + b, ohms).expect("valid net resistor");
        }
        for &(n, c) in net.ground_caps() {
            if c > 0.0 {
                rc.add_ground_cap(offset + n, c).expect("valid net cap");
            }
        }
        // Receiver pin loading, split across the net's load pins.
        let pins = net.load_nodes();
        let total = load_cap(m);
        if total > 0.0 && !pins.is_empty() {
            let per = total / pins.len() as f64;
            for &pin in pins {
                rc.add_ground_cap(offset + pin, per).expect("valid load cap");
            }
        }
    }

    // Couplings: member-to-member kept (unless decoupled mode), the rest
    // grounded at the member side.
    let member_idx = |net: PNetId| members.iter().position(|&m| m == net);
    for c in db.couplings() {
        let ia = member_idx(c.a.net);
        let ib = member_idx(c.b.net);
        match (ia, ib) {
            (Some(a), Some(b)) => {
                let na = offsets[a] + c.a.node;
                let nb = offsets[b] + c.b.node;
                if ground_couplings {
                    if c.farads > 0.0 {
                        rc.add_ground_cap(na, c.farads).expect("valid decoupled cap");
                        rc.add_ground_cap(nb, c.farads).expect("valid decoupled cap");
                    }
                } else if c.farads > 0.0 {
                    rc.add_capacitor(na, nb, c.farads).expect("valid coupling cap");
                }
            }
            (Some(a), None) => {
                if c.farads > 0.0 {
                    rc.add_ground_cap(offsets[a] + c.a.node, c.farads)
                        .expect("valid decoupled cap");
                }
            }
            (None, Some(b)) => {
                if c.farads > 0.0 {
                    rc.add_ground_cap(offsets[b] + c.b.node, c.farads)
                        .expect("valid decoupled cap");
                }
            }
            (None, None) => {}
        }
    }

    // Ports: driver pin of every member, then the victim observation pin.
    let mut driver_ports = Vec::with_capacity(members.len());
    for (k, &m) in members.iter().enumerate() {
        let net = db.net(m);
        driver_ports.push(rc.add_port(offsets[k] + net.driver_node()));
    }
    let vic = db.net(members[0]);
    let observe_node = vic.load_nodes().first().copied().unwrap_or_else(|| vic.driver_node());
    let observe_port = rc.add_port(offsets[0] + observe_node);

    ClusterModel { rc, members, driver_ports, observe_port, offsets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::{prune_victim, PruneConfig};
    use pcv_netlist::{NetNodeRef, NetParasitics};

    fn pair_db() -> (ParasiticDb, PNetId, PNetId) {
        let mut db = ParasiticDb::new();
        let mut v = NetParasitics::new("v");
        let v1 = v.add_node();
        v.add_resistor(0, v1, 150.0);
        v.add_ground_cap(v1, 10e-15);
        v.mark_load(v1);
        let vid = db.add_net(v);
        let mut a = NetParasitics::new("a");
        let a1 = a.add_node();
        a.add_resistor(0, a1, 250.0);
        a.add_ground_cap(a1, 12e-15);
        let aid = db.add_net(a);
        db.add_coupling(NetNodeRef { net: vid, node: 1 }, NetNodeRef { net: aid, node: 1 }, 20e-15);
        (db, vid, aid)
    }

    #[test]
    fn basic_assembly_shapes() {
        let (db, vid, aid) = pair_db();
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        let model = build_cluster(&db, &cluster, &|_| 0.0, false);
        assert_eq!(model.members, vec![vid, aid]);
        assert_eq!(model.rc.num_nodes(), 4);
        assert_eq!(model.rc.num_ports(), 3); // 2 drivers + observe
        assert_eq!(model.victim_port(), 0);
        assert_eq!(model.aggressor_ports(), &[1]);
        // Observe port is the victim load node.
        assert_eq!(model.rc.ports()[model.observe_port], 1);
    }

    #[test]
    fn load_caps_are_lumped_at_pins() {
        let (db, vid, _) = pair_db();
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        let with_loads =
            build_cluster(&db, &cluster, &|n| if n == vid { 5e-15 } else { 0.0 }, false);
        let without = build_cluster(&db, &cluster, &|_| 0.0, false);
        let delta = with_loads.rc.total_ground_cap() - without.rc.total_ground_cap();
        assert!((delta - 5e-15).abs() < 1e-28);
    }

    #[test]
    fn decoupled_mode_grounds_member_couplings() {
        let (db, vid, _) = pair_db();
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        let coupled = build_cluster(&db, &cluster, &|_| 0.0, false);
        let decoupled = build_cluster(&db, &cluster, &|_| 0.0, true);
        // Grounding adds the coupling cap at *both* ends.
        let delta = decoupled.rc.total_ground_cap() - coupled.rc.total_ground_cap();
        assert!((delta - 40e-15).abs() < 1e-28);
    }

    #[test]
    fn external_couplings_are_grounded_on_member_side() {
        let (mut db, vid, _) = pair_db();
        // A third net coupled weakly to the victim driver node; pruning will
        // decouple it.
        let w = db.add_net(NetParasitics::new("weak"));
        db.add_coupling(NetNodeRef { net: vid, node: 0 }, NetNodeRef { net: w, node: 0 }, 0.01e-15);
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        assert_eq!(cluster.aggressors.len(), 1);
        let model = build_cluster(&db, &cluster, &|_| 0.0, false);
        // Weak coupling appears as grounded cap: total ground cap includes it.
        let total = model.rc.total_ground_cap();
        assert!((total - (10e-15 + 12e-15 + 0.01e-15)).abs() < 1e-28);
    }

    #[test]
    fn victim_without_loads_observes_driver_pin() {
        let mut db = ParasiticDb::new();
        let mut v = NetParasitics::new("v");
        let v1 = v.add_node();
        v.add_resistor(0, v1, 100.0);
        v.add_ground_cap(v1, 1e-15);
        let vid = db.add_net(v);
        let cluster = prune_victim(&db, vid, &PruneConfig::default());
        let model = build_cluster(&db, &cluster, &|_| 0.0, false);
        assert_eq!(model.rc.ports()[model.observe_port], 0);
    }
}
