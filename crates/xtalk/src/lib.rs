//! Chip-level crosstalk glitch and coupled-delay verification — the
//! end-to-end methodology of the DATE 1999 paper.
//!
//! The flow mirrors the paper's pipeline:
//!
//! 1. **Pruning** ([`prune`]) — capacitance-ratio filtering decouples weak
//!    couplings and shrinks each victim's cluster from the raw extraction
//!    neighborhood (~100 nets in the paper) down to the 2–5 nets that
//!    matter.
//! 2. **Cluster assembly** ([`build`]) — victim plus surviving aggressors,
//!    their wire RC, the coupling between them, decoupled (grounded)
//!    leftovers and receiver pin loads become one [`pcv_mor::RcCluster`].
//! 3. **Driver setup** ([`drivers`]) — each member net gets a driver model:
//!    a fixed resistance, the timing-library Thevenin model, the
//!    pre-characterized nonlinear model, or (SPICE engine only) the actual
//!    transistor-level cell. Tri-state buses use the *strongest driver*
//!    rule; logic correlation and switching windows pick which aggressors
//!    may switch together ([`analysis::plan_aggressors`]).
//! 4. **Analysis** ([`analysis`]) — glitch peaks and coupled delays via
//!    either the SyMPVL reduced engine (fast path) or the SPICE substrate
//!    (reference path), with identical driver abstractions so the two are
//!    directly comparable.
//! 5. **Chip-level audit** ([`chip`]) — sweep every latch-input victim,
//!    classify against noise-margin thresholds and emit a report.
//!
//! # Example
//!
//! Audit a victim in a three-wire structure with fixed 1 kΩ drivers:
//!
//! ```
//! # use pcv_xtalk::{prune::{prune_victim, PruneConfig}, analysis::{analyze_glitch, AnalysisContext, AnalysisOptions}};
//! # use pcv_netlist::{NetParasitics, NetNodeRef, ParasiticDb};
//! # fn main() -> Result<(), pcv_xtalk::XtalkError> {
//! let mut db = ParasiticDb::new();
//! let mut v = NetParasitics::new("v");
//! let v1 = v.add_node();
//! v.add_resistor(0, v1, 200.0);
//! v.add_ground_cap(v1, 10e-15);
//! v.mark_load(v1);
//! let vid = db.add_net(v);
//! let mut a = NetParasitics::new("a");
//! let a1 = a.add_node();
//! a.add_resistor(0, a1, 200.0);
//! a.add_ground_cap(a1, 10e-15);
//! let aid = db.add_net(a);
//! db.add_coupling(NetNodeRef { net: vid, node: v1 },
//!                 NetNodeRef { net: aid, node: a1 }, 30e-15);
//! let cluster = prune_victim(&db, vid, &PruneConfig::default());
//! let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
//! let res = analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default())?;
//! assert!(res.peak > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod analysis;
pub mod build;
pub mod chip;
pub mod dirty;
pub mod drivers;
pub mod em;
pub mod error;
pub mod prune;
pub mod receiver;
pub mod sta;

pub use analysis::{
    analyze_delay, analyze_glitch, AnalysisContext, AnalysisOptions, DelayMode, DelayResult,
    EngineKind, GlitchResult,
};
pub use build::{build_cluster, ClusterModel};
pub use chip::{audit_receivers, verify_chip, ChipReport, NetVerdict, ReceiverVerdict, Severity};
pub use dirty::blast_radius;
pub use drivers::DriverModelKind;
pub use em::{screen_cluster, EmScreenResult, SegmentCurrent};
pub use error::XtalkError;
pub use prune::{
    prune_all, prune_victim, prune_victim_weighted, Cluster, PruneConfig, PruningStats,
};
pub use receiver::{
    check_receiver_propagation, noise_immunity_curve, ImmunityPoint, ReceiverCheck,
};
pub use sta::{apply_windows, compute_windows, StaOptions};
