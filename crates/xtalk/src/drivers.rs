//! Driver-model construction for cluster members.
//!
//! Each member net needs a one-port driver abstraction. The flavors mirror
//! the paper's Section 4 comparison plus the transistor-level reference
//! used in its Figures 6–7:
//!
//! * [`DriverModelKind::FixedResistance`] — the Figure 3 setup (a uniform
//!   1 kΩ linear drive, no cell information at all);
//! * [`DriverModelKind::TimingLibrary`] — Thevenin model from the
//!   characterized delay tables (Section 4.1);
//! * [`DriverModelKind::Nonlinear`] — the pre-characterized `I(V_in, V_out)`
//!   surface (Section 4.2);
//! * transistor level — only meaningful with the SPICE engine, handled in
//!   [`crate::analysis`].

use crate::error::XtalkError;
use pcv_cells::charlib::CharCell;
use pcv_cells::models::{LinearDriverModel, NonlinearDriverModel};
use pcv_netlist::termination::{Termination, TheveninTermination};
use pcv_netlist::SourceWave;

/// Which driver abstraction to use for cluster analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriverModelKind {
    /// A fixed linear resistance for every driver (ohms).
    FixedResistance(f64),
    /// The timing-library Thevenin model from characterization data.
    TimingLibrary,
    /// The pre-characterized nonlinear cell model.
    Nonlinear,
    /// Actual transistor-level cells (SPICE engine only).
    TransistorLevel,
}

/// What a driver is doing during the analysis window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchRole {
    /// Quietly holding the net low.
    HoldLow,
    /// Quietly holding the net high.
    HoldHigh,
    /// Output rising, transition starting at the given time.
    Rise {
        /// Transition start (seconds).
        t0: f64,
    },
    /// Output falling, transition starting at the given time.
    Fall {
        /// Transition start (seconds).
        t0: f64,
    },
}

impl SwitchRole {
    /// `true` for the quiet roles.
    pub fn is_quiet(self) -> bool {
        matches!(self, SwitchRole::HoldLow | SwitchRole::HoldHigh)
    }
}

/// Build a termination for a driver.
///
/// `ch` supplies the characterized cell for the library-based models; it is
/// ignored by [`DriverModelKind::FixedResistance`].
///
/// # Errors
///
/// * [`XtalkError::InvalidConfig`] for [`DriverModelKind::TransistorLevel`]
///   (which is not a one-port termination) or when a library model is
///   requested without a characterized cell.
pub fn make_termination(
    kind: DriverModelKind,
    role: SwitchRole,
    ch: Option<&CharCell>,
    in_slew: f64,
    vdd: f64,
) -> Result<Box<dyn Termination>, XtalkError> {
    match kind {
        DriverModelKind::FixedResistance(r) => {
            let wave = match role {
                SwitchRole::HoldLow => SourceWave::Dc(0.0),
                SwitchRole::HoldHigh => SourceWave::Dc(vdd),
                SwitchRole::Rise { t0 } => SourceWave::step(0.0, vdd, t0, in_slew / 0.8),
                SwitchRole::Fall { t0 } => SourceWave::step(vdd, 0.0, t0, in_slew / 0.8),
            };
            Ok(Box::new(TheveninTermination::new(r, wave)))
        }
        DriverModelKind::TimingLibrary => {
            let ch = ch.ok_or(XtalkError::InvalidConfig {
                what: "timing-library model needs a characterized cell",
            })?;
            let t = match role {
                SwitchRole::HoldLow => LinearDriverModel::holding(ch, false, vdd),
                SwitchRole::HoldHigh => LinearDriverModel::holding(ch, true, vdd),
                SwitchRole::Rise { t0 } => LinearDriverModel::switching(ch, true, t0, in_slew, vdd),
                SwitchRole::Fall { t0 } => {
                    LinearDriverModel::switching(ch, false, t0, in_slew, vdd)
                }
            };
            Ok(Box::new(t))
        }
        DriverModelKind::Nonlinear => {
            let ch = ch.ok_or(XtalkError::InvalidConfig {
                what: "nonlinear model needs a characterized cell",
            })?;
            let t = match role {
                SwitchRole::HoldLow => NonlinearDriverModel::holding(ch, false, vdd),
                SwitchRole::HoldHigh => NonlinearDriverModel::holding(ch, true, vdd),
                SwitchRole::Rise { t0 } => {
                    NonlinearDriverModel::switching(ch, true, t0, in_slew, vdd)
                }
                SwitchRole::Fall { t0 } => {
                    NonlinearDriverModel::switching(ch, false, t0, in_slew, vdd)
                }
            };
            Ok(Box::new(t))
        }
        DriverModelKind::TransistorLevel => Err(XtalkError::InvalidConfig {
            what: "transistor-level drivers are not one-port terminations",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_resistance_roles() {
        let hold = make_termination(
            DriverModelKind::FixedResistance(1000.0),
            SwitchRole::HoldLow,
            None,
            0.2e-9,
            2.5,
        )
        .unwrap();
        // Holding low: at v = 1, current flows into the driver.
        let (i, g) = hold.eval(0.0, 1.0);
        assert!((i - 1e-3).abs() < 1e-12);
        assert!((g - 1e-3).abs() < 1e-12);

        let rise = make_termination(
            DriverModelKind::FixedResistance(500.0),
            SwitchRole::Rise { t0: 1e-9 },
            None,
            0.2e-9,
            2.5,
        )
        .unwrap();
        // Long after the edge the open-circuit source sits at vdd.
        let (i, _) = rise.eval(1e-6, 2.5);
        assert!(i.abs() < 1e-12);
        assert!(!rise.breakpoints().is_empty());
    }

    #[test]
    fn library_models_require_char_cell() {
        for kind in [DriverModelKind::TimingLibrary, DriverModelKind::Nonlinear] {
            let err = make_termination(kind, SwitchRole::HoldLow, None, 0.2e-9, 2.5);
            assert!(matches!(err, Err(XtalkError::InvalidConfig { .. })));
        }
    }

    #[test]
    fn transistor_level_is_not_a_termination() {
        let err = make_termination(
            DriverModelKind::TransistorLevel,
            SwitchRole::HoldLow,
            None,
            0.2e-9,
            2.5,
        );
        assert!(matches!(err, Err(XtalkError::InvalidConfig { .. })));
    }

    #[test]
    fn quiet_roles() {
        assert!(SwitchRole::HoldLow.is_quiet());
        assert!(SwitchRole::HoldHigh.is_quiet());
        assert!(!SwitchRole::Rise { t0: 0.0 }.is_quiet());
        assert!(!SwitchRole::Fall { t0: 0.0 }.is_quiet());
    }
}
