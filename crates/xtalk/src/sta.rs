//! STA-lite: derive per-net switching windows from the design topology and
//! the characterized delay tables.
//!
//! The paper reduces pessimism with "logic and timing correlation
//! information"; the timing half needs arrival windows for every net. This
//! module propagates `(earliest, latest)` arrival times from the primary
//! inputs through the cell graph using the characterized delays — a small
//! block-level static timing analysis, sufficient to feed
//! [`crate::analysis::plan_aggressors`].

use crate::analysis::AnalysisContext;
use crate::error::XtalkError;
use pcv_netlist::design::NetId;
use pcv_netlist::Design;

/// STA options.
#[derive(Debug, Clone)]
pub struct StaOptions {
    /// Arrival window assumed at primary inputs (nets with no driver).
    pub input_window: (f64, f64),
    /// Input slew used for all table lookups (seconds).
    pub input_slew: f64,
    /// Relaxation pass budget (bounds combinational loops).
    pub max_passes: usize,
}

impl Default for StaOptions {
    fn default() -> Self {
        StaOptions { input_window: (0.0, 0.5e-9), input_slew: 0.2e-9, max_passes: 64 }
    }
}

/// Compute arrival windows for every design net.
///
/// Uses the [`AnalysisContext`]'s characterized library for cell delays and
/// its parasitic database for net loading; nets the analysis cannot reach
/// (no driver and not a primary input of any instance) get `None`.
///
/// # Errors
///
/// Returns [`XtalkError::InvalidConfig`] without design/library data, and
/// propagates missing cell characterization.
pub fn compute_windows(
    ctx: &AnalysisContext<'_>,
    opts: &StaOptions,
) -> Result<Vec<Option<(f64, f64)>>, XtalkError> {
    let (Some(design), Some(_lib), Some(charlib)) = (ctx.design, ctx.lib, ctx.charlib) else {
        return Err(XtalkError::InvalidConfig {
            what: "sta needs design, library and characterization data",
        });
    };
    let n = design.num_nets();
    let mut windows: Vec<Option<(f64, f64)>> = vec![None; n];

    // Primary inputs: no driver.
    for (k, w) in windows.iter_mut().enumerate() {
        if design.drivers_of(NetId(k)).is_empty() {
            *w = Some(opts.input_window);
        }
    }

    // Relaxation passes: recompute every driven net's window from its
    // drivers' input windows until a fixed point (or the pass budget).
    for _pass in 0..opts.max_passes {
        let mut changed = false;
        for k in 0..n {
            let net = NetId(k);
            let drivers = design.drivers_of(net);
            if drivers.is_empty() {
                continue;
            }
            // Net loading from the parasitic view plus receiver pins.
            let load =
                ctx.db.find_net(design.net_name(net)).map(|p| ctx.db.total_cap(p)).unwrap_or(0.0)
                    + ctx.db.find_net(design.net_name(net)).map(|p| ctx.load_cap(p)).unwrap_or(0.0);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut any = false;
            for &inst_id in drivers {
                let inst = design.instance(inst_id);
                let Some(ch) = charlib.cell(&inst.cell) else {
                    continue;
                };
                let (d_rise, _) = ch.timing.lookup(opts.input_slew, load, true);
                let (d_fall, _) = ch.timing.lookup(opts.input_slew, load, false);
                let delay_min = d_rise.min(d_fall).max(0.0);
                let delay_max = d_rise.max(d_fall).max(0.0);
                for &inp in &inst.inputs {
                    if let Some((a, b)) = windows[inp.0] {
                        lo = lo.min(a + delay_min);
                        hi = hi.max(b + delay_max);
                        any = true;
                    }
                }
            }
            if any {
                let new = Some((lo, hi));
                if windows[k].is_none_or(|(a, b)| (a - lo).abs() > 1e-15 || (b - hi).abs() > 1e-15)
                {
                    windows[k] = new;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(windows)
}

/// Apply computed windows onto the design (skipping `None` entries).
pub fn apply_windows(design: &mut Design, windows: &[Option<(f64, f64)>]) {
    for (k, w) in windows.iter().enumerate() {
        if let Some((a, b)) = w {
            design.set_window(NetId(k), *a, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::DriverModelKind;
    use pcv_cells::charlib::{characterize, CharLibrary};
    use pcv_cells::library::CellLibrary;
    use pcv_netlist::{NetParasitics, ParasiticDb};

    /// A 3-stage inverter chain: pi -> n1 -> n2 -> n3.
    fn chain() -> (Design, ParasiticDb, CellLibrary, CharLibrary) {
        let mut design = Design::new("chain");
        let pi = design.add_net("pi");
        let n1 = design.add_net("n1");
        let n2 = design.add_net("n2");
        let n3 = design.add_net("n3");
        design.add_instance("u1", "INVX2", vec![pi], Some(n1), false);
        design.add_instance("u2", "INVX2", vec![n1], Some(n2), false);
        design.add_instance("u3", "INVX2", vec![n2], Some(n3), false);

        let mut db = ParasiticDb::new();
        for name in ["pi", "n1", "n2", "n3"] {
            let mut net = NetParasitics::new(name);
            let k = net.add_node();
            net.add_resistor(0, k, 100.0);
            net.add_ground_cap(k, 5e-15);
            net.mark_load(k);
            db.add_net(net);
        }
        let lib = CellLibrary::standard_025();
        let mut charlib = CharLibrary::default();
        charlib.insert(characterize(lib.cell("INVX2").unwrap()).unwrap());
        (design, db, lib, charlib)
    }

    #[test]
    fn windows_accumulate_stage_delay_along_a_chain() {
        let (design, db, lib, charlib) = chain();
        let ctx =
            AnalysisContext::with_design(&db, &design, &lib, &charlib, DriverModelKind::Nonlinear);
        let opts = StaOptions::default();
        let w = compute_windows(&ctx, &opts).unwrap();
        let pi = design.find_net("pi").unwrap();
        let n1 = design.find_net("n1").unwrap();
        let n3 = design.find_net("n3").unwrap();
        assert_eq!(w[pi.0], Some(opts.input_window));
        let (a1, b1) = w[n1.0].unwrap();
        let (a3, b3) = w[n3.0].unwrap();
        assert!(a1 > opts.input_window.0, "stage adds delay");
        assert!(b1 > opts.input_window.1);
        assert!(a3 > a1 && b3 > b1, "later stages arrive later");
        // Three stages ≈ 3x one stage's shift.
        let shift1 = a1 - opts.input_window.0;
        let shift3 = a3 - opts.input_window.0;
        assert!((shift3 / shift1 - 3.0).abs() < 0.5, "{shift1} vs {shift3}");
    }

    #[test]
    fn apply_windows_round_trips() {
        let (mut design, db, lib, charlib) = chain();
        let ctx =
            AnalysisContext::with_design(&db, &design, &lib, &charlib, DriverModelKind::Nonlinear);
        let w = compute_windows(&ctx, &StaOptions::default()).unwrap();
        apply_windows(&mut design, &w);
        let n2 = design.find_net("n2").unwrap();
        assert_eq!(design.window(n2), w[n2.0]);
    }

    #[test]
    fn sta_requires_full_context() {
        let db = ParasiticDb::new();
        let ctx = AnalysisContext::fixed_resistance(&db, 1000.0);
        assert!(matches!(
            compute_windows(&ctx, &StaOptions::default()),
            Err(XtalkError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn combinational_loop_terminates() {
        // a drives b, b drives a: the relaxation must stop at the pass
        // budget rather than hang.
        let mut design = Design::new("loop");
        let a = design.add_net("a");
        let b = design.add_net("b");
        design.add_instance("u1", "INVX2", vec![a], Some(b), false);
        design.add_instance("u2", "INVX2", vec![b], Some(a), false);
        let db = ParasiticDb::new();
        let lib = CellLibrary::standard_025();
        let mut charlib = CharLibrary::default();
        charlib.insert(characterize(lib.cell("INVX2").unwrap()).unwrap());
        let ctx =
            AnalysisContext::with_design(&db, &design, &lib, &charlib, DriverModelKind::Nonlinear);
        let opts = StaOptions { max_passes: 8, ..Default::default() };
        // No primary inputs → no windows ever form; must return quickly.
        let w = compute_windows(&ctx, &opts).unwrap();
        assert!(w.iter().all(|x| x.is_none()));
    }
}
