//! Coupling-aware blast radius for incremental (ECO) re-verification.
//!
//! Given the set of nets an ECO touched, [`blast_radius`] returns every
//! net whose *cluster fingerprint* (see `pcv-engine`) could possibly have
//! changed — the candidate dirty set the engine then confirms against the
//! canonical fingerprints.
//!
//! The radius follows from what a fingerprint actually reads. For a
//! victim `v` it hashes the members of `v`'s pruned cluster (`v` plus
//! kept aggressors, all drawn from `v`'s direct coupling neighbors), each
//! member's own RC content, and **every coupling capacitor incident to a
//! member** — including the far endpoint's net name. An edit at net `x`
//! can therefore only reach victims within **two coupling hops**:
//!
//! * `x == v` — the victim's own RC or couplings changed;
//! * `x` couples to `v` — the pruning input (aggressor selection,
//!   decoupled cap) changed;
//! * `x` couples to a member `m` of `v`'s cluster — `m`'s incident
//!   coupling list changed. Members are neighbors of `v`, so `x` is two
//!   hops out, *transitively through the shared coupling cap* on `m`.
//!
//! Anything further away cannot appear in the hash, so the two-hop
//! closure is a sound over-approximation of the exact dirty set: it may
//! include victims whose fingerprints turn out unchanged (e.g. the edit
//! only moved a neighbor that pruning discards *and* left the decoupled
//! sum bit-identical — impossible, but the radius does not reason about
//! bits), never the reverse.
//!
//! Because an ECO can both add and remove couplings, the closure runs
//! over the union of the old and new coupling graphs: a deleted aggressor
//! dirties the victims it *used to* couple into.

use pcv_netlist::ParasiticDb;
use std::collections::{BTreeMap, BTreeSet};

/// Name-keyed coupling adjacency of one database.
fn adjacency(db: &ParasiticDb) -> BTreeMap<&str, BTreeSet<&str>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    // Every net is present, even uncoupled ones, so lookups are total.
    for (_, net) in db.iter() {
        adj.entry(net.name()).or_default();
    }
    // Segment-wise extraction emits long runs of couplings between the
    // same net pair (one per overlap segment); skipping consecutive
    // repeats cuts the insert count by the segment count.
    let mut last = None;
    for c in db.couplings() {
        if last == Some((c.a.net, c.b.net)) {
            continue;
        }
        last = Some((c.a.net, c.b.net));
        let a = db.net(c.a.net).name();
        let b = db.net(c.b.net).name();
        adj.entry(a).or_default().insert(b);
        adj.entry(b).or_default().insert(a);
    }
    adj
}

/// Every net within two coupling hops of a touched net, in the union of
/// the old and new coupling graphs (see the module docs for why two hops
/// bound the reach of a cluster fingerprint).
///
/// The result contains net names from either database; intersect it with
/// the run's victim list to get the candidate dirty clusters. Touched
/// nets are themselves included (whether or not they still exist).
pub fn blast_radius(
    old: &ParasiticDb,
    new: &ParasiticDb,
    touched: &BTreeSet<String>,
) -> BTreeSet<String> {
    // Borrowed-key union adjacency: names live in the two databases, so
    // the closure allocates nothing proportional to the chip — only the
    // (small) result set is owned.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for db in [old, new] {
        for (name, nbrs) in adjacency(db) {
            adj.entry(name).or_default().extend(nbrs);
        }
    }
    // Hop 1: direct coupling neighbors of every touched net.
    let hop1: BTreeSet<&str> = touched
        .iter()
        .filter_map(|t| adj.get(t.as_str()))
        .flat_map(|nbrs| nbrs.iter().copied())
        .collect();
    // Hop 2: neighbors of hop-1 nets (members of clusters the edit reaches).
    let hop2: BTreeSet<&str> =
        hop1.iter().filter_map(|n| adj.get(n)).flat_map(|nbrs| nbrs.iter().copied()).collect();
    let mut radius: BTreeSet<String> = touched.clone();
    radius.extend(hop1.into_iter().map(str::to_owned));
    radius.extend(hop2.into_iter().map(str::to_owned));
    radius
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::{NetNodeRef, NetParasitics, PNetId};

    /// A chain a - b - c - d - e with nearest-neighbor coupling only.
    fn chain(names: &[&str]) -> ParasiticDb {
        let mut db = ParasiticDb::new();
        for name in names {
            let mut n = NetParasitics::new(*name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 100.0);
            n.add_ground_cap(n1, 1e-15);
            n.mark_load(n1);
            db.add_net(n);
        }
        for i in 1..names.len() {
            db.add_coupling(
                NetNodeRef { net: PNetId(i - 1), node: 1 },
                NetNodeRef { net: PNetId(i), node: 1 },
                2e-15,
            );
        }
        db
    }

    #[test]
    fn radius_is_two_hops_and_no_more() {
        let db = chain(&["a", "b", "c", "d", "e", "f"]);
        let touched = BTreeSet::from(["a".to_owned()]);
        let r = blast_radius(&db, &db, &touched);
        assert_eq!(
            r,
            BTreeSet::from(["a".to_owned(), "b".to_owned(), "c".to_owned()]),
            "an edit at one end of the chain reaches exactly two hops"
        );
    }

    #[test]
    fn empty_touched_set_has_empty_radius() {
        let db = chain(&["a", "b"]);
        assert!(blast_radius(&db, &db, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn removed_couplings_still_dirty_their_old_victims() {
        let old = chain(&["a", "b", "c"]);
        // New netlist: the b-c coupling is gone entirely.
        let mut new = ParasiticDb::new();
        for name in ["a", "b", "c"] {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 100.0);
            n.add_ground_cap(n1, 1e-15);
            n.mark_load(n1);
            new.add_net(n);
        }
        new.add_coupling(
            NetNodeRef { net: PNetId(0), node: 1 },
            NetNodeRef { net: PNetId(1), node: 1 },
            2e-15,
        );
        // The edit touches b and c (the deleted cap's endpoints); "a" is
        // within the radius through the *old* graph's b-c-a path.
        let touched = BTreeSet::from(["b".to_owned(), "c".to_owned()]);
        let r = blast_radius(&old, &new, &touched);
        assert!(r.contains("a"), "old-graph adjacency must count: {r:?}");
    }

    #[test]
    fn disconnected_nets_stay_clean() {
        let mut db = chain(&["a", "b"]);
        let mut lone = NetParasitics::new("z");
        let z1 = lone.add_node();
        lone.add_resistor(0, z1, 50.0);
        db.add_net(lone);
        let touched = BTreeSet::from(["a".to_owned()]);
        let r = blast_radius(&db, &db, &touched);
        assert!(!r.contains("z"));
    }
}
