//! Chip-level verification: sweep victims, classify glitches against noise
//! margins, and report — the audit the paper runs on the DSP design.

use crate::analysis::{analyze_glitch, AnalysisContext, AnalysisOptions};
use crate::error::XtalkError;
use crate::prune::{prune_victim, Cluster, PruneConfig, PruningStats};
use crate::receiver::check_receiver_propagation;
use pcv_netlist::PNetId;
use std::fmt;

/// Receiver-side verdict for a flagged victim (see [`audit_receivers`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiverVerdict {
    /// Receiver cell the glitch was replayed into.
    pub cell: String,
    /// Output peak at the receiver (volts, signed).
    pub output_peak: f64,
    /// Whether the glitch propagates through the receiver.
    pub propagates: bool,
}

/// Verdict severity for one victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Below the warning threshold.
    Clean,
    /// Between warning and failure thresholds (paper: ~10 % of Vdd is where
    /// glitches start to matter for latch inputs).
    Warning,
    /// Above the failure threshold (paper: >20 % of Vdd peaks get tight
    /// error bounds because they are the dangerous ones).
    Violation,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Clean => write!(f, "clean"),
            Severity::Warning => write!(f, "warning"),
            Severity::Violation => write!(f, "VIOLATION"),
        }
    }
}

/// Per-victim audit record.
#[derive(Debug, Clone, PartialEq)]
pub struct NetVerdict {
    /// The audited victim.
    pub net: PNetId,
    /// Victim net name.
    pub name: String,
    /// Worst rising-glitch peak (volts).
    pub rise_peak: f64,
    /// Worst falling-glitch peak (volts, negative).
    pub fall_peak: f64,
    /// Worst peak as a fraction of Vdd.
    pub worst_frac: f64,
    /// Classification.
    pub severity: Severity,
    /// Cluster size after pruning.
    pub cluster_size: usize,
    /// Coupled neighbors before pruning.
    pub neighbors_before: usize,
    /// Receiver propagation check, when [`audit_receivers`] has run.
    pub receiver: Option<ReceiverVerdict>,
}

/// Chip-level audit report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipReport {
    /// Per-victim verdicts, worst first.
    pub verdicts: Vec<NetVerdict>,
    /// Pruning statistics over the audited clusters.
    pub pruning: PruningStats,
    /// Warning threshold used (fraction of Vdd).
    pub warn_frac: f64,
    /// Violation threshold used (fraction of Vdd).
    pub fail_frac: f64,
}

impl ChipReport {
    /// Victims classified at or above [`Severity::Warning`].
    pub fn flagged(&self) -> impl Iterator<Item = &NetVerdict> {
        self.verdicts.iter().filter(|v| v.severity >= Severity::Warning)
    }

    /// Number of violations.
    pub fn num_violations(&self) -> usize {
        self.verdicts.iter().filter(|v| v.severity == Severity::Violation).count()
    }

    /// Render a plain-text report table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "crosstalk audit: {} victims, {} warnings, {} violations\n",
            self.verdicts.len(),
            self.flagged().count() - self.num_violations(),
            self.num_violations()
        ));
        out.push_str(&format!(
            "pruning: mean coupled component {:.1} -> cluster {:.1} nets (max {})\n",
            self.pruning.mean_component, self.pruning.mean_after, self.pruning.max_after
        ));
        out.push_str(&format!(
            "{:<20} {:>10} {:>10} {:>8} {:>8}  {}\n",
            "net", "rise (V)", "fall (V)", "%vdd", "cluster", "verdict"
        ));
        for v in &self.verdicts {
            out.push_str(&format!(
                "{:<20} {:>10.4} {:>10.4} {:>7.1}% {:>8}  {}\n",
                v.name,
                v.rise_peak,
                v.fall_peak,
                100.0 * v.worst_frac,
                v.cluster_size,
                v.severity
            ));
        }
        out
    }
}

/// Audit a set of victim nets: prune, analyze both glitch polarities,
/// classify.
///
/// `warn_frac` / `fail_frac` are noise-margin thresholds as fractions of
/// Vdd (typical: 0.1 and 0.2).
///
/// # Errors
///
/// Propagates the first analysis failure.
///
/// # Panics
///
/// Panics if `warn_frac > fail_frac`.
pub fn verify_chip(
    ctx: &AnalysisContext<'_>,
    victims: &[PNetId],
    prune_cfg: &PruneConfig,
    opts: &AnalysisOptions,
    warn_frac: f64,
    fail_frac: f64,
) -> Result<ChipReport, XtalkError> {
    assert!(warn_frac <= fail_frac, "warning threshold must not exceed failure");
    let _span = pcv_trace::span("xtalk", "verify_chip");
    let mut verdicts = Vec::with_capacity(victims.len());
    let mut clusters: Vec<Cluster> = Vec::with_capacity(victims.len());
    for &vic in victims {
        let _victim_span =
            pcv_trace::span_labeled("xtalk", "victim", || ctx.db.net(vic).name().to_owned());
        let cluster = prune_victim(ctx.db, vic, prune_cfg);
        let (rise, fall) = if cluster.aggressors.is_empty() {
            (0.0, 0.0)
        } else {
            let up = analyze_glitch(ctx, &cluster, true, opts)?;
            let down = analyze_glitch(ctx, &cluster, false, opts)?;
            (up.peak, down.peak)
        };
        let worst_frac = (rise.abs().max(fall.abs())) / opts.vdd;
        let severity = if worst_frac >= fail_frac {
            Severity::Violation
        } else if worst_frac >= warn_frac {
            Severity::Warning
        } else {
            Severity::Clean
        };
        verdicts.push(NetVerdict {
            net: vic,
            name: ctx.db.net(vic).name().to_owned(),
            rise_peak: rise,
            fall_peak: fall,
            worst_frac,
            severity,
            cluster_size: cluster.size(),
            neighbors_before: cluster.neighbors_before,
            receiver: None,
        });
        clusters.push(cluster);
    }
    verdicts.sort_by(|a, b| b.worst_frac.partial_cmp(&a.worst_frac).expect("finite fractions"));
    Ok(ChipReport { verdicts, pruning: PruningStats::compute(&clusters), warn_frac, fail_frac })
}

impl ChipReport {
    /// Render the audit as deterministic JSON.
    ///
    /// Every float appears twice: a readable decimal (`x`) and its exact
    /// IEEE-754 bit pattern (`x_bits`), so a serialized report can be
    /// compared byte-for-byte across runs, worker counts, and cache states
    /// — the property the golden-report regression suite locks down.
    pub fn to_json(&self) -> String {
        use pcv_trace::json::{f64_bits, f64_lit, str_lit};
        let float = |out: &mut String, key: &str, v: f64| {
            out.push_str(&format!("\"{key}\":{},\"{key}_bits\":{}", f64_lit(v), f64_bits(v)));
        };
        let mut out = String::from("{");
        float(&mut out, "warn_frac", self.warn_frac);
        out.push(',');
        float(&mut out, "fail_frac", self.fail_frac);
        out.push_str(",\"pruning\":{");
        float(&mut out, "mean_before", self.pruning.mean_before);
        out.push(',');
        float(&mut out, "mean_component", self.pruning.mean_component);
        out.push(',');
        float(&mut out, "mean_after", self.pruning.mean_after);
        out.push_str(&format!(
            ",\"max_after\":{},\"active_clusters\":{}}}",
            self.pruning.max_after, self.pruning.active_clusters
        ));
        out.push_str(",\"verdicts\":[");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"net\":{},\"name\":{},", v.net.0, str_lit(&v.name)));
            float(&mut out, "rise_peak", v.rise_peak);
            out.push(',');
            float(&mut out, "fall_peak", v.fall_peak);
            out.push(',');
            float(&mut out, "worst_frac", v.worst_frac);
            out.push_str(&format!(
                ",\"severity\":{},\"cluster_size\":{},\"neighbors_before\":{}",
                str_lit(&v.severity.to_string()),
                v.cluster_size,
                v.neighbors_before
            ));
            out.push_str(",\"receiver\":");
            match &v.receiver {
                Some(r) => {
                    out.push_str(&format!("{{\"cell\":{},", str_lit(&r.cell)));
                    float(&mut out, "output_peak", r.output_peak);
                    out.push_str(&format!(",\"propagates\":{}}}", r.propagates));
                }
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Render the audit as CSV (one row per victim, worst first) for
    /// downstream tooling.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "net,rise_peak_v,fall_peak_v,worst_frac_vdd,severity,cluster_size,             neighbors_before,receiver_cell,receiver_peak_v,receiver_propagates
",
        );
        for v in &self.verdicts {
            let (rc_cell, rc_peak, rc_prop) = match &v.receiver {
                Some(r) => {
                    (r.cell.as_str(), format!("{:.6}", r.output_peak), r.propagates.to_string())
                }
                None => ("", String::new(), String::new()),
            };
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{},{},{},{},{},{}
",
                v.name,
                v.rise_peak,
                v.fall_peak,
                v.worst_frac,
                v.severity,
                v.cluster_size,
                v.neighbors_before,
                rc_cell,
                rc_peak,
                rc_prop
            ));
        }
        out
    }
}

/// Deepen an audit with transistor-level *receiver* checks (the paper's
/// future-work direction): for every verdict at or above
/// [`Severity::Warning`], replay the worst-polarity glitch waveform into
/// the victim's receiving cell and record whether it propagates.
///
/// Latch receivers are modeled by their input-stage-equivalent inverter
/// (`INVX1`), since a latch data pin is electrically a small inverter
/// behind a transmission gate.
///
/// # Errors
///
/// Propagates analysis or simulation failures.
pub fn audit_receivers(
    ctx: &AnalysisContext<'_>,
    report: &mut ChipReport,
    prune_cfg: &PruneConfig,
    opts: &AnalysisOptions,
) -> Result<(), XtalkError> {
    let _span = pcv_trace::span("xtalk", "audit_receivers");
    let (Some(design), Some(lib)) = (ctx.design, ctx.lib) else {
        return Err(XtalkError::InvalidConfig {
            what: "receiver checks need design and library data",
        });
    };
    for v in report.verdicts.iter_mut() {
        if v.severity < Severity::Warning {
            continue;
        }
        // Pick the receiving cell: the first non-latch load, else the
        // latch input-stage equivalent.
        let dnet =
            design.find_net(&v.name).ok_or_else(|| XtalkError::NoDriver { net: v.name.clone() })?;
        let receiver_cell = design
            .loads_of(dnet)
            .iter()
            .filter_map(|&(inst, _)| lib.cell(&design.instance(inst).cell))
            .find(|c| c.kind != pcv_cells::library::CellKind::Latch)
            .or_else(|| lib.cell("INVX1"))
            .ok_or(XtalkError::InvalidConfig { what: "no receiver cell available" })?;

        // Re-run the worse polarity to recover the waveform.
        let rising = v.rise_peak.abs() >= v.fall_peak.abs();
        let cluster = prune_victim(ctx.db, v.net, prune_cfg);
        let glitch = analyze_glitch(ctx, &cluster, rising, opts)?;
        let quiet = if rising { 0.0 } else { opts.vdd };
        let check = check_receiver_propagation(
            receiver_cell,
            &glitch.waveform,
            quiet,
            opts.vdd,
            report.fail_frac,
        )?;
        v.receiver = Some(ReceiverVerdict {
            cell: receiver_cell.name.clone(),
            output_peak: check.output_peak,
            propagates: check.propagates,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcv_netlist::{NetNodeRef, NetParasitics, ParasiticDb};

    /// Two victims: one heavily coupled, one barely coupled.
    fn db() -> (ParasiticDb, PNetId, PNetId) {
        let mut db = ParasiticDb::new();
        let mk = |name: &str, cg: f64| {
            let mut n = NetParasitics::new(name);
            let n1 = n.add_node();
            n.add_resistor(0, n1, 200.0);
            n.add_ground_cap(n1, cg);
            n.mark_load(n1);
            n
        };
        let hot = db.add_net(mk("hot", 5e-15));
        let cold = db.add_net(mk("cold", 50e-15));
        let agg = db.add_net(mk("agg", 5e-15));
        db.add_coupling(NetNodeRef { net: hot, node: 1 }, NetNodeRef { net: agg, node: 1 }, 60e-15);
        db.add_coupling(
            NetNodeRef { net: cold, node: 1 },
            NetNodeRef { net: agg, node: 1 },
            0.4e-15,
        );
        (db, hot, cold)
    }

    #[test]
    fn audit_classifies_and_sorts() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let report = verify_chip(
            &ctx,
            &[cold, hot],
            &PruneConfig::default(),
            &AnalysisOptions::default(),
            0.1,
            0.2,
        )
        .unwrap();
        assert_eq!(report.verdicts.len(), 2);
        // Sorted worst-first: the hot net leads.
        assert_eq!(report.verdicts[0].name, "hot");
        assert!(report.verdicts[0].worst_frac > report.verdicts[1].worst_frac);
        assert_eq!(report.verdicts[0].severity, Severity::Violation);
        assert_eq!(report.num_violations(), 1);
        assert!(report.flagged().count() >= 1);
    }

    #[test]
    fn quiet_nets_are_clean_without_simulation() {
        let (db, _, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        // The cold net's one weak coupling is pruned away entirely.
        let report = verify_chip(
            &ctx,
            &[cold],
            &PruneConfig { cap_ratio: 0.05, max_aggressors: 12 },
            &AnalysisOptions::default(),
            0.1,
            0.2,
        )
        .unwrap();
        assert_eq!(report.verdicts[0].severity, Severity::Clean);
        assert_eq!(report.verdicts[0].rise_peak, 0.0);
        assert_eq!(report.verdicts[0].cluster_size, 1);
    }

    #[test]
    fn text_report_contains_key_lines() {
        let (db, hot, _) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let report = verify_chip(
            &ctx,
            &[hot],
            &PruneConfig::default(),
            &AnalysisOptions::default(),
            0.1,
            0.2,
        )
        .unwrap();
        let text = report.to_text();
        assert!(text.contains("crosstalk audit"));
        assert!(text.contains("hot"));
        assert!(text.contains("pruning"));
    }

    #[test]
    fn receiver_audit_annotates_flagged_victims() {
        use pcv_cells::library::CellLibrary;
        use pcv_netlist::Design;
        let (db, hot, cold) = db();
        // Design view: drivers + an inverter load on the hot net.
        let mut design = Design::new("t");
        let dh = design.add_net("hot");
        let dc_ = design.add_net("cold");
        let da = design.add_net("agg");
        let pi = design.add_net("pi");
        design.add_instance("h_drv", "INVX2", vec![pi], Some(dh), false);
        design.add_instance("c_drv", "INVX2", vec![pi], Some(dc_), false);
        design.add_instance("a_drv", "BUFX4", vec![pi], Some(da), false);
        design.add_instance("h_rx", "INVX4", vec![dh], None, false);
        let lib = CellLibrary::standard_025();
        let ctx = AnalysisContext {
            db: &db,
            design: Some(&design),
            lib: Some(&lib),
            charlib: None,
            driver_model: crate::drivers::DriverModelKind::FixedResistance(2000.0),
        };
        let opts = AnalysisOptions::default();
        let mut report =
            verify_chip(&ctx, &[hot, cold], &PruneConfig::default(), &opts, 0.1, 0.2).unwrap();
        audit_receivers(&ctx, &mut report, &PruneConfig::default(), &opts).unwrap();
        // The hot (flagged) victim gets a receiver verdict; the clean one
        // does not.
        let hot_v = report.verdicts.iter().find(|v| v.name == "hot").unwrap();
        let rc = hot_v.receiver.as_ref().expect("flagged victim checked");
        assert_eq!(rc.cell, "INVX4");
        assert!(rc.output_peak.abs() >= 0.0);
        let cold_v = report.verdicts.iter().find(|v| v.name == "cold").unwrap();
        assert!(cold_v.receiver.is_none());
    }

    #[test]
    fn receiver_audit_requires_design() {
        let (db, hot, _) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let opts = AnalysisOptions::default();
        let mut report =
            verify_chip(&ctx, &[hot], &PruneConfig::default(), &opts, 0.1, 0.2).unwrap();
        let err = audit_receivers(&ctx, &mut report, &PruneConfig::default(), &opts);
        assert!(matches!(err, Err(XtalkError::InvalidConfig { .. })));
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let report = verify_chip(
            &ctx,
            &[cold, hot],
            &PruneConfig::default(),
            &AnalysisOptions::default(),
            0.1,
            0.2,
        )
        .unwrap();
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("net,"));
        assert!(csv.contains("hot,"));
        assert!(csv.contains("VIOLATION"));
    }

    #[test]
    fn json_export_is_deterministic_and_bit_exact() {
        let (db, hot, cold) = db();
        let ctx = AnalysisContext::fixed_resistance(&db, 2000.0);
        let report = verify_chip(
            &ctx,
            &[cold, hot],
            &PruneConfig::default(),
            &AnalysisOptions::default(),
            0.1,
            0.2,
        )
        .unwrap();
        let a = report.to_json();
        assert_eq!(a, report.to_json());
        assert!(a.contains("\"name\":\"hot\""));
        assert!(a.contains("worst_frac_bits\":\""));
        assert!(a.contains("\"receiver\":null"));
        // The bits field round-trips the exact value.
        let v = &report.verdicts[0];
        let needle = format!("\"rise_peak_bits\":\"{:016x}\"", v.rise_peak.to_bits());
        assert!(a.contains(&needle));
    }

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Clean < Severity::Warning);
        assert!(Severity::Warning < Severity::Violation);
        assert_eq!(Severity::Violation.to_string(), "VIOLATION");
        assert_eq!(Severity::Clean.to_string(), "clean");
    }
}
