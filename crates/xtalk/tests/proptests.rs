//! Randomized-property tests of crosstalk-analysis invariants over
//! randomized clusters: passivity bounds, monotonicity in coupling, and
//! delay bracketing. Driven by the seeded internal PRNG so the workspace
//! builds offline.

use pcv_netlist::{NetNodeRef, NetParasitics, PNetId, ParasiticDb};
use pcv_rng::Rng;
use pcv_xtalk::prune::{prune_victim, PruneConfig};
use pcv_xtalk::{analyze_delay, analyze_glitch, AnalysisContext, AnalysisOptions, DelayMode};

const VDD: f64 = 2.5;

/// Build a victim + n-aggressor star cluster with randomized RC values.
fn build_db(n_agg: usize, seg_r: f64, gcap: f64, ccap: f64) -> (ParasiticDb, PNetId) {
    let mut db = ParasiticDb::new();
    let mk = |name: &str, r: f64, c: f64| {
        let mut n = NetParasitics::new(name);
        let n1 = n.add_node();
        let n2 = n.add_node();
        n.add_resistor(0, n1, r);
        n.add_resistor(n1, n2, r);
        n.add_ground_cap(n1, c);
        n.add_ground_cap(n2, c);
        n.mark_load(n2);
        n
    };
    let vid = db.add_net(mk("v", seg_r, gcap));
    for k in 0..n_agg {
        let aid = db.add_net(mk(&format!("a{k}"), seg_r, gcap));
        for node in [1usize, 2] {
            db.add_coupling(
                NetNodeRef { net: vid, node },
                NetNodeRef { net: aid, node },
                ccap / 2.0,
            );
        }
    }
    (db, vid)
}

fn glitch_peak(db: &ParasiticDb, vid: PNetId, drive: f64) -> f64 {
    let cluster = prune_victim(db, vid, &PruneConfig { cap_ratio: 0.0, max_aggressors: 12 });
    let ctx = AnalysisContext::fixed_resistance(db, drive);
    analyze_glitch(&ctx, &cluster, true, &AnalysisOptions::default())
        .expect("analysis succeeds")
        .peak
}

#[test]
fn glitch_is_bounded_by_the_rails() {
    let mut rng = Rng::new(0xA1B1);
    for _ in 0..12 {
        let n_agg = rng.range_usize(1, 5);
        let seg_r = rng.range_f64(50.0, 500.0);
        let gcap = rng.range_f64(2e-15, 20e-15);
        let ccap = rng.range_f64(1e-15, 60e-15);
        let drive = rng.range_f64(200.0, 3000.0);
        let (db, vid) = build_db(n_agg, seg_r, gcap, ccap);
        let peak = glitch_peak(&db, vid, drive);
        // A passive network of rail-driven aggressors cannot push the
        // victim beyond the aggressor swing.
        assert!(peak >= 0.0, "rising glitch is non-negative: {peak}");
        assert!(peak <= VDD + 1e-6, "bounded by vdd: {peak}");
    }
}

#[test]
fn glitch_grows_with_coupling() {
    let mut rng = Rng::new(0xA1B2);
    for _ in 0..12 {
        let seg_r = rng.range_f64(50.0, 400.0);
        let gcap = rng.range_f64(2e-15, 15e-15);
        let base_cc = rng.range_f64(2e-15, 20e-15);
        let (db1, v1) = build_db(2, seg_r, gcap, base_cc);
        let (db2, v2) = build_db(2, seg_r, gcap, 2.0 * base_cc);
        let p1 = glitch_peak(&db1, v1, 1000.0);
        let p2 = glitch_peak(&db2, v2, 1000.0);
        assert!(p2 >= p1 - 1e-6, "doubling coupling grows the glitch: {p1} -> {p2}");
    }
}

#[test]
fn glitch_shrinks_with_stronger_victim_holder() {
    let mut rng = Rng::new(0xA1B3);
    for _ in 0..12 {
        let seg_r = rng.range_f64(50.0, 400.0);
        let ccap = rng.range_f64(5e-15, 40e-15);
        let (db, vid) = build_db(2, seg_r, 5e-15, ccap);
        // Same network, weaker vs stronger holding drivers.
        let weak = glitch_peak(&db, vid, 2000.0);
        let strong = glitch_peak(&db, vid, 400.0);
        assert!(strong <= weak + 1e-6, "stronger holder shrinks the glitch: {weak} vs {strong}");
    }
}

#[test]
fn delay_brackets_hold() {
    let mut rng = Rng::new(0xA1B4);
    for _ in 0..12 {
        let seg_r = rng.range_f64(100.0, 400.0);
        let gcap = rng.range_f64(3e-15, 15e-15);
        let ccap = rng.range_f64(5e-15, 30e-15);
        let (db, vid) = build_db(2, seg_r, gcap, ccap);
        let cluster = prune_victim(&db, vid, &PruneConfig { cap_ratio: 0.0, max_aggressors: 12 });
        let ctx = AnalysisContext::fixed_resistance(&db, 800.0);
        let opts = AnalysisOptions { tstop: 30e-9, ..Default::default() };
        let worst = analyze_delay(
            &ctx,
            &cluster,
            true,
            DelayMode::Coupled { aggressors_opposite: true },
            &opts,
        )
        .unwrap()
        .delay;
        let base = analyze_delay(&ctx, &cluster, true, DelayMode::Decoupled, &opts).unwrap().delay;
        let best = analyze_delay(
            &ctx,
            &cluster,
            true,
            DelayMode::Coupled { aggressors_opposite: false },
            &opts,
        )
        .unwrap()
        .delay;
        assert!(best <= base + 1e-14, "helping aggressors never slower: {best} vs {base}");
        assert!(worst >= base - 1e-14, "opposing aggressors never faster: {worst} vs {base}");
    }
}
