//! Observability for the chip-verification engine: streaming lifecycle
//! events, live progress, memory telemetry, and a cross-run ledger.
//!
//! The paper's pitch is making chip-level coupling verification *tractable
//! at scale* — which is only a claim you can stand behind if every long
//! sign-off run is observable while it happens and comparable after it
//! finishes. This crate is the std-only, zero-dependency layer that
//! provides exactly that, strictly outside the deterministic report path:
//!
//! - **Events** ([`EngineEvent`], [`EventSink`]) — structured lifecycle
//!   events the engine emits from its worker threads: run started, cluster
//!   started/finished/retried/degraded, cache hits, worker idle. Sinks are
//!   pluggable; event *counts* per cluster-scoped kind are a pure function
//!   of the input, independent of worker count and scheduling.
//! - **Channel** ([`EventChannel`]) — a bounded, lock-free-ish ring for
//!   shipping events off the hot path to a consumer thread; when full it
//!   drops (and counts) rather than blocking a worker.
//! - **Fan-out** ([`EventHub`]) — a bounded archive with any number of
//!   replaying subscribers ([`HubCursor`]), for serving one run's event
//!   stream to several clients that may join mid-run; overflow is shed
//!   and counted, never backpressure.
//! - **Progress** ([`ProgressMonitor`], [`StderrStatusLine`]) — throughput,
//!   EWMA-based ETA, per-stage completion, and a live single-line stderr
//!   status display that auto-disables when stderr is not a TTY or
//!   `PCV_NO_PROGRESS` is set.
//! - **Memory** ([`TrackingAlloc`], [`mem`]) — an instrumented global
//!   allocator (feature `track-alloc`, relaxed atomics) recording
//!   current/peak bytes and allocation counts, globally and per thread,
//!   plus a [`pcv_trace`] probe so every span carries its allocation delta.
//! - **Ledger** ([`ledger`]) — one append-only JSONL record per engine run
//!   (fingerprints, stage wall times, counters, peak memory), written next
//!   to the result cache, parseable back with the in-tree [`json`] reader.
//! - **Metrics** ([`Registry`]) — a process-lifetime store of counters,
//!   gauges, and fixed-bucket histograms rendered as deterministic
//!   Prometheus text exposition, with [`pcv_trace`] traces folded in.
//! - **Flight recorder** ([`FlightRecorder`]) — an always-on bounded ring
//!   of the most recent engine/HTTP observations, dumpable as JSON on
//!   panic, signal, or watchdog trip.
//!
//! Nothing in this crate feeds back into verification results: reports,
//! caches, and sign-off documents are byte-identical with observability on
//! or off.

#![deny(missing_docs)]

pub mod alloc;
pub mod channel;
pub mod event;
pub mod fanout;
pub mod flight;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod progress;

pub use alloc::{mem, MemSnapshot, TrackingAlloc};
pub use channel::{ChannelSink, EventChannel, EventReceiver};
pub use event::{CountingSink, EngineEvent, EventSink, NullSink, TeeSink};
pub use fanout::{CursorState, EventHub, HubCursor};
pub use flight::{FlightEntry, FlightRecorder};
pub use ledger::RunRecord;
pub use metrics::Registry;
pub use progress::{ProgressMonitor, ProgressSnapshot, StderrStatusLine};
