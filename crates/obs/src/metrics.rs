//! A zero-dependency metrics registry with Prometheus text exposition.
//!
//! The daemon-facing counterpart of [`pcv_trace`]'s in-process telemetry:
//! where a trace describes *one run* in depth, this registry accumulates
//! *process lifetime* series — counters, gauges and fixed-bucket
//! histograms, each keyed by name plus a sorted label set — and renders
//! them in the Prometheus text exposition format (`# HELP` / `# TYPE`
//! comments followed by `name{labels} value` samples).
//!
//! Design constraints, in order:
//!
//! 1. **Inert.** Recording never influences verification; the registry is
//!    only ever written from observability call sites and read by
//!    scrapers. Mismatched re-registrations (same name, different type)
//!    are dropped rather than panicking — a metrics bug must not take a
//!    daemon down.
//! 2. **Deterministic exposition.** Families render in name order, series
//!    in label-signature order, floats through Rust's shortest-roundtrip
//!    `Display` — so two registries holding the same samples render
//!    byte-identical text, and a golden test can pin the format.
//! 3. **Cheap.** One mutex around a pair of `BTreeMap`s; every record is
//!    a lock + map probe. Fine for the daemon's request/run cadence
//!    (metrics are recorded per HTTP request and per engine run, not per
//!    cluster event).
//!
//! [`pcv_trace::Trace`] output folds in through
//! [`Registry::absorb_trace`], which maps trace counters to a labeled
//! counter family and trace histograms (power-of-two buckets) to native
//! Prometheus histograms using [`Histogram::bucket_ceiling`] for the
//! `le` bounds.

use pcv_trace::Histogram;
use pcv_trace::Trace;
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Latency buckets (seconds) for HTTP-style request histograms: 1 ms to
/// 10 s with roughly 4–5x steps, matching the daemon's spread between a
/// `/healthz` probe and a long verification-adjacent query.
pub const LATENCY_BOUNDS_S: [f64; 7] = [0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0];

/// What a metric family holds.
#[derive(Debug, Clone, PartialEq)]
enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyKind {
    fn name(&self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

/// One series' value.
#[derive(Debug, Clone)]
enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    /// Fixed explicit bounds (non-cumulative per-bucket counts; the
    /// renderer accumulates). `counts.len() == bounds.len() + 1`, the
    /// last slot being the overflow (`+Inf`) bucket.
    Buckets {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
    /// A merged power-of-two histogram (bit-length buckets), rendered
    /// with [`Histogram::bucket_ceiling`] bounds trimmed to the occupied
    /// range. Boxed: the 65-bucket array dwarfs the other variants.
    Log2(Box<Histogram>),
}

#[derive(Debug)]
struct Family {
    kind: FamilyKind,
    help: &'static str,
    /// Label signature (`key="value",...`, keys sorted) → value.
    series: BTreeMap<String, SeriesValue>,
}

/// The process-wide metric store. Create one per daemon ([`Registry::new`])
/// and share it behind an `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The canonical label signature: keys sorted, values escaped. Empty for
/// an unlabeled series.
fn signature(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    out
}

/// Render a float the exposition way: shortest round-trip decimal, with
/// integral values rendered without a fraction (`1`, not `1.0`).
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_series<R>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: FamilyKind,
        labels: &[(&str, &str)],
        init: impl FnOnce() -> SeriesValue,
        update: impl FnOnce(&mut SeriesValue) -> R,
    ) -> Option<R> {
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(name).or_insert_with(|| Family {
            kind: kind.clone(),
            help,
            series: BTreeMap::new(),
        });
        if family.kind != kind {
            // A name re-registered at a different type is a bug in the
            // caller; drop the sample rather than poisoning the scrape.
            return None;
        }
        let value = family.series.entry(signature(labels)).or_insert_with(init);
        Some(update(value))
    }

    /// Add `delta` to a counter series, creating it at zero first.
    pub fn counter_add(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        delta: u64,
    ) {
        self.with_series(
            name,
            help,
            FamilyKind::Counter,
            labels,
            || SeriesValue::Counter(0),
            |v| {
                if let SeriesValue::Counter(c) = v {
                    *c += delta;
                }
            },
        );
    }

    /// Set a gauge series to `value`, creating it if needed.
    pub fn gauge_set(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.with_series(
            name,
            help,
            FamilyKind::Gauge,
            labels,
            || SeriesValue::Gauge(value),
            |v| {
                if let SeriesValue::Gauge(g) = v {
                    *g = value;
                }
            },
        );
    }

    /// Record one observation into a fixed-bucket histogram series. The
    /// first observation fixes the `bounds` (ascending upper edges, in the
    /// sample's unit); later calls reuse them regardless of what they pass.
    pub fn observe(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        self.with_series(
            name,
            help,
            FamilyKind::Histogram,
            labels,
            || SeriesValue::Buckets {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                sum: 0.0,
                count: 0,
            },
            |v| {
                if let SeriesValue::Buckets { bounds, counts, sum, count } = v {
                    let slot = bounds.iter().position(|&b| value <= b).unwrap_or(bounds.len());
                    counts[slot] += 1;
                    *sum += value;
                    *count += 1;
                }
            },
        );
    }

    /// Current value of a counter series (0 when absent) — for tests and
    /// server-side thresholds, not for exposition.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        match families.get(name).and_then(|f| f.series.get(&signature(labels))) {
            Some(SeriesValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Fold a merged trace into the registry:
    ///
    /// - every trace counter adds to `pcv_trace_counter_total` with the
    ///   counter's dotted name as the `counter` label;
    /// - every trace histogram merges into `pcv_trace_samples` (a native
    ///   Prometheus histogram over the trace's power-of-two buckets) with
    ///   the histogram's name as the `hist` label.
    ///
    /// Absorbing two traces accumulates, matching counter semantics.
    pub fn absorb_trace(&self, trace: &Trace) {
        for (name, value) in &trace.counters {
            self.counter_add(
                "pcv_trace_counter_total",
                "Trace counters accumulated across traced engine runs.",
                &[("counter", name)],
                *value,
            );
        }
        for (name, hist) in &trace.histograms {
            self.with_series(
                "pcv_trace_samples",
                "Trace histogram samples accumulated across traced engine runs.",
                FamilyKind::Histogram,
                &[("hist", name)],
                || SeriesValue::Log2(Box::default()),
                |v| {
                    if let SeriesValue::Log2(h) = v {
                        h.merge(hist);
                    }
                },
            );
        }
    }

    /// Render the whole registry as Prometheus text exposition (version
    /// 0.0.4): families in name order, each with `# HELP` and `# TYPE`
    /// comments, series in label order, histograms expanded to cumulative
    /// `_bucket{le=...}` samples plus `_sum` and `_count`.
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.name()));
            for (sig, value) in &family.series {
                match value {
                    SeriesValue::Counter(c) => {
                        out.push_str(&render_sample(name, sig, &c.to_string()));
                    }
                    SeriesValue::Gauge(g) => {
                        out.push_str(&render_sample(name, sig, &fmt_value(*g)));
                    }
                    SeriesValue::Buckets { bounds, counts, sum, count } => {
                        let mut cum = 0u64;
                        for (i, b) in bounds.iter().enumerate() {
                            cum += counts[i];
                            let sig_le = with_le(sig, &fmt_value(*b));
                            out.push_str(&render_sample(
                                &format!("{name}_bucket"),
                                &sig_le,
                                &cum.to_string(),
                            ));
                        }
                        out.push_str(&render_sample(
                            &format!("{name}_bucket"),
                            &with_le(sig, "+Inf"),
                            &count.to_string(),
                        ));
                        out.push_str(&render_sample(&format!("{name}_sum"), sig, &fmt_value(*sum)));
                        out.push_str(&render_sample(
                            &format!("{name}_count"),
                            sig,
                            &count.to_string(),
                        ));
                    }
                    SeriesValue::Log2(h) => {
                        // Trim to the occupied range: a u64 histogram has
                        // 65 buckets, almost all of them empty.
                        let top = h.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
                        let mut cum = 0u64;
                        for i in 0..=top {
                            cum += h.buckets[i];
                            let sig_le = with_le(sig, &Histogram::bucket_ceiling(i).to_string());
                            out.push_str(&render_sample(
                                &format!("{name}_bucket"),
                                &sig_le,
                                &cum.to_string(),
                            ));
                        }
                        out.push_str(&render_sample(
                            &format!("{name}_bucket"),
                            &with_le(sig, "+Inf"),
                            &h.count.to_string(),
                        ));
                        out.push_str(&render_sample(
                            &format!("{name}_sum"),
                            sig,
                            &h.sum.to_string(),
                        ));
                        out.push_str(&render_sample(
                            &format!("{name}_count"),
                            sig,
                            &h.count.to_string(),
                        ));
                    }
                }
            }
        }
        out
    }
}

/// One exposition sample line.
fn render_sample(name: &str, sig: &str, value: &str) -> String {
    if sig.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{sig}}} {value}\n")
    }
}

/// Append the `le` label to a signature (histograms render it last, after
/// the series' own sorted labels — the conventional Prometheus layout).
fn with_le(sig: &str, le: &str) -> String {
    if sig.is_empty() {
        format!("le=\"{le}\"")
    } else {
        format!("{sig},le=\"{le}\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let r = Registry::new();
        r.counter_add("pcv_requests_total", "Requests.", &[("route", "/healthz")], 1);
        r.counter_add("pcv_requests_total", "Requests.", &[("route", "/healthz")], 2);
        r.counter_add("pcv_requests_total", "Requests.", &[("route", "/metrics")], 5);
        assert_eq!(r.counter_value("pcv_requests_total", &[("route", "/healthz")]), 3);
        assert_eq!(r.counter_value("pcv_requests_total", &[("route", "/metrics")]), 5);
        assert_eq!(r.counter_value("pcv_requests_total", &[("route", "/nope")]), 0);
        r.gauge_set("pcv_queue_depth", "Queue depth.", &[], 4.0);
        r.gauge_set("pcv_queue_depth", "Queue depth.", &[], 2.0);
        assert!(r.render().contains("pcv_queue_depth 2\n"));
    }

    #[test]
    fn label_order_is_canonical_and_values_escape() {
        let r = Registry::new();
        // Same series regardless of label order in the call.
        r.counter_add("pcv_x_total", "X.", &[("b", "2"), ("a", "1")], 1);
        r.counter_add("pcv_x_total", "X.", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.counter_value("pcv_x_total", &[("b", "2"), ("a", "1")]), 2);
        r.counter_add("pcv_x_total", "X.", &[("a", "q\"\\\n")], 7);
        let text = r.render();
        assert!(text.contains("pcv_x_total{a=\"1\",b=\"2\"} 2\n"), "{text}");
        assert!(text.contains("pcv_x_total{a=\"q\\\"\\\\\\n\"} 7\n"), "{text}");
    }

    #[test]
    fn exposition_is_deterministic_and_typed() {
        let build = || {
            let r = Registry::new();
            r.gauge_set("pcv_up", "Whether the daemon is up.", &[], 1.0);
            r.counter_add("pcv_hits_total", "Cache hits.", &[("tier", "l1")], 10);
            r.counter_add("pcv_hits_total", "Cache hits.", &[("tier", "l2")], 3);
            r.observe("pcv_lat_seconds", "Latency.", &[], &[0.01, 0.1], 0.05);
            r.observe("pcv_lat_seconds", "Latency.", &[], &[0.01, 0.1], 0.2);
            r.observe("pcv_lat_seconds", "Latency.", &[], &[0.01, 0.1], 0.001);
            r.render()
        };
        let text = build();
        assert_eq!(text, build(), "same samples must render byte-identically");
        let expected = "\
# HELP pcv_hits_total Cache hits.
# TYPE pcv_hits_total counter
pcv_hits_total{tier=\"l1\"} 10
pcv_hits_total{tier=\"l2\"} 3
# HELP pcv_lat_seconds Latency.
# TYPE pcv_lat_seconds histogram
pcv_lat_seconds_bucket{le=\"0.01\"} 1
pcv_lat_seconds_bucket{le=\"0.1\"} 2
pcv_lat_seconds_bucket{le=\"+Inf\"} 3
pcv_lat_seconds_sum 0.251
pcv_lat_seconds_count 3
# HELP pcv_up Whether the daemon is up.
# TYPE pcv_up gauge
pcv_up 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn type_conflicts_drop_the_sample_instead_of_panicking() {
        let r = Registry::new();
        r.counter_add("pcv_thing", "A counter.", &[], 1);
        r.gauge_set("pcv_thing", "Now a gauge?", &[], 9.0);
        assert_eq!(r.counter_value("pcv_thing", &[]), 1);
        assert!(!r.render().contains('9'));
    }

    #[test]
    fn absorb_trace_maps_counters_and_histograms() {
        let mut trace = Trace::default();
        trace.counters.insert("engine.cache.hits".into(), 12);
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 900] {
            h.record(v);
        }
        trace.histograms.insert("prune.kept".into(), h);
        let r = Registry::new();
        r.absorb_trace(&trace);
        r.absorb_trace(&trace); // counter semantics: absorbing accumulates
        assert_eq!(
            r.counter_value("pcv_trace_counter_total", &[("counter", "engine.cache.hits")]),
            24
        );
        let text = r.render();
        assert!(text.contains("# TYPE pcv_trace_samples histogram"), "{text}");
        // 900 has bit length 10 → ceiling 1023; the +Inf bucket closes.
        assert!(text.contains("pcv_trace_samples_bucket{hist=\"prune.kept\",le=\"1023\"} 8"));
        assert!(text.contains("pcv_trace_samples_bucket{hist=\"prune.kept\",le=\"+Inf\"} 8"));
        assert!(text.contains("pcv_trace_samples_sum{hist=\"prune.kept\"} 1812"));
        assert!(text.contains("pcv_trace_samples_count{hist=\"prune.kept\"} 8"));
    }
}
