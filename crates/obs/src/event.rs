//! Engine lifecycle events and the pluggable sink they flow into.
//!
//! Events are *observational*: they describe what the engine did, they
//! never influence what it does. Sinks run on the engine's worker threads,
//! so implementations must be cheap and thread-safe; anything expensive
//! belongs behind an [`EventChannel`](crate::EventChannel).

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// One structured lifecycle event from an engine run.
///
/// Cluster-scoped events (`ClusterQueued` through `ClusterFinished`) fire a
/// deterministic number of times per kind for a fixed input, cache state
/// and fault plan — worker count and scheduling only change interleaving.
/// Run- and worker-scoped events (`RunStarted`, `WorkerIdle`, `RunFinished`,
/// `RunResumed`, `RunStopped`) scale with the execution environment instead,
/// and `ClusterSkipped` depends on stop timing.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// Verification started.
    RunStarted {
        /// Victims submitted.
        victims: usize,
        /// Worker threads the run will use.
        workers: usize,
    },
    /// A victim was queued as a cluster job (one per victim, before any
    /// job runs).
    ClusterQueued {
        /// Victim net name.
        name: String,
    },
    /// A worker picked up a cluster job.
    ClusterStarted {
        /// Victim net name.
        name: String,
    },
    /// A cluster job was answered from the incremental cache.
    CacheHit {
        /// Victim net name.
        name: String,
    },
    /// A cluster job missed the cache and ran the full analysis.
    CacheMiss {
        /// Victim net name.
        name: String,
    },
    /// One recovery-ladder attempt failed and the job is retrying at a
    /// higher rung (one event per failed attempt).
    ClusterRetried {
        /// Victim net name.
        name: String,
        /// Stable name of the rung that failed (e.g. `"baseline"`).
        rung: &'static str,
    },
    /// A cluster's standing verdict came from a rung above baseline.
    ClusterDegraded {
        /// Victim net name.
        name: String,
        /// Stable name of the rung that stood.
        rung: &'static str,
    },
    /// A cluster job completed with a verdict.
    ClusterFinished {
        /// Victim net name.
        name: String,
        /// Whether the verdict came from the cache.
        cached: bool,
        /// Time the job spent (prune + analysis + receiver).
        elapsed: Duration,
    },
    /// A cluster's verdict was replayed from the checkpoint journal on a
    /// resumed run (no analysis, no cache involvement).
    ClusterReplayed {
        /// Victim net name.
        name: String,
    },
    /// A queued cluster was skipped because a cooperative stop was
    /// requested before a worker picked it up. Timing-dependent: which
    /// clusters land here varies with worker count and scheduling.
    ClusterSkipped {
        /// Victim net name.
        name: String,
    },
    /// A resumed run loaded a checkpoint journal whose fingerprints match
    /// the current netlist and configuration.
    RunResumed {
        /// Journal entries eligible for replay.
        replayable: usize,
    },
    /// A cooperative stop drained the run early; the checkpoint journal
    /// makes it resumable.
    RunStopped {
        /// Clusters that finished with a verdict before the stop.
        completed: usize,
        /// Clusters skipped without a verdict.
        skipped: usize,
    },
    /// A worker ran out of work and left the pool (one per worker).
    WorkerIdle {
        /// Dense worker index.
        worker: usize,
    },
    /// A stall watchdog observed no cluster completions for its configured
    /// no-progress interval. Purely advisory — the watchdog never stops
    /// the run — and inherently timing-dependent, so the kind is excluded
    /// from every deterministic event-count contract.
    StallWarning {
        /// Clusters that had completed when the warning fired.
        completed: usize,
        /// The configured no-progress interval, in milliseconds.
        stalled_ms: u64,
    },
    /// Verification finished.
    RunFinished {
        /// Victims audited.
        victims: usize,
        /// Wall-clock time of the run.
        wall: Duration,
        /// Verdicts answered from the cache.
        cache_hits: usize,
        /// Clusters whose verdict came from a recovery rung.
        degraded: usize,
    },
}

impl EngineEvent {
    /// Stable lower-case kind name, used by counting sinks and displays.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::RunStarted { .. } => "run_started",
            EngineEvent::ClusterQueued { .. } => "cluster_queued",
            EngineEvent::ClusterStarted { .. } => "cluster_started",
            EngineEvent::CacheHit { .. } => "cache_hit",
            EngineEvent::CacheMiss { .. } => "cache_miss",
            EngineEvent::ClusterRetried { .. } => "cluster_retried",
            EngineEvent::ClusterDegraded { .. } => "cluster_degraded",
            EngineEvent::ClusterFinished { .. } => "cluster_finished",
            EngineEvent::ClusterReplayed { .. } => "cluster_replayed",
            EngineEvent::ClusterSkipped { .. } => "cluster_skipped",
            EngineEvent::RunResumed { .. } => "run_resumed",
            EngineEvent::RunStopped { .. } => "run_stopped",
            EngineEvent::WorkerIdle { .. } => "worker_idle",
            EngineEvent::StallWarning { .. } => "stall_warning",
            EngineEvent::RunFinished { .. } => "run_finished",
        }
    }

    /// Render as one JSONL object (no trailing newline): always a `kind`
    /// member plus the event's fields, durations as `*_ms` decimal
    /// milliseconds. This is the wire form `pcv-serve` streams to event
    /// subscribers.
    pub fn to_json(&self) -> String {
        use pcv_trace::json::{f64_lit, str_lit};
        let ms = |d: &Duration| f64_lit(d.as_secs_f64() * 1e3);
        let body = match self {
            EngineEvent::RunStarted { victims, workers } => {
                format!("\"victims\":{victims},\"workers\":{workers}")
            }
            EngineEvent::ClusterQueued { name }
            | EngineEvent::ClusterStarted { name }
            | EngineEvent::CacheHit { name }
            | EngineEvent::CacheMiss { name }
            | EngineEvent::ClusterReplayed { name }
            | EngineEvent::ClusterSkipped { name } => format!("\"name\":{}", str_lit(name)),
            EngineEvent::ClusterRetried { name, rung }
            | EngineEvent::ClusterDegraded { name, rung } => {
                format!("\"name\":{},\"rung\":{}", str_lit(name), str_lit(rung))
            }
            EngineEvent::ClusterFinished { name, cached, elapsed } => format!(
                "\"name\":{},\"cached\":{cached},\"elapsed_ms\":{}",
                str_lit(name),
                ms(elapsed)
            ),
            EngineEvent::RunResumed { replayable } => format!("\"replayable\":{replayable}"),
            EngineEvent::RunStopped { completed, skipped } => {
                format!("\"completed\":{completed},\"skipped\":{skipped}")
            }
            EngineEvent::WorkerIdle { worker } => format!("\"worker\":{worker}"),
            EngineEvent::StallWarning { completed, stalled_ms } => {
                format!("\"completed\":{completed},\"stalled_ms\":{stalled_ms}")
            }
            EngineEvent::RunFinished { victims, wall, cache_hits, degraded } => format!(
                "\"victims\":{victims},\"wall_ms\":{},\"cache_hits\":{cache_hits},\
                 \"degraded\":{degraded}",
                ms(wall)
            ),
        };
        format!("{{\"kind\":{},{body}}}", str_lit(self.kind()))
    }

    /// `true` for cluster-scoped kinds, whose per-kind counts are
    /// deterministic across worker counts and scheduling orders.
    pub fn is_cluster_scoped(&self) -> bool {
        !matches!(
            self,
            EngineEvent::RunStarted { .. }
                | EngineEvent::WorkerIdle { .. }
                | EngineEvent::RunFinished { .. }
                | EngineEvent::RunResumed { .. }
                | EngineEvent::RunStopped { .. }
                | EngineEvent::ClusterSkipped { .. }
                | EngineEvent::StallWarning { .. }
        )
    }
}

/// Where engine events go. Called from worker threads concurrently; keep
/// implementations cheap and never panic (a sink must not take a run down).
pub trait EventSink: Send + Sync {
    /// Observe one event.
    fn event(&self, ev: &EngineEvent);

    /// Events this sink has *shed* (accepted the call but discarded the
    /// event) so far — non-zero only for bounded sinks under a slow
    /// consumer ([`ChannelSink`](crate::ChannelSink),
    /// [`EventHub`](crate::EventHub)). Unbounded sinks keep the default 0.
    /// The engine folds this into `EngineStats::events_dropped` at the end
    /// of a run, so shedding is never silent.
    fn dropped(&self) -> u64 {
        0
    }
}

/// A sink that discards every event — the explicit form of "no
/// observability", for code that wants to hold a sink unconditionally.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&self, _ev: &EngineEvent) {}
}

/// A sink that counts events per kind — the workhorse of the event-stream
/// determinism tests.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: Mutex<BTreeMap<&'static str, u64>>,
}

impl CountingSink {
    /// Fresh sink with all counts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current per-kind counts.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Counts restricted to cluster-scoped kinds (the deterministic
    /// subset).
    pub fn cluster_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = self.counts();
        counts.retain(|kind, _| {
            !matches!(
                *kind,
                "run_started"
                    | "worker_idle"
                    | "run_finished"
                    | "run_resumed"
                    | "run_stopped"
                    | "cluster_skipped"
                    | "stall_warning"
            )
        });
        counts
    }

    /// Count for one kind (0 when never seen).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts().get(kind).copied().unwrap_or(0)
    }
}

impl EventSink for CountingSink {
    fn event(&self, ev: &EngineEvent) {
        let mut counts = self.counts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *counts.entry(ev.kind()).or_insert(0) += 1;
    }
}

/// Fan one event stream out to several sinks.
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn EventSink>>,
}

impl TeeSink {
    /// A sink that forwards every event to each of `sinks`, in order.
    pub fn new(sinks: Vec<std::sync::Arc<dyn EventSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl EventSink for TeeSink {
    fn event(&self, ev: &EngineEvent) {
        for sink in &self.sinks {
            sink.event(ev);
        }
    }

    fn dropped(&self) -> u64 {
        self.sinks.iter().map(|s| s.dropped()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_scoped() {
        let ev = EngineEvent::ClusterFinished {
            name: "v0".into(),
            cached: false,
            elapsed: Duration::ZERO,
        };
        assert_eq!(ev.kind(), "cluster_finished");
        assert!(ev.is_cluster_scoped());
        let run = EngineEvent::RunStarted { victims: 3, workers: 2 };
        assert_eq!(run.kind(), "run_started");
        assert!(!run.is_cluster_scoped());
        assert!(!EngineEvent::WorkerIdle { worker: 0 }.is_cluster_scoped());
    }

    #[test]
    fn durability_kinds_are_scoped_correctly() {
        let replayed = EngineEvent::ClusterReplayed { name: "v0".into() };
        assert_eq!(replayed.kind(), "cluster_replayed");
        assert!(replayed.is_cluster_scoped());
        let skipped = EngineEvent::ClusterSkipped { name: "v1".into() };
        assert_eq!(skipped.kind(), "cluster_skipped");
        assert!(!skipped.is_cluster_scoped());
        let resumed = EngineEvent::RunResumed { replayable: 3 };
        assert_eq!(resumed.kind(), "run_resumed");
        assert!(!resumed.is_cluster_scoped());
        let stopped = EngineEvent::RunStopped { completed: 2, skipped: 1 };
        assert_eq!(stopped.kind(), "run_stopped");
        assert!(!stopped.is_cluster_scoped());
        let stall = EngineEvent::StallWarning { completed: 5, stalled_ms: 250 };
        assert_eq!(stall.kind(), "stall_warning");
        assert!(!stall.is_cluster_scoped(), "watchdog warnings are timing-dependent");
        assert_eq!(
            stall.to_json(),
            "{\"kind\":\"stall_warning\",\"completed\":5,\"stalled_ms\":250}"
        );
        let sink = CountingSink::new();
        sink.event(&replayed);
        sink.event(&skipped);
        sink.event(&stopped);
        sink.event(&stall);
        let cluster = sink.cluster_counts();
        assert!(cluster.contains_key("cluster_replayed"));
        assert!(!cluster.contains_key("cluster_skipped"));
        assert!(!cluster.contains_key("run_stopped"));
        assert!(!cluster.contains_key("stall_warning"));
    }

    #[test]
    fn counting_sink_tallies_per_kind() {
        let sink = CountingSink::new();
        sink.event(&EngineEvent::RunStarted { victims: 2, workers: 1 });
        for name in ["a", "b"] {
            sink.event(&EngineEvent::ClusterStarted { name: name.into() });
            sink.event(&EngineEvent::CacheMiss { name: name.into() });
        }
        sink.event(&EngineEvent::WorkerIdle { worker: 0 });
        assert_eq!(sink.count("cluster_started"), 2);
        assert_eq!(sink.count("cache_miss"), 2);
        assert_eq!(sink.count("run_started"), 1);
        assert_eq!(sink.count("never_happened"), 0);
        let cluster = sink.cluster_counts();
        assert!(cluster.contains_key("cluster_started"));
        assert!(!cluster.contains_key("run_started"));
        assert!(!cluster.contains_key("worker_idle"));
    }

    #[test]
    fn event_json_is_one_line_with_kind_and_fields() {
        let ev = EngineEvent::ClusterFinished {
            name: "bus0_1\"q".into(),
            cached: true,
            elapsed: Duration::from_millis(3),
        };
        let json = ev.to_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"kind\":\"cluster_finished\""));
        assert!(json.contains("\"cached\":true"));
        assert!(json.contains("\"elapsed_ms\":3"));
        assert!(json.contains("bus0_1\\\"q"), "names must be escaped: {json}");
        let run = EngineEvent::RunFinished {
            victims: 2,
            wall: Duration::from_millis(10),
            cache_hits: 1,
            degraded: 0,
        };
        assert!(run.to_json().contains("\"wall_ms\":10"));
    }

    #[test]
    fn unbounded_sinks_report_zero_drops() {
        let sink = CountingSink::new();
        sink.event(&EngineEvent::ClusterQueued { name: "x".into() });
        assert_eq!(EventSink::dropped(&sink), 0);
        let tee = TeeSink::new(vec![std::sync::Arc::new(CountingSink::new())]);
        assert_eq!(EventSink::dropped(&tee), 0);
    }

    #[test]
    fn tee_fans_out() {
        let a = std::sync::Arc::new(CountingSink::new());
        let b = std::sync::Arc::new(CountingSink::new());
        let tee = TeeSink::new(vec![a.clone(), b.clone()]);
        tee.event(&EngineEvent::ClusterQueued { name: "x".into() });
        assert_eq!(a.count("cluster_queued"), 1);
        assert_eq!(b.count("cluster_queued"), 1);
    }
}
