//! An always-on flight recorder: a bounded ring of recent observations.
//!
//! When a daemon wedges, panics, or trips its stall watchdog, the question
//! is always "what was it doing *just before*?" — and the answer must not
//! depend on having had verbose logging enabled in advance. The
//! [`FlightRecorder`] keeps the last N observations (engine events, HTTP
//! requests, watchdog notes) in a fixed-capacity ring, overwriting the
//! oldest; it costs one mutexed `VecDeque` push per note and nothing when
//! idle, so it can stay on for the life of the process.
//!
//! Two read paths: [`FlightRecorder::dump_json`] renders the ring as one
//! JSON document (for `GET /debug/flight` and for atomic crash dumps), and
//! the recorder implements [`EventSink`] so it can ride in a
//! [`TeeSink`](crate::TeeSink) next to the engine's real sinks.
//!
//! The recorder intentionally reports zero from [`EventSink::dropped`]:
//! overwriting old entries is its *design* (recency window), not shedding,
//! and must not inflate `EngineStats::events_dropped`.

use crate::event::{EngineEvent, EventSink};
use pcv_trace::json::str_lit;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// One recorded observation.
#[derive(Debug, Clone)]
pub struct FlightEntry {
    /// Monotonic sequence number (never reused, survives overwrites).
    pub seq: u64,
    /// Milliseconds since the recorder was created.
    pub at_ms: f64,
    /// Who recorded it: `"engine"`, `"http"`, `"watchdog"`, ...
    pub source: &'static str,
    /// The observation itself — engine events store their JSON form.
    pub text: String,
}

struct Ring {
    entries: VecDeque<FlightEntry>,
    next_seq: u64,
    overwritten: u64,
}

/// A bounded ring of recent observations; see the module docs.
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder").field("capacity", &self.capacity).finish()
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` entries (the most recent win).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            start: Instant::now(),
            capacity,
            ring: Mutex::new(Ring {
                entries: VecDeque::with_capacity(capacity),
                next_seq: 0,
                overwritten: 0,
            }),
        }
    }

    /// Record one observation, evicting the oldest entry when full.
    pub fn note(&self, source: &'static str, text: impl Into<String>) {
        let at_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.entries.len() == self.capacity {
            ring.entries.pop_front();
            ring.overwritten += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.entries.push_back(FlightEntry { seq, at_ms, source, text: text.into() });
    }

    /// Entries currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner).entries.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted to make room for newer ones.
    pub fn overwritten(&self) -> u64 {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner).overwritten
    }

    /// The ring as one JSON document:
    /// `{"overwritten":N,"entries":[{"seq":..,"at_ms":..,"source":..,"text":..},...]}`
    /// oldest-first. `text` is stored as an escaped string even when it is
    /// itself JSON, so the dump parses regardless of what was recorded.
    pub fn dump_json(&self) -> String {
        let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::with_capacity(64 + ring.entries.len() * 96);
        out.push_str(&format!("{{\"overwritten\":{},\"entries\":[", ring.overwritten));
        for (i, e) in ring.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"at_ms\":{:.3},\"source\":{},\"text\":{}}}",
                e.seq,
                e.at_ms,
                str_lit(e.source),
                str_lit(&e.text)
            ));
        }
        out.push_str("]}");
        out
    }
}

impl EventSink for FlightRecorder {
    fn event(&self, ev: &EngineEvent) {
        self.note("engine", ev.to_json());
    }
    // dropped() stays at the default 0: ring eviction is a recency window,
    // not shed telemetry (see module docs).
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn ring_keeps_the_most_recent_entries() {
        let fr = FlightRecorder::new(3);
        assert!(fr.is_empty());
        for i in 0..5 {
            fr.note("test", format!("entry {i}"));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.overwritten(), 2);
        let dump = fr.dump_json();
        assert!(!dump.contains("entry 0") && !dump.contains("entry 1"), "{dump}");
        assert!(dump.contains("entry 2") && dump.contains("entry 4"), "{dump}");
        // Sequence numbers survive eviction.
        assert!(dump.contains("\"seq\":4"), "{dump}");
    }

    #[test]
    fn dump_parses_even_when_entries_hold_json() {
        let fr = FlightRecorder::new(8);
        fr.event(&EngineEvent::RunStarted { victims: 7, workers: 2 });
        fr.note("http", "GET /metrics -> 200 \"quoted\"");
        let doc = json::parse(&fr.dump_json()).expect("flight dump is valid JSON");
        assert_eq!(doc.get("overwritten").and_then(|v| v.as_u64()), Some(0));
        let entries = doc.get("entries").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("source").and_then(|v| v.as_str()), Some("engine"));
        let text = entries[0].get("text").and_then(|v| v.as_str()).unwrap();
        // The engine event round-trips: its JSON form is embedded as a string.
        let inner = json::parse(text).expect("embedded event is valid JSON");
        assert_eq!(inner.get("kind").and_then(|v| v.as_str()), Some("run_started"));
        assert_eq!(entries[1].get("source").and_then(|v| v.as_str()), Some("http"));
    }

    #[test]
    fn recorder_reports_no_shed_events() {
        let fr = FlightRecorder::new(1);
        for _ in 0..10 {
            fr.event(&EngineEvent::RunStarted { victims: 1, workers: 1 });
        }
        // Eviction is by design, not shedding — EngineStats must not count it.
        assert_eq!(EventSink::dropped(&fr), 0);
        assert_eq!(fr.overwritten(), 9);
    }
}
