//! A bounded, lock-free-ish event channel: workers publish without
//! blocking, a consumer drains at its own pace, overflow drops (and
//! counts) instead of stalling the engine.
//!
//! Producers claim a slot ticket with one compare-exchange on the write
//! cursor; the only lock is the claimed slot's own mutex, which is
//! uncontended except when the ring wraps onto a slot the consumer is
//! reading. The consumer owns the read cursor exclusively. A full ring
//! rejects the event and bumps a drop counter — observability must never
//! apply backpressure to verification.

use crate::event::{EngineEvent, EventSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Ring {
    slots: Vec<Mutex<Option<EngineEvent>>>,
    /// Next write ticket; claimed by producers with compare-exchange.
    head: AtomicU64,
    /// Next read position; advanced only by the (single) consumer.
    tail: AtomicU64,
    /// Events rejected because the ring was full.
    dropped: AtomicU64,
}

/// Producer half: an [`EventSink`] that publishes into the ring.
#[derive(Clone)]
pub struct ChannelSink {
    ring: Arc<Ring>,
}

/// Consumer half: drain events in publication-ticket order.
pub struct EventReceiver {
    ring: Arc<Ring>,
}

/// The bounded channel constructor.
pub struct EventChannel;

impl EventChannel {
    /// A bounded channel holding at most `capacity` undelivered events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(capacity: usize) -> (ChannelSink, EventReceiver) {
        assert!(capacity > 0, "channel capacity must be positive");
        let ring = Arc::new(Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        (ChannelSink { ring: Arc::clone(&ring) }, EventReceiver { ring })
    }
}

impl ChannelSink {
    /// Publish one event; returns `false` (and counts a drop) when the
    /// ring is full.
    pub fn publish(&self, ev: EngineEvent) -> bool {
        let ring = &*self.ring;
        let capacity = ring.slots.len() as u64;
        let mut head = ring.head.load(Ordering::Acquire);
        loop {
            if head.wrapping_sub(ring.tail.load(Ordering::Acquire)) >= capacity {
                ring.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match ring.head.compare_exchange_weak(
                head,
                head.wrapping_add(1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    let slot = &ring.slots[(head % capacity) as usize];
                    *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(ev);
                    return true;
                }
                Err(current) => head = current,
            }
        }
    }

    /// Events rejected so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped.load(Ordering::Relaxed)
    }
}

impl EventSink for ChannelSink {
    fn event(&self, ev: &EngineEvent) {
        self.publish(ev.clone());
    }

    /// Shed events are counted, not silent: the engine reads this into
    /// `EngineStats::events_dropped` when the run finishes.
    fn dropped(&self) -> u64 {
        ChannelSink::dropped(self)
    }
}

impl EventReceiver {
    /// Take the next event, or `None` when the channel is currently empty
    /// (a claimed-but-unwritten slot also reads as empty until the
    /// producer finishes — publication order is ticket order).
    pub fn try_recv(&self) -> Option<EngineEvent> {
        let ring = &*self.ring;
        let capacity = ring.slots.len() as u64;
        let tail = ring.tail.load(Ordering::Acquire);
        if tail == ring.head.load(Ordering::Acquire) {
            return None;
        }
        let slot = &ring.slots[(tail % capacity) as usize];
        let ev = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()?;
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(ev)
    }

    /// Drain everything currently published.
    pub fn drain(&self) -> Vec<EngineEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Events the producer side rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str) -> EngineEvent {
        EngineEvent::ClusterQueued { name: name.into() }
    }

    #[test]
    fn publish_then_drain_in_order() {
        let (sink, rx) = EventChannel::bounded(8);
        for i in 0..5 {
            assert!(sink.publish(ev(&format!("n{i}"))));
        }
        let drained = rx.drain();
        assert_eq!(drained.len(), 5);
        for (i, ev) in drained.iter().enumerate() {
            assert_eq!(ev, &EngineEvent::ClusterQueued { name: format!("n{i}") });
        }
        assert_eq!(rx.dropped(), 0);
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn overflow_drops_instead_of_blocking() {
        let (sink, rx) = EventChannel::bounded(2);
        assert!(sink.publish(ev("a")));
        assert!(sink.publish(ev("b")));
        assert!(!sink.publish(ev("c")), "full ring must reject");
        assert_eq!(sink.dropped(), 1);
        assert_eq!(rx.drain().len(), 2);
        // Space freed: publishing works again.
        assert!(sink.publish(ev("d")));
        assert_eq!(rx.drain().len(), 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing_when_roomy() {
        let (sink, rx) = EventChannel::bounded(1024);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        sink.publish(ev(&format!("t{t}_{i}")));
                    }
                });
            }
        });
        assert_eq!(rx.drain().len(), 400);
        assert_eq!(rx.dropped(), 0);
    }
}
