//! Multi-subscriber event fan-out: one producer (the engine), any number
//! of late-joining consumers, bounded memory, counted overflow.
//!
//! [`EventChannel`](crate::EventChannel) is a point-to-point ring: one
//! consumer, and events published before it drains are gone once the ring
//! wraps. A verification *service* needs different semantics — several
//! clients may subscribe to the same run's event stream, each at its own
//! pace, possibly after the run already started. [`EventHub`] provides
//! that: events append to one bounded archive, and every subscriber is an
//! independent cursor over it, so a subscriber attached mid-run still
//! replays the run from the first event. When the archive is full the hub
//! sheds new events and counts them ([`EventHub::dropped`]) — fan-out, like
//! every other observability path, must never apply backpressure to
//! verification.

use crate::event::{EngineEvent, EventSink};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A bounded, append-only event archive with replaying subscribers.
///
/// The hub is the [`EventSink`] handed to the engine; subscribers are
/// [`HubCursor`]s created with [`EventHub::subscribe`] at any time before,
/// during, or after the run. Closing the hub ([`EventHub::close`]) marks
/// the stream finished so cursors can distinguish "caught up, more may
/// come" from "caught up, stream over".
#[derive(Debug)]
pub struct EventHub {
    /// Archived events, in publication order. Appends take the write lock
    /// briefly; cursor reads share the read lock.
    archive: RwLock<Vec<EngineEvent>>,
    capacity: usize,
    dropped: AtomicU64,
    closed: AtomicBool,
}

impl EventHub {
    /// A hub archiving at most `capacity` events; further events are shed
    /// and counted.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "hub capacity must be positive");
        EventHub {
            archive: RwLock::new(Vec::new()),
            capacity,
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// A new independent cursor starting at the first archived event.
    pub fn subscribe(self: &Arc<Self>) -> HubCursor {
        HubCursor { hub: Arc::clone(self), pos: 0 }
    }

    /// Events shed because the archive was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events archived so far.
    pub fn len(&self) -> usize {
        self.archive.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark the stream finished. Idempotent; only affects what
    /// [`HubCursor::next`] reports for an exhausted cursor.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether [`EventHub::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

impl EventSink for EventHub {
    fn event(&self, ev: &EngineEvent) {
        let mut archive = self.archive.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        if archive.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        archive.push(ev.clone());
    }

    fn dropped(&self) -> u64 {
        EventHub::dropped(self)
    }
}

/// What a cursor sees when it has consumed every archived event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorState {
    /// The hub is still open: more events may arrive.
    Open,
    /// The hub is closed: the stream is complete.
    Closed,
}

/// One subscriber's position in an [`EventHub`] archive. Cursors are
/// independent — each consumes the full stream at its own pace.
#[derive(Debug)]
pub struct HubCursor {
    hub: Arc<EventHub>,
    pos: usize,
}

impl HubCursor {
    /// The next archived event, or `Err(state)` when caught up —
    /// [`CursorState::Closed`] means the stream is over.
    pub fn poll(&mut self) -> Result<EngineEvent, CursorState> {
        // Read the closed flag *before* the archive: an event published
        // before close() is therefore never misreported as Closed while
        // still unread.
        let closed = self.hub.is_closed();
        let archive = self.hub.archive.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(ev) = archive.get(self.pos) {
            self.pos += 1;
            return Ok(ev.clone());
        }
        Err(if closed { CursorState::Closed } else { CursorState::Open })
    }

    /// Events this cursor has consumed.
    pub fn delivered(&self) -> usize {
        self.pos
    }

    /// Events the hub shed (shared across all cursors — the archive is
    /// the unit that overflows, not the subscriber).
    pub fn dropped(&self) -> u64 {
        self.hub.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str) -> EngineEvent {
        EngineEvent::ClusterQueued { name: name.into() }
    }

    #[test]
    fn late_subscriber_replays_from_the_start() {
        let hub = Arc::new(EventHub::new(16));
        hub.event(&ev("a"));
        hub.event(&ev("b"));
        let mut early = hub.subscribe();
        assert_eq!(early.poll(), Ok(ev("a")));
        hub.event(&ev("c"));
        // A cursor created now still sees the full stream.
        let mut late = hub.subscribe();
        let mut seen = Vec::new();
        while let Ok(e) = late.poll() {
            seen.push(e);
        }
        assert_eq!(seen, vec![ev("a"), ev("b"), ev("c")]);
        assert_eq!(late.poll(), Err(CursorState::Open));
        hub.close();
        assert_eq!(late.poll(), Err(CursorState::Closed));
        // The early cursor is unaffected by the late one's progress.
        assert_eq!(early.poll(), Ok(ev("b")));
        assert_eq!(early.delivered(), 2);
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let hub = Arc::new(EventHub::new(2));
        hub.event(&ev("a"));
        hub.event(&ev("b"));
        hub.event(&ev("shed"));
        assert_eq!(hub.dropped(), 1);
        assert_eq!(hub.len(), 2);
        let mut cur = hub.subscribe();
        assert_eq!(cur.poll(), Ok(ev("a")));
        assert_eq!(cur.dropped(), 1);
        // Through the trait, too (the engine's view).
        let sink: &dyn EventSink = &*hub;
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn concurrent_publishers_and_subscribers_agree() {
        let hub = Arc::new(EventHub::new(4096));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let hub = Arc::clone(&hub);
                scope.spawn(move || {
                    for i in 0..100 {
                        hub.event(&ev(&format!("t{t}_{i}")));
                    }
                });
            }
            let hub = Arc::clone(&hub);
            scope.spawn(move || {
                let mut cur = hub.subscribe();
                let mut n = 0;
                while n < 400 {
                    match cur.poll() {
                        Ok(_) => n += 1,
                        Err(_) => std::thread::yield_now(),
                    }
                }
            });
        });
        hub.close();
        let mut cur = hub.subscribe();
        let mut n = 0;
        while let Ok(_e) = cur.poll() {
            n += 1;
        }
        assert_eq!(n, 400);
        assert_eq!(hub.dropped(), 0);
    }
}
