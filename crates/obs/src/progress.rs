//! Live progress over the event stream: throughput, EWMA-smoothed ETA,
//! per-stage completion counts, and a single-line stderr status display.
//!
//! Everything here observes wall-clock time, so it lives strictly outside
//! the deterministic report path: the monitor renders to stderr (never
//! stdout, never the report) and nothing it computes flows back into the
//! engine.

use crate::event::{EngineEvent, EventSink};
use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// EWMA smoothing factor for the inter-completion interval: high enough to
/// react to phase changes (cached prefix → expensive tail), low enough not
/// to chase single-cluster noise.
const EWMA_ALPHA: f64 = 0.15;

/// A point-in-time view of run progress.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgressSnapshot {
    /// Clusters queued in total (0 before `RunStarted`).
    pub total: usize,
    /// Clusters finished.
    pub done: usize,
    /// Finished clusters answered from the cache.
    pub cached: usize,
    /// Clusters whose verdict came from a recovery rung.
    pub degraded: usize,
    /// Recovery-ladder retries observed so far.
    pub retries: usize,
    /// Wall time since `RunStarted`.
    pub elapsed: Duration,
    /// Clusters per second over the whole run so far.
    pub throughput: f64,
    /// EWMA-based estimate of time remaining (`None` until at least one
    /// cluster finishes, or after the run completes).
    pub eta: Option<Duration>,
    /// `true` once `RunFinished` was observed.
    pub finished: bool,
}

impl ProgressSnapshot {
    /// Completed fraction in `[0, 1]` (0 when the total is unknown).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.done as f64 / self.total as f64
        }
    }

    /// Render the one-line status the stderr display shows.
    pub fn status_line(&self) -> String {
        let mut line = format!(
            "[pcv] {}/{} clusters ({:.0}%)",
            self.done,
            self.total,
            100.0 * self.fraction()
        );
        if self.throughput > 0.0 {
            line.push_str(&format!(" | {:.1}/s", self.throughput));
        }
        match self.eta {
            Some(eta) if !self.finished => {
                line.push_str(&format!(" | eta {:.1}s", eta.as_secs_f64()));
            }
            _ => {}
        }
        if self.cached > 0 {
            line.push_str(&format!(" | {} cached", self.cached));
        }
        if self.retries > 0 {
            line.push_str(&format!(" | {} retries", self.retries));
        }
        if self.degraded > 0 {
            line.push_str(&format!(" | {} degraded", self.degraded));
        }
        line
    }
}

#[derive(Debug, Default)]
struct MonitorState {
    total: usize,
    done: usize,
    cached: usize,
    degraded: usize,
    retries: usize,
    started: Option<Instant>,
    last_finish: Option<Instant>,
    /// EWMA of the interval between cluster completions, seconds.
    ewma_interval_s: Option<f64>,
    finished: bool,
}

/// An [`EventSink`] that folds the event stream into live progress
/// statistics: completion counts, throughput, and an EWMA-based ETA.
#[derive(Debug, Default)]
pub struct ProgressMonitor {
    state: Mutex<MonitorState>,
}

impl ProgressMonitor {
    /// Fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current progress.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let s = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let elapsed = s.started.map(|t| t.elapsed()).unwrap_or_default();
        let throughput = if elapsed.is_zero() || s.done == 0 {
            0.0
        } else {
            s.done as f64 / elapsed.as_secs_f64()
        };
        let remaining = s.total.saturating_sub(s.done);
        let eta = match (s.ewma_interval_s, s.finished) {
            (Some(interval), false) if s.done > 0 => {
                Some(Duration::from_secs_f64(interval * remaining as f64))
            }
            _ => None,
        };
        ProgressSnapshot {
            total: s.total,
            done: s.done,
            cached: s.cached,
            degraded: s.degraded,
            retries: s.retries,
            elapsed,
            throughput,
            eta,
            finished: s.finished,
        }
    }
}

impl EventSink for ProgressMonitor {
    fn event(&self, ev: &EngineEvent) {
        let mut s = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match ev {
            EngineEvent::RunStarted { victims, .. } => {
                *s = MonitorState {
                    total: *victims,
                    started: Some(Instant::now()),
                    ..Default::default()
                };
            }
            EngineEvent::ClusterFinished { cached, .. } => {
                s.done += 1;
                if *cached {
                    s.cached += 1;
                }
                let now = Instant::now();
                let anchor = s.last_finish.or(s.started);
                if let Some(prev) = anchor {
                    let interval = now.saturating_duration_since(prev).as_secs_f64();
                    s.ewma_interval_s = Some(match s.ewma_interval_s {
                        Some(ewma) => EWMA_ALPHA * interval + (1.0 - EWMA_ALPHA) * ewma,
                        None => interval,
                    });
                }
                s.last_finish = Some(now);
            }
            EngineEvent::ClusterRetried { .. } => s.retries += 1,
            EngineEvent::ClusterDegraded { .. } => s.degraded += 1,
            EngineEvent::RunFinished { .. } => s.finished = true,
            _ => {}
        }
    }
}

/// The live stderr status line: wraps a [`ProgressMonitor`] and repaints a
/// single `\r`-rewritten line as clusters finish, throttled so rendering
/// never becomes the bottleneck.
///
/// The display auto-disables (the sink still counts, but never writes)
/// when any of these hold:
/// - it was constructed quiet ([`StderrStatusLine::auto`] with
///   `quiet = true`, e.g. from a `--quiet` flag),
/// - the `PCV_NO_PROGRESS` environment variable is set (any value),
/// - stderr is not a terminal (CI logs stay clean).
pub struct StderrStatusLine {
    monitor: ProgressMonitor,
    enabled: bool,
    paint: Mutex<PaintState>,
}

#[derive(Debug, Default)]
struct PaintState {
    last: Option<Instant>,
    /// Width of the previous paint, so shorter lines fully overwrite it.
    width: usize,
}

/// Minimum interval between repaints.
const PAINT_INTERVAL: Duration = Duration::from_millis(100);

impl StderrStatusLine {
    /// A status line honoring the escape hatches: disabled when `quiet`,
    /// when `PCV_NO_PROGRESS` is set, or when stderr is not a TTY.
    pub fn auto(quiet: bool) -> Self {
        let enabled = !quiet
            && std::env::var_os("PCV_NO_PROGRESS").is_none()
            && std::io::stderr().is_terminal();
        Self::with_enabled(enabled)
    }

    /// A status line with the display forced on or off (tests use this;
    /// binaries should prefer [`StderrStatusLine::auto`]).
    pub fn with_enabled(enabled: bool) -> Self {
        StderrStatusLine { monitor: ProgressMonitor::new(), enabled, paint: Mutex::default() }
    }

    /// Whether the display will actually write to stderr.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current progress (works whether or not the display is enabled).
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.monitor.snapshot()
    }

    fn paint(&self, force: bool, terminal: bool) {
        let mut p = self.paint.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let now = Instant::now();
        if !force && p.last.is_some_and(|t| now.saturating_duration_since(t) < PAINT_INTERVAL) {
            return;
        }
        p.last = Some(now);
        let line = self.monitor.snapshot().status_line();
        let pad = p.width.saturating_sub(line.len());
        p.width = line.len();
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{line}{:pad$}", "");
        if terminal {
            let _ = writeln!(err);
            p.width = 0;
        }
        let _ = err.flush();
    }
}

impl EventSink for StderrStatusLine {
    fn event(&self, ev: &EngineEvent) {
        self.monitor.event(ev);
        if !self.enabled {
            return;
        }
        match ev {
            EngineEvent::RunStarted { .. } => self.paint(true, false),
            EngineEvent::ClusterFinished { .. } | EngineEvent::ClusterDegraded { .. } => {
                self.paint(false, false)
            }
            EngineEvent::RunFinished { .. } => self.paint(true, true),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(name: &str, cached: bool) -> EngineEvent {
        EngineEvent::ClusterFinished { name: name.into(), cached, elapsed: Duration::ZERO }
    }

    #[test]
    fn monitor_tracks_counts_and_fraction() {
        let m = ProgressMonitor::new();
        m.event(&EngineEvent::RunStarted { victims: 4, workers: 2 });
        m.event(&finished("a", true));
        m.event(&finished("b", false));
        m.event(&EngineEvent::ClusterRetried { name: "c".into(), rung: "baseline" });
        m.event(&EngineEvent::ClusterDegraded { name: "c".into(), rung: "gmin_boost" });
        m.event(&finished("c", false));
        let s = m.snapshot();
        assert_eq!((s.total, s.done, s.cached, s.degraded, s.retries), (4, 3, 1, 1, 1));
        assert!((s.fraction() - 0.75).abs() < 1e-12);
        assert!(!s.finished);
        assert!(s.eta.is_some(), "an ETA exists once clusters finish");
        m.event(&EngineEvent::RunFinished {
            victims: 4,
            wall: Duration::ZERO,
            cache_hits: 1,
            degraded: 1,
        });
        let s = m.snapshot();
        assert!(s.finished);
        assert!(s.eta.is_none(), "no ETA after the run ends");
    }

    #[test]
    fn status_line_mentions_the_interesting_parts() {
        let snap = ProgressSnapshot {
            total: 10,
            done: 5,
            cached: 2,
            degraded: 1,
            retries: 3,
            elapsed: Duration::from_secs(1),
            throughput: 5.0,
            eta: Some(Duration::from_secs(1)),
            finished: false,
        };
        let line = snap.status_line();
        assert!(line.contains("5/10"));
        assert!(line.contains("50%"));
        assert!(line.contains("5.0/s"));
        assert!(line.contains("eta 1.0s"));
        assert!(line.contains("2 cached"));
        assert!(line.contains("3 retries"));
        assert!(line.contains("1 degraded"));
    }

    #[test]
    fn quiet_and_env_disable_the_display() {
        // quiet flag wins regardless of the environment.
        assert!(!StderrStatusLine::auto(true).is_enabled());
        // The forced-off display still counts events without writing.
        let line = StderrStatusLine::with_enabled(false);
        line.event(&EngineEvent::RunStarted { victims: 2, workers: 1 });
        line.event(&finished("a", false));
        assert_eq!(line.snapshot().done, 1);
    }

    #[test]
    fn a_fresh_run_resets_the_monitor() {
        let m = ProgressMonitor::new();
        m.event(&EngineEvent::RunStarted { victims: 2, workers: 1 });
        m.event(&finished("a", false));
        m.event(&EngineEvent::RunStarted { victims: 5, workers: 1 });
        let s = m.snapshot();
        assert_eq!((s.total, s.done), (5, 0));
    }
}
