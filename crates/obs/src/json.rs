//! A minimal JSON reader — just enough to parse the documents this
//! workspace writes (ledger records, benchmark summaries) without an
//! external serializer. Writing stays with [`pcv_trace::json`].

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key-ordered.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric content as `u64`, if this is a non-negative integral
    /// number small enough to round-trip exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub what: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`ParseError`] with the offending byte offset.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { what, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writers; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to a char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5e-1}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let b = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0], Value::Bool(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_str(), Some("x\n"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn round_trips_trace_writer_output() {
        // The documents our writers emit must come back intact.
        let lit = pcv_trace::json::str_lit("weird \"name\"\twith\\slashes");
        let v = parse(&lit).unwrap();
        assert_eq!(v.as_str(), Some("weird \"name\"\twith\\slashes"));
        let v = parse(&pcv_trace::json::f64_lit(0.15)).unwrap();
        assert_eq!(v.as_f64(), Some(0.15));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"open", "1 2", "{\"a\":1}x"] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = parse("\"caf\u{e9} \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("café A"));
    }
}
